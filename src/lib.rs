//! # Gear — efficient container storage and deployment with a new image format
//!
//! A Rust reproduction of *"Gear: Enable Efficient Container Storage and
//! Deployment with a New Image Format"* (ICDCS 2021). Gear splits a Docker
//! image into a tiny **Gear index** (the directory tree with regular files
//! replaced by MD5 fingerprints) and a pool of content-addressed **Gear
//! files**. Containers start as soon as the index is pulled; files are
//! fetched lazily and shared at file granularity in the registry and in a
//! local client cache.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `gear-core` | Gear index, converter, commit |
//! | [`client`] | `gear-client` | shared cache, Gear/Docker/Slacker deployment |
//! | [`registry`] | `gear-registry` | Docker registry, Gear file store, dedup analysis |
//! | [`image`] | `gear-image` | layers, manifests, Overlay2 store |
//! | [`fs`] | `gear-fs` | in-memory VFS + union mounts |
//! | [`archive`] | `gear-archive` | the `gar` layer-archive format |
//! | [`compress`] | `gear-compress` | LZSS compression |
//! | [`hash`] | `gear-hash` | MD5/SHA-256, fingerprints, digests |
//! | [`simnet`] | `gear-simnet` | virtual clock, link and disk models |
//! | [`p2p`] | `gear-p2p` | cooperative cluster distribution of Gear files |
//! | [`proto`] | `gear-proto` | HTTP-style registry wire protocol |
//! | [`corpus`] | `gear-corpus` | synthetic 50-series image corpus |
//!
//! # Quickstart
//!
//! ```
//! use bytes::Bytes;
//! use gear::client::{ClientConfig, GearClient};
//! use gear::core::{publish, Converter};
//! use gear::corpus::{StartupTrace, TaskKind};
//! use gear::fs::FsTree;
//! use gear::image::{ImageBuilder, ImageRef};
//! use gear::registry::{DockerRegistry, GearFileStore};
//!
//! // 1. Build a Docker image.
//! let mut rootfs = FsTree::new();
//! rootfs.create_file("usr/bin/server", Bytes::from_static(b"server binary"))?;
//! rootfs.create_file("usr/share/docs", Bytes::from_static(b"never read at startup"))?;
//! let image = ImageBuilder::new("server:1.0".parse::<ImageRef>()?)
//!     .layer_from_tree(&rootfs)
//!     .build();
//!
//! // 2. Convert it to a Gear image and publish.
//! let conversion = Converter::new().convert(&image)?;
//! let (mut docker, mut files) = (DockerRegistry::new(), GearFileStore::new());
//! publish(&conversion, &mut docker, &mut files);
//!
//! // 3. Deploy: only the index and the accessed file cross the wire.
//! let mut client = GearClient::new(ClientConfig::default());
//! let trace = StartupTrace { reads: vec!["usr/bin/server".into()], task: TaskKind::WebServe };
//! let (_, report) = client.deploy(&"server:1.0".parse()?, &trace, &docker, &files)?;
//! assert_eq!(report.files_fetched, 1); // usr/share/docs never downloaded
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use gear_archive as archive;
pub use gear_client as client;
pub use gear_compress as compress;
pub use gear_core as core;
pub use gear_corpus as corpus;
pub use gear_fs as fs;
pub use gear_hash as hash;
pub use gear_image as image;
pub use gear_p2p as p2p;
pub use gear_proto as proto;
pub use gear_registry as registry;
pub use gear_simnet as simnet;
pub use gear_store as store;
