//! Property-based tests on the Gear format's core invariants.

use bytes::Bytes;
use gear_core::{publish, CollisionResolver, Converter, GearImage, GearIndex};
use gear_fs::FsTree;
use gear_hash::Fingerprint;
use gear_image::{ImageBuilder, ImageConfig, ImageRef};
use gear_registry::{DockerRegistry, GearFileStore};
use proptest::prelude::*;

fn any_component() -> impl Strategy<Value = String> {
    "[a-z0-9_]{1,8}".prop_filter("reserved", |s| s != "." && s != "..")
}

fn any_path() -> impl Strategy<Value = String> {
    proptest::collection::vec(any_component(), 1..4).prop_map(|v| v.join("/"))
}

fn any_files() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    proptest::collection::vec(
        (any_path(), proptest::collection::vec(any::<u8>(), 0..128)),
        1..24,
    )
}

fn image_of(files: &[(String, Vec<u8>)]) -> Option<gear_image::Image> {
    let mut tree = FsTree::new();
    for (p, c) in files {
        // Paths may conflict (file under file); skip such samples.
        tree.create_file(p, Bytes::from(c.clone())).ok()?;
    }
    Some(
        ImageBuilder::new("prop:1".parse::<ImageRef>().unwrap())
            .layer_from_tree(&tree)
            .build(),
    )
}

proptest! {
    /// Conversion is lossless: every file in the image appears in the index
    /// with the right fingerprint, and the produced Gear files hash to their
    /// names and reproduce the content.
    #[test]
    fn conversion_is_lossless(files in any_files()) {
        let Some(image) = image_of(&files) else { return Ok(()) };
        let rootfs = image.root_fs().unwrap();
        let conv = Converter::new().convert(&image).unwrap();
        for file in &conv.files {
            prop_assert_eq!(Fingerprint::of(&file.content), file.fingerprint);
        }
        for (path, node) in rootfs.walk() {
            if let gear_fs::Node::File(f) = node {
                let gear_fs::FileData::Inline(content) = &f.data else { unreachable!() };
                let (fp, size) = conv.gear_image.index().file_at(&path).unwrap();
                prop_assert_eq!(fp, Fingerprint::of(content), "{}", path);
                prop_assert_eq!(size, content.len() as u64);
                let stored = conv.files.iter().find(|g| g.fingerprint == fp).unwrap();
                prop_assert_eq!(&stored.content, content);
            }
        }
    }

    /// The index survives JSON and index-image round trips.
    #[test]
    fn index_roundtrips(files in any_files()) {
        let Some(image) = image_of(&files) else { return Ok(()) };
        let conv = Converter::new().convert(&image).unwrap();
        let index = conv.gear_image.index();
        // JSON roundtrip.
        let parsed = GearIndex::from_json(&index.to_json()).unwrap();
        prop_assert_eq!(&parsed, index);
        // Single-layer-image roundtrip.
        let back = GearImage::from_index_image(&conv.gear_image.to_index_image()).unwrap();
        prop_assert_eq!(back.index(), index);
        // Tree roundtrip.
        let rebuilt = GearIndex::from_tree(&index.to_tree(), ImageConfig::default()).unwrap();
        prop_assert_eq!(rebuilt.referenced_files(), index.referenced_files());
    }

    /// Publishing then downloading every referenced fingerprint reproduces
    /// the image's full content (registry-side losslessness).
    #[test]
    fn publish_then_fetch_all(files in any_files()) {
        let Some(image) = image_of(&files) else { return Ok(()) };
        let conv = Converter::new().convert(&image).unwrap();
        let mut docker = DockerRegistry::new();
        let mut store = GearFileStore::with_compression();
        publish(&conv, &mut docker, &mut store);
        for (fp, size) in conv.gear_image.index().referenced_files() {
            let body = store.download(fp);
            prop_assert!(body.is_some(), "missing {fp}");
            prop_assert_eq!(body.unwrap().len() as u64, size);
        }
        // And the index image is pullable.
        prop_assert!(docker.image(image.reference()).is_some());
    }

    /// Parallel conversion is bit-identical to serial: for arbitrary file
    /// sets (large enough that the pool genuinely fans out), every worker
    /// count yields byte-identical serialized index, identical file pool
    /// (same order, same fingerprints, same bytes), and the same report —
    /// modulo the duration, which deliberately models the thread credit.
    #[test]
    fn parallel_conversion_bit_identical(
        files in proptest::collection::vec(
            (any_path(), proptest::collection::vec(any::<u8>(), 0..64)),
            1..72,
        ),
    ) {
        let Some(image) = image_of(&files) else { return Ok(()) };
        let serial = Converter::new().convert(&image).unwrap();
        for threads in [2usize, 4, 8] {
            let options = gear_core::ConverterOptions { threads, ..Default::default() };
            let par = Converter::with_options(options).convert(&image).unwrap();
            prop_assert_eq!(
                par.gear_image.index().to_json(),
                serial.gear_image.index().to_json(),
                "index bytes diverged at {} threads", threads
            );
            prop_assert_eq!(par.files.len(), serial.files.len());
            for (a, b) in par.files.iter().zip(&serial.files) {
                prop_assert_eq!(a.fingerprint, b.fingerprint);
                prop_assert_eq!(&a.content, &b.content);
            }
            prop_assert_eq!(par.report.unique_files, serial.report.unique_files);
            prop_assert_eq!(par.report.duplicate_files, serial.report.duplicate_files);
            prop_assert_eq!(par.report.index_bytes, serial.report.index_bytes);
        }
    }

    /// The collision resolver never hands out the same id for different
    /// contents, and always dedups identical contents.
    #[test]
    fn collision_resolver_is_injective(
        contents in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..16),
        same_key in any::<bool>(),
    ) {
        let mut resolver = CollisionResolver::new();
        let shared = Fingerprint::of(b"forced-shared-key");
        let mut seen: std::collections::HashMap<Fingerprint, Vec<u8>> = Default::default();
        for content in &contents {
            let bytes = Bytes::from(content.clone());
            let key = if same_key { shared } else { Fingerprint::of(content) };
            let (id, _) = resolver.resolve(key, &bytes);
            if let Some(prev) = seen.get(&id) {
                prop_assert_eq!(prev, content, "same id for different contents");
            }
            seen.insert(id, content.clone());
        }
    }
}
