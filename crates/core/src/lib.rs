//! The Gear image format (the paper's primary contribution).
//!
//! A **Gear image** decouples an image's structure from its data:
//!
//! * the [`GearIndex`] keeps the whole directory tree, with each regular
//!   file replaced by the MD5 *fingerprint* of its content (plus size and
//!   metadata) — typically well under a megabyte;
//! * the **Gear files** — the actual file contents — live in a shared,
//!   content-addressed pool ([`gear_registry::GearFileStore`]), deduplicated
//!   across every image in the registry.
//!
//! A container can start as soon as its index is pulled; file contents are
//! fetched on demand. Because the index is packaged as an ordinary
//! single-layer Docker image ([`GearImage::to_index_image`]), the existing
//! Docker distribution machinery stores and ships it unchanged.
//!
//! Modules:
//!
//! * [`index`] — the index tree, JSON serialization, FsTree conversion.
//! * [`convert`] — the Gear Converter: Docker image → Gear image + files,
//!   with MD5-collision detection and big-file chunking (paper §III-B, §VII).
//! * [`commit`] — turning a running container's writable diff into a new
//!   Gear image (paper §III-D2).
//!
//! # Examples
//!
//! ```
//! use gear_core::{Converter, GearImage};
//! use gear_image::{ImageBuilder, ImageRef};
//! use gear_fs::FsTree;
//! use bytes::Bytes;
//!
//! // A Docker image with one layer.
//! let mut tree = FsTree::new();
//! tree.create_file("usr/bin/app", Bytes::from_static(b"binary bytes"))?;
//! let docker = ImageBuilder::new("app:1.0".parse::<ImageRef>()?)
//!     .layer_from_tree(&tree)
//!     .build();
//!
//! // Convert it.
//! let conversion = Converter::new().convert(&docker)?;
//! assert_eq!(conversion.files.len(), 1);            // one unique Gear file
//! assert!(conversion.gear_image.index().serialized_len() < 4096);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commit;
pub mod convert;
mod frontend;
pub mod index;

pub use commit::{commit, CommitError, CommitOutput};
pub use frontend::{FrontendPushReport, GearFrontend};
pub use convert::{
    publish, publish_with_pool, CollisionResolver, Conversion, ConversionReport, ConvertError,
    Converter, ConverterOptions, GearFile, PublishReport,
};
pub use index::{GearImage, GearIndex, IndexError, IndexNode, INDEX_PATH};
