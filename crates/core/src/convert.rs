//! The Gear Converter: Docker image → Gear index + Gear files (paper §III-B).
//!
//! Conversion replays the image's layers bottom-up into a root file system,
//! then traverses it: every regular file's content is fingerprinted with MD5
//! and moved into the Gear file set; the tree of directories, metadata, and
//! fingerprints becomes the [`GearIndex`]. Files above a configurable
//! threshold are split into fingerprinted chunks (the paper's future-work
//! big-file support).
//!
//! MD5 is collision-resistant enough in practice (paper Eq. 1 puts the
//! accidental-collision probability far below disk-error rates), but the
//! design still detects collisions by content comparison during conversion
//! and falls back to a salted unique id excluded from deduplication —
//! implemented by [`CollisionResolver`].

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

use bytes::Bytes;
use gear_fs::{ChunkRef, FileData, FsError, FsTree, Node};
use gear_hash::Fingerprint;
use gear_image::Image;
use gear_registry::{DockerRegistry, GearFileStore};
use gear_simnet::DiskModel;

use crate::index::{GearImage, GearIndex, IndexError};

/// A unique Gear file produced by conversion: content plus its name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GearFile {
    /// Content fingerprint (or salted unique id after a collision).
    pub fingerprint: Fingerprint,
    /// The file content.
    pub content: Bytes,
}

/// Error returned by [`Converter::convert`].
#[derive(Debug)]
pub enum ConvertError {
    /// The image's layers could not be replayed into a root file system.
    RootFs(FsError),
    /// The converted tree could not be indexed.
    Index(IndexError),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::RootFs(e) => write!(f, "cannot reconstruct root file system: {e}"),
            ConvertError::Index(e) => write!(f, "cannot build index: {e}"),
        }
    }
}

impl Error for ConvertError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConvertError::RootFs(e) => Some(e),
            ConvertError::Index(e) => Some(e),
        }
    }
}

impl From<FsError> for ConvertError {
    fn from(e: FsError) -> Self {
        ConvertError::RootFs(e)
    }
}

impl From<IndexError> for ConvertError {
    fn from(e: IndexError) -> Self {
        ConvertError::Index(e)
    }
}

/// Detects fingerprint collisions by content comparison and assigns salted
/// unique ids to colliding files (paper §III-B).
///
/// The resolver remembers the first content seen for each fingerprint. A
/// later file with the same fingerprint but different content gets
/// `MD5(content ‖ salt)` for increasing salts until an unused id is found,
/// and is flagged as non-deduplicable.
#[derive(Debug, Default)]
pub struct CollisionResolver {
    seen: HashMap<Fingerprint, Bytes>,
    collisions: u64,
}

impl CollisionResolver {
    /// Creates an empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves the id for `content` whose hash is `fingerprint`.
    ///
    /// Returns `(id, dedup)` where `dedup` is false only for collision
    /// fallback ids.
    pub fn resolve(&mut self, fingerprint: Fingerprint, content: &Bytes) -> (Fingerprint, bool) {
        match self.seen.get(&fingerprint) {
            None => {
                self.seen.insert(fingerprint, content.clone());
                (fingerprint, true)
            }
            Some(existing) if existing == content => (fingerprint, true),
            Some(_) => {
                self.collisions += 1;
                let mut salt: u64 = 0;
                loop {
                    let mut salted = content.to_vec();
                    salted.extend_from_slice(&salt.to_le_bytes());
                    let id = Fingerprint::of(&salted);
                    if let std::collections::hash_map::Entry::Vacant(slot) = self.seen.entry(id) {
                        slot.insert(content.clone());
                        return (id, false);
                    }
                    salt += 1;
                }
            }
        }
    }

    /// Number of collisions detected so far.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }
}

/// Tunables for the converter.
#[derive(Debug, Clone, Copy)]
pub struct ConverterOptions {
    /// Files at or above this size are chunked ([`None`] disables chunking).
    pub big_file_threshold: Option<u64>,
    /// Chunk size for big files.
    pub chunk_size: u64,
    /// Content-defined chunking for big files: when set, chunk boundaries
    /// come from the Gear rolling hash under these size bounds instead of
    /// the fixed [`ConverterOptions::chunk_size`] grid, so a small edit in a
    /// large file changes only the O(1) chunks near the edit and every
    /// other chunk keeps its fingerprint (and dedups in the registry).
    /// [`None`] (the default) keeps the fixed-size split bit-identical to
    /// prior behaviour.
    pub cdc: Option<gear_hash::ChunkerConfig>,
    /// Disk model used to estimate conversion time (paper Fig. 6 compares
    /// HDD and SSD).
    pub disk: DiskModel,
    /// Hashing throughput in bytes/second for the time estimate.
    pub hash_bytes_per_sec: f64,
    /// Throughput of recompressing unique Gear files for the registry
    /// (gzip-class, single-threaded) — the dominant CPU cost of a real
    /// conversion.
    pub compress_bytes_per_sec: f64,
    /// Worker threads for fingerprinting file contents. The paper notes
    /// conversion "can be shorter … using multiple threads" (§V-B); hashing
    /// is the parallelizable part.
    pub threads: usize,
    /// Multiplier mapping scaled-down corpus bytes to paper-scale bytes in
    /// the time estimate (set to the corpus `scale_denom`).
    pub byte_scale: u64,
    /// Multiplier mapping the corpus's reduced file counts to realistic
    /// per-image file counts in the time estimate.
    pub count_scale: f64,
}

impl Default for ConverterOptions {
    fn default() -> Self {
        ConverterOptions {
            big_file_threshold: None,
            chunk_size: 1024 * 1024,
            cdc: None,
            disk: DiskModel::hdd(),
            hash_bytes_per_sec: 450.0e6, // MD5 on one 2.3 GHz Xeon core
            compress_bytes_per_sec: 45.0e6, // gzip -6 on one core
            threads: 1,
            byte_scale: 1,
            count_scale: 1.0,
        }
    }
}

/// Accounting for one conversion.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConversionReport {
    /// Regular files scanned in the root file system.
    pub scanned_files: u64,
    /// Bytes of file content scanned.
    pub scanned_bytes: u64,
    /// Unique Gear files produced (after in-image dedup).
    pub unique_files: u64,
    /// Bytes of unique Gear-file content.
    pub unique_bytes: u64,
    /// Files that were duplicates of an already-produced Gear file.
    pub duplicate_files: u64,
    /// MD5 collisions detected (expected: 0).
    pub collisions: u64,
    /// Serialized index size in bytes.
    pub index_bytes: u64,
    /// Estimated wall-clock conversion time under the configured disk model.
    pub duration: Duration,
}

/// The result of converting one Docker image.
#[derive(Debug, Clone)]
pub struct Conversion {
    /// The Gear image (index + name).
    pub gear_image: GearImage,
    /// Unique Gear files to upload.
    pub files: Vec<GearFile>,
    /// Accounting.
    pub report: ConversionReport,
}

/// The Gear Converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Converter {
    options: ConverterOptions,
}

impl Converter {
    /// A converter with default options (no chunking, HDD timing).
    pub fn new() -> Self {
        Self::default()
    }

    /// A converter with explicit options.
    pub fn with_options(options: ConverterOptions) -> Self {
        Converter { options }
    }

    /// Converts `image` into a Gear image plus its unique Gear files.
    ///
    /// The conversion is performed once per image, ahead of any pull
    /// (paper §III-B), so its cost never sits on a container's start path.
    ///
    /// # Errors
    ///
    /// [`ConvertError`] if the image's layers cannot be replayed or indexed.
    pub fn convert(&self, image: &Image) -> Result<Conversion, ConvertError> {
        let rootfs = image.root_fs()?;
        let mut resolver = CollisionResolver::new();
        let mut report = ConversionReport::default();
        let mut files = Vec::new();
        let mut produced: HashMap<Fingerprint, ()> = HashMap::new();

        // Pre-fingerprint whole-file contents, in parallel when configured.
        let precomputed = self.prehash(&rootfs);

        let mut converted = FsTree::new();
        for (path, node) in rootfs.walk() {
            let new_node = match node {
                Node::Dir { meta, .. } => Node::empty_dir(*meta),
                Node::Symlink(s) => Node::Symlink(s.clone()),
                Node::File(f) => {
                    let content = match &f.data {
                        FileData::Inline(bytes) => bytes.clone(),
                        // Already-converted bodies pass through untouched
                        // (possible when re-converting a committed image).
                        other => {
                            converted.insert(
                                &path,
                                Node::File(gear_fs::FileNode { meta: f.meta, data: other.clone() }),
                            )?;
                            continue;
                        }
                    };
                    report.scanned_files += 1;
                    report.scanned_bytes += content.len() as u64;
                    let big = self
                        .options
                        .big_file_threshold
                        .is_some_and(|t| content.len() as u64 >= t);
                    if big {
                        let spans: Vec<std::ops::Range<usize>> = match &self.options.cdc {
                            Some(bounds) => gear_hash::chunk_spans(&content, bounds),
                            None => {
                                let step = self.options.chunk_size.max(1) as usize;
                                (0..content.len())
                                    .step_by(step)
                                    .map(|s| s..(s + step).min(content.len()))
                                    .collect()
                            }
                        };
                        let mut chunks = Vec::new();
                        for span in spans {
                            let chunk = content.slice(span);
                            let fp = Fingerprint::of(&chunk);
                            let (id, _) = resolver.resolve(fp, &chunk);
                            if produced.insert(id, ()).is_none() {
                                report.unique_files += 1;
                                report.unique_bytes += chunk.len() as u64;
                                files.push(GearFile { fingerprint: id, content: chunk.clone() });
                            } else {
                                report.duplicate_files += 1;
                            }
                            chunks.push(ChunkRef { fingerprint: id, size: chunk.len() as u64 });
                        }
                        Node::File(gear_fs::FileNode {
                            meta: f.meta,
                            data: FileData::Chunked { chunks, size: content.len() as u64 },
                        })
                    } else {
                        let fp = precomputed
                            .get(&path)
                            .copied()
                            .unwrap_or_else(|| Fingerprint::of(&content));
                        let (id, _dedup) = resolver.resolve(fp, &content);
                        if produced.insert(id, ()).is_none() {
                            report.unique_files += 1;
                            report.unique_bytes += content.len() as u64;
                            files.push(GearFile { fingerprint: id, content: content.clone() });
                        } else {
                            report.duplicate_files += 1;
                        }
                        Node::fingerprint_file(f.meta, id, content.len() as u64)
                    }
                }
            };
            converted.insert(&path, new_node)?;
        }

        report.collisions = resolver.collisions();
        let index = GearIndex::from_tree(&converted, image.config().clone())?;
        report.index_bytes = index.serialized_len();
        report.duration = self.estimate_duration(&report);

        Ok(Conversion {
            gear_image: GearImage::new(image.reference().clone(), index),
            files,
            report,
        })
    }

    /// Fingerprints every inline regular file, fanning out across
    /// `options.threads` worker threads for large trees.
    ///
    /// Delegates the fan-out to [`gear_par::Pool`]: the split is a pure
    /// function of `(len, threads)`, so the map is bit-identical to the
    /// serial loop for any thread count.
    fn prehash(&self, rootfs: &FsTree) -> HashMap<String, Fingerprint> {
        let work: Vec<(String, Bytes)> = rootfs
            .walk()
            .filter_map(|(path, node)| match node {
                Node::File(f) => match &f.data {
                    FileData::Inline(content) => Some((path, content.clone())),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let pool = gear_par::Pool::new(self.options.threads);
        let bodies: Vec<&Bytes> = work.iter().map(|(_, content)| content).collect();
        let fingerprints = gear_hash::fingerprint_all(&bodies, &pool);
        work.into_iter()
            .map(|(path, _)| path)
            .zip(fingerprints)
            .collect()
    }

    /// Models conversion time: decompress + write the layers, traverse the
    /// tree, hash every file, write unique Gear files, and build the index
    /// (paper §V-B: "conversion time is proportional to the image size"
    /// because small files dominate).
    fn estimate_duration(&self, report: &ConversionReport) -> Duration {
        let disk = &self.options.disk;
        let bytes = |n: u64| n * self.options.byte_scale;
        let files = |n: u64| (n as f64 * self.options.count_scale).round() as u64;
        let unpack = disk.io_time(bytes(report.scanned_bytes), files(report.scanned_files));
        let traverse = disk.traverse_time(files(report.scanned_files));
        let threads = self.options.threads.max(1) as f64;
        let hash = Duration::from_secs_f64(
            bytes(report.scanned_bytes) as f64 / (self.options.hash_bytes_per_sec * threads),
        );
        // Recompression parallelizes per-file (pigz-style): each unique Gear
        // file is an independent gzip stream, so extra workers get full
        // credit, exactly like hashing.
        let recompress = Duration::from_secs_f64(
            bytes(report.unique_bytes) as f64 / (self.options.compress_bytes_per_sec * threads),
        );
        let write_files = disk.io_time(bytes(report.unique_bytes), files(report.unique_files));
        let build_index = disk.io_time(bytes(report.index_bytes), 1);
        unpack + traverse + hash + recompress + write_files + build_index
    }
}

/// Result of publishing a conversion to the two registries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishReport {
    /// Gear files uploaded (new to the store).
    pub files_uploaded: u64,
    /// Bytes of Gear files stored (post-compression if enabled).
    pub file_bytes_stored: u64,
    /// Gear files skipped because the store already had them.
    pub files_deduped: u64,
    /// Compressed bytes the index image added to the Docker registry.
    pub index_bytes_uploaded: u64,
}

/// Publishes a conversion: the index image goes to the Docker registry, the
/// Gear files to the Gear file store. Only files whose fingerprints are
/// absent are uploaded (paper §III-C).
pub fn publish(
    conversion: &Conversion,
    docker: &mut DockerRegistry,
    store: &mut GearFileStore,
) -> PublishReport {
    let mut report = PublishReport::default();
    for file in &conversion.files {
        if store.query(file.fingerprint) {
            report.files_deduped += 1;
            continue;
        }
        let outcome = store
            .upload(file.fingerprint, file.content.clone())
            .unwrap_or_else(|e| panic!("converter produced invalid fingerprint: {e}"));
        if outcome.stored {
            report.files_uploaded += 1;
            report.file_bytes_stored += outcome.stored_bytes;
        } else {
            report.files_deduped += 1;
        }
    }
    let push = docker.push_image(&conversion.gear_image.to_index_image());
    report.index_bytes_uploaded = push.bytes_uploaded;
    report
}

/// [`publish`] with the file store's per-upload compression accounting
/// fanned out across `pool` (block-parallel for files larger than
/// [`gear_compress::BLOCK_SIZE`]). The report is bit-identical to the
/// serial [`publish`] at any worker count — the pool only changes
/// wall-clock.
pub fn publish_with_pool(
    conversion: &Conversion,
    docker: &mut DockerRegistry,
    store: &mut GearFileStore,
    pool: &gear_par::Pool,
) -> PublishReport {
    store.set_pool(*pool);
    publish(conversion, docker, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gear_image::{ImageBuilder, ImageRef};

    fn r(s: &str) -> ImageRef {
        s.parse().unwrap()
    }

    fn image_with(files: &[(&str, &[u8])]) -> Image {
        let mut tree = FsTree::new();
        for (p, c) in files {
            tree.create_file(p, Bytes::copy_from_slice(c)).unwrap();
        }
        ImageBuilder::new(r("test:1")).layer_from_tree(&tree).env("X=1").build()
    }

    #[test]
    fn convert_dedups_identical_files() {
        let image = image_with(&[
            ("a/dup", b"same body"),
            ("b/dup", b"same body"),
            ("c/unique", b"other body"),
        ]);
        let conv = Converter::new().convert(&image).unwrap();
        assert_eq!(conv.report.scanned_files, 3);
        assert_eq!(conv.report.unique_files, 2);
        assert_eq!(conv.report.duplicate_files, 1);
        assert_eq!(conv.files.len(), 2);
        assert_eq!(conv.report.collisions, 0);
        // Both dup paths reference the same fingerprint.
        let idx = conv.gear_image.index();
        assert_eq!(idx.file_at("a/dup"), idx.file_at("b/dup"));
    }

    #[test]
    fn convert_preserves_structure_and_config() {
        let image = image_with(&[("deep/nested/file", b"x")]);
        let conv = Converter::new().convert(&image).unwrap();
        let idx = conv.gear_image.index();
        assert!(idx.file_at("deep/nested/file").is_some());
        assert_eq!(idx.config.env, vec!["X=1"]);
        // Round trip: tree -> placeholders -> same fingerprints.
        let tree = idx.to_tree();
        assert!(tree.contains("deep/nested/file"));
    }

    #[test]
    fn gear_files_hash_to_their_fingerprints() {
        let image = image_with(&[("f1", b"alpha"), ("f2", b"beta")]);
        let conv = Converter::new().convert(&image).unwrap();
        for file in &conv.files {
            assert_eq!(Fingerprint::of(&file.content), file.fingerprint);
        }
    }

    #[test]
    fn big_files_are_chunked() {
        let body: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let mut tree = FsTree::new();
        tree.create_file("model.bin", Bytes::from(body.clone())).unwrap();
        tree.create_file("small.txt", Bytes::from_static(b"tiny")).unwrap();
        let image = ImageBuilder::new(r("ai:1")).layer_from_tree(&tree).build();
        let conv = Converter::with_options(ConverterOptions {
            big_file_threshold: Some(8192),
            chunk_size: 4096,
            ..Default::default()
        })
        .convert(&image)
        .unwrap();
        let (_, files, big, _) = conv.gear_image.index().node_counts();
        assert_eq!(big, 1);
        assert_eq!(files, 1);
        // 40 KB in 4 KB chunks = 10 chunk files + 1 small file.
        assert_eq!(conv.files.len(), 11);
        // Reassembling chunk contents reproduces the original body.
        let refs = conv.gear_image.index().referenced_files();
        let rebuilt: Vec<u8> = refs
            .iter()
            .filter(|(fp, _)| *fp != Fingerprint::of(b"tiny"))
            .flat_map(|(fp, _)| {
                conv.files.iter().find(|f| f.fingerprint == *fp).unwrap().content.to_vec()
            })
            .collect();
        assert_eq!(rebuilt, body);
    }

    /// Deterministic pseudo-random body (splitmix64 per position) so CDC
    /// boundaries are non-degenerate.
    fn noisy_body(seed: u64, len: usize) -> Vec<u8> {
        (0..len as u64)
            .map(|i| {
                let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as u8
            })
            .collect()
    }

    #[test]
    fn cdc_chunks_follow_content_boundaries() {
        let bounds = gear_hash::ChunkerConfig { min_size: 256, avg_size: 1024, max_size: 4096 };
        let body = noisy_body(11, 40_000);
        let mut tree = FsTree::new();
        tree.create_file("model.bin", Bytes::from(body.clone())).unwrap();
        let image = ImageBuilder::new(r("cdc:1")).layer_from_tree(&tree).build();
        let conv = Converter::with_options(ConverterOptions {
            big_file_threshold: Some(4096),
            cdc: Some(bounds),
            ..Default::default()
        })
        .convert(&image)
        .unwrap();
        let (_, _, big, _) = conv.gear_image.index().node_counts();
        assert_eq!(big, 1);
        // Chunk sizes match the CDC spans, not the fixed 1 MiB grid.
        let spans = gear_hash::chunk_spans(&body, &bounds);
        assert_eq!(conv.files.len(), spans.len(), "one gear file per unique CDC chunk");
        let rebuilt: Vec<u8> = conv
            .gear_image
            .index()
            .referenced_files()
            .iter()
            .flat_map(|(fp, _)| {
                conv.files.iter().find(|f| f.fingerprint == *fp).unwrap().content.to_vec()
            })
            .collect();
        assert_eq!(rebuilt, body);
    }

    #[test]
    fn cdc_dedups_edited_versions_where_fixed_grid_cannot_after_insert() {
        // v2 inserts 3 bytes near the start of a large binary: with CDC
        // only the chunks around the insert change fingerprints, so most
        // chunk files dedup across versions; a fixed grid shifts every
        // chunk after the insert.
        let bounds = gear_hash::ChunkerConfig { min_size: 128, avg_size: 512, max_size: 2048 };
        let v1_body = noisy_body(12, 30_000);
        let mut v2_body = v1_body.clone();
        v2_body.splice(100..100, [1u8, 2, 3]);

        let convert = |body: &[u8], cdc: Option<gear_hash::ChunkerConfig>, tag: &str| {
            let mut tree = FsTree::new();
            tree.create_file("bin", Bytes::copy_from_slice(body)).unwrap();
            let image = ImageBuilder::new(r(tag)).layer_from_tree(&tree).build();
            Converter::with_options(ConverterOptions {
                big_file_threshold: Some(1024),
                chunk_size: 512,
                cdc,
                ..Default::default()
            })
            .convert(&image)
            .unwrap()
        };
        let shared = |a: &Conversion, b: &Conversion| {
            let have: std::collections::HashSet<Fingerprint> =
                a.files.iter().map(|f| f.fingerprint).collect();
            b.files.iter().filter(|f| have.contains(&f.fingerprint)).count()
        };

        let cdc_v1 = convert(&v1_body, Some(bounds), "cdc:1");
        let cdc_v2 = convert(&v2_body, Some(bounds), "cdc:2");
        let cdc_shared = shared(&cdc_v1, &cdc_v2);
        assert!(
            cdc_shared * 2 > cdc_v2.files.len(),
            "CDC must dedup most chunks across the edit: {cdc_shared}/{}",
            cdc_v2.files.len()
        );

        let fixed_v1 = convert(&v1_body, None, "fix:1");
        let fixed_v2 = convert(&v2_body, None, "fix:2");
        let fixed_shared = shared(&fixed_v1, &fixed_v2);
        assert!(
            cdc_shared > fixed_shared,
            "CDC shared {cdc_shared} must beat fixed-grid shared {fixed_shared}"
        );
    }

    #[test]
    fn cdc_option_without_threshold_changes_nothing() {
        // The CDC knob alone must not alter conversion: chunking still
        // gates on `big_file_threshold`, so the default config stays
        // bit-identical with or without a chunker config present.
        let body = noisy_body(13, 20_000);
        let mut tree = FsTree::new();
        tree.create_file("bin", Bytes::from(body)).unwrap();
        tree.create_file("small", Bytes::from_static(b"cfg")).unwrap();
        let image = ImageBuilder::new(r("gate:1")).layer_from_tree(&tree).build();
        let default = Converter::new().convert(&image).unwrap();
        let with_knob = Converter::with_options(ConverterOptions {
            cdc: Some(gear_hash::ChunkerConfig::default()),
            ..Default::default()
        })
        .convert(&image)
        .unwrap();
        assert_eq!(default.gear_image.index(), with_knob.gear_image.index());
        assert_eq!(default.files, with_knob.files);
        assert_eq!(default.report, with_knob.report);
    }

    #[test]
    fn collision_resolver_assigns_unique_ids() {
        let mut resolver = CollisionResolver::new();
        let fp = Fingerprint::of(b"the hash");
        let a = Bytes::from_static(b"content A");
        let b = Bytes::from_static(b"content B");
        // Simulate two different contents claiming the same fingerprint.
        let (id_a, dedup_a) = resolver.resolve(fp, &a);
        let (id_b, dedup_b) = resolver.resolve(fp, &b);
        assert_eq!(id_a, fp);
        assert!(dedup_a);
        assert_ne!(id_b, fp, "colliding file must get a fresh id");
        assert!(!dedup_b, "collision fallback is excluded from dedup");
        assert_eq!(resolver.collisions(), 1);
        // Same content as A again: dedups to the original fingerprint.
        let (id_a2, _) = resolver.resolve(fp, &a);
        assert_eq!(id_a2, fp);
        // A third distinct content colliding again gets yet another id.
        let c = Bytes::from_static(b"content C");
        let (id_c, _) = resolver.resolve(fp, &c);
        assert_ne!(id_c, fp);
        assert_ne!(id_c, id_b);
    }

    #[test]
    fn conversion_time_scales_with_size_and_disk() {
        let small = image_with(&[("f", &[0u8; 1000])]);
        let many: Vec<(String, Vec<u8>)> =
            (0..200).map(|i| (format!("f{i}"), vec![i as u8; 5000])).collect();
        let mut tree = FsTree::new();
        for (p, c) in &many {
            tree.create_file(p, Bytes::from(c.clone())).unwrap();
        }
        let large = ImageBuilder::new(r("big:1")).layer_from_tree(&tree).build();

        let hdd = Converter::with_options(ConverterOptions::default());
        let ssd = Converter::with_options(ConverterOptions {
            disk: DiskModel::ssd(),
            ..Default::default()
        });
        let t_small = hdd.convert(&small).unwrap().report.duration;
        let t_large = hdd.convert(&large).unwrap().report.duration;
        let t_large_ssd = ssd.convert(&large).unwrap().report.duration;
        assert!(t_large > t_small);
        assert!(t_large_ssd < t_large, "SSD conversion must be faster (paper §V-B)");
    }

    #[test]
    fn parallel_conversion_matches_serial() {
        let files: Vec<(String, Vec<u8>)> =
            (0..200).map(|i| (format!("data/f{i:03}"), vec![i as u8; 700])).collect();
        let mut tree = FsTree::new();
        for (p, c) in &files {
            tree.create_file(p, Bytes::from(c.clone())).unwrap();
        }
        let image = ImageBuilder::new(r("par:1")).layer_from_tree(&tree).build();
        let serial = Converter::new().convert(&image).unwrap();
        let parallel = Converter::with_options(ConverterOptions {
            threads: 4,
            ..Default::default()
        })
        .convert(&image)
        .unwrap();
        assert_eq!(parallel.gear_image.index(), serial.gear_image.index());
        assert_eq!(parallel.files.len(), serial.files.len());
        // The time model credits the extra threads for hashing.
        assert!(parallel.report.duration <= serial.report.duration);
    }

    #[test]
    fn publish_dedups_across_images() {
        let v1 = image_with(&[("shared", b"library bytes"), ("only1", b"one")]);
        let mut tree = FsTree::new();
        tree.create_file("shared", Bytes::from_static(b"library bytes")).unwrap();
        tree.create_file("only2", Bytes::from_static(b"two")).unwrap();
        let v2 = ImageBuilder::new(r("test:2")).layer_from_tree(&tree).build();

        let mut docker = DockerRegistry::new();
        let mut store = GearFileStore::new();
        let c1 = Converter::new().convert(&v1).unwrap();
        let c2 = Converter::new().convert(&v2).unwrap();
        let p1 = publish(&c1, &mut docker, &mut store);
        let p2 = publish(&c2, &mut docker, &mut store);
        assert_eq!(p1.files_uploaded, 2);
        assert_eq!(p2.files_uploaded, 1, "shared file must not be re-uploaded");
        assert_eq!(p2.files_deduped, 1);
        assert_eq!(store.object_count(), 3);
        // Both index images are pullable from the Docker registry.
        assert!(docker.image(&r("test:1")).is_some());
        assert!(docker.image(&r("test:2")).is_some());
    }
}
