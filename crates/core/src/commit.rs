//! Committing a running Gear container as a new Gear image (paper §III-D2).
//!
//! The Gear File Viewer records all modifications in the writable "diff"
//! layer. Committing extracts the diff's file contents as new Gear files,
//! merges their metadata with the current Gear index, and yields a new
//! index plus the (typically few) new files to push.

use std::error::Error;
use std::fmt;

use gear_fs::{FileData, FsError, Node, UnionFs};
use gear_hash::Fingerprint;
use gear_image::ImageRef;

use crate::convert::{CollisionResolver, GearFile};
use crate::index::{GearImage, GearIndex, IndexError};

/// Error returned by [`commit`].
#[derive(Debug)]
pub enum CommitError {
    /// The diff could not be merged over the index tree.
    Merge(FsError),
    /// The merged tree could not be indexed.
    Index(IndexError),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Merge(e) => write!(f, "cannot merge container diff: {e}"),
            CommitError::Index(e) => write!(f, "cannot index committed image: {e}"),
        }
    }
}

impl Error for CommitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CommitError::Merge(e) => Some(e),
            CommitError::Index(e) => Some(e),
        }
    }
}

impl From<FsError> for CommitError {
    fn from(e: FsError) -> Self {
        CommitError::Merge(e)
    }
}

impl From<IndexError> for CommitError {
    fn from(e: IndexError) -> Self {
        CommitError::Index(e)
    }
}

/// The result of committing a container.
#[derive(Debug, Clone)]
pub struct CommitOutput {
    /// The new Gear image (index + name).
    pub gear_image: GearImage,
    /// Gear files that did not exist in the base image (to upload).
    pub new_files: Vec<GearFile>,
    /// Bytes of new Gear-file content.
    pub new_bytes: u64,
}

/// Commits the state of a mounted Gear container as `new_reference`.
///
/// Files already present in the base index keep their fingerprints and are
/// **not** re-extracted; only contents written to the diff layer become new
/// Gear files.
///
/// # Errors
///
/// [`CommitError`] if the diff cannot be merged or the result indexed.
pub fn commit(
    mount: &UnionFs,
    base: &GearIndex,
    new_reference: ImageRef,
) -> Result<CommitOutput, CommitError> {
    // Merge the writable diff over the index's placeholder tree.
    let mut merged = base.to_tree();
    merged.apply_layer(&mount.diff())?;

    // Convert the (few) inline files the diff introduced.
    let mut resolver = CollisionResolver::new();
    let mut new_files = Vec::new();
    let mut new_bytes = 0u64;
    let mut converted = gear_fs::FsTree::new();
    let known: std::collections::HashSet<Fingerprint> =
        base.referenced_files().into_iter().map(|(fp, _)| fp).collect();
    for (path, node) in merged.walk() {
        let new_node = match node {
            Node::File(f) => match &f.data {
                FileData::Inline(content) => {
                    let fp = Fingerprint::of(content);
                    let (id, _) = resolver.resolve(fp, content);
                    if !known.contains(&id)
                        && !new_files.iter().any(|g: &GearFile| g.fingerprint == id)
                    {
                        new_bytes += content.len() as u64;
                        new_files.push(GearFile { fingerprint: id, content: content.clone() });
                    }
                    Node::fingerprint_file(f.meta, id, content.len() as u64)
                }
                _ => node.clone(),
            },
            other => match other {
                Node::Dir { meta, .. } => Node::empty_dir(*meta),
                n => n.clone(),
            },
        };
        converted.insert(&path, new_node)?;
    }

    let index = GearIndex::from_tree(&converted, base.config.clone())?;
    Ok(CommitOutput {
        gear_image: GearImage::new(new_reference, index),
        new_files,
        new_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gear_archive::Metadata;
    use gear_fs::FsTree;
    use gear_image::ImageConfig;
    use std::sync::Arc;

    fn base_index() -> GearIndex {
        let mut tree = FsTree::new();
        tree.insert(
            "app/bin",
            Node::fingerprint_file(Metadata::exec_default(), Fingerprint::of(b"binary"), 6),
        )
        .unwrap();
        tree.insert(
            "app/config",
            Node::fingerprint_file(Metadata::file_default(), Fingerprint::of(b"cfg-v1"), 6),
        )
        .unwrap();
        GearIndex::from_tree(&tree, ImageConfig { env: vec!["E=1".into()], ..Default::default() })
            .unwrap()
    }

    fn mounted(base: &GearIndex) -> UnionFs {
        UnionFs::new(vec![Arc::new(base.to_tree())])
    }

    #[test]
    fn commit_captures_new_files_only() {
        let base = base_index();
        let mut mount = mounted(&base);
        mount.write("app/data.db", Bytes::from_static(b"fresh rows")).unwrap();

        let out = commit(&mount, &base, "app:2".parse().unwrap()).unwrap();
        assert_eq!(out.new_files.len(), 1);
        assert_eq!(out.new_bytes, 10);
        let idx = out.gear_image.index();
        // Old files keep their fingerprints.
        assert_eq!(idx.file_at("app/bin").unwrap().0, Fingerprint::of(b"binary"));
        // New file is indexed under its content fingerprint.
        assert_eq!(idx.file_at("app/data.db").unwrap().0, Fingerprint::of(b"fresh rows"));
        // Config is carried over.
        assert_eq!(idx.config.env, vec!["E=1"]);
    }

    #[test]
    fn commit_records_modifications() {
        let base = base_index();
        let mut mount = mounted(&base);
        mount.write("app/config", Bytes::from_static(b"cfg-v2!")).unwrap();

        let out = commit(&mount, &base, "app:2".parse().unwrap()).unwrap();
        let idx = out.gear_image.index();
        assert_eq!(idx.file_at("app/config").unwrap().0, Fingerprint::of(b"cfg-v2!"));
        assert_eq!(out.new_files.len(), 1);
    }

    #[test]
    fn commit_respects_deletions() {
        let base = base_index();
        let mut mount = mounted(&base);
        mount.unlink("app/config").unwrap();

        let out = commit(&mount, &base, "app:2".parse().unwrap()).unwrap();
        assert!(out.gear_image.index().file_at("app/config").is_none());
        assert!(out.new_files.is_empty());
    }

    #[test]
    fn commit_dedups_against_base() {
        let base = base_index();
        let mut mount = mounted(&base);
        // Write a file whose content equals an existing Gear file.
        mount.write("app/copy", Bytes::from_static(b"binary")).unwrap();
        let out = commit(&mount, &base, "app:2".parse().unwrap()).unwrap();
        assert!(out.new_files.is_empty(), "existing content must not be re-pushed");
        assert_eq!(out.gear_image.index().file_at("app/copy").unwrap().0, Fingerprint::of(b"binary"));
    }

    #[test]
    fn clean_commit_is_identity_plus_name() {
        let base = base_index();
        let mount = mounted(&base);
        let out = commit(&mount, &base, "app:clone".parse().unwrap()).unwrap();
        assert!(out.new_files.is_empty());
        assert_eq!(out.gear_image.index().referenced_files(), base.referenced_files());
        assert_eq!(out.gear_image.reference().tag(), "clone");
    }
}
