//! The Gear index: an image's directory tree with fingerprint leaves.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use bytes::Bytes;
use gear_archive::Metadata;
use gear_fs::{ChunkRef, FileData, FsTree, Node};
use gear_hash::Fingerprint;
use gear_image::{Image, ImageBuilder, ImageConfig, ImageRef};
use serde::{Deserialize, Serialize};

/// Path inside the single-layer index image where the index JSON lives.
pub const INDEX_PATH: &str = "var/lib/gear/index.json";

/// One chunk of a big file in the index (fingerprint + length).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexChunk {
    /// Chunk content fingerprint.
    pub fingerprint: Fingerprint,
    /// Chunk length in bytes.
    pub size: u64,
}

/// A node in the Gear index tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum IndexNode {
    /// Directory.
    Dir {
        /// Directory metadata.
        meta: Metadata,
        /// Children by name.
        children: BTreeMap<String, IndexNode>,
    },
    /// Regular file, identified by the fingerprint of its content.
    File {
        /// File metadata.
        meta: Metadata,
        /// Content fingerprint (names the Gear file).
        fingerprint: Fingerprint,
        /// Content length in bytes.
        size: u64,
        /// False when this entry is excluded from deduplication (collision
        /// fallback, paper §III-B): its "fingerprint" is a salted unique id.
        #[serde(default = "default_true", skip_serializing_if = "is_true")]
        dedup: bool,
    },
    /// A big file split into individually fetchable chunks (paper §VII).
    BigFile {
        /// File metadata.
        meta: Metadata,
        /// Ordered chunk list.
        chunks: Vec<IndexChunk>,
        /// Total length in bytes.
        size: u64,
    },
    /// Symbolic link — irregular files are served straight from the index
    /// (paper §III-D2).
    Symlink {
        /// Link metadata.
        meta: Metadata,
        /// Link target.
        target: String,
    },
}

fn default_true() -> bool {
    true
}

#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_true(b: &bool) -> bool {
    *b
}

/// Error parsing or constructing a Gear index.
#[derive(Debug)]
pub enum IndexError {
    /// The index JSON was malformed.
    Json(serde_json::Error),
    /// A tree passed to [`GearIndex::from_tree`] contained an inline file —
    /// contents must be converted to fingerprints first.
    UnresolvedContent(String),
    /// The image handed to [`GearImage::from_index_image`] does not carry an
    /// index at [`INDEX_PATH`].
    NotAnIndexImage,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Json(e) => write!(f, "malformed index JSON: {e}"),
            IndexError::UnresolvedContent(p) => {
                write!(f, "file {p} still has inline content; convert it first")
            }
            IndexError::NotAnIndexImage => write!(f, "image does not contain a Gear index"),
        }
    }
}

impl Error for IndexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IndexError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for IndexError {
    fn from(e: serde_json::Error) -> Self {
        IndexError::Json(e)
    }
}

/// The Gear index: directory structure + file fingerprints + the runtime
/// config copied from the original image (paper §III-B/III-C).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GearIndex {
    /// Root directory.
    pub root: IndexNode,
    /// Runtime configuration copied from the source Docker image.
    pub config: ImageConfig,
}

impl GearIndex {
    /// An empty index with default config.
    pub fn empty() -> Self {
        GearIndex {
            root: IndexNode::Dir { meta: Metadata::dir_default(), children: BTreeMap::new() },
            config: ImageConfig::default(),
        }
    }

    /// Builds an index from a fully *converted* [`FsTree`] — one whose file
    /// bodies are all [`FileData::Fingerprint`] or [`FileData::Chunked`].
    ///
    /// # Errors
    ///
    /// [`IndexError::UnresolvedContent`] if any file still holds inline
    /// bytes. (Use [`crate::Converter`] to convert contents first.)
    pub fn from_tree(tree: &FsTree, config: ImageConfig) -> Result<Self, IndexError> {
        fn build(node: &Node, path: &str) -> Result<IndexNode, IndexError> {
            Ok(match node {
                Node::Dir { meta, children } => {
                    let mut out = BTreeMap::new();
                    for (name, child) in children {
                        let child_path =
                            if path.is_empty() { name.clone() } else { format!("{path}/{name}") };
                        out.insert(name.clone(), build(child, &child_path)?);
                    }
                    IndexNode::Dir { meta: *meta, children: out }
                }
                Node::File(f) => match &f.data {
                    FileData::Fingerprint { fingerprint, size } => IndexNode::File {
                        meta: f.meta,
                        fingerprint: *fingerprint,
                        size: *size,
                        dedup: true,
                    },
                    FileData::Chunked { chunks, size } => IndexNode::BigFile {
                        meta: f.meta,
                        chunks: chunks
                            .iter()
                            .map(|c| IndexChunk { fingerprint: c.fingerprint, size: c.size })
                            .collect(),
                        size: *size,
                    },
                    FileData::Inline(_) => {
                        return Err(IndexError::UnresolvedContent(path.to_owned()))
                    }
                },
                Node::Symlink(s) => {
                    IndexNode::Symlink { meta: s.meta, target: s.target.clone() }
                }
            })
        }
        Ok(GearIndex { root: build(tree.get("").expect("root"), "")?, config })
    }

    /// Materializes the index back into an [`FsTree`] of fingerprint
    /// placeholders — the read-only lower layer the Gear File Viewer mounts.
    pub fn to_tree(&self) -> FsTree {
        fn build(node: &IndexNode) -> Node {
            match node {
                IndexNode::Dir { meta, children } => Node::Dir {
                    meta: *meta,
                    children: children.iter().map(|(k, v)| (k.clone(), build(v))).collect(),
                },
                IndexNode::File { meta, fingerprint, size, .. } => {
                    Node::fingerprint_file(*meta, *fingerprint, *size)
                }
                IndexNode::BigFile { meta, chunks, size } => Node::File(gear_fs::FileNode {
                    meta: *meta,
                    data: FileData::Chunked {
                        chunks: chunks
                            .iter()
                            .map(|c| ChunkRef { fingerprint: c.fingerprint, size: c.size })
                            .collect(),
                        size: *size,
                    },
                }),
                IndexNode::Symlink { meta, target } => Node::symlink(*meta, target.clone()),
            }
        }
        let mut tree = FsTree::new();
        if let IndexNode::Dir { children, .. } = &self.root {
            for (name, child) in children {
                tree.insert(name, build(child)).expect("index paths are valid");
            }
        }
        tree
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("index serialization cannot fail")
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// [`IndexError::Json`] for malformed input.
    pub fn from_json(bytes: &[u8]) -> Result<Self, IndexError> {
        Ok(serde_json::from_slice(bytes)?)
    }

    /// Size of the serialized index in bytes — the amount a client must pull
    /// before its container can start (paper: ~0.53 MB on average).
    pub fn serialized_len(&self) -> u64 {
        self.to_json().len() as u64
    }

    /// Every `(fingerprint, size)` the index references (files and chunks),
    /// in walk order, duplicates included.
    pub fn referenced_files(&self) -> Vec<(Fingerprint, u64)> {
        let mut out = Vec::new();
        fn walk(node: &IndexNode, out: &mut Vec<(Fingerprint, u64)>) {
            match node {
                IndexNode::Dir { children, .. } => {
                    for child in children.values() {
                        walk(child, out);
                    }
                }
                IndexNode::File { fingerprint, size, .. } => out.push((*fingerprint, *size)),
                IndexNode::BigFile { chunks, .. } => {
                    out.extend(chunks.iter().map(|c| (c.fingerprint, c.size)))
                }
                IndexNode::Symlink { .. } => {}
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Looks up the `(fingerprint, size)` of the regular file at `path`.
    pub fn file_at(&self, path: &str) -> Option<(Fingerprint, u64)> {
        let mut node = &self.root;
        for comp in path.split('/') {
            match node {
                IndexNode::Dir { children, .. } => node = children.get(comp)?,
                _ => return None,
            }
        }
        match node {
            IndexNode::File { fingerprint, size, .. } => Some((*fingerprint, *size)),
            _ => None,
        }
    }

    /// Looks up the ordered chunk list of the big file at `path` (`None`
    /// for whole-fingerprint files and non-files) — the resolution step
    /// behind chunk-granularity fetching: a deployer pulls exactly these
    /// blobs instead of one monolithic object.
    pub fn chunks_at(&self, path: &str) -> Option<&[IndexChunk]> {
        let mut node = &self.root;
        for comp in path.split('/') {
            match node {
                IndexNode::Dir { children, .. } => node = children.get(comp)?,
                _ => return None,
            }
        }
        match node {
            IndexNode::BigFile { chunks, .. } => Some(chunks),
            _ => None,
        }
    }

    /// Counts of each node kind: `(dirs, files, big_files, symlinks)`.
    pub fn node_counts(&self) -> (u64, u64, u64, u64) {
        let mut c = (0, 0, 0, 0);
        fn walk(node: &IndexNode, c: &mut (u64, u64, u64, u64)) {
            match node {
                IndexNode::Dir { children, .. } => {
                    c.0 += 1;
                    for child in children.values() {
                        walk(child, c);
                    }
                }
                IndexNode::File { .. } => c.1 += 1,
                IndexNode::BigFile { .. } => c.2 += 1,
                IndexNode::Symlink { .. } => c.3 += 1,
            }
        }
        walk(&self.root, &mut c);
        c.0 -= 1; // exclude the root itself
        c
    }

    /// Total logical bytes of all referenced file content.
    pub fn logical_bytes(&self) -> u64 {
        self.referenced_files().iter().map(|(_, s)| s).sum()
    }
}

/// A Gear image: a named [`GearIndex`]. The corresponding Gear files live in
/// a [`gear_registry::GearFileStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct GearImage {
    reference: ImageRef,
    index: GearIndex,
}

impl GearImage {
    /// Pairs an index with a name.
    pub fn new(reference: ImageRef, index: GearIndex) -> Self {
        GearImage { reference, index }
    }

    /// The image name.
    pub fn reference(&self) -> &ImageRef {
        &self.reference
    }

    /// The index.
    pub fn index(&self) -> &GearIndex {
        &self.index
    }

    /// Consumes self, returning the index.
    pub fn into_index(self) -> GearIndex {
        self.index
    }

    /// Packages the index as a **single-layer Docker image** so the existing
    /// Docker registry and CLI can store and distribute it unchanged (paper
    /// §III-C). The original image's config is carried over so containers
    /// launch with the right environment.
    pub fn to_index_image(&self) -> Image {
        let mut tree = FsTree::new();
        tree.create_file(INDEX_PATH, Bytes::from(self.index.to_json()))
            .expect("constant path is valid");
        ImageBuilder::new(self.reference.clone())
            .config(self.index.config.clone())
            .layer_from_tree(&tree)
            .build()
    }

    /// Recovers a Gear image from its single-layer index image.
    ///
    /// # Errors
    ///
    /// [`IndexError::NotAnIndexImage`] if the image has no index file;
    /// [`IndexError::Json`] if the index payload is malformed.
    pub fn from_index_image(image: &Image) -> Result<Self, IndexError> {
        let tree = image.root_fs().map_err(|_| IndexError::NotAnIndexImage)?;
        let Some(Node::File(f)) = tree.get(INDEX_PATH) else {
            return Err(IndexError::NotAnIndexImage);
        };
        let FileData::Inline(bytes) = &f.data else {
            return Err(IndexError::NotAnIndexImage);
        };
        let index = GearIndex::from_json(bytes)?;
        Ok(GearImage { reference: image.reference().clone(), index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> GearIndex {
        let mut tree = FsTree::new();
        tree.insert(
            "bin/app",
            Node::fingerprint_file(Metadata::exec_default(), Fingerprint::of(b"app"), 3),
        )
        .unwrap();
        tree.insert(
            "etc/app.conf",
            Node::fingerprint_file(Metadata::file_default(), Fingerprint::of(b"conf"), 4),
        )
        .unwrap();
        tree.insert("bin/link", Node::symlink(Metadata::file_default(), "/bin/app")).unwrap();
        let config = ImageConfig { env: vec!["A=1".into()], ..Default::default() };
        GearIndex::from_tree(&tree, config).unwrap()
    }

    #[test]
    fn json_roundtrip() {
        let index = sample_index();
        let parsed = GearIndex::from_json(&index.to_json()).unwrap();
        assert_eq!(parsed, index);
    }

    #[test]
    fn tree_roundtrip() {
        let index = sample_index();
        let tree = index.to_tree();
        let back = GearIndex::from_tree(&tree, index.config.clone()).unwrap();
        assert_eq!(back, index);
    }

    #[test]
    fn rejects_inline_content() {
        let mut tree = FsTree::new();
        tree.create_file("raw", Bytes::from_static(b"inline")).unwrap();
        let err = GearIndex::from_tree(&tree, ImageConfig::default()).unwrap_err();
        assert!(matches!(err, IndexError::UnresolvedContent(p) if p == "raw"));
    }

    #[test]
    fn referenced_files_and_counts() {
        let index = sample_index();
        assert_eq!(index.referenced_files().len(), 2);
        assert_eq!(index.logical_bytes(), 7);
        let (dirs, files, big, links) = index.node_counts();
        assert_eq!((dirs, files, big, links), (2, 2, 0, 1));
    }

    #[test]
    fn file_at_lookup() {
        let index = sample_index();
        let (fp, size) = index.file_at("bin/app").unwrap();
        assert_eq!(fp, Fingerprint::of(b"app"));
        assert_eq!(size, 3);
        assert!(index.file_at("bin/link").is_none());
        assert!(index.file_at("missing").is_none());
    }

    #[test]
    fn index_image_roundtrip() {
        let gear = GearImage::new("app:1".parse().unwrap(), sample_index());
        let image = gear.to_index_image();
        assert_eq!(image.layers().len(), 1, "index image must be single-layer");
        assert_eq!(image.config().env, vec!["A=1"]);
        let back = GearImage::from_index_image(&image).unwrap();
        assert_eq!(back, gear);
    }

    #[test]
    fn non_index_image_rejected() {
        let mut tree = FsTree::new();
        tree.create_file("just/a/file", Bytes::from_static(b"x")).unwrap();
        let image = ImageBuilder::new("plain:1".parse::<ImageRef>().unwrap())
            .layer_from_tree(&tree)
            .build();
        assert!(matches!(
            GearImage::from_index_image(&image),
            Err(IndexError::NotAnIndexImage)
        ));
    }

    #[test]
    fn index_is_small_relative_to_content() {
        // 100 files of 10 KiB each: index must be a tiny fraction.
        let mut tree = FsTree::new();
        for i in 0..100 {
            tree.insert(
                &format!("data/file{i:03}"),
                Node::fingerprint_file(
                    Metadata::file_default(),
                    Fingerprint::of(format!("content{i}").as_bytes()),
                    10_240,
                ),
            )
            .unwrap();
        }
        let index = GearIndex::from_tree(&tree, ImageConfig::default()).unwrap();
        let ratio = index.serialized_len() as f64 / index.logical_bytes() as f64;
        assert!(ratio < 0.05, "index/content ratio {ratio}");
    }

    #[test]
    fn big_file_nodes_roundtrip() {
        let chunks = vec![
            IndexChunk { fingerprint: Fingerprint::of(b"c0"), size: 1024 },
            IndexChunk { fingerprint: Fingerprint::of(b"c1"), size: 512 },
        ];
        let mut root = BTreeMap::new();
        root.insert(
            "model.bin".to_owned(),
            IndexNode::BigFile { meta: Metadata::file_default(), chunks, size: 1536 },
        );
        let index = GearIndex {
            root: IndexNode::Dir { meta: Metadata::dir_default(), children: root },
            config: ImageConfig::default(),
        };
        let parsed = GearIndex::from_json(&index.to_json()).unwrap();
        assert_eq!(parsed, index);
        assert_eq!(parsed.referenced_files().len(), 2);
        // Through a tree and back.
        let back = GearIndex::from_tree(&parsed.to_tree(), ImageConfig::default()).unwrap();
        assert_eq!(back.referenced_files(), index.referenced_files());
    }
}
