//! The registry-side Gear frontend (paper §III-B, §IV).
//!
//! In the paper's deployment, the Gear Converter runs *inside* the registry
//! node: "when a regular image arrives, Gear Converter first retrieves the
//! manifest … and builds the Gear index and Gear files", ahead of any pull,
//! and "the original Docker image can be removed if the managers want to
//! save storage space". [`GearFrontend`] packages that workflow: push a
//! Docker image and it is stored, converted, and published in one step.

use gear_image::{Image, ImageRef};
use gear_registry::{DockerRegistry, GearFileStore, RegistryStats};

use crate::convert::{publish, ConversionReport, ConvertError, Converter, PublishReport};

/// What one frontend push did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontendPushReport {
    /// Layer/byte accounting for storing the original image.
    pub original: gear_registry::PushReport,
    /// Conversion accounting (time, files, collisions).
    pub conversion: ConversionReport,
    /// Gear publication accounting (dedup against the pool).
    pub publication: PublishReport,
}

/// A registry node running the Gear Converter on arrival.
#[derive(Debug, Default)]
pub struct GearFrontend {
    docker: DockerRegistry,
    index: DockerRegistry,
    files: GearFileStore,
    converter: Converter,
}

impl GearFrontend {
    /// A frontend with default conversion options and an uncompressed pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A frontend that compresses stored Gear files.
    pub fn with_compressed_pool() -> Self {
        GearFrontend { files: GearFileStore::with_compression(), ..Self::default() }
    }

    /// Replaces the converter (e.g. to enable big-file chunking).
    pub fn with_converter(mut self, converter: Converter) -> Self {
        self.converter = converter;
        self
    }

    /// Stores `image`, converts it, and publishes index + Gear files.
    ///
    /// Conversion happens once, at push time — never on a container's start
    /// path.
    ///
    /// # Errors
    ///
    /// [`ConvertError`] if the image cannot be converted; the original is
    /// still stored in that case.
    pub fn push(&mut self, image: &Image) -> Result<FrontendPushReport, ConvertError> {
        let original = self.docker.push_image(image);
        let conversion = self.converter.convert(image)?;
        let publication = publish(&conversion, &mut self.index, &mut self.files);
        Ok(FrontendPushReport { original, conversion: conversion.report, publication })
    }

    /// Deletes the *original* image, keeping the Gear form — the paper's
    /// space-saving option. Returns bytes freed in the original store.
    pub fn drop_original(&mut self, reference: &ImageRef) -> u64 {
        if self.docker.delete_image(reference) {
            self.docker.gc()
        } else {
            0
        }
    }

    /// The original-image registry (for Docker/Slacker clients).
    pub fn docker(&self) -> &DockerRegistry {
        &self.docker
    }

    /// The index-image registry (for Gear clients).
    pub fn index(&self) -> &DockerRegistry {
        &self.index
    }

    /// The Gear file pool (for Gear clients).
    pub fn files(&self) -> &GearFileStore {
        &self.files
    }

    /// `(original registry, index registry)` storage statistics.
    pub fn stats(&self) -> (RegistryStats, RegistryStats, gear_registry::StoreStats) {
        (self.docker.stats(), self.index.stats(), self.files.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gear_fs::FsTree;
    use gear_image::ImageBuilder;

    fn image(name: &str, files: &[(&str, &[u8])]) -> Image {
        let mut tree = FsTree::new();
        for (p, c) in files {
            tree.create_file(p, Bytes::copy_from_slice(c)).unwrap();
        }
        ImageBuilder::new(name.parse::<ImageRef>().unwrap()).layer_from_tree(&tree).build()
    }

    #[test]
    fn push_converts_and_publishes() {
        let mut frontend = GearFrontend::new();
        let report =
            frontend.push(&image("svc:1", &[("a", b"one"), ("b", b"two")])).unwrap();
        assert_eq!(report.conversion.unique_files, 2);
        assert_eq!(report.publication.files_uploaded, 2);
        // Both registries serve the image name.
        let r: ImageRef = "svc:1".parse().unwrap();
        assert!(frontend.docker().image(&r).is_some());
        assert!(frontend.index().image(&r).is_some());
        assert_eq!(frontend.files().object_count(), 2);
    }

    #[test]
    fn pushes_dedup_across_images() {
        let mut frontend = GearFrontend::new();
        frontend.push(&image("a:1", &[("shared", b"lib bytes"), ("a", b"A")])).unwrap();
        let second =
            frontend.push(&image("b:1", &[("shared", b"lib bytes"), ("b", b"B")])).unwrap();
        assert_eq!(second.publication.files_uploaded, 1);
        assert_eq!(second.publication.files_deduped, 1);
    }

    #[test]
    fn drop_original_keeps_gear_form() {
        let mut frontend = GearFrontend::new();
        frontend.push(&image("svc:1", &[("a", b"payload")])).unwrap();
        let r: ImageRef = "svc:1".parse().unwrap();
        let freed = frontend.drop_original(&r);
        assert!(freed > 0);
        assert!(frontend.docker().image(&r).is_none(), "original gone");
        assert!(frontend.index().image(&r).is_some(), "gear form kept");
        assert_eq!(frontend.drop_original(&r), 0, "second drop is a no-op");
    }
}
