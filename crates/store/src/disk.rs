//! A blob store on modeled disk: every read and write accrues deterministic
//! I/O time from a [`DiskModel`].
//!
//! Contents live in memory (this is a simulation — determinism is the whole
//! point), but access is *priced*: a `get` that hits accrues one file read,
//! a `put` that stores accrues one file write, and an integrity scan accrues
//! a full-pool read. The accrued time sits in the store until the caller
//! folds it into its own simulated clock via
//! [`drain_cost`](crate::BlobStore::drain_cost) — the same
//! accrue-then-charge pattern the deployment cost models use.
//!
//! Metadata-only operations (`contains`, `pin`, `evict`, `touch`) are free:
//! the model charges data movement, not bookkeeping.
//!
//! # Durability (opt-in)
//!
//! By default the store is crash-oblivious, exactly as before the journal
//! existed. [`DiskStore::with_journal`] attaches a write-ahead journal on a
//! [`JournalMedia`] plus a [`CrashPlan`]: every mutating operation is
//! journaled as an atomic batch terminated by a commit marker (see
//! [`journal`](crate::journal)), each journal append consults the plan, and
//! a planned power cut leaves the store **crashed** — inert until the
//! harness calls [`DiskStore::recover`] on the surviving media. An operation
//! is acknowledged iff its commit marker became durable, which is what makes
//! "no acked blob lost / unacked puts vanish" provable under any crash
//! point. Journaled writes are priced twice (data + journal cell), the
//! classic WAL write-amplification, and recovery prices one sequential read
//! of the journal.

use std::time::Duration;

use bytes::Bytes;
use gear_hash::Fingerprint;
use gear_simnet::{CrashPlan, CrashPoint, DiskModel};

use crate::journal::{compact, replay, JournalMedia, JournalRecord, RecoveryReport};
use crate::{BlobStore, DiskSnapshot, EvictionPolicy, MemStore, StoreSnapshot, StoreStats};

/// Durability wiring: where journal cells land and which append the
/// simulated power cut interrupts.
#[derive(Debug)]
struct Journal {
    media: JournalMedia,
    plan: CrashPlan,
}

/// A capacity-bounded blob store whose data accesses accrue [`DiskModel`]
/// time, scaled by the corpus byte scale so priced latency matches the
/// deployment cost model's units.
#[derive(Debug)]
pub struct DiskStore {
    inner: MemStore,
    model: DiskModel,
    /// Multiplier mapping stored (corpus-scaled) bytes back to modeled real
    /// bytes, mirroring `ClientConfig::byte_scale`.
    byte_scale: u64,
    accrued: Duration,
    /// Write-ahead journal; `None` = the historical crash-oblivious store.
    journal: Option<Journal>,
    /// A journaled store that hit its planned power cut: inert until
    /// recovered from the media.
    crashed: bool,
}

impl DiskStore {
    /// A store with the given policy, capacity, and disk model.
    /// `byte_scale` is the corpus down-scaling factor (1 = unscaled).
    pub fn new(
        policy: EvictionPolicy,
        capacity: Option<u64>,
        model: DiskModel,
        byte_scale: u64,
    ) -> Self {
        DiskStore {
            inner: MemStore::with_policy(policy, capacity),
            model,
            byte_scale: byte_scale.max(1),
            accrued: Duration::ZERO,
            journal: None,
            crashed: false,
        }
    }

    /// Like [`DiskStore::new`], journaling every mutation to `media` under
    /// `plan` (see the module docs). Pass [`CrashPlan::never`] for a durable
    /// store that is never killed.
    pub fn with_journal(
        policy: EvictionPolicy,
        capacity: Option<u64>,
        model: DiskModel,
        byte_scale: u64,
        media: JournalMedia,
        plan: CrashPlan,
    ) -> Self {
        let mut store = Self::new(policy, capacity, model, byte_scale);
        store.journal = Some(Journal { media, plan });
        store
    }

    /// Replays `media`, rebuilding the store a power cut killed: exactly the
    /// committed batches are applied (contents, pins), eviction order is
    /// re-ticked in replay order (recency is volatile and does not survive a
    /// crash), statistics counters restart from zero with gauges matching
    /// the recovered contents, and the journal is compacted. The recovery
    /// read is priced into the store's accrued time — drain it for the
    /// modeled recovery latency. The returned store journals to the same
    /// media with a [`CrashPlan::never`]; use
    /// [`DiskStore::set_crash_plan`] to schedule another cut.
    pub fn recover(
        policy: EvictionPolicy,
        capacity: Option<u64>,
        model: DiskModel,
        byte_scale: u64,
        media: JournalMedia,
    ) -> (Self, RecoveryReport) {
        let (state, report) = replay(&media);
        compact(&media, &state);
        let mut store =
            Self::with_journal(policy, capacity, model, byte_scale, media, CrashPlan::never());
        for (fingerprint, content, pins) in &state.entries {
            store.inner.insert(*fingerprint, content.clone());
            for _ in 0..*pins {
                store.inner.pin(*fingerprint);
            }
        }
        store.accrue_io(report.read_bytes, 1);
        (store, report)
    }

    /// Replaces the crash plan (e.g. to schedule a second cut after
    /// recovery). No-op on a store without a journal.
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        if let Some(journal) = &mut self.journal {
            journal.plan = plan;
        }
    }

    /// The journal media, when one is attached — the handle that survives
    /// this store's death.
    pub fn journal_media(&self) -> Option<JournalMedia> {
        self.journal.as_ref().map(|j| j.media.clone())
    }

    /// Whether the planned power cut has fired (the store is inert).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    fn accrue_io(&mut self, bytes: u64, files: u64) {
        self.accrued += self.model.io_time(bytes * self.byte_scale, files);
    }

    /// Appends `records` + a commit marker as one atomic batch, each append
    /// consulting the crash plan. Returns whether the commit marker became
    /// durable — the operation's acknowledgement. Without a journal this is
    /// trivially true.
    fn journal_batch(&mut self, records: Vec<JournalRecord>) -> bool {
        let Some(journal) = &mut self.journal else {
            return true;
        };
        if records.is_empty() {
            return true; // nothing changed; nothing to make durable
        }
        let count = records.len();
        let mut priced = Vec::new();
        for (i, record) in records.into_iter().chain([JournalRecord::Commit]).enumerate() {
            let cell = record.encode();
            match journal.plan.next_write() {
                None => {
                    journal.media.append(&cell);
                    priced.push(cell.len() as u64);
                }
                Some(CrashPoint::BeforeWrite) => {
                    self.crashed = true;
                    break;
                }
                Some(CrashPoint::TornWrite) => {
                    journal.media.append(&cell[..cell.len() / 2]);
                    self.crashed = true;
                    break;
                }
                Some(CrashPoint::AfterWrite) => {
                    journal.media.append(&cell);
                    self.crashed = true;
                    // A cut after the *commit* append still acknowledges.
                    if i == count {
                        priced.push(cell.len() as u64);
                    }
                    break;
                }
            }
        }
        let committed = priced.len() == count + 1;
        for bytes in priced {
            self.accrue_io(bytes, 1);
        }
        committed
    }

    /// Pure read — no recency, no accounting, no priced I/O (see
    /// [`BlobStore::peek`]).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        if self.crashed {
            return None;
        }
        self.inner.peek(fingerprint)
    }

    /// Whether the blob is resident (free metadata probe).
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        !self.crashed && self.inner.contains(fingerprint)
    }

    /// Looks the blob up, accruing one file read on a hit.
    pub fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        if self.crashed {
            return None;
        }
        let found = self.inner.get(fingerprint);
        if let Some(content) = &found {
            self.accrue_io(content.len() as u64, 1);
        }
        found
    }

    /// Recency refresh without data movement (see [`MemStore::touch`]).
    /// Recency is volatile — it is not journaled and does not survive a
    /// crash.
    pub fn touch(&mut self, fingerprint: Fingerprint) {
        if self.crashed {
            return;
        }
        self.inner.touch(fingerprint);
    }

    /// Stores the blob, accruing one file write when it is newly written.
    /// Eviction victims are appended to `evicted` (deletion is metadata —
    /// free). On a journaled store the put and its evictions are one atomic
    /// batch, and the return value is the *acknowledgement*: `true` iff the
    /// blob is resident **and** the batch committed to the journal.
    pub fn insert_recording(
        &mut self,
        fingerprint: Fingerprint,
        content: Bytes,
        evicted: &mut Vec<Fingerprint>,
    ) -> bool {
        if self.crashed {
            return false;
        }
        if self.inner.contains(fingerprint) {
            return true; // dedup: nothing crosses the disk
        }
        let len = content.len() as u64;
        if self.journal.is_none() {
            // The historical crash-oblivious path, byte-identical to the
            // pre-journal store.
            let resident = self.inner.insert_recording(fingerprint, content, evicted);
            if resident {
                self.accrue_io(len, 1);
            }
            return resident;
        }
        let first_victim = evicted.len();
        let resident = self.inner.insert_recording(fingerprint, content.clone(), evicted);
        if resident {
            self.accrue_io(len, 1);
        }
        let mut records: Vec<JournalRecord> = evicted[first_victim..]
            .iter()
            .map(|fp| JournalRecord::Evict { fingerprint: *fp })
            .collect();
        if resident {
            records.push(JournalRecord::Put { fingerprint, content });
        }
        let committed = self.journal_batch(records);
        resident && committed
    }

    /// [`DiskStore::insert_recording`] without victim tracking.
    pub fn insert(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        let mut evicted = Vec::new();
        self.insert_recording(fingerprint, content, &mut evicted)
    }

    /// The time accrued since the last drain (without draining it).
    pub fn accrued(&self) -> Duration {
        self.accrued
    }

    /// The store's complete logical state (journal wiring excluded — see
    /// [`crate::snapshot`]).
    pub fn snapshot_parts(&self) -> DiskSnapshot {
        DiskSnapshot {
            mem: self.inner.snapshot_parts(),
            model: self.model,
            byte_scale: self.byte_scale,
            accrued: self.accrued,
        }
    }

    /// Rehydrates a snapshot taken by [`DiskStore::snapshot_parts`]; the
    /// result behaves tick-for-tick identically. Comes back without a
    /// journal — attach one via [`DiskStore::with_journal`]-style wiring if
    /// the new instance should be durable too.
    pub fn restore(snapshot: &DiskSnapshot) -> Self {
        DiskStore {
            inner: MemStore::restore(&snapshot.mem, crate::TickSource::at(snapshot.mem.ticks)),
            model: snapshot.model,
            byte_scale: snapshot.byte_scale,
            accrued: snapshot.accrued,
            journal: None,
            crashed: false,
        }
    }
}

impl BlobStore for DiskStore {
    fn contains(&self, fingerprint: Fingerprint) -> bool {
        DiskStore::contains(self, fingerprint)
    }

    fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        DiskStore::peek(self, fingerprint)
    }

    fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        DiskStore::get(self, fingerprint)
    }

    fn put(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        self.insert(fingerprint, content)
    }

    fn pin(&mut self, fingerprint: Fingerprint) {
        if self.crashed || !self.inner.contains(fingerprint) {
            return;
        }
        self.inner.pin(fingerprint);
        self.journal_batch(vec![JournalRecord::Pin { fingerprint }]);
    }

    fn unpin(&mut self, fingerprint: Fingerprint) {
        if self.crashed || !self.inner.contains(fingerprint) {
            return;
        }
        self.inner.unpin(fingerprint);
        self.journal_batch(vec![JournalRecord::Unpin { fingerprint }]);
    }

    fn evict(&mut self) -> Option<(Fingerprint, u64)> {
        if self.crashed {
            return None;
        }
        let (victim, len) = self.inner.evict()?;
        let committed = self.journal_batch(vec![JournalRecord::Evict { fingerprint: victim }]);
        // An uncommitted eviction un-happens at recovery; don't ack it.
        committed.then_some((victim, len))
    }

    fn victim_key(&self) -> Option<u64> {
        if self.crashed {
            return None;
        }
        self.inner.victim_key()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn verify(&self) -> Vec<Fingerprint> {
        // Integrity scans are offline tooling, outside the deployment
        // clock; like `peek`, they are not priced.
        self.inner.verify()
    }

    fn len(&self) -> usize {
        if self.crashed {
            return 0;
        }
        self.inner.len()
    }

    fn bytes(&self) -> u64 {
        if self.crashed {
            return 0;
        }
        self.inner.bytes()
    }

    fn clear(&mut self) {
        if self.crashed {
            return;
        }
        self.inner.clear();
        self.journal_batch(vec![JournalRecord::Clear]);
    }

    fn drain_cost(&mut self) -> Duration {
        std::mem::take(&mut self.accrued)
    }

    fn tier_bytes(&self) -> (u64, u64) {
        (0, self.bytes())
    }

    fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot::Disk(self.snapshot_parts())
    }

    fn is_crashed(&self) -> bool {
        self.crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    fn body(n: u8, len: usize) -> Bytes {
        Bytes::from(vec![n; len])
    }

    #[test]
    fn reads_and_writes_accrue_modeled_time() {
        let mut d = DiskStore::new(EvictionPolicy::Lru, None, DiskModel::ssd(), 1);
        assert_eq!(d.drain_cost(), Duration::ZERO);
        d.insert(fp(1), body(1, 1_000_000));
        let write = d.drain_cost();
        assert_eq!(write, DiskModel::ssd().io_time(1_000_000, 1));
        d.get(fp(1));
        let read = d.drain_cost();
        assert_eq!(read, DiskModel::ssd().io_time(1_000_000, 1));
        // Drained: nothing left.
        assert_eq!(d.drain_cost(), Duration::ZERO);
    }

    #[test]
    fn metadata_operations_are_free() {
        let mut d = DiskStore::new(EvictionPolicy::Lru, Some(100), DiskModel::hdd(), 1);
        d.insert(fp(1), body(1, 60));
        d.drain_cost();
        assert!(d.contains(fp(1)));
        assert!(d.peek(fp(1)).is_some());
        d.touch(fp(1));
        d.pin(fp(1));
        d.unpin(fp(1));
        assert_eq!(d.drain_cost(), Duration::ZERO);
        // A duplicate insert moves no data.
        d.insert(fp(1), body(1, 60));
        assert_eq!(d.drain_cost(), Duration::ZERO);
        // A miss moves no data either.
        assert!(d.get(fp(9)).is_none());
        assert_eq!(d.drain_cost(), Duration::ZERO);
    }

    #[test]
    fn byte_scale_multiplies_priced_bytes() {
        let mut scaled = DiskStore::new(EvictionPolicy::Lru, None, DiskModel::nvme(), 1024);
        scaled.insert(fp(1), body(1, 1000));
        assert_eq!(scaled.drain_cost(), DiskModel::nvme().io_time(1000 * 1024, 1));
    }

    #[test]
    fn behaves_like_memstore_modulo_cost() {
        let mut d = DiskStore::new(EvictionPolicy::Fifo, Some(25), DiskModel::ram(), 1);
        let mut m = MemStore::with_policy(EvictionPolicy::Fifo, Some(25));
        for n in 1u8..=4 {
            assert_eq!(d.insert(fp(n), body(n, 10)), m.insert(fp(n), body(n, 10)));
            assert_eq!(d.get(fp(1)).is_some(), m.get(fp(1)).is_some());
        }
        assert_eq!(d.stats(), m.stats());
        assert_eq!(d.bytes(), m.bytes());
    }

    #[test]
    fn journaled_store_without_crashes_matches_plain_contents() {
        let media = JournalMedia::new();
        let mut journaled = DiskStore::with_journal(
            EvictionPolicy::Lru,
            Some(64),
            DiskModel::ssd(),
            1,
            media.clone(),
            CrashPlan::never(),
        );
        let mut plain = DiskStore::new(EvictionPolicy::Lru, Some(64), DiskModel::ssd(), 1);
        for n in 0u8..10 {
            assert_eq!(journaled.insert(fp(n), body(n, 10)), plain.insert(fp(n), body(n, 10)));
            assert_eq!(journaled.get(fp(n / 2)).is_some(), plain.get(fp(n / 2)).is_some());
        }
        journaled.pin(fp(9));
        plain.pin(fp(9));
        assert_eq!(journaled.stats(), plain.stats());
        assert_eq!(journaled.bytes(), plain.bytes());
        assert!(!journaled.is_crashed());
        // The journal priced extra (WAL write amplification).
        assert!(journaled.accrued() > plain.accrued());
        // And replaying it reproduces the live contents exactly.
        let (recovered, report) =
            DiskStore::recover(EvictionPolicy::Lru, Some(64), DiskModel::ssd(), 1, media);
        assert!(!report.torn_tail);
        assert_eq!(report.discarded_records, 0);
        assert_eq!(recovered.bytes(), journaled.bytes());
        assert_eq!(recovered.len(), journaled.len());
        assert_eq!(recovered.stats().pinned_bytes, journaled.stats().pinned_bytes);
        for n in 0u8..10 {
            assert_eq!(recovered.peek(fp(n)), journaled.peek(fp(n)), "blob {n}");
        }
    }

    #[test]
    fn crash_before_commit_discards_the_put() {
        for point in [CrashPoint::BeforeWrite, CrashPoint::TornWrite] {
            let media = JournalMedia::new();
            let mut store = DiskStore::with_journal(
                EvictionPolicy::Lru,
                None,
                DiskModel::ssd(),
                1,
                media.clone(),
                // Writes 0,1 = put a + commit; write 2 = put b's record.
                CrashPlan::new(0).crash_at_write(2, point),
            );
            assert!(store.insert(fp(1), body(1, 8)), "first put acks");
            let acked = store.insert(fp(2), body(2, 8));
            assert!(!acked, "{point:?}: interrupted put must not ack");
            assert!(store.is_crashed());
            // Dead store is inert.
            assert!(!store.contains(fp(1)));
            assert!(store.get(fp(1)).is_none());
            assert!(!store.insert(fp(3), body(3, 8)));
            let (recovered, report) =
                DiskStore::recover(EvictionPolicy::Lru, None, DiskModel::ssd(), 1, media);
            assert_eq!(report.torn_tail, point == CrashPoint::TornWrite);
            assert!(recovered.contains(fp(1)), "acked blob survives");
            assert!(!recovered.contains(fp(2)), "unacked blob vanishes");
            assert_eq!(recovered.peek(fp(1)), Some(body(1, 8)), "no partial contents");
        }
    }

    #[test]
    fn crash_after_commit_preserves_the_acked_put() {
        let media = JournalMedia::new();
        let mut store = DiskStore::with_journal(
            EvictionPolicy::Lru,
            None,
            DiskModel::ssd(),
            1,
            media.clone(),
            // Write 3 is put b's commit marker: cut right after it.
            CrashPlan::new(0).crash_at_write(3, CrashPoint::AfterWrite),
        );
        assert!(store.insert(fp(1), body(1, 8)));
        assert!(store.insert(fp(2), body(2, 8)), "commit became durable: acked");
        assert!(store.is_crashed(), "...but the machine died right after");
        let (recovered, _) =
            DiskStore::recover(EvictionPolicy::Lru, None, DiskModel::ssd(), 1, media);
        assert!(recovered.contains(fp(1)));
        assert!(recovered.contains(fp(2)), "acked put survives the cut");
    }

    #[test]
    fn eviction_batch_is_atomic_with_its_put() {
        // Capacity 16: putting c evicts a, as one batch. Cut before the
        // batch commits: recovery shows the *old* state (a resident, c not).
        let media = JournalMedia::new();
        let mut store = DiskStore::with_journal(
            EvictionPolicy::Fifo,
            Some(16),
            DiskModel::ssd(),
            1,
            media.clone(),
            // Writes: 0=put a,1=commit,2=put b,3=commit,4=evict a,5=put c,6=commit.
            CrashPlan::new(0).crash_at_write(6, CrashPoint::BeforeWrite),
        );
        assert!(store.insert(fp(1), body(1, 8)));
        assert!(store.insert(fp(2), body(2, 8)));
        assert!(!store.insert(fp(3), body(3, 8)), "batch never committed");
        let (recovered, report) =
            DiskStore::recover(EvictionPolicy::Fifo, Some(16), DiskModel::ssd(), 1, media);
        assert!(recovered.contains(fp(1)), "uncommitted eviction un-happens");
        assert!(recovered.contains(fp(2)));
        assert!(!recovered.contains(fp(3)));
        assert_eq!(report.discarded_records, 2);
        assert_eq!(recovered.bytes(), 16, "within capacity after recovery");
    }

    #[test]
    fn recovery_prices_the_journal_read() {
        let media = JournalMedia::new();
        let mut store = DiskStore::with_journal(
            EvictionPolicy::Lru,
            None,
            DiskModel::hdd(),
            1,
            media.clone(),
            CrashPlan::never(),
        );
        store.insert(fp(1), body(1, 4096));
        let journal_bytes = media.len() as u64;
        let (mut recovered, report) =
            DiskStore::recover(EvictionPolicy::Lru, None, DiskModel::hdd(), 1, media);
        assert_eq!(report.read_bytes, journal_bytes);
        assert_eq!(recovered.drain_cost(), DiskModel::hdd().io_time(journal_bytes, 1));
    }

    #[test]
    fn recovered_store_keeps_journaling() {
        let media = JournalMedia::new();
        let mut store = DiskStore::with_journal(
            EvictionPolicy::Lru,
            None,
            DiskModel::ssd(),
            1,
            media.clone(),
            CrashPlan::new(1).with_crash(1.0),
        );
        assert!(!store.insert(fp(1), body(1, 8)), "dies on the very first append");
        let (mut recovered, _) =
            DiskStore::recover(EvictionPolicy::Lru, None, DiskModel::ssd(), 1, media.clone());
        assert!(recovered.is_empty());
        // The recovered instance journals on: a second crash-and-recover
        // round trips through the same media.
        assert!(recovered.insert(fp(2), body(2, 8)));
        recovered.set_crash_plan(CrashPlan::new(2).with_crash(1.0));
        assert!(!recovered.insert(fp(3), body(3, 8)));
        assert!(recovered.is_crashed());
        let (second, _) =
            DiskStore::recover(EvictionPolicy::Lru, None, DiskModel::ssd(), 1, media);
        assert!(second.contains(fp(2)));
        assert!(!second.contains(fp(3)));
    }
}

