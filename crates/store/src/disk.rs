//! A blob store on modeled disk: every read and write accrues deterministic
//! I/O time from a [`DiskModel`].
//!
//! Contents live in memory (this is a simulation — determinism is the whole
//! point), but access is *priced*: a `get` that hits accrues one file read,
//! a `put` that stores accrues one file write, and an integrity scan accrues
//! a full-pool read. The accrued time sits in the store until the caller
//! folds it into its own simulated clock via
//! [`drain_cost`](crate::BlobStore::drain_cost) — the same
//! accrue-then-charge pattern the deployment cost models use.
//!
//! Metadata-only operations (`contains`, `pin`, `evict`, `touch`) are free:
//! the model charges data movement, not bookkeeping.

use std::time::Duration;

use bytes::Bytes;
use gear_hash::Fingerprint;
use gear_simnet::DiskModel;

use crate::{BlobStore, EvictionPolicy, MemStore, StoreStats};

/// A capacity-bounded blob store whose data accesses accrue [`DiskModel`]
/// time, scaled by the corpus byte scale so priced latency matches the
/// deployment cost model's units.
#[derive(Debug)]
pub struct DiskStore {
    inner: MemStore,
    model: DiskModel,
    /// Multiplier mapping stored (corpus-scaled) bytes back to modeled real
    /// bytes, mirroring `ClientConfig::byte_scale`.
    byte_scale: u64,
    accrued: Duration,
}

impl DiskStore {
    /// A store with the given policy, capacity, and disk model.
    /// `byte_scale` is the corpus down-scaling factor (1 = unscaled).
    pub fn new(
        policy: EvictionPolicy,
        capacity: Option<u64>,
        model: DiskModel,
        byte_scale: u64,
    ) -> Self {
        DiskStore {
            inner: MemStore::with_policy(policy, capacity),
            model,
            byte_scale: byte_scale.max(1),
            accrued: Duration::ZERO,
        }
    }

    fn accrue_io(&mut self, bytes: u64, files: u64) {
        self.accrued += self.model.io_time(bytes * self.byte_scale, files);
    }

    /// Pure read — no recency, no accounting, no priced I/O (see
    /// [`BlobStore::peek`]).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        self.inner.peek(fingerprint)
    }

    /// Whether the blob is resident (free metadata probe).
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.inner.contains(fingerprint)
    }

    /// Looks the blob up, accruing one file read on a hit.
    pub fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        let found = self.inner.get(fingerprint);
        if let Some(content) = &found {
            self.accrue_io(content.len() as u64, 1);
        }
        found
    }

    /// Recency refresh without data movement (see [`MemStore::touch`]).
    pub fn touch(&mut self, fingerprint: Fingerprint) {
        self.inner.touch(fingerprint);
    }

    /// Stores the blob, accruing one file write when it is newly written.
    /// Eviction victims are appended to `evicted` (deletion is metadata —
    /// free).
    pub fn insert_recording(
        &mut self,
        fingerprint: Fingerprint,
        content: Bytes,
        evicted: &mut Vec<Fingerprint>,
    ) -> bool {
        if self.inner.contains(fingerprint) {
            return true; // dedup: nothing crosses the disk
        }
        let len = content.len() as u64;
        let resident = self.inner.insert_recording(fingerprint, content, evicted);
        if resident {
            self.accrue_io(len, 1);
        }
        resident
    }

    /// [`DiskStore::insert_recording`] without victim tracking.
    pub fn insert(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        let mut evicted = Vec::new();
        self.insert_recording(fingerprint, content, &mut evicted)
    }

    /// The time accrued since the last drain (without draining it).
    pub fn accrued(&self) -> Duration {
        self.accrued
    }
}

impl BlobStore for DiskStore {
    fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.inner.contains(fingerprint)
    }

    fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        self.inner.peek(fingerprint)
    }

    fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        DiskStore::get(self, fingerprint)
    }

    fn put(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        self.insert(fingerprint, content)
    }

    fn pin(&mut self, fingerprint: Fingerprint) {
        self.inner.pin(fingerprint);
    }

    fn unpin(&mut self, fingerprint: Fingerprint) {
        self.inner.unpin(fingerprint);
    }

    fn evict(&mut self) -> Option<(Fingerprint, u64)> {
        self.inner.evict()
    }

    fn victim_key(&self) -> Option<u64> {
        self.inner.victim_key()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn verify(&self) -> Vec<Fingerprint> {
        // Integrity scans are offline tooling, outside the deployment
        // clock; like `peek`, they are not priced.
        self.inner.verify()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn clear(&mut self) {
        self.inner.clear();
    }

    fn drain_cost(&mut self) -> Duration {
        std::mem::take(&mut self.accrued)
    }

    fn tier_bytes(&self) -> (u64, u64) {
        (0, self.inner.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    fn body(n: u8, len: usize) -> Bytes {
        Bytes::from(vec![n; len])
    }

    #[test]
    fn reads_and_writes_accrue_modeled_time() {
        let mut d = DiskStore::new(EvictionPolicy::Lru, None, DiskModel::ssd(), 1);
        assert_eq!(d.drain_cost(), Duration::ZERO);
        d.insert(fp(1), body(1, 1_000_000));
        let write = d.drain_cost();
        assert_eq!(write, DiskModel::ssd().io_time(1_000_000, 1));
        d.get(fp(1));
        let read = d.drain_cost();
        assert_eq!(read, DiskModel::ssd().io_time(1_000_000, 1));
        // Drained: nothing left.
        assert_eq!(d.drain_cost(), Duration::ZERO);
    }

    #[test]
    fn metadata_operations_are_free() {
        let mut d = DiskStore::new(EvictionPolicy::Lru, Some(100), DiskModel::hdd(), 1);
        d.insert(fp(1), body(1, 60));
        d.drain_cost();
        assert!(d.contains(fp(1)));
        assert!(d.peek(fp(1)).is_some());
        d.touch(fp(1));
        d.pin(fp(1));
        d.unpin(fp(1));
        assert_eq!(d.drain_cost(), Duration::ZERO);
        // A duplicate insert moves no data.
        d.insert(fp(1), body(1, 60));
        assert_eq!(d.drain_cost(), Duration::ZERO);
        // A miss moves no data either.
        assert!(d.get(fp(9)).is_none());
        assert_eq!(d.drain_cost(), Duration::ZERO);
    }

    #[test]
    fn byte_scale_multiplies_priced_bytes() {
        let mut scaled = DiskStore::new(EvictionPolicy::Lru, None, DiskModel::nvme(), 1024);
        scaled.insert(fp(1), body(1, 1000));
        assert_eq!(scaled.drain_cost(), DiskModel::nvme().io_time(1000 * 1024, 1));
    }

    #[test]
    fn behaves_like_memstore_modulo_cost() {
        let mut d = DiskStore::new(EvictionPolicy::Fifo, Some(25), DiskModel::ram(), 1);
        let mut m = MemStore::with_policy(EvictionPolicy::Fifo, Some(25));
        for n in 1u8..=4 {
            assert_eq!(d.insert(fp(n), body(n, 10)), m.insert(fp(n), body(n, 10)));
            assert_eq!(d.get(fp(1)).is_some(), m.get(fp(1)).is_some());
        }
        assert_eq!(d.stats(), m.stats());
        assert_eq!(d.bytes(), m.bytes());
    }
}
