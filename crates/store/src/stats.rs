//! Unified accounting for every [`BlobStore`](crate::BlobStore).
//!
//! One struct replaces the old `gear-client` `CacheStats` and
//! `gear-registry` `FileStoreStats`: cache-style hit/miss/eviction counters
//! and registry-style object/byte totals live side by side, so per-shard or
//! per-tier stats merge into whole-store totals with one exact sum.

/// Store accounting: counters (monotonic) and gauges (current state).
///
/// Counter fields (`hits`, `misses`, `evictions`, `evicted_bytes`,
/// `dedup_hits`) only ever grow; gauge fields (`pinned_bytes`, `objects`,
/// `stored_bytes`, `logical_bytes`) track the store's current residency.
/// Both kinds add element-wise under [`StoreStats::merge`], so merging
/// per-shard stats yields whole-cache totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that found the blob locally.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blobs evicted to make room.
    pub evictions: u64,
    /// Bytes evicted.
    pub evicted_bytes: u64,
    /// Bytes currently held by pinned blobs (the portion of residency that
    /// eviction cannot touch).
    pub pinned_bytes: u64,
    /// Unique blobs resident.
    pub objects: u64,
    /// Bytes as kept by the backing medium (compressed when the owner
    /// compresses).
    pub stored_bytes: u64,
    /// Logical (uncompressed) bytes resident.
    pub logical_bytes: u64,
    /// Writes rejected as duplicates of an already-resident blob.
    pub dedup_hits: u64,
}

impl StoreStats {
    /// Element-wise sum: counters and gauges both add, so merging per-shard
    /// (or per-tier) stats yields exact whole-store totals.
    #[must_use]
    pub fn merge(self, other: StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            evicted_bytes: self.evicted_bytes + other.evicted_bytes,
            pinned_bytes: self.pinned_bytes + other.pinned_bytes,
            objects: self.objects + other.objects,
            stored_bytes: self.stored_bytes + other.stored_bytes,
            logical_bytes: self.logical_bytes + other.logical_bytes,
            dedup_hits: self.dedup_hits + other.dedup_hits,
        }
    }

    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups that hit; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Logical bytes saved by the backing medium (compression), i.e.
    /// `logical_bytes - stored_bytes`; 0 when storage is uncompressed.
    #[must_use]
    pub fn saved_bytes(&self) -> u64 {
        self.logical_bytes.saturating_sub(self.stored_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_exact_element_wise_sum() {
        let a = StoreStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            evicted_bytes: 4,
            pinned_bytes: 5,
            objects: 6,
            stored_bytes: 7,
            logical_bytes: 8,
            dedup_hits: 9,
        };
        let b = StoreStats {
            hits: 10,
            misses: 20,
            evictions: 30,
            evicted_bytes: 40,
            pinned_bytes: 50,
            objects: 60,
            stored_bytes: 70,
            logical_bytes: 80,
            dedup_hits: 90,
        };
        let m = a.merge(b);
        assert_eq!(
            m,
            StoreStats {
                hits: 11,
                misses: 22,
                evictions: 33,
                evicted_bytes: 44,
                pinned_bytes: 55,
                objects: 66,
                stored_bytes: 77,
                logical_bytes: 88,
                dedup_hits: 99,
            }
        );
        assert_eq!(StoreStats::default().merge(a), a, "zero is the identity");
    }

    #[test]
    fn derived_accessors() {
        let s = StoreStats { hits: 3, misses: 1, stored_bytes: 40, logical_bytes: 100, ..StoreStats::default() };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.saved_bytes(), 60);
        assert_eq!(StoreStats::default().hit_rate(), 0.0);
    }
}
