//! L1 memory over L2 modeled disk.
//!
//! The "Bounded-Memory Parallel Image Pulling" line of work (PAPERS.md)
//! shows tiered memory/disk staging is what makes large-image pulls scale;
//! this store brings that shape to the Gear client. The L2 [`DiskStore`] is
//! **authoritative**: capacity, pinning, eviction policy, and hit/miss
//! accounting all live there, and the L1 [`MemStore`] is strictly a
//! residency accelerator holding copies of recently touched blobs
//! (invariant: L1 ⊆ L2).
//!
//! Policies:
//!
//! * **Write-through** — [`put`](BlobStore::put) lands in L2 first (paying
//!   the modeled write) and the fresh copy is kept in L1.
//! * **Promotion on hit** — a lookup that misses L1 but hits L2 pays the
//!   modeled read and (optionally) installs the blob in L1.
//! * **Recency sync** — a lookup answered from L1 still refreshes the
//!   blob's recency in L2 (a free metadata touch), so L2 makes the same
//!   replacement decisions a flat store would.
//! * **Invalidation** — when L2 evicts (capacity pressure or explicit
//!   [`evict`](BlobStore::evict)), any L1 copy is dropped with it.
//!
//! Because of those rules, a `TieredStore` with an unbounded L1 is
//! *observably identical* to a flat [`MemStore`] with the L2's capacity —
//! same hit set, same final contents, same stats — which the crate's
//! property tests pin down. Bounding L1 only changes where hits are served
//! from (and therefore the accrued disk time), never what hits.

use std::time::Duration;

use bytes::Bytes;
use gear_hash::Fingerprint;
use gear_simnet::DiskModel;

use crate::{BlobStore, DiskStore, EvictionPolicy, MemStore, StoreStats};

/// A two-tier blob store: bounded L1 memory in front of an authoritative
/// L2 on modeled disk.
#[derive(Debug)]
pub struct TieredStore {
    l1: MemStore,
    l2: DiskStore,
    promote_on_hit: bool,
    /// Scratch for L2 eviction victims (reused across puts).
    evicted: Vec<Fingerprint>,
}

impl TieredStore {
    /// A tiered store: `l1_capacity` bytes of memory (`None` = unbounded)
    /// over an L2 of `l2_capacity` bytes on `model`. Both tiers use
    /// `policy`; `byte_scale` maps stored bytes to modeled real bytes as in
    /// [`DiskStore::new`].
    pub fn new(
        policy: EvictionPolicy,
        l1_capacity: Option<u64>,
        l2_capacity: Option<u64>,
        model: DiskModel,
        byte_scale: u64,
        promote_on_hit: bool,
    ) -> Self {
        TieredStore {
            l1: MemStore::with_policy(policy, l1_capacity),
            l2: DiskStore::new(policy, l2_capacity, model, byte_scale),
            promote_on_hit,
            evicted: Vec::new(),
        }
    }

    /// Composes a tiered store from pre-built tiers — how a harness mounts a
    /// journaled/crashing [`DiskStore`] (built via
    /// [`DiskStore::with_journal`]) under an L1, and how snapshots
    /// rehydrate.
    pub fn from_parts(l1: MemStore, l2: DiskStore, promote_on_hit: bool) -> Self {
        TieredStore { l1, l2, promote_on_hit, evicted: Vec::new() }
    }

    /// Replaces the L2 crash plan (no-op when L2 has no journal).
    pub fn set_crash_plan(&mut self, plan: gear_simnet::CrashPlan) {
        self.l2.set_crash_plan(plan);
    }

    /// The L2 journal media, when one is attached.
    pub fn journal_media(&self) -> Option<crate::JournalMedia> {
        self.l2.journal_media()
    }

    /// Rehydrates a snapshot; the result behaves tick-for-tick identically
    /// (see [`crate::snapshot`]).
    pub fn restore(snapshot: &crate::TieredSnapshot) -> Self {
        TieredStore::from_parts(
            MemStore::restore(&snapshot.l1, crate::TickSource::at(snapshot.l1.ticks)),
            DiskStore::restore(&snapshot.l2),
            snapshot.promote_on_hit,
        )
    }

    /// L1 is volatile: the moment L2's planned power cut fires, the memory
    /// tier's contents are lost with the machine.
    fn drop_l1_on_crash(&mut self) {
        if self.l2.is_crashed() && !self.l1.is_empty() {
            self.l1.clear();
        }
    }
}

impl BlobStore for TieredStore {
    fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.l2.contains(fingerprint)
    }

    fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        // L1 holds byte-identical copies; prefer it, fall back to L2.
        self.l1.peek(fingerprint).or_else(|| self.l2.peek(fingerprint))
    }

    fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        if self.l2.is_crashed() {
            return None;
        }
        if let Some(content) = self.l1.get(fingerprint) {
            // Served from memory: free, but L2's replacement order must
            // advance exactly as a flat store's would.
            self.l2.touch(fingerprint);
            return Some(content);
        }
        match self.l2.get(fingerprint) {
            Some(content) => {
                if self.promote_on_hit {
                    self.l1.insert(fingerprint, content.clone());
                }
                Some(content)
            }
            None => None,
        }
    }

    fn put(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        // Write-through: L2 decides residency; its victims leave L1 too.
        self.evicted.clear();
        let resident =
            self.l2.insert_recording(fingerprint, content.clone(), &mut self.evicted);
        for victim in self.evicted.drain(..) {
            self.l1.remove(victim);
        }
        // A cut during the write-through tears the L1 install away with the
        // rest of volatile memory; the ack still follows L2's commit.
        if self.l2.is_crashed() {
            self.drop_l1_on_crash();
        } else if resident {
            self.l1.insert(fingerprint, content);
        }
        resident
    }

    fn pin(&mut self, fingerprint: Fingerprint) {
        // Pins guard residency, which is L2's business; an L1 copy may
        // still be displaced (the blob stays resident in L2).
        self.l2.pin(fingerprint);
        self.drop_l1_on_crash();
    }

    fn unpin(&mut self, fingerprint: Fingerprint) {
        self.l2.unpin(fingerprint);
        self.drop_l1_on_crash();
    }

    fn evict(&mut self) -> Option<(Fingerprint, u64)> {
        let evicted = self.l2.evict();
        self.drop_l1_on_crash();
        let (victim, len) = evicted?;
        self.l1.remove(victim);
        Some((victim, len))
    }

    fn victim_key(&self) -> Option<u64> {
        self.l2.victim_key()
    }

    fn stats(&self) -> StoreStats {
        // L2 is authoritative for everything except where hits were served
        // from; fold L1's hit count in so total hits match a flat store.
        let mut stats = self.l2.stats();
        stats.hits += self.l1.stats().hits;
        stats
    }

    fn verify(&self) -> Vec<Fingerprint> {
        self.l2.verify()
    }

    fn len(&self) -> usize {
        self.l2.len()
    }

    fn bytes(&self) -> u64 {
        self.l2.bytes()
    }

    fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
    }

    fn drain_cost(&mut self) -> Duration {
        self.l2.drain_cost()
    }

    fn tier_bytes(&self) -> (u64, u64) {
        (self.l1.bytes(), self.l2.bytes())
    }

    fn is_crashed(&self) -> bool {
        self.l2.is_crashed()
    }

    fn snapshot(&self) -> crate::StoreSnapshot {
        crate::StoreSnapshot::Tiered(crate::TieredSnapshot {
            l1: self.l1.snapshot_parts(),
            l2: self.l2.snapshot_parts(),
            promote_on_hit: self.promote_on_hit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    fn body(n: u8, len: usize) -> Bytes {
        Bytes::from(vec![n; len])
    }

    fn tiered(l1: Option<u64>, l2: Option<u64>) -> TieredStore {
        TieredStore::new(EvictionPolicy::Lru, l1, l2, DiskModel::ssd(), 1, true)
    }

    #[test]
    fn l1_hits_are_free_l2_hits_are_priced() {
        let mut t = tiered(Some(100), None);
        t.put(fp(1), body(1, 50));
        t.drain_cost(); // discard the write-through cost
        assert!(t.get(fp(1)).is_some());
        assert_eq!(t.drain_cost(), Duration::ZERO, "L1 hit moves no disk data");
        // Push the blob out of L1 (but not out of unbounded L2).
        t.put(fp(2), body(2, 60));
        t.drain_cost();
        assert_eq!(t.tier_bytes(), (60, 110), "L1 displaced the older blob");
        assert!(t.get(fp(1)).is_some(), "still resident in L2");
        assert_eq!(t.drain_cost(), DiskModel::ssd().io_time(50, 1), "L2 hit pays a read");
        // Promotion put it back in memory: the next lookup is free again.
        assert!(t.get(fp(1)).is_some());
        assert_eq!(t.drain_cost(), Duration::ZERO);
    }

    #[test]
    fn promotion_can_be_disabled() {
        let mut t =
            TieredStore::new(EvictionPolicy::Lru, Some(100), None, DiskModel::ssd(), 1, false);
        t.put(fp(1), body(1, 80));
        t.put(fp(2), body(2, 80)); // displaces 1 from L1
        t.drain_cost();
        assert!(t.get(fp(1)).is_some());
        t.drain_cost();
        assert!(t.get(fp(1)).is_some());
        assert!(
            t.drain_cost() > Duration::ZERO,
            "without promotion every repeat hit still reads L2"
        );
    }

    #[test]
    fn l2_eviction_invalidates_l1() {
        let mut t = tiered(None, Some(100));
        t.put(fp(1), body(1, 60));
        t.put(fp(2), body(2, 60)); // L2 evicts 1; L1 must drop it too
        assert!(!t.contains(fp(1)));
        assert!(t.peek(fp(1)).is_none(), "no stale L1 copy survives");
        assert_eq!(t.tier_bytes(), (60, 60));
        assert!(t.get(fp(1)).is_none());
    }

    #[test]
    fn explicit_evict_clears_both_tiers() {
        let mut t = tiered(None, Some(200));
        t.put(fp(1), body(1, 60));
        t.put(fp(2), body(2, 70));
        let (victim, len) = t.evict().unwrap();
        assert_eq!((victim, len), (fp(1), 60), "LRU victim is the older blob");
        assert!(t.peek(victim).is_none());
        assert_eq!(t.tier_bytes(), (70, 70));
    }

    #[test]
    fn pins_protect_l2_residency() {
        let mut t = tiered(Some(50), Some(100));
        t.put(fp(1), body(1, 60));
        t.pin(fp(1));
        assert_eq!(t.tier_bytes().0, 0, "too big for L1, resident in L2 only");
        assert!(!t.put(fp(2), body(2, 60)), "pinned L2 blob blocks the write");
        assert!(t.contains(fp(1)));
        t.unpin(fp(1));
        assert!(t.put(fp(2), body(2, 60)));
        assert!(!t.contains(fp(1)));
    }

    #[test]
    fn oversized_for_l1_still_resides_in_l2() {
        let mut t = tiered(Some(10), None);
        assert!(t.put(fp(1), body(1, 50)));
        assert_eq!(t.tier_bytes(), (0, 50));
        assert!(t.get(fp(1)).is_some(), "served from L2");
    }

    #[test]
    fn clear_empties_both_tiers_but_keeps_stats() {
        let mut t = tiered(None, None);
        t.put(fp(1), body(1, 10));
        t.get(fp(1));
        t.clear();
        assert_eq!(t.tier_bytes(), (0, 0));
        assert!(t.is_empty());
        assert_eq!(t.stats().hits, 1);
    }
}
