//! A blob store split into independently locked shards, selected by
//! fingerprint prefix.
//!
//! Fingerprints are MD5 outputs, so their first byte is uniformly
//! distributed and `first_byte % shards` spreads load evenly. Each shard is
//! its own store behind a [`parking_lot::Mutex`] with its slice of the byte
//! budget (see [`split_capacity`](crate::split_capacity) — no remainder is
//! lost): concurrent deployments touching different blobs proceed without
//! contending on one global lock, and every per-shard operation keeps its
//! store's complexity bound.
//!
//! [`Sharded::with_policy`] builds the [`MemStore`] variant with one shared
//! [`TickSource`], so eviction keys stay globally comparable and
//! [`Sharded::evict`] can pick the same victim a single unsharded store
//! would — the equivalence the crate's property tests check.

use std::time::Duration;

use bytes::Bytes;
use gear_hash::Fingerprint;
use parking_lot::Mutex;

use crate::{split_capacity, BlobStore, EvictionPolicy, MemStore, StoreStats, TickSource};

/// A generic sharded wrapper: any [`BlobStore`] behind per-shard locks.
#[derive(Debug)]
pub struct Sharded<S> {
    shards: Vec<Mutex<S>>,
}

impl<S: BlobStore> Sharded<S> {
    /// Wraps pre-built stores, one per shard (at least one required).
    pub fn from_shards(shards: Vec<S>) -> Self {
        assert!(!shards.is_empty(), "a sharded store needs at least one shard");
        Sharded { shards: shards.into_iter().map(Mutex::new).collect() }
    }

    fn shard(&self, fingerprint: Fingerprint) -> &Mutex<S> {
        let prefix = fingerprint.as_bytes()[0] as usize;
        &self.shards[prefix % self.shards.len()]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the blob is resident (pure read, like
    /// [`BlobStore::contains`]).
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.shard(fingerprint).lock().contains(fingerprint)
    }

    /// Reads without recency or accounting (see [`BlobStore::peek`]).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        self.shard(fingerprint).lock().peek(fingerprint)
    }

    /// Looks the blob up in its shard; recency semantics as in
    /// [`BlobStore::get`].
    pub fn get(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        self.shard(fingerprint).lock().get(fingerprint)
    }

    /// Stores the blob in its shard; eviction presses only on that shard.
    pub fn put(&self, fingerprint: Fingerprint, content: Bytes) -> bool {
        self.shard(fingerprint).lock().put(fingerprint, content)
    }

    /// Alias for [`Sharded::put`], matching the historical cache API.
    pub fn insert(&self, fingerprint: Fingerprint, content: Bytes) -> bool {
        self.put(fingerprint, content)
    }

    /// Looks the blob up, running `fill` under the shard lock on a miss —
    /// the lock makes the fill single-flight per shard: no concurrent
    /// lookup of the same fingerprint can run a second fill.
    pub fn get_or_fill(
        &self,
        fingerprint: Fingerprint,
        fill: &mut dyn FnMut() -> Option<Bytes>,
    ) -> Option<Bytes> {
        self.shard(fingerprint).lock().get_or_fill(fingerprint, fill)
    }

    /// Pins a blob in its shard.
    pub fn pin(&self, fingerprint: Fingerprint) {
        self.shard(fingerprint).lock().pin(fingerprint);
    }

    /// Releases one pin in the blob's shard.
    pub fn unpin(&self, fingerprint: Fingerprint) {
        self.shard(fingerprint).lock().unpin(fingerprint);
    }

    /// Evicts the globally best victim: with all shard locks held, the
    /// shard whose next victim has the smallest eviction key (keys are
    /// comparable across shards sharing a [`TickSource`]) evicts one blob.
    pub fn evict(&self) -> Option<(Fingerprint, u64)> {
        let mut guards: Vec<_> = self.shards.iter().map(Mutex::lock).collect();
        let victim_shard = guards
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.victim_key().map(|key| (key, i)))
            .min()?
            .1;
        guards[victim_shard].evict()
    }

    /// The smallest eviction key across all shards.
    pub fn victim_key(&self) -> Option<u64> {
        self.shards.iter().filter_map(|s| s.lock().victim_key()).min()
    }

    /// Resident bytes across all shards.
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes()).sum()
    }

    /// Resident blob count across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Merged accounting across all shards (exact: see
    /// [`StoreStats::merge`]).
    pub fn stats(&self) -> StoreStats {
        self.shards.iter().map(|s| s.lock().stats()).fold(StoreStats::default(), StoreStats::merge)
    }

    /// Simulated storage time accrued across all shards since last drained.
    pub fn drain_cost(&self) -> Duration {
        self.shards.iter().map(|s| s.lock().drain_cost()).sum()
    }

    /// Residency split summed across shards.
    pub fn tier_bytes(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(m, d), s| {
            let (sm, sd) = s.lock().tier_bytes();
            (m + sm, d + sd)
        })
    }

    /// Integrity scan across all shards, merged and sorted.
    pub fn verify(&self) -> Vec<Fingerprint> {
        let mut bad: Vec<Fingerprint> =
            self.shards.iter().flat_map(|s| s.lock().verify()).collect();
        bad.sort();
        bad
    }

    /// Clears every shard (statistics survive, as in [`BlobStore::clear`]).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Whether any shard's planned power cut has fired (shards share a
    /// machine, so one crashed shard means the store is down).
    pub fn is_crashed(&self) -> bool {
        self.shards.iter().any(|s| s.lock().is_crashed())
    }

    /// Per-shard snapshots in shard order (see [`crate::snapshot`]).
    pub fn snapshot(&self) -> crate::StoreSnapshot {
        crate::StoreSnapshot::Sharded(crate::ShardedSnapshot {
            shards: self.shards.iter().map(|s| s.lock().snapshot()).collect(),
        })
    }
}

impl Sharded<MemStore> {
    /// A sharded in-memory store with `shards` shards (at least one)
    /// splitting `capacity` bytes exactly under the given policy, all
    /// drawing ticks from one shared [`TickSource`].
    pub fn with_policy(policy: EvictionPolicy, capacity: Option<u64>, shards: usize) -> Self {
        let ticks = TickSource::new();
        let stores = split_capacity(capacity, shards.max(1))
            .into_iter()
            .map(|cap| MemStore::with_ticks(policy, cap, ticks.clone()))
            .collect();
        Self::from_shards(stores)
    }
}

impl<S: BlobStore> BlobStore for Sharded<S> {
    fn contains(&self, fingerprint: Fingerprint) -> bool {
        Sharded::contains(self, fingerprint)
    }

    fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        Sharded::peek(self, fingerprint)
    }

    fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        Sharded::get(self, fingerprint)
    }

    fn put(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        Sharded::put(self, fingerprint, content)
    }

    fn pin(&mut self, fingerprint: Fingerprint) {
        Sharded::pin(self, fingerprint);
    }

    fn unpin(&mut self, fingerprint: Fingerprint) {
        Sharded::unpin(self, fingerprint);
    }

    fn evict(&mut self) -> Option<(Fingerprint, u64)> {
        Sharded::evict(self)
    }

    fn victim_key(&self) -> Option<u64> {
        Sharded::victim_key(self)
    }

    fn stats(&self) -> StoreStats {
        Sharded::stats(self)
    }

    fn verify(&self) -> Vec<Fingerprint> {
        Sharded::verify(self)
    }

    fn len(&self) -> usize {
        Sharded::len(self)
    }

    fn bytes(&self) -> u64 {
        Sharded::bytes(self)
    }

    fn clear(&mut self) {
        Sharded::clear(self);
    }

    fn drain_cost(&mut self) -> Duration {
        Sharded::drain_cost(self)
    }

    fn tier_bytes(&self) -> (u64, u64) {
        Sharded::tier_bytes(self)
    }

    fn is_crashed(&self) -> bool {
        Sharded::is_crashed(self)
    }

    fn snapshot(&self) -> crate::StoreSnapshot {
        Sharded::snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    fn body(n: u8, len: usize) -> Bytes {
        Bytes::from(vec![n; len])
    }

    #[test]
    fn sharded_store_matches_flat_semantics() {
        let sharded = Sharded::with_policy(EvictionPolicy::Lru, Some(4096), 4);
        assert_eq!(sharded.shard_count(), 4);
        for n in 0u8..32 {
            assert!(sharded.insert(fp(n), body(n, 16)));
        }
        assert_eq!(sharded.len(), 32);
        assert_eq!(sharded.bytes(), 32 * 16);
        for n in 0u8..32 {
            assert!(sharded.contains(fp(n)));
            assert_eq!(sharded.get(fp(n)).unwrap(), body(n, 16));
        }
        assert!(sharded.get(fp(200)).is_none());
        let stats = sharded.stats();
        assert_eq!((stats.hits, stats.misses), (32, 1));
        sharded.pin(fp(3));
        assert_eq!(sharded.stats().pinned_bytes, 16);
        sharded.unpin(fp(3));
        sharded.clear();
        assert!(sharded.is_empty());
        assert_eq!(sharded.stats().hits, 32, "stats survive clear");
    }

    #[test]
    fn sharded_eviction_stays_within_shard_budget() {
        // 2 shards x 32 bytes. Fill one shard past its budget and verify
        // evictions happen there while the other shard is untouched.
        let sharded = Sharded::with_policy(EvictionPolicy::Fifo, Some(64), 2);
        // Find fingerprints landing in each shard by prefix parity.
        let mut even = Vec::new();
        let mut odd = Vec::new();
        for n in 0u8..=255 {
            let f = fp(n);
            if f.as_bytes()[0].is_multiple_of(2) {
                even.push(f);
            } else {
                odd.push(f);
            }
        }
        sharded.insert(odd[0], Bytes::from(vec![1u8; 24]));
        for f in even.iter().take(5) {
            sharded.insert(*f, Bytes::from(vec![2u8; 16]));
        }
        // 5 x 16 = 80 bytes pressed into a 32-byte shard: evictions occurred,
        // but the odd-shard resident survived untouched.
        assert!(sharded.stats().evictions >= 3);
        assert!(sharded.contains(odd[0]));
        assert!(sharded.bytes() <= 32 + 24);
    }

    #[test]
    fn capacity_split_loses_no_bytes() {
        // 100 bytes over 3 shards used to floor-truncate to 3 x 33 = 99; the
        // audited split hands out 34 + 33 + 33.
        let sharded = Sharded::with_policy(EvictionPolicy::Lru, Some(100), 3);
        let mut inserted = 0u64;
        for n in 0u8..=255 {
            if sharded.insert(fp(n), body(n, 1)) {
                inserted += 1;
            }
        }
        // 256 distinct 1-byte blobs over 100 bytes of total capacity: exactly
        // 100 stay resident only if no shard lost its remainder byte.
        assert_eq!(inserted, 256, "1-byte inserts always fit somewhere");
        assert_eq!(sharded.bytes(), 100, "full 100-byte budget is usable");
    }

    #[test]
    fn global_evict_picks_cross_shard_minimum() {
        let sharded = Sharded::with_policy(EvictionPolicy::Fifo, None, 4);
        // Insert in a known global order; FIFO victims must come back in
        // exactly that order regardless of which shard each landed in.
        let order: Vec<Fingerprint> = (0u8..12).map(fp).collect();
        for (i, f) in order.iter().enumerate() {
            sharded.insert(*f, body(i as u8, 4));
        }
        let mut victims = Vec::new();
        while let Some((f, _)) = sharded.evict() {
            victims.push(f);
        }
        assert_eq!(victims, order, "global FIFO order across shards");
    }
}
