//! Write-ahead journal for [`DiskStore`](crate::DiskStore).
//!
//! Every mutating store operation is journaled as a *batch*: its effect
//! records ([`JournalRecord::Evict`] for each capacity victim, then the
//! [`JournalRecord::Put`] / [`JournalRecord::Pin`] / … itself) followed by a
//! [`JournalRecord::Commit`] marker. An operation is **acknowledged** exactly
//! when its commit marker is durable, and [`replay`] applies exactly the
//! committed batches, so the whole operation — including its evictions — is
//! atomic under any power cut:
//!
//! * a cut before the commit marker discards the entire batch (unacked puts
//!   vanish, their evictions un-happen);
//! * a cut after the commit marker preserves the entire batch (acked puts
//!   survive recovery).
//!
//! # On-"disk" cell format
//!
//! The journal is a flat byte log of self-checking cells:
//!
//! ```text
//! [len: u32 LE] [body: tag u8 + payload] [check: u64 LE = fnv1a64(body)]
//! ```
//!
//! A torn write leaves a strict prefix of a cell at the log tail; replay
//! detects it as a short or checksum-failing cell, discards it together with
//! its uncommitted batch, and stops — the classic WAL recovery rule.
//! Replay is idempotent: it only reads the log, so recovering twice from the
//! same media yields the same state.
//!
//! The log itself is [`JournalMedia`] — shared, crash-surviving bytes
//! (`Arc<Mutex<Vec<u8>>>`): the store holding the journal may "die" (drop or
//! go inert) while the harness keeps the media handle and recovers a fresh
//! store from it.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use gear_hash::Fingerprint;
use parking_lot::Mutex;

/// One journaled effect. `Commit` terminates a batch; everything between two
/// commit markers belongs to one atomic store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A blob became resident.
    Put {
        /// Content address of the blob.
        fingerprint: Fingerprint,
        /// The stored bytes.
        content: Bytes,
    },
    /// A blob left residency (capacity eviction or explicit evict).
    Evict {
        /// Content address of the evicted blob.
        fingerprint: Fingerprint,
    },
    /// One pin reference was added.
    Pin {
        /// Content address of the pinned blob.
        fingerprint: Fingerprint,
    },
    /// One pin reference was released.
    Unpin {
        /// Content address of the unpinned blob.
        fingerprint: Fingerprint,
    },
    /// Every blob was dropped (the cold-cache experiment reset).
    Clear,
    /// Batch terminator: everything since the previous commit is atomic.
    Commit,
}

const TAG_PUT: u8 = 1;
const TAG_EVICT: u8 = 2;
const TAG_PIN: u8 = 3;
const TAG_UNPIN: u8 = 4;
const TAG_CLEAR: u8 = 5;
const TAG_COMMIT: u8 = 6;

/// FNV-1a over `bytes`, the journal's (and snapshot's) torn-write detector.
pub(crate) fn checksum64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl JournalRecord {
    /// Encodes the record as one self-checking cell (see the module docs).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            JournalRecord::Put { fingerprint, content } => {
                body.push(TAG_PUT);
                body.extend_from_slice(fingerprint.as_bytes());
                body.extend_from_slice(content);
            }
            JournalRecord::Evict { fingerprint } => {
                body.push(TAG_EVICT);
                body.extend_from_slice(fingerprint.as_bytes());
            }
            JournalRecord::Pin { fingerprint } => {
                body.push(TAG_PIN);
                body.extend_from_slice(fingerprint.as_bytes());
            }
            JournalRecord::Unpin { fingerprint } => {
                body.push(TAG_UNPIN);
                body.extend_from_slice(fingerprint.as_bytes());
            }
            JournalRecord::Clear => body.push(TAG_CLEAR),
            JournalRecord::Commit => body.push(TAG_COMMIT),
        }
        let mut cell = Vec::with_capacity(4 + body.len() + 8);
        cell.extend_from_slice(&(body.len() as u32).to_le_bytes());
        cell.extend_from_slice(&body);
        cell.extend_from_slice(&checksum64(&body).to_le_bytes());
        cell
    }

    /// Decodes one cell starting at `bytes`. Returns the record and the cell
    /// size, or `None` when the prefix is short, checksum-failing, or
    /// malformed — i.e. a torn tail.
    fn decode(bytes: &[u8]) -> Option<(JournalRecord, usize)> {
        let len = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let body = bytes.get(4..4 + len)?;
        let check = u64::from_le_bytes(bytes.get(4 + len..4 + len + 8)?.try_into().ok()?);
        if checksum64(body) != check {
            return None;
        }
        let fp_of = |b: &[u8]| -> Option<Fingerprint> {
            Some(Fingerprint::from_bytes(b.get(..16)?.try_into().ok()?))
        };
        let record = match *body.first()? {
            TAG_PUT => JournalRecord::Put {
                fingerprint: fp_of(&body[1..])?,
                content: Bytes::copy_from_slice(body.get(17..)?),
            },
            TAG_EVICT if body.len() == 17 => JournalRecord::Evict { fingerprint: fp_of(&body[1..])? },
            TAG_PIN if body.len() == 17 => JournalRecord::Pin { fingerprint: fp_of(&body[1..])? },
            TAG_UNPIN if body.len() == 17 => JournalRecord::Unpin { fingerprint: fp_of(&body[1..])? },
            TAG_CLEAR if body.len() == 1 => JournalRecord::Clear,
            TAG_COMMIT if body.len() == 1 => JournalRecord::Commit,
            _ => return None,
        };
        Some((record, 4 + len + 8))
    }
}

/// The durable medium a journal is written to: shared bytes that survive the
/// "death" of the store writing them. Clone the handle before handing it to
/// a store; after a crash, recover a fresh store from the same handle.
#[derive(Debug, Clone, Default)]
pub struct JournalMedia(Arc<Mutex<Vec<u8>>>);

impl JournalMedia {
    /// An empty medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Journal size in bytes (including any torn tail).
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// Whether nothing has ever been written.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }

    /// Appends raw bytes (possibly a torn prefix of a cell).
    pub(crate) fn append(&self, bytes: &[u8]) {
        self.0.lock().extend_from_slice(bytes);
    }

    /// Snapshot of the full journal contents.
    pub(crate) fn contents(&self) -> Vec<u8> {
        self.0.lock().clone()
    }

    /// Replaces the journal wholesale (compaction after recovery).
    pub(crate) fn replace(&self, bytes: Vec<u8>) {
        *self.0.lock() = bytes;
    }
}

/// What [`replay`] reconstructed and what it had to discard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records applied from committed batches (commit markers included).
    pub replayed_records: u64,
    /// Records discarded from the uncommitted tail batch.
    pub discarded_records: u64,
    /// Whether a torn (short or checksum-failing) cell ended the scan.
    pub torn_tail: bool,
    /// Blobs resident after replay.
    pub recovered_blobs: u64,
    /// Bytes resident after replay.
    pub recovered_bytes: u64,
    /// Journal bytes scanned (prices the recovery read).
    pub read_bytes: u64,
}

/// The store state a committed journal prefix reconstructs: resident blobs
/// with pin counts, in re-insertion order (the order recovery re-ticks).
#[derive(Debug, Clone, Default)]
pub struct ReplayedState {
    /// `(fingerprint, content, pins)` in the order the blobs (re-)entered
    /// residency.
    pub entries: Vec<(Fingerprint, Bytes, u32)>,
}

/// Replays `media`, applying exactly the committed batches (see the module
/// docs). Pure read of the media: calling it twice yields identical results.
pub fn replay(media: &JournalMedia) -> (ReplayedState, RecoveryReport) {
    let log = media.contents();
    let mut report = RecoveryReport { read_bytes: log.len() as u64, ..Default::default() };

    // Parse the cell stream; stop at the first torn cell.
    let mut records = Vec::new();
    let mut offset = 0;
    while offset < log.len() {
        match JournalRecord::decode(&log[offset..]) {
            Some((record, size)) => {
                records.push(record);
                offset += size;
            }
            None => {
                report.torn_tail = true;
                break;
            }
        }
    }
    // Records after the last commit marker belong to an uncommitted batch.
    let committed = records
        .iter()
        .rposition(|r| *r == JournalRecord::Commit)
        .map_or(0, |last| last + 1);
    report.discarded_records = (records.len() - committed) as u64;
    records.truncate(committed);
    report.replayed_records = records.len() as u64;

    // Apply the committed prefix. `order` keeps first-residency order with
    // re-inserts moved to the back (matching a fresh store's tick order);
    // `live` holds the surviving entries.
    let mut live: HashMap<Fingerprint, (Bytes, u32)> = HashMap::new();
    let mut order: Vec<Fingerprint> = Vec::new();
    for record in records {
        match record {
            JournalRecord::Put { fingerprint, content } => {
                if let std::collections::hash_map::Entry::Vacant(slot) = live.entry(fingerprint) {
                    slot.insert((content, 0));
                    order.retain(|fp| *fp != fingerprint);
                    order.push(fingerprint);
                }
            }
            JournalRecord::Evict { fingerprint } => {
                live.remove(&fingerprint);
            }
            JournalRecord::Pin { fingerprint } => {
                if let Some((_, pins)) = live.get_mut(&fingerprint) {
                    *pins += 1;
                }
            }
            JournalRecord::Unpin { fingerprint } => {
                if let Some((_, pins)) = live.get_mut(&fingerprint) {
                    *pins = pins.saturating_sub(1);
                }
            }
            JournalRecord::Clear => {
                live.clear();
                order.clear();
            }
            JournalRecord::Commit => {}
        }
    }
    let entries: Vec<(Fingerprint, Bytes, u32)> = order
        .into_iter()
        .filter_map(|fp| live.remove(&fp).map(|(content, pins)| (fp, content, pins)))
        .collect();
    report.recovered_blobs = entries.len() as u64;
    report.recovered_bytes = entries.iter().map(|(_, c, _)| c.len() as u64).sum();
    (ReplayedState { entries }, report)
}

/// Rewrites `media` to the minimal committed journal reproducing `state`:
/// one `Put` (and `Pin` per reference) per resident blob, one `Commit`.
pub fn compact(media: &JournalMedia, state: &ReplayedState) {
    let mut log = Vec::new();
    for (fingerprint, content, pins) in &state.entries {
        log.extend_from_slice(
            &JournalRecord::Put { fingerprint: *fingerprint, content: content.clone() }.encode(),
        );
        for _ in 0..*pins {
            log.extend_from_slice(&JournalRecord::Pin { fingerprint: *fingerprint }.encode());
        }
    }
    log.extend_from_slice(&JournalRecord::Commit.encode());
    media.replace(log);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    fn body(n: u8, len: usize) -> Bytes {
        Bytes::from(vec![n; len])
    }

    fn all_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Put { fingerprint: fp(1), content: body(1, 9) },
            JournalRecord::Put { fingerprint: fp(2), content: Bytes::new() },
            JournalRecord::Evict { fingerprint: fp(1) },
            JournalRecord::Pin { fingerprint: fp(2) },
            JournalRecord::Unpin { fingerprint: fp(2) },
            JournalRecord::Clear,
            JournalRecord::Commit,
        ]
    }

    #[test]
    fn encode_decode_roundtrips() {
        for record in all_records() {
            let cell = record.encode();
            let (decoded, size) = JournalRecord::decode(&cell).expect("valid cell");
            assert_eq!(decoded, record);
            assert_eq!(size, cell.len());
        }
    }

    #[test]
    fn every_strict_prefix_reads_as_torn() {
        for record in all_records() {
            let cell = record.encode();
            for keep in 0..cell.len() {
                assert!(
                    JournalRecord::decode(&cell[..keep]).is_none(),
                    "{record:?} prefix of {keep} bytes must not decode"
                );
            }
        }
    }

    #[test]
    fn corrupted_cells_fail_the_checksum() {
        let cell = JournalRecord::Put { fingerprint: fp(1), content: body(1, 20) }.encode();
        for i in 4..cell.len() {
            let mut bad = cell.clone();
            bad[i] ^= 0x01;
            assert!(JournalRecord::decode(&bad).is_none(), "flip at {i} must be caught");
        }
    }

    #[test]
    fn replay_applies_only_committed_batches() {
        let media = JournalMedia::new();
        // Batch 1 (committed): put a, put b, pin b.
        for r in [
            JournalRecord::Put { fingerprint: fp(1), content: body(1, 5) },
            JournalRecord::Put { fingerprint: fp(2), content: body(2, 6) },
            JournalRecord::Pin { fingerprint: fp(2) },
            JournalRecord::Commit,
        ] {
            media.append(&r.encode());
        }
        // Batch 2 (uncommitted): evict a, put c — must be discarded whole.
        for r in [
            JournalRecord::Evict { fingerprint: fp(1) },
            JournalRecord::Put { fingerprint: fp(3), content: body(3, 7) },
        ] {
            media.append(&r.encode());
        }
        let (state, report) = replay(&media);
        let fps: Vec<Fingerprint> = state.entries.iter().map(|(f, _, _)| *f).collect();
        assert_eq!(fps, vec![fp(1), fp(2)]);
        assert_eq!(state.entries[1].2, 1, "pin on b survives");
        assert_eq!(report.replayed_records, 4);
        assert_eq!(report.discarded_records, 2);
        assert!(!report.torn_tail);
        assert_eq!(report.recovered_blobs, 2);
        assert_eq!(report.recovered_bytes, 11);
    }

    #[test]
    fn torn_tail_is_detected_and_replay_is_idempotent() {
        let media = JournalMedia::new();
        media.append(
            &JournalRecord::Put { fingerprint: fp(1), content: body(1, 5) }.encode(),
        );
        media.append(&JournalRecord::Commit.encode());
        let torn = JournalRecord::Put { fingerprint: fp(2), content: body(2, 50) }.encode();
        media.append(&torn[..torn.len() / 2]);
        let (state1, report1) = replay(&media);
        assert!(report1.torn_tail);
        assert_eq!(report1.replayed_records, 2);
        assert_eq!(state1.entries.len(), 1);
        // Idempotent: a second replay sees exactly the same thing.
        let (state2, report2) = replay(&media);
        assert_eq!(state1.entries, state2.entries);
        assert_eq!(report1, report2);
    }

    #[test]
    fn reinsert_after_evict_moves_to_the_back_of_the_order() {
        let media = JournalMedia::new();
        for r in [
            JournalRecord::Put { fingerprint: fp(1), content: body(1, 4) },
            JournalRecord::Put { fingerprint: fp(2), content: body(2, 4) },
            JournalRecord::Commit,
            JournalRecord::Evict { fingerprint: fp(1) },
            JournalRecord::Commit,
            JournalRecord::Put { fingerprint: fp(1), content: body(1, 4) },
            JournalRecord::Commit,
        ] {
            media.append(&r.encode());
        }
        let (state, _) = replay(&media);
        let fps: Vec<Fingerprint> = state.entries.iter().map(|(f, _, _)| *f).collect();
        assert_eq!(fps, vec![fp(2), fp(1)], "re-inserted blob is youngest");
    }

    #[test]
    fn compaction_preserves_replayed_state() {
        let media = JournalMedia::new();
        for r in [
            JournalRecord::Put { fingerprint: fp(1), content: body(1, 400) },
            JournalRecord::Commit,
            JournalRecord::Evict { fingerprint: fp(1) },
            JournalRecord::Commit,
            JournalRecord::Put { fingerprint: fp(2), content: body(2, 8) },
            JournalRecord::Pin { fingerprint: fp(2) },
            JournalRecord::Pin { fingerprint: fp(2) },
            JournalRecord::Commit,
        ] {
            media.append(&r.encode());
        }
        let before = media.len();
        let (state, _) = replay(&media);
        compact(&media, &state);
        assert!(media.len() < before, "dead history is dropped");
        let (after, report) = replay(&media);
        assert_eq!(after.entries, state.entries);
        assert!(!report.torn_tail);
        assert_eq!(report.discarded_records, 0);
    }
}
