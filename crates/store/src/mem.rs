//! The in-memory blob store (paper §III-D1's level-1 shared file cache).
//!
//! Blobs belonging to different images share one fingerprint-deduplicated
//! store. Users bound its capacity and pick a replacement policy (the paper
//! names FIFO and LRU); blobs currently linked from an installed Gear index
//! are pinned and never evicted.
//!
//! # Recency policy
//!
//! The recency rules are deliberate and tested:
//!
//! * [`MemStore::contains`] is a pure read — it never touches recency state
//!   or hit/miss counters, so probing for residency (dedup checks,
//!   assertions, accounting) cannot perturb the replacement order.
//! * [`MemStore::get`] refreshes the entry's last-used time **even when the
//!   entry is pinned**. A pinned blob is immune to eviction, but its recency
//!   keeps tracking real accesses, so the moment it is unpinned it competes
//!   at its true position in the LRU order rather than at the stale position
//!   it held when first pinned.
//!
//! # Eviction index
//!
//! Victim selection is O(log n): alongside the fingerprint map the store
//! keeps a [`BTreeSet`] of `(policy_key, fingerprint)` pairs covering
//! exactly the unpinned entries, where `policy_key` is the insertion tick
//! (FIFO) or the last-used tick (LRU). Ticks come from a [`TickSource`] —
//! monotonically increasing, each key written at a distinct tick — so keys
//! are unique and the set's smallest element is precisely the entry a full
//! scan's `min_by_key` would have chosen: the index is a pure speedup, not a
//! policy change. Stores sharing one `TickSource` (the shards of a
//! [`Sharded`](crate::Sharded)) draw globally comparable keys, so a global
//! victim can be chosen across them.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use gear_hash::Fingerprint;

use crate::{BlobStore, StoreStats};

/// Cache replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the oldest-inserted unpinned blob first.
    Fifo,
    /// Evict the least-recently-used unpinned blob first (the default).
    #[default]
    Lru,
}

/// A shared source of monotonically increasing ticks.
///
/// Each [`MemStore`] draws insertion/recency ticks from its source; cloning
/// the handle shares the counter, which is how the shards of a
/// [`Sharded`](crate::Sharded) store keep their eviction keys globally
/// comparable. A store with a private source behaves exactly like the old
/// single-counter cache.
#[derive(Debug, Clone, Default)]
pub struct TickSource(Arc<AtomicU64>);

impl TickSource {
    /// A fresh counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter resuming at `value` — the next tick drawn is `value + 1`.
    /// Used when rehydrating a snapshot so the restored store draws exactly
    /// the ticks the original would have drawn next.
    pub fn at(value: u64) -> Self {
        TickSource(Arc::new(AtomicU64::new(value)))
    }

    /// The current counter value (the last tick handed out).
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// The next tick (first call returns 1).
    fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }
}

#[derive(Debug, Clone)]
struct StoreEntry {
    content: Bytes,
    /// Number of installed indexes referencing this blob.
    pins: u32,
    /// Insertion sequence (FIFO key).
    inserted: u64,
    /// Last-access sequence (LRU key).
    used: u64,
}

/// A capacity-bounded, fingerprint-addressed in-memory blob store.
#[derive(Debug, Default)]
pub struct MemStore {
    entries: HashMap<Fingerprint, StoreEntry>,
    /// Unpinned entries ordered by eviction key; `first()` is the victim.
    index: BTreeSet<(u64, Fingerprint)>,
    policy: EvictionPolicy,
    /// Capacity in bytes; `None` = unbounded.
    capacity: Option<u64>,
    bytes: u64,
    pinned_bytes: u64,
    ticks: TickSource,
    stats: StoreStats,
}

impl MemStore {
    /// An unbounded LRU store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store with the given policy and byte capacity (`None` = unbounded).
    pub fn with_policy(policy: EvictionPolicy, capacity: Option<u64>) -> Self {
        MemStore { policy, capacity, ..Self::default() }
    }

    /// Like [`MemStore::with_policy`], drawing ticks from a shared source —
    /// used by [`Sharded`](crate::Sharded) so per-shard eviction keys stay
    /// globally ordered.
    pub fn with_ticks(policy: EvictionPolicy, capacity: Option<u64>, ticks: TickSource) -> Self {
        MemStore { policy, capacity, ticks, ..Self::default() }
    }

    /// The eviction-order key of an entry under `policy`. An associated fn
    /// (not a method) so it can be called while an entry is mutably
    /// borrowed out of the map.
    fn policy_key(policy: EvictionPolicy, entry: &StoreEntry) -> u64 {
        match policy {
            EvictionPolicy::Fifo => entry.inserted,
            EvictionPolicy::Lru => entry.used,
        }
    }

    /// Whether the blob is resident. A pure read: recency state and hit/miss
    /// counters are untouched, so residency probes never perturb eviction
    /// order (see the module docs).
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.entries.contains_key(&fingerprint)
    }

    /// Reads the blob without touching recency or hit/miss accounting (the
    /// side-channel read behind [`BlobStore::peek`]).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        self.entries.get(&fingerprint).map(|e| e.content.clone())
    }

    /// Looks the blob up, recording a hit or miss and refreshing recency.
    ///
    /// The last-used time advances even for pinned entries — pinning grants
    /// immunity from eviction, not exemption from recency tracking — so an
    /// unpinned blob re-enters the LRU order at its true position.
    pub fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        let tick = self.ticks.next();
        match self.entries.get_mut(&fingerprint) {
            Some(entry) => {
                if entry.pins == 0 && self.policy == EvictionPolicy::Lru {
                    self.index.remove(&(entry.used, fingerprint));
                    self.index.insert((tick, fingerprint));
                }
                entry.used = tick;
                self.stats.hits += 1;
                Some(entry.content.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Refreshes the blob's recency exactly as [`MemStore::get`] would —
    /// same tick consumption, same re-indexing — without counting a hit or
    /// cloning the content. [`TieredStore`](crate::TieredStore) uses this to
    /// keep the authoritative tier's replacement order identical to a flat
    /// store's when a lookup is answered from L1.
    pub fn touch(&mut self, fingerprint: Fingerprint) {
        let tick = self.ticks.next();
        if let Some(entry) = self.entries.get_mut(&fingerprint) {
            if entry.pins == 0 && self.policy == EvictionPolicy::Lru {
                self.index.remove(&(entry.used, fingerprint));
                self.index.insert((tick, fingerprint));
            }
            entry.used = tick;
        }
    }

    /// Inserts a blob (no-op if present), evicting unpinned blobs as needed.
    /// Returns whether the blob is resident afterwards (a blob larger than
    /// the whole capacity is not stored).
    pub fn insert(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        let mut evicted = Vec::new();
        self.insert_recording(fingerprint, content, &mut evicted)
    }

    /// [`MemStore::insert`], appending each eviction victim's fingerprint to
    /// `evicted` — the hook [`TieredStore`](crate::TieredStore) uses to
    /// invalidate L1 copies when the authoritative tier evicts.
    pub fn insert_recording(
        &mut self,
        fingerprint: Fingerprint,
        content: Bytes,
        evicted: &mut Vec<Fingerprint>,
    ) -> bool {
        if self.entries.contains_key(&fingerprint) {
            return true;
        }
        let len = content.len() as u64;
        if let Some(cap) = self.capacity {
            if len > cap {
                return false;
            }
            while self.bytes + len > cap {
                match self.evict_one() {
                    Some((victim, _)) => evicted.push(victim),
                    None => return false, // everything left is pinned
                }
            }
        }
        let tick = self.ticks.next();
        self.bytes += len;
        self.entries.insert(
            fingerprint,
            StoreEntry { content, pins: 0, inserted: tick, used: tick },
        );
        // FIFO and LRU keys coincide at insertion time.
        self.index.insert((tick, fingerprint));
        true
    }

    /// Pins a blob (one reference from an installed index).
    pub fn pin(&mut self, fingerprint: Fingerprint) {
        if let Some(e) = self.entries.get_mut(&fingerprint) {
            e.pins += 1;
            if e.pins == 1 {
                let key = Self::policy_key(self.policy, e);
                self.index.remove(&(key, fingerprint));
                self.pinned_bytes += e.content.len() as u64;
            }
        }
    }

    /// Releases one pin. When the last pin drops the entry rejoins the
    /// eviction order at its current recency (see [`MemStore::get`]).
    pub fn unpin(&mut self, fingerprint: Fingerprint) {
        if let Some(e) = self.entries.get_mut(&fingerprint) {
            if e.pins == 1 {
                let key = Self::policy_key(self.policy, e);
                self.index.insert((key, fingerprint));
                self.pinned_bytes -= e.content.len() as u64;
            }
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Evicts one unpinned blob per the policy; `None` if none is
    /// evictable. O(log n): the victim is the index's smallest key.
    fn evict_one(&mut self) -> Option<(Fingerprint, u64)> {
        let (_, fp) = self.index.pop_first()?;
        let entry = self.entries.remove(&fp).expect("indexed entry exists");
        let len = entry.content.len() as u64;
        self.bytes -= len;
        self.stats.evictions += 1;
        self.stats.evicted_bytes += len;
        Some((fp, len))
    }

    /// Evicts the policy's current victim (trait-level name for
    /// `evict_one`).
    pub fn evict(&mut self) -> Option<(Fingerprint, u64)> {
        self.evict_one()
    }

    /// The eviction key [`MemStore::evict`] would remove next.
    pub fn victim_key(&self) -> Option<u64> {
        self.index.first().map(|(key, _)| *key)
    }

    /// Silently removes a blob — no eviction statistics — returning its
    /// size. Used for L1 invalidation by [`TieredStore`](crate::TieredStore)
    /// and for registry garbage collection, neither of which is a
    /// capacity-pressure eviction.
    pub fn remove(&mut self, fingerprint: Fingerprint) -> Option<u64> {
        let entry = self.entries.remove(&fingerprint)?;
        let len = entry.content.len() as u64;
        self.bytes -= len;
        if entry.pins == 0 {
            self.index.remove(&(Self::policy_key(self.policy, &entry), fingerprint));
        } else {
            self.pinned_bytes -= len;
        }
        Some(len)
    }

    /// Resident bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Resident blob count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accounting so far: counters plus the current residency gauges.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            pinned_bytes: self.pinned_bytes,
            objects: self.entries.len() as u64,
            stored_bytes: self.bytes,
            logical_bytes: self.bytes,
            ..self.stats
        }
    }

    /// Iterates over resident blobs as `(fingerprint, content)`.
    pub fn iter(&self) -> impl Iterator<Item = (Fingerprint, &Bytes)> {
        self.entries.iter().map(|(fp, e)| (*fp, &e.content))
    }

    /// Integrity scan: re-hashes every blob and returns the fingerprints
    /// whose content no longer matches (empty = clean), sorted.
    pub fn verify(&self) -> Vec<Fingerprint> {
        self.verify_with(&gear_par::Pool::serial())
    }

    /// [`MemStore::verify`] fanned out across `pool`. Output is sorted, so
    /// it is identical for any worker count (and to the serial scan).
    pub fn verify_with(&self, pool: &gear_par::Pool) -> Vec<Fingerprint> {
        let entries: Vec<(Fingerprint, &Bytes)> = self.iter().collect();
        let mut bad: Vec<Fingerprint> = pool
            .map(&entries, |(fp, raw)| (Fingerprint::of(raw) != *fp).then_some(*fp))
            .into_iter()
            .flatten()
            .collect();
        bad.sort();
        bad
    }

    /// Drops every blob (the paper's cold-cache experiment setup) but keeps
    /// statistics.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.bytes = 0;
        self.pinned_bytes = 0;
    }

    /// The store's complete state as a [`MemSnapshot`] (entries in
    /// fingerprint order, so equal states snapshot identically).
    pub fn snapshot_parts(&self) -> crate::MemSnapshot {
        let mut entries: Vec<crate::EntrySnapshot> = self
            .entries
            .iter()
            .map(|(fp, e)| crate::EntrySnapshot {
                fingerprint: *fp,
                content: e.content.clone(),
                pins: e.pins,
                inserted: e.inserted,
                used: e.used,
            })
            .collect();
        entries.sort_by_key(|e| e.fingerprint);
        crate::MemSnapshot {
            policy: self.policy,
            capacity: self.capacity,
            ticks: self.ticks.value(),
            entries,
            counters: self.stats,
        }
    }

    /// Rebuilds a store from a snapshot, drawing future ticks from `ticks`
    /// (pass `TickSource::at(snapshot.ticks)`, or a shared source for the
    /// shards of a [`Sharded`](crate::Sharded)). The result behaves
    /// tick-for-tick identically to the snapshotted store.
    pub fn restore(snapshot: &crate::MemSnapshot, ticks: TickSource) -> Self {
        let mut store = MemStore {
            policy: snapshot.policy,
            capacity: snapshot.capacity,
            ticks,
            stats: snapshot.counters,
            ..Self::default()
        };
        for e in &snapshot.entries {
            store.bytes += e.content.len() as u64;
            if e.pins > 0 {
                store.pinned_bytes += e.content.len() as u64;
            } else {
                let key = match snapshot.policy {
                    EvictionPolicy::Fifo => e.inserted,
                    EvictionPolicy::Lru => e.used,
                };
                store.index.insert((key, e.fingerprint));
            }
            store.entries.insert(
                e.fingerprint,
                StoreEntry {
                    content: e.content.clone(),
                    pins: e.pins,
                    inserted: e.inserted,
                    used: e.used,
                },
            );
        }
        store
    }

    /// Overwrites the stored body of `fingerprint` without touching its key,
    /// simulating on-disk corruption for integrity tests.
    #[doc(hidden)]
    pub fn corrupt_for_test(&mut self, fingerprint: Fingerprint, bad: Bytes) {
        let entry = self.entries.get_mut(&fingerprint).expect("blob exists");
        let old = entry.content.len() as u64;
        let new = bad.len() as u64;
        self.bytes = self.bytes - old + new;
        if entry.pins > 0 {
            self.pinned_bytes = self.pinned_bytes - old + new;
        }
        entry.content = bad;
    }
}

impl BlobStore for MemStore {
    fn contains(&self, fingerprint: Fingerprint) -> bool {
        MemStore::contains(self, fingerprint)
    }

    fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        MemStore::peek(self, fingerprint)
    }

    fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        MemStore::get(self, fingerprint)
    }

    fn put(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        self.insert(fingerprint, content)
    }

    fn pin(&mut self, fingerprint: Fingerprint) {
        MemStore::pin(self, fingerprint);
    }

    fn unpin(&mut self, fingerprint: Fingerprint) {
        MemStore::unpin(self, fingerprint);
    }

    fn evict(&mut self) -> Option<(Fingerprint, u64)> {
        MemStore::evict(self)
    }

    fn victim_key(&self) -> Option<u64> {
        MemStore::victim_key(self)
    }

    fn stats(&self) -> StoreStats {
        MemStore::stats(self)
    }

    fn verify(&self) -> Vec<Fingerprint> {
        MemStore::verify(self)
    }

    fn len(&self) -> usize {
        MemStore::len(self)
    }

    fn is_empty(&self) -> bool {
        MemStore::is_empty(self)
    }

    fn bytes(&self) -> u64 {
        MemStore::bytes(self)
    }

    fn clear(&mut self) {
        MemStore::clear(self);
    }

    fn snapshot(&self) -> crate::StoreSnapshot {
        crate::StoreSnapshot::Mem(self.snapshot_parts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    fn body(n: u8, len: usize) -> Bytes {
        Bytes::from(vec![n; len])
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = MemStore::new();
        assert!(c.get(fp(1)).is_none());
        c.insert(fp(1), body(1, 10));
        assert_eq!(c.get(fp(1)).unwrap().len(), 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn dedup_on_insert() {
        let mut c = MemStore::new();
        assert!(c.insert(fp(1), body(1, 10)));
        assert!(c.insert(fp(1), body(1, 10)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 10);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let mut c = MemStore::with_policy(EvictionPolicy::Fifo, Some(25));
        c.insert(fp(1), body(1, 10));
        c.insert(fp(2), body(2, 10));
        c.get(fp(1)); // recently used, but FIFO ignores that
        c.insert(fp(3), body(3, 10));
        assert!(!c.contains(fp(1)), "oldest-inserted must be evicted");
        assert!(c.contains(fp(2)) && c.contains(fp(3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = MemStore::with_policy(EvictionPolicy::Lru, Some(25));
        c.insert(fp(1), body(1, 10));
        c.insert(fp(2), body(2, 10));
        c.get(fp(1)); // refresh 1, so 2 is the LRU victim
        c.insert(fp(3), body(3, 10));
        assert!(c.contains(fp(1)));
        assert!(!c.contains(fp(2)));
    }

    #[test]
    fn pinned_blobs_survive_eviction() {
        let mut c = MemStore::with_policy(EvictionPolicy::Lru, Some(25));
        c.insert(fp(1), body(1, 10));
        c.pin(fp(1));
        c.insert(fp(2), body(2, 10));
        c.insert(fp(3), body(3, 10)); // must evict 2, not pinned 1
        assert!(c.contains(fp(1)));
        assert!(!c.contains(fp(2)));
        // Unpin and it becomes evictable again.
        c.unpin(fp(1));
        c.insert(fp(4), body(4, 10));
        assert!(!c.contains(fp(1)));
    }

    #[test]
    fn oversized_and_all_pinned() {
        let mut c = MemStore::with_policy(EvictionPolicy::Lru, Some(10));
        assert!(!c.insert(fp(1), body(1, 11)), "larger than capacity");
        c.insert(fp(2), body(2, 10));
        c.pin(fp(2));
        assert!(!c.insert(fp(3), body(3, 5)), "cannot evict pinned content");
    }

    #[test]
    fn clear_keeps_stats() {
        let mut c = MemStore::new();
        c.insert(fp(1), body(1, 4));
        c.get(fp(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().pinned_bytes, 0);
    }

    #[test]
    fn contains_does_not_perturb_recency() {
        let mut c = MemStore::with_policy(EvictionPolicy::Lru, Some(25));
        c.insert(fp(1), body(1, 10));
        c.insert(fp(2), body(2, 10));
        // Probe 1 repeatedly: contains() is a pure read, so 1 stays the
        // LRU victim despite being the most recently *probed*.
        for _ in 0..5 {
            assert!(c.contains(fp(1)));
        }
        c.insert(fp(3), body(3, 10));
        assert!(!c.contains(fp(1)), "contains() must not refresh LRU position");
        assert!(c.contains(fp(2)));
        // And it never counts as a hit or a miss.
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn peek_is_a_pure_read() {
        let mut c = MemStore::with_policy(EvictionPolicy::Lru, Some(25));
        c.insert(fp(1), body(1, 10));
        c.insert(fp(2), body(2, 10));
        assert_eq!(c.peek(fp(1)).unwrap(), body(1, 10));
        assert!(c.peek(fp(9)).is_none());
        c.insert(fp(3), body(3, 10));
        assert!(!c.contains(fp(1)), "peek() must not refresh LRU position");
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn touch_refreshes_recency_like_get() {
        let mut touched = MemStore::with_policy(EvictionPolicy::Lru, Some(25));
        let mut gotten = MemStore::with_policy(EvictionPolicy::Lru, Some(25));
        for c in [&mut touched, &mut gotten] {
            c.insert(fp(1), body(1, 10));
            c.insert(fp(2), body(2, 10));
        }
        touched.touch(fp(1));
        gotten.get(fp(1));
        for c in [&mut touched, &mut gotten] {
            c.insert(fp(3), body(3, 10));
            assert!(c.contains(fp(1)));
            assert!(!c.contains(fp(2)));
        }
        // touch() consumed a tick but recorded no hit.
        assert_eq!(touched.stats().hits, 0);
        assert_eq!(gotten.stats().hits, 1);
    }

    #[test]
    fn get_refreshes_recency_while_pinned() {
        let mut c = MemStore::with_policy(EvictionPolicy::Lru, Some(25));
        c.insert(fp(1), body(1, 10));
        c.insert(fp(2), body(2, 10));
        c.pin(fp(1));
        c.get(fp(1)); // bumps 1's recency even though it is pinned
        c.unpin(fp(1));
        // 1 was used after 2, so 2 — not 1 — is the victim.
        c.insert(fp(3), body(3, 10));
        assert!(c.contains(fp(1)), "pinned-era access keeps 1 recent after unpin");
        assert!(!c.contains(fp(2)));
    }

    #[test]
    fn pinned_bytes_gauge_tracks_pin_transitions() {
        let mut c = MemStore::new();
        c.insert(fp(1), body(1, 10));
        c.insert(fp(2), body(2, 7));
        assert_eq!(c.stats().pinned_bytes, 0);
        c.pin(fp(1));
        assert_eq!(c.stats().pinned_bytes, 10);
        c.pin(fp(1)); // second pin on the same entry: no double count
        assert_eq!(c.stats().pinned_bytes, 10);
        c.pin(fp(2));
        assert_eq!(c.stats().pinned_bytes, 17);
        c.unpin(fp(1)); // 2 pins -> 1: still pinned
        assert_eq!(c.stats().pinned_bytes, 17);
        c.unpin(fp(1)); // 1 -> 0: released
        assert_eq!(c.stats().pinned_bytes, 7);
        c.unpin(fp(2));
        assert_eq!(c.stats().pinned_bytes, 0);
        c.unpin(fp(2)); // over-unpin is a no-op
        assert_eq!(c.stats().pinned_bytes, 0);
    }

    #[test]
    fn remove_is_silent_and_exact() {
        let mut c = MemStore::with_policy(EvictionPolicy::Lru, Some(100));
        c.insert(fp(1), body(1, 10));
        c.insert(fp(2), body(2, 7));
        c.pin(fp(2));
        assert_eq!(c.remove(fp(1)), Some(10));
        assert_eq!(c.remove(fp(2)), Some(7), "remove ignores pins");
        assert_eq!(c.remove(fp(3)), None);
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        let s = c.stats();
        assert_eq!((s.evictions, s.evicted_bytes, s.pinned_bytes), (0, 0, 0));
        // The eviction index is clean: nothing dangling to evict.
        assert!(c.evict().is_none());
    }

    #[test]
    fn eviction_index_survives_churn() {
        // Interleave inserts/gets/pins over a small capacity and verify the
        // map and index never disagree (every unpinned entry evictable,
        // byte accounting exact).
        let mut c = MemStore::with_policy(EvictionPolicy::Lru, Some(64));
        for round in 0u8..120 {
            c.insert(fp(round % 16), body(round % 16, 8 + (round % 5) as usize));
            c.get(fp(round.wrapping_mul(7) % 16));
            if round % 3 == 0 {
                c.pin(fp(round % 16));
            }
            if round % 3 == 1 {
                c.unpin(fp(round.wrapping_sub(1) % 16));
            }
            assert!(c.bytes() <= 64);
        }
        // Drain: with all pins released, eviction must be able to empty it.
        for n in 0u8..16 {
            c.unpin(fp(n));
            c.unpin(fp(n));
        }
        while c.evict().is_some() {}
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn verify_flags_corruption_and_matches_parallel() {
        let mut c = MemStore::new();
        let bodies: Vec<Bytes> = (0u8..40).map(|i| Bytes::from(vec![i; 50])).collect();
        for b in &bodies {
            c.insert(Fingerprint::of(b), b.clone());
        }
        assert!(c.verify().is_empty(), "fresh store is clean");
        let bad_a = Fingerprint::of(&bodies[3]);
        let bad_b = Fingerprint::of(&bodies[17]);
        c.corrupt_for_test(bad_a, Bytes::from_static(b"bit rot"));
        c.corrupt_for_test(bad_b, Bytes::from_static(b"more rot"));
        let serial = c.verify();
        let mut expected = vec![bad_a, bad_b];
        expected.sort();
        assert_eq!(serial, expected);
        for workers in [2, 4, 8] {
            assert_eq!(c.verify_with(&gear_par::Pool::new(workers)), serial);
        }
    }

    #[test]
    fn shared_ticks_stay_globally_ordered() {
        let ticks = TickSource::new();
        let mut a = MemStore::with_ticks(EvictionPolicy::Lru, None, ticks.clone());
        let mut b = MemStore::with_ticks(EvictionPolicy::Lru, None, ticks);
        a.insert(fp(1), body(1, 4)); // tick 1
        b.insert(fp(2), body(2, 4)); // tick 2
        a.insert(fp(3), body(3, 4)); // tick 3
        assert_eq!(a.victim_key(), Some(1));
        assert_eq!(b.victim_key(), Some(2));
        a.evict();
        assert_eq!(a.victim_key(), Some(3), "keys interleave across stores");
    }
}
