//! Content-addressed blob storage for the Gear reproduction.
//!
//! Gear's value proposition is file-granularity sharing of content-addressed
//! objects between the registry pool, the client cache, and peer nodes. This
//! crate is the single storage abstraction all three consume: a [`BlobStore`]
//! trait keyed by [`Fingerprint`], with composable implementations:
//!
//! * [`MemStore`] — the capacity-bounded in-memory cache with O(log n)
//!   BTreeSet-indexed eviction (FIFO/LRU) and pinning, absorbing the old
//!   `gear-client` `SharedCache`;
//! * [`DiskStore`] — a [`MemStore`] whose reads and writes accrue simulated
//!   I/O time from a deterministic [`DiskModel`], so tier placement has
//!   priced latency ([`BlobStore::drain_cost`] hands the accrued time to the
//!   caller's clock);
//! * [`TieredStore`] — L1 memory over L2 modeled disk with write-through and
//!   promotion-on-hit policies;
//! * [`Sharded`] — a generic wrapper splitting any store into independently
//!   locked shards selected by fingerprint prefix, replacing the old
//!   `ShardedCache`.
//!
//! The crate is dependency-free in the external sense: it builds from the
//! workspace (`gear-hash`, `gear-simnet`, `gear-par`) and the vendored
//! `bytes`/`parking_lot` only.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Duration;

use bytes::Bytes;
use gear_hash::Fingerprint;

mod disk;
pub mod journal;
mod mem;
mod sharded;
pub mod snapshot;
mod split;
mod stats;
mod tiered;

pub use disk::DiskStore;
pub use journal::{JournalMedia, JournalRecord, RecoveryReport};
pub use mem::{EvictionPolicy, MemStore, TickSource};
pub use sharded::Sharded;
pub use snapshot::{
    DiskSnapshot, EntrySnapshot, MemSnapshot, ShardedSnapshot, SnapshotError, StoreSnapshot,
    TieredSnapshot,
};
pub use split::split_capacity;
pub use stats::StoreStats;
pub use tiered::TieredStore;

/// A content-addressed blob store keyed by MD5 fingerprint.
///
/// The trait is object-safe: consumers hold a `Box<dyn BlobStore>` and swap
/// flat, tiered, or sharded backends without code changes. Semantics every
/// implementation upholds:
///
/// * [`contains`](BlobStore::contains) and [`peek`](BlobStore::peek) are
///   **pure reads** — no recency update, no hit/miss accounting — so
///   residency probes and side-channel reads never perturb eviction order.
/// * [`get`](BlobStore::get) records a hit or miss and refreshes recency,
///   even for pinned entries (pinning grants immunity from eviction, not
///   exemption from recency tracking).
/// * [`put`](BlobStore::put) deduplicates by fingerprint and returns whether
///   the blob is resident afterwards; bounded stores evict unpinned blobs to
///   make room and reject blobs larger than their whole capacity.
/// * Simulated storage cost accrues inside the store and is handed to the
///   caller's clock through [`drain_cost`](BlobStore::drain_cost); a pure
///   in-memory store accrues nothing.
pub trait BlobStore: fmt::Debug + Send {
    /// Whether the blob is resident. A pure read (see trait docs).
    fn contains(&self, fingerprint: Fingerprint) -> bool;

    /// Reads the blob without touching recency or hit/miss accounting, and
    /// without accruing storage cost — the side-channel read used by pure
    /// accessors (dedup checks, wire-size queries, integrity tooling).
    fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes>;

    /// Looks the blob up, recording a hit or miss and refreshing recency.
    fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes>;

    /// Stores the blob (no-op if present), evicting unpinned blobs as
    /// needed. Returns whether the blob is resident afterwards.
    fn put(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool;

    /// Pins the blob (one reference); pinned blobs are never evicted.
    fn pin(&mut self, fingerprint: Fingerprint);

    /// Releases one pin; on the last release the blob rejoins the eviction
    /// order at its current recency.
    fn unpin(&mut self, fingerprint: Fingerprint);

    /// Evicts the policy's current victim, returning its fingerprint and
    /// size; `None` when everything resident is pinned (or the store is
    /// empty).
    fn evict(&mut self) -> Option<(Fingerprint, u64)>;

    /// The eviction-order key of the blob [`evict`](BlobStore::evict) would
    /// remove — smaller keys are evicted first. Lets wrappers (e.g.
    /// [`Sharded`]) pick a global victim across stores sharing a
    /// [`TickSource`].
    fn victim_key(&self) -> Option<u64>;

    /// Accounting so far (hit/miss/eviction counters plus residency gauges).
    fn stats(&self) -> StoreStats;

    /// Integrity scan: re-hashes every blob and returns the fingerprints
    /// whose content no longer matches, sorted (empty = clean).
    fn verify(&self) -> Vec<Fingerprint>;

    /// Resident blob count.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resident bytes.
    fn bytes(&self) -> u64;

    /// Drops every blob but keeps statistics (the paper's cold-cache
    /// experiment setup).
    fn clear(&mut self);

    /// Simulated storage time accrued since the last drain. Callers fold
    /// this into their deterministic clock; memory-only stores return zero.
    fn drain_cost(&mut self) -> Duration {
        Duration::ZERO
    }

    /// Resident bytes split `(memory tier, disk tier)`; single-tier stores
    /// report everything in their native tier.
    fn tier_bytes(&self) -> (u64, u64) {
        (self.bytes(), 0)
    }

    /// Whether a journaled store's planned power cut has fired, leaving the
    /// store inert until recovered (see
    /// [`DiskStore::recover`](crate::DiskStore::recover)). Stores without
    /// crash wiring are never crashed.
    fn is_crashed(&self) -> bool {
        false
    }

    /// The store's complete state for live-upgrade handoff:
    /// [`StoreSnapshot::restore`] rehydrates an instance that behaves
    /// tick-for-tick identically (see [`crate::snapshot`]).
    fn snapshot(&self) -> StoreSnapshot;

    /// Looks the blob up, running `fill` on a miss and storing its result.
    ///
    /// Single-flight safety is the caller's locking discipline: implementors
    /// run `fill` while holding whatever exclusivity `&mut self` (or, for
    /// [`Sharded`], the shard lock) provides, so no two fills for the same
    /// fingerprint can interleave.
    fn get_or_fill(
        &mut self,
        fingerprint: Fingerprint,
        fill: &mut dyn FnMut() -> Option<Bytes>,
    ) -> Option<Bytes> {
        if let Some(content) = self.get(fingerprint) {
            return Some(content);
        }
        let content = fill()?;
        self.put(fingerprint, content.clone());
        Some(content)
    }
}

/// Boxed trait objects are stores too, so wrappers like
/// [`Sharded`] can hold heterogeneous (snapshot-restored) shards.
impl BlobStore for Box<dyn BlobStore> {
    fn contains(&self, fingerprint: Fingerprint) -> bool {
        (**self).contains(fingerprint)
    }

    fn peek(&self, fingerprint: Fingerprint) -> Option<Bytes> {
        (**self).peek(fingerprint)
    }

    fn get(&mut self, fingerprint: Fingerprint) -> Option<Bytes> {
        (**self).get(fingerprint)
    }

    fn put(&mut self, fingerprint: Fingerprint, content: Bytes) -> bool {
        (**self).put(fingerprint, content)
    }

    fn pin(&mut self, fingerprint: Fingerprint) {
        (**self).pin(fingerprint);
    }

    fn unpin(&mut self, fingerprint: Fingerprint) {
        (**self).unpin(fingerprint);
    }

    fn evict(&mut self) -> Option<(Fingerprint, u64)> {
        (**self).evict()
    }

    fn victim_key(&self) -> Option<u64> {
        (**self).victim_key()
    }

    fn stats(&self) -> StoreStats {
        (**self).stats()
    }

    fn verify(&self) -> Vec<Fingerprint> {
        (**self).verify()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn bytes(&self) -> u64 {
        (**self).bytes()
    }

    fn clear(&mut self) {
        (**self).clear();
    }

    fn drain_cost(&mut self) -> Duration {
        (**self).drain_cost()
    }

    fn tier_bytes(&self) -> (u64, u64) {
        (**self).tier_bytes()
    }

    fn is_crashed(&self) -> bool {
        (**self).is_crashed()
    }

    fn snapshot(&self) -> StoreSnapshot {
        (**self).snapshot()
    }

    fn get_or_fill(
        &mut self,
        fingerprint: Fingerprint,
        fill: &mut dyn FnMut() -> Option<Bytes>,
    ) -> Option<Bytes> {
        (**self).get_or_fill(fingerprint, fill)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    #[test]
    fn get_or_fill_is_single_flight_per_call() {
        let mut store: Box<dyn BlobStore> =
            Box::new(MemStore::with_policy(EvictionPolicy::Lru, None));
        let mut fills = 0;
        let body = Bytes::from_static(b"filled");
        for _ in 0..3 {
            let got = store.get_or_fill(fp(1), &mut || {
                fills += 1;
                Some(body.clone())
            });
            assert_eq!(got.unwrap(), body);
        }
        assert_eq!(fills, 1, "only the first lookup runs the fill");
        // A failing fill caches nothing.
        assert!(store.get_or_fill(fp(2), &mut || None).is_none());
        assert!(!store.contains(fp(2)));
    }

    #[test]
    fn default_tier_bytes_is_all_memory() {
        let mut store = MemStore::new();
        store.insert(fp(1), Bytes::from_static(b"abcd"));
        let store: &dyn BlobStore = &store;
        assert_eq!(store.tier_bytes(), (4, 0));
    }
}
