//! Shared per-shard capacity arithmetic.

/// Splits a total byte capacity across `shards` stores with no remainder
/// loss: the first `total % shards` shards get one extra byte, and the
/// per-shard capacities always sum back to exactly `total`. `None`
/// (unbounded) stays unbounded everywhere.
///
/// This is the one audited home for the arithmetic previously duplicated
/// (and floor-truncated) inside the sharded-cache constructor.
///
/// # Panics
///
/// Panics if `shards` is zero — a sharded store with no shards is a
/// construction bug, not a runtime condition.
pub fn split_capacity(total: Option<u64>, shards: usize) -> Vec<Option<u64>> {
    assert!(shards > 0, "capacity split requires at least one shard");
    match total {
        None => vec![None; shards],
        Some(total) => {
            let shards_u64 = shards as u64;
            let base = total / shards_u64;
            let extra = total % shards_u64;
            (0..shards_u64).map(|i| Some(base + u64::from(i < extra))).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_back_to_total_with_no_remainder_loss() {
        for total in [0u64, 1, 7, 64, 100, 1023, 4096, u64::from(u32::MAX)] {
            for shards in [1usize, 2, 3, 5, 7, 8, 13, 64] {
                let parts = split_capacity(Some(total), shards);
                assert_eq!(parts.len(), shards);
                let sum: u64 = parts.iter().map(|p| p.unwrap()).sum();
                assert_eq!(sum, total, "{total} bytes over {shards} shards");
                // The split is as even as integers allow: parts differ by
                // at most one byte.
                let min = parts.iter().map(|p| p.unwrap()).min().unwrap();
                let max = parts.iter().map(|p| p.unwrap()).max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn unbounded_stays_unbounded() {
        assert_eq!(split_capacity(None, 4), vec![None; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        split_capacity(Some(10), 0);
    }
}
