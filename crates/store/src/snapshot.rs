//! Live-upgrade state handoff: serializable snapshots of every store shape.
//!
//! A [`StoreSnapshot`] captures the *complete* observable state of a running
//! store — contents, pin counts, per-entry eviction ticks, the tick counter,
//! accrued (undrained) simulated I/O time, and the statistics counters — so
//! a "new version" process can [`restore`](StoreSnapshot::restore) it
//! mid-traffic and behave **tick-for-tick identically** from that point on:
//! same victims, same hits, same priced I/O. That is the zero-downtime
//! upgrade shape production storage daemons use (nydus' failover/upgrade
//! path), reduced to this crate's deterministic models.
//!
//! Snapshots serialize to a versioned, checksummed binary blob
//! ([`StoreSnapshot::to_bytes`] / [`StoreSnapshot::from_bytes`]) so the
//! handoff can cross a process boundary. Entries are serialized in
//! fingerprint order, making equal states produce equal bytes.
//!
//! A journaled [`DiskStore`](crate::DiskStore) snapshots its *logical* state
//! only: the journal media handle and crash plan are harness-owned wiring,
//! re-attached explicitly on the new instance if desired.

use std::fmt;
use std::time::Duration;

use bytes::Bytes;
use gear_hash::Fingerprint;
use gear_simnet::DiskModel;

use crate::journal::checksum64;
use crate::{
    BlobStore, DiskStore, EvictionPolicy, MemStore, Sharded, StoreStats, TickSource, TieredStore,
};

/// One resident blob's full state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntrySnapshot {
    /// Content address.
    pub fingerprint: Fingerprint,
    /// Stored bytes.
    pub content: Bytes,
    /// Pin references held.
    pub pins: u32,
    /// Insertion tick (FIFO eviction key).
    pub inserted: u64,
    /// Last-use tick (LRU eviction key).
    pub used: u64,
}

/// A [`MemStore`]'s complete state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Replacement policy.
    pub policy: EvictionPolicy,
    /// Byte capacity (`None` = unbounded).
    pub capacity: Option<u64>,
    /// Tick counter value at snapshot time.
    pub ticks: u64,
    /// Resident entries, in fingerprint order.
    pub entries: Vec<EntrySnapshot>,
    /// Monotonic counters (gauges are recomputed from the entries).
    pub counters: StoreStats,
}

/// A [`DiskStore`]'s complete state.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSnapshot {
    /// The backing in-memory state.
    pub mem: MemSnapshot,
    /// The I/O pricing model.
    pub model: DiskModel,
    /// Corpus byte-scale multiplier.
    pub byte_scale: u64,
    /// Simulated I/O time accrued but not yet drained.
    pub accrued: Duration,
}

/// A [`TieredStore`]'s complete state.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredSnapshot {
    /// The L1 accelerator tier.
    pub l1: MemSnapshot,
    /// The authoritative L2 tier.
    pub l2: DiskSnapshot,
    /// Whether L2 hits install an L1 copy.
    pub promote_on_hit: bool,
}

/// A [`Sharded`] store's complete state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedSnapshot {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<StoreSnapshot>,
}

/// A snapshot of any store shape this crate builds.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreSnapshot {
    /// Flat in-memory store.
    Mem(MemSnapshot),
    /// Store on modeled disk.
    Disk(DiskSnapshot),
    /// L1 memory over L2 disk.
    Tiered(TieredSnapshot),
    /// Sharded wrapper.
    Sharded(ShardedSnapshot),
}

/// Why a serialized snapshot failed to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the encoding did.
    Truncated,
    /// The leading magic was not a snapshot's.
    BadMagic,
    /// The version byte is newer than this build understands.
    BadVersion(u8),
    /// The trailing checksum did not match the payload.
    ChecksumMismatch,
    /// A tag or field held an impossible value.
    Malformed,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a store snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed => write!(f, "malformed snapshot field"),
        }
    }
}

impl std::error::Error for SnapshotError {}

const MAGIC: &[u8; 4] = b"GSNP";
const VERSION: u8 = 1;

const TAG_MEM: u8 = 0;
const TAG_DISK: u8 = 1;
const TAG_TIERED: u8 = 2;
const TAG_SHARDED: u8 = 3;

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(n) => {
                self.u8(1);
                self.u64(n);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(SnapshotError::Truncated)?;
        self.pos += n;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }
    fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u64()? as usize;
        self.take(len)
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::Malformed),
        }
    }
}

fn encode_stats(w: &mut Writer, s: &StoreStats) {
    for v in [
        s.hits,
        s.misses,
        s.evictions,
        s.evicted_bytes,
        s.pinned_bytes,
        s.objects,
        s.stored_bytes,
        s.logical_bytes,
        s.dedup_hits,
    ] {
        w.u64(v);
    }
}

fn decode_stats(r: &mut Reader) -> Result<StoreStats, SnapshotError> {
    Ok(StoreStats {
        hits: r.u64()?,
        misses: r.u64()?,
        evictions: r.u64()?,
        evicted_bytes: r.u64()?,
        pinned_bytes: r.u64()?,
        objects: r.u64()?,
        stored_bytes: r.u64()?,
        logical_bytes: r.u64()?,
        dedup_hits: r.u64()?,
    })
}

fn encode_mem(w: &mut Writer, m: &MemSnapshot) {
    w.u8(match m.policy {
        EvictionPolicy::Fifo => 0,
        EvictionPolicy::Lru => 1,
    });
    w.opt_u64(m.capacity);
    w.u64(m.ticks);
    encode_stats(w, &m.counters);
    w.u64(m.entries.len() as u64);
    for e in &m.entries {
        w.0.extend_from_slice(e.fingerprint.as_bytes());
        w.bytes(&e.content);
        w.u32(e.pins);
        w.u64(e.inserted);
        w.u64(e.used);
    }
}

fn decode_mem(r: &mut Reader) -> Result<MemSnapshot, SnapshotError> {
    let policy = match r.u8()? {
        0 => EvictionPolicy::Fifo,
        1 => EvictionPolicy::Lru,
        _ => return Err(SnapshotError::Malformed),
    };
    let capacity = r.opt_u64()?;
    let ticks = r.u64()?;
    let counters = decode_stats(r)?;
    let count = r.u64()? as usize;
    let mut entries = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let fingerprint =
            Fingerprint::from_bytes(r.take(16)?.try_into().expect("16 bytes"));
        let content = Bytes::copy_from_slice(r.bytes()?);
        let pins = r.u32()?;
        let inserted = r.u64()?;
        let used = r.u64()?;
        entries.push(EntrySnapshot { fingerprint, content, pins, inserted, used });
    }
    Ok(MemSnapshot { policy, capacity, ticks, entries, counters })
}

fn encode_disk(w: &mut Writer, d: &DiskSnapshot) {
    encode_mem(w, &d.mem);
    w.u64(d.model.bytes_per_sec.to_bits());
    w.u128(d.model.per_file.as_nanos());
    w.u64(d.byte_scale);
    w.u128(d.accrued.as_nanos());
}

fn nanos_to_duration(nanos: u128) -> Result<Duration, SnapshotError> {
    let secs = u64::try_from(nanos / 1_000_000_000).map_err(|_| SnapshotError::Malformed)?;
    Ok(Duration::new(secs, (nanos % 1_000_000_000) as u32))
}

fn decode_disk(r: &mut Reader) -> Result<DiskSnapshot, SnapshotError> {
    let mem = decode_mem(r)?;
    let bytes_per_sec = f64::from_bits(r.u64()?);
    let per_file = nanos_to_duration(r.u128()?)?;
    let byte_scale = r.u64()?;
    let accrued = nanos_to_duration(r.u128()?)?;
    Ok(DiskSnapshot {
        mem,
        model: DiskModel { bytes_per_sec, per_file },
        byte_scale,
        accrued,
    })
}

fn encode_snapshot(w: &mut Writer, snapshot: &StoreSnapshot) {
    match snapshot {
        StoreSnapshot::Mem(m) => {
            w.u8(TAG_MEM);
            encode_mem(w, m);
        }
        StoreSnapshot::Disk(d) => {
            w.u8(TAG_DISK);
            encode_disk(w, d);
        }
        StoreSnapshot::Tiered(t) => {
            w.u8(TAG_TIERED);
            encode_mem(w, &t.l1);
            encode_disk(w, &t.l2);
            w.u8(t.promote_on_hit as u8);
        }
        StoreSnapshot::Sharded(s) => {
            w.u8(TAG_SHARDED);
            w.u64(s.shards.len() as u64);
            for shard in &s.shards {
                encode_snapshot(w, shard);
            }
        }
    }
}

fn decode_snapshot(r: &mut Reader) -> Result<StoreSnapshot, SnapshotError> {
    Ok(match r.u8()? {
        TAG_MEM => StoreSnapshot::Mem(decode_mem(r)?),
        TAG_DISK => StoreSnapshot::Disk(decode_disk(r)?),
        TAG_TIERED => {
            let l1 = decode_mem(r)?;
            let l2 = decode_disk(r)?;
            let promote_on_hit = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Malformed),
            };
            StoreSnapshot::Tiered(TieredSnapshot { l1, l2, promote_on_hit })
        }
        TAG_SHARDED => {
            let count = r.u64()? as usize;
            let mut shards = Vec::with_capacity(count.min(1 << 10));
            for _ in 0..count {
                shards.push(decode_snapshot(r)?);
            }
            StoreSnapshot::Sharded(ShardedSnapshot { shards })
        }
        _ => return Err(SnapshotError::Malformed),
    })
}

impl StoreSnapshot {
    /// Serializes the snapshot: magic, version, payload, FNV-1a trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer(Vec::new());
        w.0.extend_from_slice(MAGIC);
        w.u8(VERSION);
        encode_snapshot(&mut w, self);
        let check = checksum64(&w.0);
        w.u64(check);
        w.0
    }

    /// Loads a snapshot serialized by [`StoreSnapshot::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<StoreSnapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() + 1 + 8 {
            return Err(SnapshotError::Truncated);
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let check = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if checksum64(payload) != check {
            return Err(SnapshotError::ChecksumMismatch);
        }
        if &payload[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if payload[4] != VERSION {
            return Err(SnapshotError::BadVersion(payload[4]));
        }
        let mut r = Reader { buf: payload, pos: 5 };
        let snapshot = decode_snapshot(&mut r)?;
        if r.pos != payload.len() {
            return Err(SnapshotError::Malformed);
        }
        Ok(snapshot)
    }

    /// Rehydrates a store that behaves tick-for-tick identically to the one
    /// snapshotted (see the module docs). Journal/crash wiring is not part
    /// of a snapshot and comes back detached.
    pub fn restore(&self) -> Box<dyn BlobStore> {
        match self {
            StoreSnapshot::Mem(m) => Box::new(MemStore::restore(m, TickSource::at(m.ticks))),
            StoreSnapshot::Disk(d) => Box::new(DiskStore::restore(d)),
            StoreSnapshot::Tiered(t) => Box::new(TieredStore::restore(t)),
            StoreSnapshot::Sharded(s) => {
                // Shards built by `Sharded::with_policy` share one tick
                // counter; rebuild memory shards against a shared source at
                // the highest recorded value so cross-shard eviction keys
                // keep their global order.
                let all_mem = s.shards.iter().all(|sh| matches!(sh, StoreSnapshot::Mem(_)));
                if all_mem {
                    let ticks = TickSource::at(
                        s.shards
                            .iter()
                            .map(|sh| match sh {
                                StoreSnapshot::Mem(m) => m.ticks,
                                _ => 0,
                            })
                            .max()
                            .unwrap_or(0),
                    );
                    let stores: Vec<Box<dyn BlobStore>> = s
                        .shards
                        .iter()
                        .map(|sh| match sh {
                            StoreSnapshot::Mem(m) => {
                                Box::new(MemStore::restore(m, ticks.clone()))
                                    as Box<dyn BlobStore>
                            }
                            _ => unreachable!("all_mem checked above"),
                        })
                        .collect();
                    Box::new(Sharded::from_shards(stores))
                } else {
                    Box::new(Sharded::from_shards(
                        s.shards.iter().map(StoreSnapshot::restore).collect(),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    fn body(n: u8, len: usize) -> Bytes {
        Bytes::from(vec![n; len])
    }

    fn busy_mem() -> MemStore {
        let mut m = MemStore::with_policy(EvictionPolicy::Lru, Some(200));
        for n in 0u8..12 {
            m.insert(fp(n), body(n, 10 + n as usize));
        }
        m.get(fp(3));
        m.get(fp(200)); // miss
        m.pin(fp(5));
        m.pin(fp(5));
        m.pin(fp(7));
        m.unpin(fp(7));
        m.evict();
        m
    }

    #[test]
    fn bytes_roundtrip_is_exact_for_every_shape() {
        let mem = StoreSnapshot::Mem(busy_mem().snapshot_parts());
        let mut disk = DiskStore::new(EvictionPolicy::Fifo, Some(500), DiskModel::hdd(), 16);
        disk.insert(fp(1), body(1, 64));
        disk.pin(fp(1));
        let disk = disk.snapshot();
        let mut tiered =
            TieredStore::new(EvictionPolicy::Lru, Some(32), Some(100), DiskModel::ssd(), 1, true);
        tiered.put(fp(2), body(2, 16));
        tiered.get(fp(2));
        let tiered = tiered.snapshot();
        let sharded = Sharded::with_policy(EvictionPolicy::Lru, Some(300), 3);
        for n in 0u8..9 {
            sharded.insert(fp(n), body(n, 8));
        }
        let sharded = BlobStore::snapshot(&sharded);

        for snapshot in [mem, disk, tiered, sharded] {
            let bytes = snapshot.to_bytes();
            let back = StoreSnapshot::from_bytes(&bytes).expect("roundtrip");
            assert_eq!(back, snapshot);
            // Canonical: equal state re-serializes to equal bytes.
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn truncation_and_corruption_are_rejected() {
        let snapshot = StoreSnapshot::Mem(busy_mem().snapshot_parts());
        let bytes = snapshot.to_bytes();
        for keep in 0..bytes.len() {
            assert!(
                StoreSnapshot::from_bytes(&bytes[..keep]).is_err(),
                "prefix of {keep} bytes must not load"
            );
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(StoreSnapshot::from_bytes(&bad).is_err(), "flip at {i} must be caught");
        }
    }

    #[test]
    fn restored_mem_store_behaves_tick_for_tick() {
        let mut original = busy_mem();
        let mut restored = StoreSnapshot::Mem(original.snapshot_parts()).restore();
        assert_eq!(original.stats(), restored.stats());
        assert_eq!(original.bytes(), restored.bytes());
        // Drive both through the same suffix; every observation must match.
        for n in 0u8..40 {
            assert_eq!(
                original.get(fp(n % 14)).is_some(),
                restored.get(fp(n % 14)).is_some(),
                "get {n}"
            );
            assert_eq!(
                original.insert(fp(100 + n), body(n, 9)),
                restored.put(fp(100 + n), body(n, 9)),
                "put {n}"
            );
            assert_eq!(original.victim_key(), restored.victim_key(), "victim {n}");
        }
        assert_eq!(original.stats(), restored.stats());
        let mut a = Vec::new();
        let mut b = Vec::new();
        while let Some(v) = original.evict() {
            a.push(v);
        }
        while let Some(v) = restored.evict() {
            b.push(v);
        }
        assert_eq!(a, b, "identical eviction sequence to the end");
    }

    #[test]
    fn restored_disk_store_keeps_accrued_cost_and_pricing() {
        let mut original = DiskStore::new(EvictionPolicy::Lru, None, DiskModel::hdd(), 8);
        original.insert(fp(1), body(1, 1000));
        // Snapshot with the write cost still staged.
        let mut restored = original.snapshot().restore();
        assert_eq!(restored.drain_cost(), original.drain_cost(), "staged cost survives");
        // Same pricing model after restore.
        original.get(fp(1));
        restored.get(fp(1));
        assert_eq!(restored.drain_cost(), original.drain_cost());
    }

    #[test]
    fn restored_sharded_store_keeps_global_eviction_order() {
        let sharded = Sharded::with_policy(EvictionPolicy::Fifo, None, 4);
        let order: Vec<Fingerprint> = (0u8..12).map(fp).collect();
        for (i, f) in order.iter().enumerate() {
            sharded.insert(*f, body(i as u8, 4));
        }
        let mut restored = BlobStore::snapshot(&sharded).restore();
        let mut victims = Vec::new();
        while let Some((f, _)) = restored.evict() {
            victims.push(f);
        }
        assert_eq!(victims, order, "global FIFO order survives the handoff");
    }
}
