//! Crash-recovery invariants for the journaled [`DiskStore`], under proptest
//! and under a deterministic seed matrix (the CI `crash-chaos` job).
//!
//! The contract under test (see `gear_store::journal`):
//!
//! * **Atomic batches** — after recovering from a crash, the store state is
//!   exactly the state after some *prefix of whole operations*: either the
//!   crashing operation committed entirely (evictions + put together) or it
//!   vanished entirely. Equivalently: no acknowledged blob is ever lost, and
//!   unacknowledged puts leave no trace — no partial contents, no orphan
//!   evictions.
//! * **Statistics rebuilt consistent** — gauges match a fresh scan of the
//!   recovered contents; counters restart at zero.
//! * **Idempotent replay** — recovering twice from the same media yields the
//!   same store.
//! * **L1 ⊆ L2** — a tiered store whose journaled L2 crashes recovers with
//!   its volatile L1 empty, and the inclusion holds through post-recovery
//!   traffic.

use bytes::Bytes;
use gear_hash::Fingerprint;
use gear_simnet::{CrashPlan, CrashPoint, DiskModel};
use gear_store::{
    BlobStore, DiskStore, EvictionPolicy, JournalMedia, MemStore, StoreSnapshot, TieredStore,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u16),
    Get(u8),
    Pin(u8),
    Unpin(u8),
    Evict,
    Clear,
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u16..256).prop_map(|(k, len)| Op::Put(k, len)),
        (any::<u8>(), 1u16..256).prop_map(|(k, len)| Op::Put(k, len)),
        (any::<u8>(), 1u16..256).prop_map(|(k, len)| Op::Put(k, len)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Pin),
        any::<u8>().prop_map(Op::Unpin),
        Just(Op::Evict),
        Just(Op::Clear),
    ]
}

fn any_policy() -> impl Strategy<Value = EvictionPolicy> {
    prop_oneof![Just(EvictionPolicy::Fifo), Just(EvictionPolicy::Lru)]
}

fn any_plan() -> impl Strategy<Value = CrashPlan> {
    let point = prop_oneof![
        Just(CrashPoint::BeforeWrite),
        Just(CrashPoint::TornWrite),
        Just(CrashPoint::AfterWrite),
    ];
    prop_oneof![
        // Scripted: die at an exact journal write.
        (0u64..60, point).prop_map(|(at, p)| CrashPlan::new(0).crash_at_write(at, p)),
        // Probabilistic: seeded per-write coin.
        (any::<u64>(), 2u32..20)
            .prop_map(|(seed, p)| CrashPlan::new(seed).with_crash(f64::from(p) / 100.0)),
    ]
}

fn fp(k: u8) -> Fingerprint {
    Fingerprint::of(&[k])
}

fn body(k: u8, len: u16) -> Bytes {
    Bytes::from(vec![k; len as usize])
}

fn apply(store: &mut dyn BlobStore, op: &Op) -> String {
    match op {
        Op::Put(k, len) => format!("put={}", store.put(fp(*k), body(*k, *len))),
        Op::Get(k) => format!("get={:?}", store.get(fp(*k)).map(|b| b.len())),
        Op::Pin(k) => {
            store.pin(fp(*k));
            String::new()
        }
        Op::Unpin(k) => {
            store.unpin(fp(*k));
            String::new()
        }
        Op::Evict => format!("evict={:?}", store.evict()),
        Op::Clear => {
            store.clear();
            String::new()
        }
    }
}

/// The logical contents a snapshot exposes: `(fingerprint, content, pins)`
/// in fingerprint order — everything that must survive a crash (ticks and
/// counters are volatile and excluded on purpose).
fn logical_state(store: &dyn BlobStore) -> Vec<(Fingerprint, Bytes, u32)> {
    let mem = match store.snapshot() {
        StoreSnapshot::Mem(m) => m,
        StoreSnapshot::Disk(d) => d.mem,
        other => panic!("single-store test helper got {other:?}"),
    };
    mem.entries.into_iter().map(|e| (e.fingerprint, e.content, e.pins)).collect()
}

/// Drives `ops` into a journaled store under `plan`; on a crash, recovers
/// from the media and checks every recovery invariant against two shadow
/// stores (state before the crashing op / state after it). Returns whether
/// a crash fired, so callers can assert coverage.
fn run_crash_case(
    policy: EvictionPolicy,
    capacity: Option<u64>,
    ops: &[Op],
    plan: CrashPlan,
) -> bool {
    let media = JournalMedia::new();
    let model = DiskModel::ssd();
    let mut store =
        DiskStore::with_journal(policy, capacity, model, 1, media.clone(), plan);
    // Shadows replicate the plain (crash-free) semantics: `completed` holds
    // every op that finished before the crash, `including` additionally
    // holds the op the crash interrupted.
    let mut completed = DiskStore::new(policy, capacity, model, 1);
    let mut including = DiskStore::new(policy, capacity, model, 1);

    let mut crash_op: Option<(usize, String)> = None;
    for (i, op) in ops.iter().enumerate() {
        let observed = apply(&mut store, op);
        apply(&mut including, op);
        if store.is_crashed() {
            crash_op = Some((i, observed));
            break;
        }
        let shadow = apply(&mut completed, op);
        assert_eq!(observed, shadow, "pre-crash op {op:?} must behave crash-free");
    }

    let Some((crash_index, crash_observed)) = crash_op else {
        // No crash: the journaled store must agree with plain semantics to
        // the end, and recovery from a cleanly committed journal must
        // reproduce the live contents.
        let (recovered, report) = DiskStore::recover(policy, capacity, model, 1, media);
        assert!(!report.torn_tail, "no crash, no torn tail");
        assert_eq!(report.discarded_records, 0);
        assert_eq!(logical_state(&recovered), logical_state(&completed));
        return false;
    };

    let (recovered, report) = DiskStore::recover(policy, capacity, model, 1, media.clone());
    let state = logical_state(&recovered);
    assert_eq!(report.recovered_blobs as usize, state.len(), "report counts what it recovered");
    let before = logical_state(&completed);
    let after = logical_state(&including);

    // Atomicity: recovery lands exactly on a whole-operation boundary.
    assert!(
        state == before || state == after,
        "recovered state is neither side of the crashing op #{crash_index} \
         {:?}\n  recovered: {state:?}\n  before: {before:?}\n  after: {after:?}",
        ops[crash_index],
    );
    // An acknowledged put must be on the committed side.
    if crash_observed == "put=true" {
        assert_eq!(state, after, "acked put lost by recovery");
    }
    // No partial contents: every recovered blob is byte-exact (keys encode
    // the fill byte, so any torn body would differ).
    for (f, content, _) in &state {
        let k = content.first().copied().expect("bodies are non-empty");
        assert_eq!(*f, fp(k), "recovered key mismatch");
        assert!(content.iter().all(|b| *b == k), "partial blob content for {f}");
    }
    // Stats: gauges match a fresh scan, counters restart at zero.
    let stats = recovered.stats();
    assert_eq!(stats.objects, state.len() as u64);
    assert_eq!(stats.stored_bytes, state.iter().map(|(_, c, _)| c.len() as u64).sum::<u64>());
    assert_eq!(
        stats.pinned_bytes,
        state
            .iter()
            .filter(|(_, _, pins)| *pins > 0)
            .map(|(_, c, _)| c.len() as u64)
            .sum::<u64>()
    );
    assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 0, 0));
    // Idempotent replay: a second recovery (from the now-compacted media)
    // sees the identical store.
    let (again, _) = DiskStore::recover(policy, capacity, model, 1, media);
    assert_eq!(logical_state(&again), state);
    true
}

proptest! {
    /// The tentpole property: under any op sequence, policy, capacity, and
    /// crash plan, recovery is atomic at operation granularity, loses no
    /// acknowledged blob, drops every unacknowledged put, rebuilds stats
    /// consistently, and replays idempotently.
    #[test]
    fn recovery_invariants_hold_at_every_crash_point(
        ops in proptest::collection::vec(any_op(), 1..80),
        policy in any_policy(),
        capacity in prop_oneof![Just(None), (300u64..3000).prop_map(Some)],
        plan in any_plan(),
    ) {
        run_crash_case(policy, capacity, &ops, plan);
    }

    /// L1 ⊆ L2 holds through a crash: the tiered store's volatile L1 is
    /// empty right after recovery and stays included in L2 under further
    /// traffic.
    #[test]
    fn tiered_l1_subset_of_l2_survives_crash_and_recovery(
        ops in proptest::collection::vec(any_op(), 1..60),
        suffix in proptest::collection::vec(any_op(), 1..40),
        l1_capacity in prop_oneof![Just(None), (100u64..800).prop_map(Some)],
        plan in any_plan(),
    ) {
        let media = JournalMedia::new();
        let policy = EvictionPolicy::Lru;
        let l2_capacity = Some(2000);
        let model = DiskModel::ssd();
        let l2 = DiskStore::with_journal(policy, l2_capacity, model, 1, media.clone(), plan);
        let mut tiered =
            TieredStore::from_parts(MemStore::with_policy(policy, l1_capacity), l2, true);
        for op in &ops {
            apply(&mut tiered, op);
            if tiered.is_crashed() {
                break;
            }
        }
        if !tiered.is_crashed() {
            return Ok(()); // crash-free runs are covered elsewhere
        }
        prop_assert_eq!(tiered.tier_bytes(), (0, 0), "dead machine holds nothing");
        let (l2, _) = DiskStore::recover(policy, l2_capacity, model, 1, media);
        let mut tiered =
            TieredStore::from_parts(MemStore::with_policy(policy, l1_capacity), l2, true);
        prop_assert_eq!(tiered.tier_bytes().0, 0, "L1 restarts cold");
        for op in &suffix {
            apply(&mut tiered, op);
            // Inclusion check via the snapshot: every L1 entry must be in
            // L2 with identical bytes.
            let StoreSnapshot::Tiered(snap) = BlobStore::snapshot(&tiered) else {
                unreachable!()
            };
            for entry in &snap.l1.entries {
                let twin = snap
                    .l2
                    .mem
                    .entries
                    .iter()
                    .find(|e| e.fingerprint == entry.fingerprint);
                prop_assert!(
                    twin.is_some_and(|t| t.content == entry.content),
                    "L1 blob {} missing from L2 after {:?}",
                    entry.fingerprint,
                    op
                );
            }
        }
    }

    /// Upgrade handoff bit-identity: snapshot a store mid-workload, push the
    /// snapshot through its byte encoding, restore, and the restored store
    /// is observation-for-observation identical on any suffix — including
    /// eviction victims and priced I/O.
    #[test]
    fn snapshot_handoff_is_bit_identical(
        prefix in proptest::collection::vec(any_op(), 0..60),
        suffix in proptest::collection::vec(any_op(), 1..60),
        policy in any_policy(),
        capacity in prop_oneof![Just(None), (300u64..3000).prop_map(Some)],
    ) {
        let mut original = DiskStore::new(policy, capacity, DiskModel::hdd(), 4);
        for op in &prefix {
            apply(&mut original, op);
        }
        let bytes = BlobStore::snapshot(&original).to_bytes();
        let snapshot = StoreSnapshot::from_bytes(&bytes).expect("snapshot roundtrip");
        let mut restored = snapshot.restore();
        for op in &suffix {
            let a = apply(&mut original, op);
            let b = apply(restored.as_mut(), op);
            prop_assert_eq!(a, b, "upgraded instance diverged at {:?}", op);
            prop_assert_eq!(original.drain_cost(), restored.drain_cost());
            prop_assert_eq!(original.victim_key(), restored.victim_key());
        }
        prop_assert_eq!(BlobStore::stats(&original), restored.stats());
        prop_assert_eq!(logical_state(&original), logical_state(restored.as_ref()));
    }
}

/// A deterministic workload for seed `seed`: enough puts/gets/pins/evicts
/// over a bounded store that a 6 % per-write crash probability fires in most
/// seeds, at varied points.
fn matrix_ops(seed: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..120 {
        let r = next();
        let k = (r >> 8) as u8;
        ops.push(match r % 10 {
            0..=4 => Op::Put(k, 16 + (r % 160) as u16),
            5 | 6 => Op::Get(k),
            7 => Op::Pin(k),
            8 => Op::Unpin(k),
            _ => Op::Evict,
        });
    }
    ops
}

/// The CI `crash-chaos` entry point: sweeps `GEAR_CRASH_SEEDS` seeds
/// (default 16) of probabilistic crashes plus every scripted crash point,
/// asserting the full recovery-invariant battery each time.
#[test]
fn crash_seed_matrix_loses_no_acked_blobs() {
    let seeds: u64 = std::env::var("GEAR_CRASH_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut crashes = 0u64;
    for seed in 0..seeds {
        let ops = matrix_ops(seed);
        let policy = if seed % 2 == 0 { EvictionPolicy::Lru } else { EvictionPolicy::Fifo };
        if run_crash_case(policy, Some(1200), &ops, CrashPlan::new(seed).with_crash(0.06)) {
            crashes += 1;
        }
        for point in CrashPoint::ALL {
            if run_crash_case(
                policy,
                Some(1200),
                &ops,
                CrashPlan::new(seed).crash_at_write(seed % 40, point),
            ) {
                crashes += 1;
            }
        }
    }
    assert!(
        crashes >= seeds * 3,
        "matrix must actually exercise crashes ({crashes} fired over {seeds} seeds)"
    );
}
