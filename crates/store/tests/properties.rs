//! Property-based equivalence tests for the store implementations.
//!
//! Two equivalences anchor the refactor:
//!
//! * a [`TieredStore`] with an **unbounded L1** is observably identical to
//!   a flat [`MemStore`] with the L2's capacity — same lookup results, same
//!   final contents, same stats. Bounding L1 may only change *where* hits
//!   are served from (priced disk time), never *what* hits;
//! * a [`Sharded<MemStore>`] is equivalent to an unsharded [`MemStore`]
//!   for any shard count when capacity is unbounded (bounded shards
//!   legitimately diverge: capacity pressure is per shard).

use bytes::Bytes;
use gear_hash::Fingerprint;
use gear_simnet::DiskModel;
use gear_store::{split_capacity, BlobStore, EvictionPolicy, MemStore, Sharded, TieredStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u16),
    Get(u8),
    Pin(u8),
    Unpin(u8),
    Evict,
    Clear,
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u16..512).prop_map(|(k, len)| Op::Put(k, len)),
        (any::<u8>(), 1u16..512).prop_map(|(k, len)| Op::Put(k, len)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Pin),
        any::<u8>().prop_map(Op::Unpin),
        Just(Op::Evict),
        Just(Op::Clear),
    ]
}

fn fp(k: u8) -> Fingerprint {
    Fingerprint::of(&[k])
}

fn body(k: u8, len: u16) -> Bytes {
    Bytes::from(vec![k; len as usize])
}

fn any_policy() -> impl Strategy<Value = EvictionPolicy> {
    prop_oneof![Just(EvictionPolicy::Fifo), Just(EvictionPolicy::Lru)]
}

/// Applies one op to any store through the trait, returning an observation
/// string for comparison.
fn apply(store: &mut dyn BlobStore, op: &Op) -> String {
    match op {
        Op::Put(k, len) => format!("put={}", store.put(fp(*k), body(*k, *len))),
        Op::Get(k) => format!("get={:?}", store.get(fp(*k)).map(|b| b.len())),
        Op::Pin(k) => {
            store.pin(fp(*k));
            String::new()
        }
        Op::Unpin(k) => {
            store.unpin(fp(*k));
            String::new()
        }
        Op::Evict => format!("evict={:?}", store.evict()),
        Op::Clear => {
            store.clear();
            String::new()
        }
    }
}

fn resident_set(store: &dyn BlobStore) -> Vec<(Fingerprint, usize)> {
    let mut all: Vec<(Fingerprint, usize)> = (0u8..=255)
        .filter_map(|k| store.peek(fp(k)).map(|b| (fp(k), b.len())))
        .collect();
    all.sort();
    all
}

proptest! {
    /// (a) Tiered-with-unbounded-L1 ≡ flat: hit set, residency, and stats
    /// all match for any op sequence, policy, and L2 capacity.
    #[test]
    fn tiered_with_unbounded_l1_equals_flat_memstore(
        ops in proptest::collection::vec(any_op(), 1..120),
        policy in any_policy(),
        capacity in prop_oneof![Just(None), (200u64..4000).prop_map(Some)],
        promote in any::<bool>(),
    ) {
        let mut flat = MemStore::with_policy(policy, capacity);
        let mut tiered = TieredStore::new(
            policy, None, capacity, DiskModel::ssd(), 1, promote,
        );
        for op in &ops {
            let a = apply(&mut flat, op);
            let b = apply(&mut tiered, op);
            prop_assert_eq!(&a, &b, "op {:?} diverged", op);
        }
        prop_assert_eq!(resident_set(&flat), resident_set(&tiered));
        prop_assert_eq!(flat.len(), tiered.len());
        prop_assert_eq!(BlobStore::bytes(&flat), tiered.bytes());
        prop_assert_eq!(MemStore::stats(&flat), BlobStore::stats(&tiered));
    }

    /// (b) Sharded ≡ unsharded for any shard count (unbounded capacity):
    /// same lookup results, same global eviction victims, same merged
    /// counters, same residency.
    #[test]
    fn sharded_memstore_equals_unsharded(
        ops in proptest::collection::vec(any_op(), 1..120),
        policy in any_policy(),
        shards in 1usize..9,
    ) {
        let mut flat = MemStore::with_policy(policy, None);
        let mut sharded = Sharded::with_policy(policy, None, shards);
        for op in &ops {
            let a = apply(&mut flat, op);
            let b = apply(&mut sharded, op);
            prop_assert_eq!(&a, &b, "op {:?} diverged", op);
        }
        prop_assert_eq!(resident_set(&flat), resident_set(&sharded));
        prop_assert_eq!(Sharded::len(&sharded), MemStore::len(&flat));
        prop_assert_eq!(Sharded::bytes(&sharded), MemStore::bytes(&flat));
        let (f, s) = (MemStore::stats(&flat), Sharded::stats(&sharded));
        prop_assert_eq!((f.hits, f.misses), (s.hits, s.misses));
        prop_assert_eq!((f.evictions, f.evicted_bytes), (s.evictions, s.evicted_bytes));
        prop_assert_eq!(f.pinned_bytes, s.pinned_bytes);
    }

    /// Tiered stats decompose: L1 + L2 hits equal flat hits and the accrued
    /// disk time is exactly the L2 traffic the op sequence implies — here
    /// checked as "bounding L1 never changes observable results, only cost".
    #[test]
    fn bounded_l1_changes_cost_not_behaviour(
        ops in proptest::collection::vec(any_op(), 1..120),
        policy in any_policy(),
        l1 in 1u64..2000,
    ) {
        let mut flat = MemStore::with_policy(policy, Some(3000));
        let mut tiered = TieredStore::new(
            policy, Some(l1), Some(3000), DiskModel::nvme(), 1, true,
        );
        for op in &ops {
            let a = apply(&mut flat, op);
            let b = apply(&mut tiered, op);
            prop_assert_eq!(&a, &b, "op {:?} diverged", op);
        }
        prop_assert_eq!(resident_set(&flat), resident_set(&tiered));
        let (f, t) = (MemStore::stats(&flat), BlobStore::stats(&tiered));
        prop_assert_eq!(f, t);
        let (l1_bytes, l2_bytes) = tiered.tier_bytes();
        prop_assert!(l1_bytes <= l2_bytes, "L1 ⊆ L2");
        prop_assert_eq!(l2_bytes, MemStore::bytes(&flat));
    }
}

proptest! {
    /// `split_capacity` is exact for any total and shard count: per-shard
    /// capacities sum back to the total (no floor-truncation loss), differ
    /// by at most one byte, and extras go to the leading shards.
    #[test]
    fn split_capacity_is_exact_and_even(
        total in prop_oneof![
            Just(0u64),
            0u64..64,                 // capacity below the shard count
            any::<u64>(),             // the whole range, incl. u64::MAX region
            Just(u64::MAX),
        ],
        shards in 1usize..64,
    ) {
        let parts = split_capacity(Some(total), shards);
        prop_assert_eq!(parts.len(), shards);
        // Sum in u128: u64::MAX over one shard must not overflow the check.
        let sum: u128 = parts.iter().map(|p| u128::from(p.unwrap())).sum();
        prop_assert_eq!(sum, u128::from(total), "split loses or invents bytes");
        let min = parts.iter().map(|p| p.unwrap()).min().unwrap();
        let max = parts.iter().map(|p| p.unwrap()).max().unwrap();
        prop_assert!(max - min <= 1, "split is uneven: min={} max={}", min, max);
        // Deterministic placement: the `total % shards` extra bytes land on
        // the leading shards, so the sequence is non-increasing.
        for pair in parts.windows(2) {
            prop_assert!(pair[0] >= pair[1]);
        }
        // Capacity smaller than the shard count means trailing shards get
        // exactly zero, never a phantom byte.
        if total < shards as u64 {
            prop_assert_eq!(parts.iter().filter(|p| **p == Some(1)).count() as u64, total);
            prop_assert_eq!(parts[shards - 1], Some(0));
        }
    }

    /// Unbounded capacity splits to unbounded shards, whatever the count.
    #[test]
    fn split_capacity_unbounded_everywhere(shards in 1usize..256) {
        prop_assert_eq!(split_capacity(None, shards), vec![None; shards]);
    }
}
