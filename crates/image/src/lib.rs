//! Docker-compatible layered image model.
//!
//! This crate models the pieces of the Docker image ecosystem that the Gear
//! framework builds on (paper §II):
//!
//! * [`Layer`] — an image layer: a [`gear_archive::Archive`] diff identified
//!   by the SHA-256 *diff id* of its serialized form, plus its compressed
//!   distribution blob.
//! * [`Manifest`] / [`ImageConfig`] — the JSON documents a registry serves:
//!   the manifest lists layer digests; the config carries the runtime
//!   environment (env vars, entrypoint) that Gear copies into its index
//!   image when converting.
//! * [`Image`] and [`ImageBuilder`] — a named, tagged stack of layers with
//!   root-file-system reconstruction.
//! * [`Overlay2Store`] — the client-side graph-driver layout: layers stored
//!   once, shared between images, union-mounted to launch containers.
//!
//! # Examples
//!
//! ```
//! use gear_image::{ImageBuilder, ImageRef};
//! use gear_fs::FsTree;
//! use bytes::Bytes;
//!
//! let mut base = FsTree::new();
//! base.create_file("bin/sh", Bytes::from_static(b"#!ELF"))?;
//!
//! let image = ImageBuilder::new("debian:buster-slim".parse::<ImageRef>()?)
//!     .layer_from_tree(&base)
//!     .env("PATH=/usr/bin:/bin")
//!     .build();
//! assert_eq!(image.layers().len(), 1);
//! let rootfs = image.root_fs()?;
//! assert!(rootfs.contains("bin/sh"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod layer;
mod manifest;
mod overlay2;
mod reference;

pub use image::{Image, ImageBuilder};
pub use layer::{CompressedLayer, Layer};
pub use manifest::{Descriptor, ImageConfig, Manifest, MEDIA_TYPE_CONFIG, MEDIA_TYPE_LAYER};
pub use overlay2::{Overlay2Store, StoreStats};
pub use reference::{ImageRef, ParseImageRefError};
