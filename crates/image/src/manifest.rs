//! Image manifests and configs — the JSON documents a registry serves.

use gear_hash::Digest;
use serde::{Deserialize, Serialize};

/// Media type for layer blobs (mirrors the Docker schema2 constant).
pub const MEDIA_TYPE_LAYER: &str = "application/vnd.docker.image.rootfs.diff.tar.gzip";
/// Media type for config blobs.
pub const MEDIA_TYPE_CONFIG: &str = "application/vnd.docker.container.image.v1+json";

/// A content-addressed reference to a blob (layer or config).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor {
    /// Blob media type.
    #[serde(rename = "mediaType")]
    pub media_type: String,
    /// SHA-256 of the blob as stored.
    pub digest: Digest,
    /// Blob size in bytes.
    pub size: u64,
}

/// The image manifest: config descriptor plus ordered layer descriptors
/// (bottom layer first), as retrieved first on every `docker pull`
/// (paper §II-C).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest schema version (always 2 here).
    #[serde(rename = "schemaVersion")]
    pub schema_version: u32,
    /// Config blob reference.
    pub config: Descriptor,
    /// Layer blob references, bottom first.
    pub layers: Vec<Descriptor>,
}

impl Manifest {
    /// Serializes to canonical JSON bytes.
    pub fn to_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("manifest serialization cannot fail")
    }

    /// Parses from JSON bytes.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }

    /// SHA-256 of the serialized manifest — the digest a registry uses to
    /// address it.
    pub fn digest(&self) -> Digest {
        Digest::of(&self.to_json())
    }

    /// Sum of layer blob sizes: the bytes a cold `docker pull` downloads
    /// (plus the manifest and config themselves).
    pub fn total_layer_bytes(&self) -> u64 {
        self.layers.iter().map(|d| d.size).sum()
    }
}

/// Runtime configuration carried alongside an image.
///
/// When Gear converts an image, these values are copied verbatim into the
/// single-layer index image so containers start with the same environment
/// (paper §III-C).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ImageConfig {
    /// Environment variables (`KEY=value`).
    #[serde(default)]
    pub env: Vec<String>,
    /// Entrypoint argv prefix.
    #[serde(default)]
    pub entrypoint: Vec<String>,
    /// Default command argv.
    #[serde(default)]
    pub cmd: Vec<String>,
    /// Initial working directory.
    #[serde(default)]
    pub working_dir: String,
    /// Free-form labels.
    #[serde(default)]
    pub labels: Vec<(String, String)>,
}

impl ImageConfig {
    /// Serializes to JSON bytes.
    pub fn to_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("config serialization cannot fail")
    }

    /// Parses from JSON bytes.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }

    /// SHA-256 of the serialized config.
    pub fn digest(&self) -> Digest {
        Digest::of(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            schema_version: 2,
            config: Descriptor {
                media_type: MEDIA_TYPE_CONFIG.to_owned(),
                digest: Digest::of(b"config"),
                size: 42,
            },
            layers: vec![
                Descriptor {
                    media_type: MEDIA_TYPE_LAYER.to_owned(),
                    digest: Digest::of(b"layer0"),
                    size: 1000,
                },
                Descriptor {
                    media_type: MEDIA_TYPE_LAYER.to_owned(),
                    digest: Digest::of(b"layer1"),
                    size: 500,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let bytes = m.to_json();
        assert_eq!(Manifest::from_json(&bytes).unwrap(), m);
    }

    #[test]
    fn digest_changes_with_layers() {
        let mut m = sample();
        let d1 = m.digest();
        m.layers.pop();
        assert_ne!(m.digest(), d1);
    }

    #[test]
    fn total_layer_bytes_sums() {
        assert_eq!(sample().total_layer_bytes(), 1500);
    }

    #[test]
    fn config_roundtrip() {
        let c = ImageConfig {
            env: vec!["PATH=/bin".into(), "LANG=C".into()],
            entrypoint: vec!["/entrypoint.sh".into()],
            cmd: vec!["nginx".into(), "-g".into()],
            working_dir: "/srv".into(),
            labels: vec![("maintainer".into(), "gear".into())],
        };
        assert_eq!(ImageConfig::from_json(&c.to_json()).unwrap(), c);
    }

    #[test]
    fn config_defaults_from_empty_json() {
        let c = ImageConfig::from_json(b"{}").unwrap();
        assert_eq!(c, ImageConfig::default());
    }
}
