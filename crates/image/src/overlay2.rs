//! The Overlay2 graph-driver layout on a client (paper §II-B/§II-C).
//!
//! Layers are stored once by diff id and shared between every image that
//! stacks them — Docker's local layer-level sharing. Launching a container
//! union-mounts the image's (flattened) read-only layers under a fresh
//! writable layer.

use std::collections::HashMap;
use std::sync::Arc;

use gear_fs::{FsError, FsTree, UnionFs};
use gear_hash::Digest;

use crate::image::Image;
use crate::layer::Layer;
use crate::manifest::ImageConfig;
use crate::reference::ImageRef;

/// Aggregate statistics over an [`Overlay2Store`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Images registered.
    pub images: usize,
    /// Unique layers stored (shared layers counted once).
    pub unique_layers: usize,
    /// Total serialized bytes of unique layers — local disk usage.
    pub layer_bytes: u64,
}

#[derive(Debug, Clone)]
struct ImageRecord {
    config: ImageConfig,
    layer_ids: Vec<Digest>,
}

/// Client-side image store modelled on Docker's Overlay2 graph driver.
#[derive(Debug, Default)]
pub struct Overlay2Store {
    layers: HashMap<Digest, Layer>,
    images: HashMap<ImageRef, ImageRecord>,
    /// Flattened root trees, memoized per image (Overlay2 keeps merged dirs).
    flattened: HashMap<ImageRef, Arc<FsTree>>,
}

impl Overlay2Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a layer with this diff id is already local. Docker uses this
    /// to skip downloading layers during `pull`.
    pub fn has_layer(&self, diff_id: Digest) -> bool {
        self.layers.contains_key(&diff_id)
    }

    /// Adds a layer (no-op if already present). Returns whether it was new.
    pub fn add_layer(&mut self, layer: Layer) -> bool {
        self.layers.insert(layer.diff_id(), layer).is_none()
    }

    /// Registers an image, storing any of its layers not yet local.
    pub fn add_image(&mut self, image: &Image) {
        for layer in image.layers() {
            self.add_layer(layer.clone());
        }
        self.images.insert(
            image.reference().clone(),
            ImageRecord {
                config: image.config().clone(),
                layer_ids: image.layers().iter().map(Layer::diff_id).collect(),
            },
        );
        self.flattened.remove(image.reference());
    }

    /// Whether an image is registered.
    pub fn has_image(&self, reference: &ImageRef) -> bool {
        self.images.contains_key(reference)
    }

    /// Reconstructs a registered image from stored layers.
    pub fn image(&self, reference: &ImageRef) -> Option<Image> {
        let record = self.images.get(reference)?;
        let mut builder =
            crate::image::ImageBuilder::new(reference.clone()).config(record.config.clone());
        for id in &record.layer_ids {
            builder = builder.existing_layer(self.layers.get(id)?.clone());
        }
        Some(builder.build())
    }

    /// Which of `diff_ids` are missing locally (would need downloading).
    pub fn missing_layers(&self, diff_ids: &[Digest]) -> Vec<Digest> {
        diff_ids.iter().copied().filter(|d| !self.layers.contains_key(d)).collect()
    }

    /// Union-mounts the image for a new container: its flattened read-only
    /// root as the lower, a fresh writable upper on top.
    ///
    /// The flattened tree is memoized, so concurrent containers from the same
    /// image share it (Docker's layer sharing at runtime).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the image is not registered; layer-replay
    /// errors from corrupt diffs.
    pub fn mount(&mut self, reference: &ImageRef) -> Result<UnionFs, FsError> {
        if let Some(tree) = self.flattened.get(reference) {
            return Ok(UnionFs::new(vec![Arc::clone(tree)]));
        }
        let image = self
            .image(reference)
            .ok_or_else(|| FsError::NotFound(reference.to_string()))?;
        let tree = Arc::new(image.root_fs()?);
        self.flattened.insert(reference.clone(), Arc::clone(&tree));
        Ok(UnionFs::new(vec![tree]))
    }

    /// Deregisters an image. Layers remain until [`Overlay2Store::gc`].
    pub fn remove_image(&mut self, reference: &ImageRef) -> bool {
        self.flattened.remove(reference);
        self.images.remove(reference).is_some()
    }

    /// Drops layers referenced by no registered image; returns bytes freed.
    pub fn gc(&mut self) -> u64 {
        let live: std::collections::HashSet<Digest> = self
            .images
            .values()
            .flat_map(|rec| rec.layer_ids.iter().copied())
            .collect();
        let mut freed = 0;
        self.layers.retain(|id, layer| {
            if live.contains(id) {
                true
            } else {
                freed += layer.wire_len();
                false
            }
        });
        freed
    }

    /// Current statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            images: self.images.len(),
            unique_layers: self.layers.len(),
            layer_bytes: self.layers.values().map(Layer::wire_len).sum(),
        }
    }

    /// References of all registered images.
    pub fn image_refs(&self) -> Vec<ImageRef> {
        self.images.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageBuilder;
    use bytes::Bytes;
    use gear_archive::{Archive, ArchivePath, Entry, Metadata};
    use gear_fs::NoFetch;

    fn r(s: &str) -> ImageRef {
        s.parse().unwrap()
    }

    fn layer_with(path: &str, body: &[u8]) -> Archive {
        let mut a = Archive::new();
        a.push(Entry::file(
            ArchivePath::new(path).unwrap(),
            Metadata::file_default(),
            Bytes::copy_from_slice(body),
        ));
        a
    }

    fn two_images() -> (Image, Image) {
        let base = ImageBuilder::new(r("debian:slim")).layer(layer_with("bin/sh", b"#!")).build();
        let app = ImageBuilder::from_image(r("nginx:1.17"), &base)
            .layer(layer_with("sbin/nginx", b"ELF"))
            .build();
        (base, app)
    }

    #[test]
    fn shared_layers_stored_once() {
        let (base, app) = two_images();
        let mut store = Overlay2Store::new();
        store.add_image(&base);
        store.add_image(&app);
        let stats = store.stats();
        assert_eq!(stats.images, 2);
        assert_eq!(stats.unique_layers, 2, "the base layer must be shared");
    }

    #[test]
    fn missing_layers_reported() {
        let (base, app) = two_images();
        let mut store = Overlay2Store::new();
        store.add_image(&base);
        let ids: Vec<Digest> = app.layers().iter().map(Layer::diff_id).collect();
        let missing = store.missing_layers(&ids);
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0], app.layers()[1].diff_id());
    }

    #[test]
    fn mount_serves_merged_rootfs() {
        let (_, app) = two_images();
        let mut store = Overlay2Store::new();
        store.add_image(&app);
        let mut mount = store.mount(app.reference()).unwrap();
        assert_eq!(&mount.read("bin/sh", &NoFetch).unwrap()[..], b"#!");
        assert_eq!(&mount.read("sbin/nginx", &NoFetch).unwrap()[..], b"ELF");
        // Writes stay in the container, not the image.
        mount.write("tmp/scratch", Bytes::from_static(b"x")).unwrap();
        let mut second = store.mount(app.reference()).unwrap();
        assert!(second.read("tmp/scratch", &NoFetch).is_err());
    }

    #[test]
    fn image_roundtrips_through_store() {
        let (_, app) = two_images();
        let mut store = Overlay2Store::new();
        store.add_image(&app);
        let back = store.image(app.reference()).unwrap();
        assert_eq!(back, app);
    }

    #[test]
    fn gc_frees_unreferenced_layers() {
        let (base, app) = two_images();
        let mut store = Overlay2Store::new();
        store.add_image(&base);
        store.add_image(&app);
        store.remove_image(app.reference());
        let freed = store.gc();
        assert_eq!(freed, app.layers()[1].wire_len());
        assert_eq!(store.stats().unique_layers, 1);
        // Base still mountable.
        assert!(store.mount(base.reference()).is_ok());
    }

    #[test]
    fn mount_unknown_image_errors() {
        let mut store = Overlay2Store::new();
        assert!(matches!(store.mount(&r("ghost:1")), Err(FsError::NotFound(_))));
    }
}
