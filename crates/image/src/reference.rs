//! Image references (`repository:tag`).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A `repository:tag` image name, e.g. `nginx:1.17`.
///
/// ```
/// use gear_image::ImageRef;
/// let r: ImageRef = "tomcat:9.0.41".parse()?;
/// assert_eq!(r.repository(), "tomcat");
/// assert_eq!(r.tag(), "9.0.41");
/// assert_eq!(r.to_string(), "tomcat:9.0.41");
/// # Ok::<(), gear_image::ParseImageRefError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImageRef {
    repository: String,
    tag: String,
}

/// Error parsing an [`ImageRef`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseImageRefError {
    input: String,
}

impl fmt::Display for ParseImageRefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid image reference {:?} (expected repository:tag)", self.input)
    }
}

impl Error for ParseImageRefError {}

impl ImageRef {
    /// Builds a reference from parts.
    ///
    /// # Errors
    ///
    /// Returns [`ParseImageRefError`] if either part is empty or contains
    /// `:`, whitespace, or `/` in the tag.
    pub fn new(repository: &str, tag: &str) -> Result<Self, ParseImageRefError> {
        let ok_repo = !repository.is_empty()
            && repository.chars().all(|c| c.is_ascii_alphanumeric() || "-_./".contains(c));
        let ok_tag =
            !tag.is_empty() && tag.chars().all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c));
        if !ok_repo || !ok_tag {
            return Err(ParseImageRefError { input: format!("{repository}:{tag}") });
        }
        Ok(ImageRef { repository: repository.to_owned(), tag: tag.to_owned() })
    }

    /// The repository (series) name, e.g. `tomcat`.
    pub fn repository(&self) -> &str {
        &self.repository
    }

    /// The version tag, e.g. `9.0.41`.
    pub fn tag(&self) -> &str {
        &self.tag
    }
}

impl fmt::Display for ImageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.repository, self.tag)
    }
}

impl FromStr for ImageRef {
    type Err = ParseImageRefError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (repo, tag) = s
            .rsplit_once(':')
            .ok_or_else(|| ParseImageRefError { input: s.to_owned() })?;
        ImageRef::new(repo, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let r: ImageRef = "library/nginx:1.17".parse().unwrap();
        assert_eq!(r.repository(), "library/nginx");
        assert_eq!(r.tag(), "1.17");
        assert_eq!(r.to_string().parse::<ImageRef>().unwrap(), r);
    }

    #[test]
    fn rejects_malformed() {
        assert!("noTag".parse::<ImageRef>().is_err());
        assert!(":empty".parse::<ImageRef>().is_err());
        assert!("repo:".parse::<ImageRef>().is_err());
        assert!("repo:ta g".parse::<ImageRef>().is_err());
    }
}
