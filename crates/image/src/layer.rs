//! Image layers and their compressed distribution form.

use std::sync::Arc;

use gear_archive::Archive;
use gear_compress::{compress, compress_with, decompress, DecompressError, Level};
use gear_hash::Digest;
use gear_par::Pool;

/// A read-only image layer.
///
/// Identified by its *diff id* — the SHA-256 of the serialized (uncompressed)
/// archive — matching Docker's content addressing of layers. The same layer
/// object is shared (`Arc`) wherever it is stacked.
#[derive(Debug, Clone)]
pub struct Layer {
    diff_id: Digest,
    archive: Arc<Archive>,
    wire_len: u64,
}

impl PartialEq for Layer {
    fn eq(&self, other: &Self) -> bool {
        self.diff_id == other.diff_id
    }
}

impl Eq for Layer {}

impl Layer {
    /// Wraps an archive as a layer, computing its diff id.
    pub fn from_archive(archive: Archive) -> Self {
        let wire = archive.to_bytes();
        Layer {
            diff_id: Digest::of(&wire),
            wire_len: wire.len() as u64,
            archive: Arc::new(archive),
        }
    }

    /// SHA-256 of the serialized archive (Docker's `diff_id`).
    pub fn diff_id(&self) -> Digest {
        self.diff_id
    }

    /// The layer's diff entries.
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// Shared handle to the diff entries.
    pub fn archive_arc(&self) -> Arc<Archive> {
        Arc::clone(&self.archive)
    }

    /// Serialized (uncompressed) size in bytes.
    pub fn wire_len(&self) -> u64 {
        self.wire_len
    }

    /// Total regular-file content bytes in the diff.
    pub fn content_bytes(&self) -> u64 {
        self.archive.content_bytes()
    }

    /// Compresses the layer into its distribution blob.
    pub fn to_compressed(&self, level: Level) -> CompressedLayer {
        let blob = compress(&self.archive.to_bytes(), level);
        CompressedLayer { digest: Digest::of(&blob), diff_id: self.diff_id, blob }
    }

    /// [`Layer::to_compressed`] with block compression fanned out across
    /// `pool` for layers larger than [`gear_compress::BLOCK_SIZE`]. The
    /// blob — and therefore the distribution digest — is a pure function of
    /// the layer content and level, never of the worker count; small layers
    /// produce byte-identical blobs to [`Layer::to_compressed`].
    pub fn to_compressed_with(&self, level: Level, pool: &Pool) -> CompressedLayer {
        let blob = compress_with(&self.archive.to_bytes(), level, pool);
        CompressedLayer { digest: Digest::of(&blob), diff_id: self.diff_id, blob }
    }
}

/// A compressed layer blob as stored in and served by a Docker registry.
///
/// Its `digest` (SHA-256 of the *compressed* bytes) is what manifests
/// reference and what layer-level deduplication compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLayer {
    digest: Digest,
    diff_id: Digest,
    blob: Vec<u8>,
}

impl CompressedLayer {
    /// SHA-256 of the compressed blob (the distribution digest).
    pub fn digest(&self) -> Digest {
        self.digest
    }

    /// Diff id of the uncompressed layer inside.
    pub fn diff_id(&self) -> Digest {
        self.diff_id
    }

    /// The compressed bytes.
    pub fn blob(&self) -> &[u8] {
        &self.blob
    }

    /// Compressed size in bytes — the number that crosses the network on a
    /// `docker pull`.
    pub fn size(&self) -> u64 {
        self.blob.len() as u64
    }

    /// Decompresses back into a [`Layer`].
    ///
    /// # Errors
    ///
    /// Returns [`DecompressError`] if the blob is corrupt, or
    /// [`DecompressError::ChecksumMismatch`] if the decoded archive does not
    /// match the recorded diff id.
    pub fn to_layer(&self) -> Result<Layer, DecompressError> {
        let wire = decompress(&self.blob)?;
        let archive = Archive::from_bytes(&wire).map_err(|_| DecompressError::CorruptPayload)?;
        let layer = Layer::from_archive(archive);
        if layer.diff_id() != self.diff_id {
            return Err(DecompressError::ChecksumMismatch);
        }
        Ok(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gear_archive::{ArchivePath, Entry, Metadata};

    fn sample_archive(body: &'static [u8]) -> Archive {
        let mut a = Archive::new();
        a.push(Entry::dir(ArchivePath::new("opt").unwrap(), Metadata::dir_default()));
        a.push(Entry::file(
            ArchivePath::new("opt/app").unwrap(),
            Metadata::exec_default(),
            Bytes::from_static(body),
        ));
        a
    }

    #[test]
    fn diff_id_is_content_addressed() {
        let a = Layer::from_archive(sample_archive(b"v1"));
        let b = Layer::from_archive(sample_archive(b"v1"));
        let c = Layer::from_archive(sample_archive(b"v2"));
        assert_eq!(a.diff_id(), b.diff_id());
        assert_ne!(a.diff_id(), c.diff_id());
        assert_eq!(a, b);
    }

    #[test]
    fn compress_roundtrip() {
        let layer = Layer::from_archive(sample_archive(b"some executable bytes"));
        let compressed = layer.to_compressed(Level::Default);
        let back = compressed.to_layer().unwrap();
        assert_eq!(back.diff_id(), layer.diff_id());
        assert_eq!(back.archive(), layer.archive());
    }

    #[test]
    fn tampered_blob_rejected() {
        let layer = Layer::from_archive(sample_archive(b"bytes"));
        let mut compressed = layer.to_compressed(Level::Default);
        let n = compressed.blob.len();
        compressed.blob[n - 1] ^= 0xff;
        assert!(compressed.to_layer().is_err());
    }

    #[test]
    fn pooled_compression_matches_serial_digest() {
        let layer = Layer::from_archive(sample_archive(b"pooled layer body"));
        let serial = layer.to_compressed(Level::Default);
        for workers in [1, 2, 8] {
            let pooled = layer.to_compressed_with(Level::Default, &Pool::new(workers));
            assert_eq!(pooled.digest(), serial.digest(), "workers={workers}");
            assert_eq!(pooled.blob(), serial.blob());
        }
    }

    #[test]
    fn identical_layers_compress_to_identical_digests() {
        // The property layer-level dedup relies on.
        let l1 = Layer::from_archive(sample_archive(b"shared"));
        let l2 = Layer::from_archive(sample_archive(b"shared"));
        assert_eq!(
            l1.to_compressed(Level::Default).digest(),
            l2.to_compressed(Level::Default).digest()
        );
    }
}
