//! Images: a named stack of layers plus runtime config.

use gear_archive::Archive;
use gear_fs::{FsError, FsTree};

use crate::layer::Layer;
use crate::manifest::ImageConfig;
use crate::reference::ImageRef;

/// A read-only container image: an ordered stack of layers (bottom first)
/// with a runtime config, under a `repository:tag` name.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    reference: ImageRef,
    config: ImageConfig,
    layers: Vec<Layer>,
}

impl Image {
    /// The image's `repository:tag` name.
    pub fn reference(&self) -> &ImageRef {
        &self.reference
    }

    /// Runtime configuration.
    pub fn config(&self) -> &ImageConfig {
        &self.config
    }

    /// Layers, bottom first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total uncompressed (serialized) size of all layers.
    pub fn uncompressed_size(&self) -> u64 {
        self.layers.iter().map(Layer::wire_len).sum()
    }

    /// Total regular-file content bytes across layers (before whiteouts).
    pub fn content_bytes(&self) -> u64 {
        self.layers.iter().map(Layer::content_bytes).sum()
    }

    /// Total number of regular-file entries across layers.
    pub fn file_count(&self) -> usize {
        self.layers.iter().map(|l| l.archive().file_count()).sum()
    }

    /// Reconstructs the root file system by replaying all layers bottom-up —
    /// what the graph driver does to provide "a complete and correct root
    /// file system for the container" (paper §II-C).
    ///
    /// # Errors
    ///
    /// Propagates [`FsError`] from layer replay (e.g. a hardlink to a path
    /// deleted by a later whiteout).
    pub fn root_fs(&self) -> Result<FsTree, FsError> {
        let mut tree = FsTree::new();
        for layer in &self.layers {
            tree.apply_layer(layer.archive())?;
        }
        Ok(tree)
    }

    /// Returns a renamed copy sharing the same layers (`docker tag`).
    pub fn retagged(&self, reference: ImageRef) -> Image {
        Image { reference, config: self.config.clone(), layers: self.layers.clone() }
    }

    /// Returns a copy with `layer` stacked on top (`docker commit`).
    pub fn with_layer(&self, layer: Layer, reference: ImageRef) -> Image {
        let mut layers = self.layers.clone();
        layers.push(layer);
        Image { reference, config: self.config.clone(), layers }
    }
}

/// Builder for [`Image`] values.
///
/// ```
/// use gear_image::{ImageBuilder, ImageRef};
/// use gear_archive::Archive;
///
/// let image = ImageBuilder::new("app:1.0".parse::<ImageRef>()?)
///     .layer(Archive::new())
///     .env("MODE=prod")
///     .cmd(["/bin/app"])
///     .build();
/// assert_eq!(image.reference().to_string(), "app:1.0");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ImageBuilder {
    reference: ImageRef,
    config: ImageConfig,
    layers: Vec<Layer>,
}

impl ImageBuilder {
    /// Starts a build for `reference` with no layers and a default config.
    pub fn new(reference: ImageRef) -> Self {
        ImageBuilder { reference, config: ImageConfig::default(), layers: Vec::new() }
    }

    /// Starts from an existing image's layers and config (a `FROM` clause).
    pub fn from_image(reference: ImageRef, base: &Image) -> Self {
        ImageBuilder {
            reference,
            config: base.config().clone(),
            layers: base.layers().to_vec(),
        }
    }

    /// Stacks a diff archive as the next layer.
    pub fn layer(mut self, archive: Archive) -> Self {
        self.layers.push(Layer::from_archive(archive));
        self
    }

    /// Stacks a pre-built layer (shares the underlying archive).
    pub fn existing_layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Stacks a whole tree serialized as a single layer.
    pub fn layer_from_tree(self, tree: &FsTree) -> Self {
        self.layer(tree.to_layer())
    }

    /// Adds one `KEY=value` environment variable.
    pub fn env(mut self, var: impl Into<String>) -> Self {
        self.config.env.push(var.into());
        self
    }

    /// Sets the entrypoint argv.
    pub fn entrypoint<I, S>(mut self, argv: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.config.entrypoint = argv.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the default command argv.
    pub fn cmd<I, S>(mut self, argv: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.config.cmd = argv.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the working directory.
    pub fn working_dir(mut self, dir: impl Into<String>) -> Self {
        self.config.working_dir = dir.into();
        self
    }

    /// Replaces the whole config (used by the Gear converter to copy the
    /// original image's configuration verbatim).
    pub fn config(mut self, config: ImageConfig) -> Self {
        self.config = config;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Image {
        Image { reference: self.reference, config: self.config, layers: self.layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gear_archive::{ArchivePath, Entry, Metadata};

    fn r(s: &str) -> ImageRef {
        s.parse().unwrap()
    }

    fn layer_with(path: &str, body: &[u8]) -> Archive {
        let mut a = Archive::new();
        a.push(Entry::file(
            ArchivePath::new(path).unwrap(),
            Metadata::file_default(),
            Bytes::copy_from_slice(body),
        ));
        a
    }

    #[test]
    fn root_fs_stacks_layers() {
        let image = ImageBuilder::new(r("nginx:1.17"))
            .layer(layer_with("etc/base", b"base"))
            .layer(layer_with("etc/app", b"app"))
            .build();
        let fs = image.root_fs().unwrap();
        assert!(fs.contains("etc/base"));
        assert!(fs.contains("etc/app"));
        assert_eq!(image.file_count(), 2);
    }

    #[test]
    fn upper_layer_overrides_lower() {
        let image = ImageBuilder::new(r("a:1"))
            .layer(layer_with("f", b"old"))
            .layer(layer_with("f", b"newer"))
            .build();
        let fs = image.root_fs().unwrap();
        assert_eq!(fs.get("f").unwrap().size(), 5);
    }

    #[test]
    fn whiteout_layer_removes() {
        let mut wh = Archive::new();
        wh.push(Entry::whiteout(ArchivePath::new("f").unwrap()));
        let image =
            ImageBuilder::new(r("a:1")).layer(layer_with("f", b"data")).layer(wh).build();
        assert!(!image.root_fs().unwrap().contains("f"));
    }

    #[test]
    fn from_image_shares_base_layers() {
        let base = ImageBuilder::new(r("debian:buster-slim"))
            .layer(layer_with("bin/sh", b"#!"))
            .env("PATH=/bin")
            .build();
        let derived = ImageBuilder::from_image(r("nginx:1.17"), &base)
            .layer(layer_with("usr/sbin/nginx", b"ELF"))
            .build();
        assert_eq!(derived.layers()[0].diff_id(), base.layers()[0].diff_id());
        assert_eq!(derived.config().env, vec!["PATH=/bin"]);
        assert_eq!(derived.layers().len(), 2);
    }

    #[test]
    fn commit_adds_layer() {
        let base = ImageBuilder::new(r("a:1")).layer(layer_with("f", b"1")).build();
        let committed =
            base.with_layer(Layer::from_archive(layer_with("g", b"2")), r("a:2"));
        assert_eq!(committed.layers().len(), 2);
        assert_eq!(committed.reference().tag(), "2");
        assert!(committed.root_fs().unwrap().contains("g"));
    }
}
