//! Property-based tests for the image model.

use bytes::Bytes;
use gear_archive::{Archive, ArchivePath, Entry, Metadata};
use gear_compress::Level;
use gear_image::{Descriptor, ImageBuilder, ImageConfig, ImageRef, Layer, Manifest};
use gear_image::{MEDIA_TYPE_CONFIG, MEDIA_TYPE_LAYER};
use gear_hash::Digest;
use proptest::prelude::*;

fn any_component() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,8}".prop_filter("reserved", |s| s != "." && s != "..")
}

fn any_path() -> impl Strategy<Value = ArchivePath> {
    proptest::collection::vec(any_component(), 1..4)
        .prop_map(|v| ArchivePath::new(v.join("/")).unwrap())
}

fn any_layer() -> impl Strategy<Value = Archive> {
    proptest::collection::vec(
        (any_path(), proptest::collection::vec(any::<u8>(), 0..64)),
        0..12,
    )
    .prop_map(|entries| {
        let mut archive = Archive::new();
        for (path, content) in entries {
            archive.push(Entry::file(path, Metadata::file_default(), Bytes::from(content)));
        }
        archive
    })
}

proptest! {
    /// Layer compression roundtrips at every level and preserves the diff id.
    #[test]
    fn layer_compression_roundtrip(archive in any_layer(), fast in any::<bool>()) {
        let level = if fast { Level::Fast } else { Level::Best };
        let layer = Layer::from_archive(archive);
        let compressed = layer.to_compressed(level);
        let back = compressed.to_layer().unwrap();
        prop_assert_eq!(back.diff_id(), layer.diff_id());
        prop_assert_eq!(back.archive(), layer.archive());
    }

    /// Identical archives get identical diff ids and distribution digests —
    /// the foundation of layer-level dedup.
    #[test]
    fn content_addressing_is_deterministic(archive in any_layer()) {
        let a = Layer::from_archive(archive.clone());
        let b = Layer::from_archive(archive);
        prop_assert_eq!(a.diff_id(), b.diff_id());
        prop_assert_eq!(
            a.to_compressed(Level::Fast).digest(),
            b.to_compressed(Level::Fast).digest()
        );
    }

    /// Manifests survive JSON roundtrips regardless of layer count.
    #[test]
    fn manifest_roundtrip(sizes in proptest::collection::vec(0u64..1_000_000, 0..16)) {
        let manifest = Manifest {
            schema_version: 2,
            config: Descriptor {
                media_type: MEDIA_TYPE_CONFIG.to_owned(),
                digest: Digest::of(b"config"),
                size: 1,
            },
            layers: sizes
                .iter()
                .enumerate()
                .map(|(i, s)| Descriptor {
                    media_type: MEDIA_TYPE_LAYER.to_owned(),
                    digest: Digest::of(format!("layer{i}").as_bytes()),
                    size: *s,
                })
                .collect(),
        };
        let parsed = Manifest::from_json(&manifest.to_json()).unwrap();
        prop_assert_eq!(&parsed, &manifest);
        prop_assert_eq!(parsed.total_layer_bytes(), sizes.iter().sum::<u64>());
    }

    /// Stacking layers and reconstructing the root fs is order-sensitive but
    /// total: the top layer always wins for the same path.
    #[test]
    fn top_layer_wins(path in any_path(), low in proptest::collection::vec(any::<u8>(), 1..32), high in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut bottom = Archive::new();
        bottom.push(Entry::file(path.clone(), Metadata::file_default(), Bytes::from(low)));
        let mut top = Archive::new();
        top.push(Entry::file(path.clone(), Metadata::file_default(), Bytes::from(high.clone())));
        let image = ImageBuilder::new("p:1".parse::<ImageRef>().unwrap())
            .layer(bottom)
            .layer(top)
            .build();
        let fs = image.root_fs().unwrap();
        match fs.get(path.as_str()) {
            Some(gear_fs::Node::File(f)) => {
                let gear_fs::FileData::Inline(content) = &f.data else { panic!() };
                prop_assert_eq!(&content[..], &high[..]);
            }
            other => prop_assert!(false, "expected file, got {other:?}"),
        }
    }

    /// Image config roundtrips through JSON with arbitrary strings.
    #[test]
    fn config_roundtrip(env in proptest::collection::vec("[A-Z_]{1,8}=[a-z0-9/:.]{0,16}", 0..8), wd in "[a-z/]{0,12}") {
        let config = ImageConfig { env, working_dir: wd, ..Default::default() };
        prop_assert_eq!(ImageConfig::from_json(&config.to_json()).unwrap(), config);
    }
}
