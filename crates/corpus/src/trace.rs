//! Deployment tasks and startup access traces.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// The task a freshly deployed container performs (paper §V-D): each
/// category runs a representative workload after launch, and "deployment
/// time" covers pull + launch + task completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// `echo hello` (Linux distro images).
    Echo,
    /// Compile and run a hello-world program (language images).
    CompileRun,
    /// Insert/update/delete/query against the database (database images).
    DatabaseOps,
    /// Start a web server and answer one request (web components).
    WebServe,
    /// Complete the platform's specific task (application platforms).
    PlatformTask,
    /// The task of the miscellaneous images.
    Generic,
}

impl TaskKind {
    /// Pure compute time of the task (no file fetching), under the paper's
    /// testbed CPU. These magnitudes make the pull phase dominate for Docker
    /// at low bandwidth while keeping the run phase non-trivial, matching
    /// the pull/run split visible in Fig. 9.
    pub fn compute_time(self) -> Duration {
        match self {
            TaskKind::Echo => Duration::from_millis(120),
            TaskKind::CompileRun => Duration::from_millis(2200),
            TaskKind::DatabaseOps => Duration::from_millis(2800),
            TaskKind::WebServe => Duration::from_millis(900),
            TaskKind::PlatformTask => Duration::from_millis(3500),
            TaskKind::Generic => Duration::from_millis(1200),
        }
    }
}

/// The ordered set of files a container reads to start and complete its
/// deployment task — the "necessary data" of the paper's Fig. 2/8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartupTrace {
    /// Paths read, in access order (relative to the image root).
    pub reads: Vec<String>,
    /// The task driving the accesses.
    pub task: TaskKind,
}

impl StartupTrace {
    /// Number of file reads.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_times_ordered_sensibly() {
        assert!(TaskKind::Echo.compute_time() < TaskKind::WebServe.compute_time());
        assert!(TaskKind::WebServe.compute_time() < TaskKind::PlatformTask.compute_time());
    }

    #[test]
    fn trace_len() {
        let t = StartupTrace { reads: vec!["a".into(), "b".into()], task: TaskKind::Echo };
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
