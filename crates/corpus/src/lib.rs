//! Synthetic container-image corpus mirroring the Gear paper's workload.
//!
//! The paper evaluates on the top-50 official Docker Hub series (Table I),
//! each with up to 20 versions — 971 images, 370 GB unpacked. That corpus is
//! not redistributable, so this crate generates a *calibrated synthetic
//! equivalent*: the same 50 series in the same six categories, with
//! per-category parameters controlling the properties every Gear experiment
//! actually depends on:
//!
//! * **cross-version file churn** — how much of an image's content survives
//!   a version bump (drives registry storage savings, Fig. 7);
//! * **base-image sharing** — app series built `FROM` common distro bases
//!   share those files across series (drives whole-registry dedup, Fig. 7b,
//!   Table II);
//! * **startup traces** — the "necessary files" a container reads to come up
//!   and complete its task, with category-specific stability across versions
//!   (drives Figs. 2, 8, 9, 10);
//! * **block-level content structure** — file contents are composed of
//!   fixed-size blocks that mutate partially on churn, so chunk-level
//!   deduplication and compression behave like they do on real images.
//!
//! Everything is deterministic given a seed, and the whole corpus scales by
//! `1/scale_denom` (default 1/1024 ≈ 360 MB of logical content) with all
//! ratios preserved.
//!
//! # Examples
//!
//! ```
//! use gear_corpus::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::generate(&CorpusConfig::quick()); // small test corpus
//! assert!(corpus.series.len() >= 6);
//! let first = &corpus.series[0];
//! assert_eq!(first.images.len(), first.traces.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod content;
mod generator;
mod trace;

pub use catalog::{BaseFamily, Category, SeriesSpec, CATALOG};
pub use content::{make_content, mutate_seeds, new_file_seeds, BLOCK_SIZE};
pub use generator::{Corpus, CorpusConfig, ImageSeries};
pub use trace::{StartupTrace, TaskKind};
