//! The 50-series catalog (paper Table I) with per-category parameters.

use std::time::Duration;

use crate::trace::TaskKind;

/// Image category, as grouped in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Base operating-system images.
    LinuxDistro,
    /// Language runtimes/toolchains.
    Language,
    /// Database servers.
    Database,
    /// Web servers, proxies, and middleware.
    WebComponent,
    /// Full application platforms.
    ApplicationPlatform,
    /// Everything else in the top 50.
    Others,
}

impl Category {
    /// All six categories in paper order.
    pub const ALL: [Category; 6] = [
        Category::LinuxDistro,
        Category::Language,
        Category::Database,
        Category::WebComponent,
        Category::ApplicationPlatform,
        Category::Others,
    ];

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Category::LinuxDistro => "Linux Distro",
            Category::Language => "Language",
            Category::Database => "Database",
            Category::WebComponent => "Web Component",
            Category::ApplicationPlatform => "Application Platform",
            Category::Others => "Others",
        }
    }

    /// Probability that a given *cold* application file changes content
    /// between consecutive versions.
    ///
    /// Calibration target: the per-category Gear storage savings of Fig. 7a —
    /// base images churn heavily ("most of the data in the images may be
    /// changed"), application images mostly re-ship unchanged runtimes.
    pub fn cold_churn(self) -> f64 {
        match self {
            Category::LinuxDistro => 0.75,
            Category::Language => 0.40,
            Category::Database => 0.30,
            Category::WebComponent => 0.22,
            Category::ApplicationPlatform => 0.25,
            Category::Others => 0.30,
        }
    }

    /// Churn for *hot* (startup-necessary) files. Calibration target: the
    /// per-category necessary-data redundancy of Fig. 2 (Database 56.0 %,
    /// Application Platform 57.4 %, average 39.9 %).
    pub fn hot_churn(self) -> f64 {
        match self {
            Category::LinuxDistro => 0.80,
            Category::Language => 0.85,
            Category::Database => 0.54,
            Category::WebComponent => 0.55,
            Category::ApplicationPlatform => 0.53,
            Category::Others => 0.80,
        }
    }

    /// Fraction of an image's files that are *hot*: read during startup and
    /// the deployment task. The paper cites remote-image studies reading
    /// 6.4 %–33 % of image data on deployment.
    pub fn hot_fraction(self) -> f64 {
        match self {
            Category::LinuxDistro => 0.22,
            Category::Language => 0.42,
            Category::Database => 0.36,
            Category::WebComponent => 0.33,
            Category::ApplicationPlatform => 0.40,
            Category::Others => 0.30,
        }
    }

    /// The deployment task run after launch (paper §V-D).
    pub fn task(self) -> TaskKind {
        match self {
            Category::LinuxDistro => TaskKind::Echo,
            Category::Language => TaskKind::CompileRun,
            Category::Database => TaskKind::DatabaseOps,
            Category::WebComponent => TaskKind::WebServe,
            Category::ApplicationPlatform => TaskKind::PlatformTask,
            Category::Others => TaskKind::Generic,
        }
    }

    /// Pure compute time of the task, independent of any file fetching.
    pub fn task_compute(self) -> Duration {
        self.task().compute_time()
    }
}

/// Base-image family an application series is built `FROM`. Series in the
/// same family share base-layer content verbatim, which is what enables
/// cross-series deduplication in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseFamily {
    /// Debian/debian-slim lineage (most official images).
    Debian,
    /// Alpine lineage (musl-based slim images).
    Alpine,
    /// Ubuntu lineage.
    Ubuntu,
    /// CentOS lineage.
    Centos,
    /// Amazon Linux lineage.
    AmazonLinux,
    /// Busybox (static) lineage.
    Busybox,
}

impl BaseFamily {
    /// Full-scale size of the family's *slim* base file set, in MB — what
    /// application images actually build `FROM` (e.g. `debian:buster-slim`).
    pub fn base_size_mb(self) -> f64 {
        match self {
            BaseFamily::Debian => 27.0,
            BaseFamily::Alpine => 5.5,
            BaseFamily::Ubuntu => 30.0,
            BaseFamily::Centos => 70.0,
            BaseFamily::AmazonLinux => 60.0,
            BaseFamily::Busybox => 1.2,
        }
    }

    /// Stable per-family seed component.
    pub fn seed(self) -> u64 {
        match self {
            BaseFamily::Debian => 0xD_EB,
            BaseFamily::Alpine => 0xA1_91,
            BaseFamily::Ubuntu => 0x0B_07,
            BaseFamily::Centos => 0xCE_05,
            BaseFamily::AmazonLinux => 0xA3_02,
            BaseFamily::Busybox => 0xB0_BB,
        }
    }
}

/// One image series (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSpec {
    /// Series (repository) name.
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// Base family the series builds on. For Linux distro series this is the
    /// family whose content the series *is*.
    pub family: BaseFamily,
    /// Approximate full-scale unpacked image size, in MB.
    pub full_size_mb: f64,
    /// Number of versions collected (20 except three shorter series).
    pub versions: usize,
}

const fn s(
    name: &'static str,
    category: Category,
    family: BaseFamily,
    full_size_mb: f64,
    versions: usize,
) -> SeriesSpec {
    SeriesSpec { name, category, family, full_size_mb, versions }
}

/// The top-50 official image series of the paper's Table I, with realistic
/// approximate sizes and version counts (947 + 3 + 11 + 17 = 971 images).
pub const CATALOG: [SeriesSpec; 50] = [
    // Linux Distro
    s("alpine", Category::LinuxDistro, BaseFamily::Alpine, 6.0, 20),
    s("amazonlinux", Category::LinuxDistro, BaseFamily::AmazonLinux, 160.0, 20),
    s("busybox", Category::LinuxDistro, BaseFamily::Busybox, 1.2, 20),
    s("centos", Category::LinuxDistro, BaseFamily::Centos, 200.0, 11),
    s("debian", Category::LinuxDistro, BaseFamily::Debian, 114.0, 20),
    s("ubuntu", Category::LinuxDistro, BaseFamily::Ubuntu, 73.0, 20),
    // Language
    s("golang", Category::Language, BaseFamily::Debian, 700.0, 20),
    s("java", Category::Language, BaseFamily::Debian, 500.0, 20),
    s("openjdk", Category::Language, BaseFamily::Debian, 470.0, 20),
    s("php", Category::Language, BaseFamily::Debian, 390.0, 20),
    s("python", Category::Language, BaseFamily::Debian, 340.0, 20),
    s("ruby", Category::Language, BaseFamily::Debian, 840.0, 20),
    // Database
    s("cassandra", Category::Database, BaseFamily::Debian, 340.0, 20),
    s("couchbase", Category::Database, BaseFamily::Ubuntu, 1000.0, 20),
    s("crate", Category::Database, BaseFamily::Centos, 740.0, 20),
    s("elasticsearch", Category::Database, BaseFamily::Centos, 770.0, 20),
    s("influxdb", Category::Database, BaseFamily::Debian, 300.0, 20),
    s("mariadb", Category::Database, BaseFamily::Ubuntu, 350.0, 20),
    s("memcached", Category::Database, BaseFamily::Debian, 80.0, 20),
    s("mongo", Category::Database, BaseFamily::Ubuntu, 450.0, 20),
    s("mysql", Category::Database, BaseFamily::Debian, 550.0, 20),
    s("postgres", Category::Database, BaseFamily::Debian, 310.0, 20),
    s("redis", Category::Database, BaseFamily::Debian, 100.0, 20),
    // Web Component
    s("consul", Category::WebComponent, BaseFamily::Alpine, 120.0, 20),
    s("eclipse-mosquitto", Category::WebComponent, BaseFamily::Alpine, 10.0, 17),
    s("haproxy", Category::WebComponent, BaseFamily::Debian, 90.0, 20),
    s("httpd", Category::WebComponent, BaseFamily::Debian, 160.0, 20),
    s("kibana", Category::WebComponent, BaseFamily::Centos, 1100.0, 20),
    s("kong", Category::WebComponent, BaseFamily::Alpine, 150.0, 20),
    s("nginx", Category::WebComponent, BaseFamily::Debian, 130.0, 20),
    s("node", Category::WebComponent, BaseFamily::Debian, 900.0, 20),
    s("telegraf", Category::WebComponent, BaseFamily::Debian, 250.0, 20),
    s("tomcat", Category::WebComponent, BaseFamily::Debian, 500.0, 20),
    s("traefik", Category::WebComponent, BaseFamily::Alpine, 100.0, 20),
    // Application Platform
    s("drupal", Category::ApplicationPlatform, BaseFamily::Debian, 450.0, 20),
    s("ghost", Category::ApplicationPlatform, BaseFamily::Debian, 450.0, 20),
    s("jenkins", Category::ApplicationPlatform, BaseFamily::Debian, 570.0, 20),
    s("nextcloud", Category::ApplicationPlatform, BaseFamily::Debian, 750.0, 20),
    s("rabbitmq", Category::ApplicationPlatform, BaseFamily::Ubuntu, 180.0, 20),
    s("solr", Category::ApplicationPlatform, BaseFamily::Debian, 530.0, 20),
    s("sonarqube", Category::ApplicationPlatform, BaseFamily::Alpine, 460.0, 20),
    s("wordpress", Category::ApplicationPlatform, BaseFamily::Debian, 540.0, 20),
    // Others
    s("chronograf", Category::Others, BaseFamily::Alpine, 160.0, 20),
    s("docker", Category::Others, BaseFamily::Alpine, 220.0, 20),
    s("gradle", Category::Others, BaseFamily::Debian, 600.0, 20),
    s("hello-world", Category::Others, BaseFamily::Busybox, 0.013, 3),
    s("logstash", Category::Others, BaseFamily::Centos, 770.0, 20),
    s("maven", Category::Others, BaseFamily::Debian, 500.0, 20),
    s("registry", Category::Others, BaseFamily::Alpine, 25.0, 20),
    s("vault", Category::Others, BaseFamily::Alpine, 200.0, 20),
];

impl SeriesSpec {
    /// Looks a series up by name.
    pub fn by_name(name: &str) -> Option<&'static SeriesSpec> {
        CATALOG.iter().find(|spec| spec.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_971_images() {
        let total: usize = CATALOG.iter().map(|spec| spec.versions).sum();
        assert_eq!(total, 971, "the paper's corpus has exactly 971 images");
    }

    #[test]
    fn catalog_has_50_series_across_6_categories() {
        assert_eq!(CATALOG.len(), 50);
        for cat in Category::ALL {
            assert!(
                CATALOG.iter().any(|spec| spec.category == cat),
                "category {cat:?} missing"
            );
        }
    }

    #[test]
    fn category_counts_match_table1() {
        let count = |c: Category| CATALOG.iter().filter(|spec| spec.category == c).count();
        assert_eq!(count(Category::LinuxDistro), 6);
        assert_eq!(count(Category::Language), 6);
        assert_eq!(count(Category::Database), 11);
        assert_eq!(count(Category::WebComponent), 11);
        assert_eq!(count(Category::ApplicationPlatform), 8);
        assert_eq!(count(Category::Others), 8);
    }

    #[test]
    fn unique_names() {
        let mut names: Vec<_> = CATALOG.iter().map(|spec| spec.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(SeriesSpec::by_name("tomcat").unwrap().category, Category::WebComponent);
        assert!(SeriesSpec::by_name("nonesuch").is_none());
    }

    #[test]
    fn churn_parameters_in_range() {
        for cat in Category::ALL {
            for p in [cat.cold_churn(), cat.hot_churn(), cat.hot_fraction()] {
                assert!(p > 0.0 && p < 1.0, "{cat:?}: {p}");
            }
        }
        // Base images churn more than app images (paper §V-C).
        assert!(Category::LinuxDistro.cold_churn() > Category::Database.cold_churn());
        // Database/Platform hot sets are the most stable (paper Fig. 2).
        assert!(Category::Database.hot_churn() < Category::Others.hot_churn());
        assert!(Category::ApplicationPlatform.hot_churn() < Category::WebComponent.hot_churn());
    }
}
