//! Block-structured synthetic file content.
//!
//! File contents are built from fixed-size **blocks**, each derived from a
//! 64-bit seed. This gives the generator precise control over the properties
//! the storage experiments depend on:
//!
//! * two files are byte-identical iff their seed vectors are equal (exact
//!   file-level dedup);
//! * churn mutates only a fraction of a file's block seeds, so chunk-level
//!   dedup sees partial sharing between versions, like real binaries;
//! * block bytes are sequences of 8-byte tokens drawn from a global
//!   vocabulary, so LZSS compresses them at realistic (~2–3×) ratios.
//!
//! Different seeds yield statistically independent blocks (splitmix64
//! hashing of `(seed, position)` — *not* a shared xorshift orbit).

use bytes::Bytes;

/// Block size in (scaled) bytes. At the default 1/1024 corpus scale this
/// models the paper's 128 KiB chunk unit.
pub const BLOCK_SIZE: usize = 128;

/// Tokens per block (each token is 8 bytes).
const TOKENS_PER_BLOCK: usize = BLOCK_SIZE / 8;

/// Size of the token id space. Large enough that distinct files effectively
/// never share tokens: compression gains come from *within-file* repetition
/// (realistic), so compressing a whole layer is not much better than
/// compressing its files individually — which keeps the Docker-vs-Gear
/// storage comparison honest.
const VOCABULARY: u64 = 1 << 22;

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn mix2(a: u64, b: u64) -> u64 {
    splitmix(a ^ splitmix(b))
}

/// The 8 bytes of vocabulary token `id`.
#[inline]
fn token_bytes(id: u64) -> [u8; 8] {
    splitmix(id.wrapping_mul(0x2545_F491_4F6C_DD1D)).to_le_bytes()
}

/// Writes the `BLOCK_SIZE` bytes of the block identified by `seed`.
fn write_block(seed: u64, out: &mut Vec<u8>) {
    // A block is a token sequence with local repetition: each token repeats
    // the previous one with probability 3/4, giving LZSS long runs and an
    // overall compression ratio near what gzip achieves on real image
    // content (~0.4–0.5).
    let mut token = mix2(seed, 0) % VOCABULARY;
    for i in 0..TOKENS_PER_BLOCK {
        let roll = mix2(seed, 1 + i as u64);
        if roll & 3 == 0 {
            token = roll % VOCABULARY;
        }
        out.extend_from_slice(&token_bytes(token));
    }
}

/// Builds file content from a vector of block seeds, truncated to `len`.
///
/// ```
/// use gear_corpus::{make_content, BLOCK_SIZE};
/// let seeds = vec![1, 2, 3];
/// let a = make_content(&seeds, 3 * BLOCK_SIZE as u64);
/// let b = make_content(&seeds, 3 * BLOCK_SIZE as u64);
/// assert_eq!(a, b); // deterministic
/// assert_eq!(a.len(), 3 * BLOCK_SIZE);
/// ```
pub fn make_content(seeds: &[u64], len: u64) -> Bytes {
    let mut out = Vec::with_capacity(seeds.len() * BLOCK_SIZE);
    for &seed in seeds {
        write_block(seed, &mut out);
    }
    out.truncate(len as usize);
    Bytes::from(out)
}

/// The block-seed vector for a brand-new file of `len` bytes, derived from
/// the file's identity seed.
pub fn new_file_seeds(identity: u64, len: u64) -> Vec<u64> {
    let blocks = (len as usize).div_ceil(BLOCK_SIZE).max(1);
    (0..blocks as u64).map(|i| mix2(identity, i)).collect()
}

/// Mutates a fraction of a file's blocks for a version bump: each block is
/// re-seeded with probability `block_churn`, keyed by `revision` so repeated
/// bumps keep diverging deterministically.
pub fn mutate_seeds(seeds: &[u64], revision: u64, block_churn: f64) -> Vec<u64> {
    let threshold = (block_churn.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            let roll = mix2(seed ^ revision, 0xC0FFEE + i as u64);
            if roll <= threshold {
                mix2(seed, revision ^ 0xBEEF)
            } else {
                seed
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_exact() {
        let seeds = new_file_seeds(42, 1000);
        assert_eq!(seeds.len(), 8); // ceil(1000/128)
        let c = make_content(&seeds, 1000);
        assert_eq!(c.len(), 1000);
        assert_eq!(c, make_content(&seeds, 1000));
    }

    #[test]
    fn different_identities_differ() {
        let a = make_content(&new_file_seeds(1, 512), 512);
        let b = make_content(&new_file_seeds(2, 512), 512);
        assert_ne!(a, b);
    }

    #[test]
    fn content_is_compressible_but_not_trivial() {
        let c = make_content(&new_file_seeds(7, 64 * 1024), 64 * 1024);
        let packed = gear_compress_probe(&c);
        let ratio = packed as f64 / c.len() as f64;
        assert!(ratio < 0.75, "should compress: ratio {ratio}");
        assert!(ratio > 0.05, "should not collapse to nothing: ratio {ratio}");
    }

    // Local probe to avoid a dev-dependency cycle: a tiny run-length proxy
    // correlates with LZSS compressibility (repeated tokens).
    fn gear_compress_probe(data: &[u8]) -> usize {
        let mut distinct = std::collections::HashSet::new();
        for w in data.chunks(8) {
            distinct.insert(w.to_vec());
        }
        distinct.len() * 8 + data.len() / 8 // dictionary + references proxy
    }

    #[test]
    fn mutation_changes_exactly_some_blocks() {
        let seeds = new_file_seeds(9, 100 * BLOCK_SIZE as u64);
        let mutated = mutate_seeds(&seeds, 1, 0.3);
        let changed = seeds.iter().zip(&mutated).filter(|(a, b)| a != b).count();
        assert!(changed > 10 && changed < 60, "changed {changed}/100 blocks at churn 0.3");
        // Zero churn: identity. Full churn: everything changes.
        assert_eq!(mutate_seeds(&seeds, 1, 0.0), seeds);
        let all = mutate_seeds(&seeds, 1, 1.0);
        assert!(seeds.iter().zip(&all).all(|(a, b)| a != b));
    }

    #[test]
    fn mutation_is_deterministic_per_revision() {
        let seeds = new_file_seeds(11, 50 * BLOCK_SIZE as u64);
        assert_eq!(mutate_seeds(&seeds, 5, 0.4), mutate_seeds(&seeds, 5, 0.4));
        assert_ne!(mutate_seeds(&seeds, 5, 0.9), mutate_seeds(&seeds, 6, 0.9));
    }

    #[test]
    fn tiny_file_has_one_block() {
        let seeds = new_file_seeds(3, 5);
        assert_eq!(seeds.len(), 1);
        assert_eq!(make_content(&seeds, 5).len(), 5);
    }
}
