//! Corpus generation: series states, version evolution, layering, traces.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use bytes::Bytes;
use gear_archive::{Archive, ArchivePath, Entry, Metadata};
use gear_image::{Image, ImageBuilder, ImageRef, Layer};

use crate::catalog::{BaseFamily, Category, SeriesSpec, CATALOG};
use crate::content::{make_content, mutate_seeds, new_file_seeds};
use crate::trace::StartupTrace;

/// How to generate a corpus.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Global seed; different seeds give statistically equivalent corpora.
    pub seed: u64,
    /// Every full-scale byte count is divided by this factor. 1024 maps the
    /// paper's 370 GB corpus onto ~360 MB of synthetic content.
    pub scale_denom: u64,
    /// Restrict generation to these series names ([`None`] = all 50).
    pub series: Option<Vec<String>>,
    /// Cap the number of versions per series ([`None`] = catalog values).
    pub max_versions: Option<usize>,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { seed: 0x6EA2, scale_denom: 1024, series: None, max_versions: None }
    }
}

impl CorpusConfig {
    /// The paper-shaped full corpus: all 50 series, 971 images, 1/1024 scale.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A small corpus for unit tests: one series per category, 4 versions,
    /// 1/8192 scale.
    pub fn quick() -> Self {
        CorpusConfig {
            seed: 7,
            scale_denom: 8192,
            series: Some(
                ["debian", "python", "redis", "tomcat", "wordpress", "registry"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
            max_versions: Some(4),
        }
    }

    /// The chunk size the Table II analysis should use at this scale: the
    /// paper's 128 KiB divided by `scale_denom`, floored at 16 bytes.
    pub fn scaled_chunk_size(&self) -> usize {
        ((128 * 1024) / self.scale_denom).max(16) as usize
    }
}

/// One generated image series: images plus their per-version startup traces.
#[derive(Debug, Clone)]
pub struct ImageSeries {
    /// The catalog entry this was generated from.
    pub spec: SeriesSpec,
    /// Images, oldest version first.
    pub images: Vec<Image>,
    /// `traces[i]` is the startup trace of `images[i]`.
    pub traces: Vec<StartupTrace>,
}

impl ImageSeries {
    /// The category of the series.
    pub fn category(&self) -> Category {
        self.spec.category
    }
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All generated series, in catalog order.
    pub series: Vec<ImageSeries>,
    /// The configuration used.
    pub config: CorpusConfig,
}

impl Corpus {
    /// Generates a corpus (deterministic in `config`).
    pub fn generate(config: &CorpusConfig) -> Corpus {
        Generator::new(config.clone()).run()
    }

    /// Generates a corpus with one series per pool job.
    ///
    /// Every file body, layer digest, image, and trace is a pure function of
    /// `config` (all content derives from seeds), and series are independent,
    /// so the result equals [`Corpus::generate`] for any worker count. The
    /// only cost of the parallel path is that per-generator caches are not
    /// shared across series, so identical base layers are *rebuilt* (with
    /// identical digests) instead of cloned — CPU traded for wall-clock.
    pub fn generate_parallel(config: &CorpusConfig, pool: &gear_par::Pool) -> Corpus {
        let wanted = wanted_specs(config);
        let series = pool.map(&wanted, |&spec| {
            Generator::new(config.clone()).generate_series(spec)
        });
        Corpus { series, config: config.clone() }
    }

    /// Iterates over every image.
    pub fn all_images(&self) -> impl Iterator<Item = &Image> {
        self.series.iter().flat_map(|s| s.images.iter())
    }

    /// Total number of images.
    pub fn image_count(&self) -> usize {
        self.series.iter().map(|s| s.images.len()).sum()
    }

    /// Series grouped by category, in [`Category::ALL`] order.
    pub fn by_category(&self) -> Vec<(Category, Vec<&ImageSeries>)> {
        Category::ALL
            .iter()
            .map(|&cat| {
                (cat, self.series.iter().filter(|s| s.spec.category == cat).collect())
            })
            .collect()
    }

    /// Looks up a series by name.
    pub fn series_by_name(&self, name: &str) -> Option<&ImageSeries> {
        self.series.iter().find(|s| s.spec.name == name)
    }

    /// Multiply a simulated byte count back up to paper scale.
    pub fn to_paper_scale(&self, simulated_bytes: u64) -> u64 {
        simulated_bytes * self.config.scale_denom
    }
}

/// One synthetic file: identity, content seeds, size, and temperature.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileSpec {
    path: String,
    seeds: Vec<u64>,
    len: u64,
    hot: bool,
    exec: bool,
    /// Which application sub-layer the file ships in (0 for base/runtime).
    sublayer: usize,
}

impl FileSpec {
    fn content_key(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seeds.hash(&mut h);
        self.len.hash(&mut h);
        h.finish()
    }
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn mix2(a: u64, b: u64) -> u64 {
    splitmix(a ^ splitmix(b))
}

/// Bernoulli draw keyed by `key`.
#[inline]
fn roll(key: u64, p: f64) -> bool {
    (mix2(key, 0x5EED) as f64 / u64::MAX as f64) < p
}

/// Fraction of a file's blocks rewritten when the file churns.
const BLOCK_CHURN_ON_EDIT: f64 = 0.65;
/// New app files added per version, as a fraction of the group size.
const GROWTH_PER_VERSION: f64 = 0.02;
/// Base image release cadence for application images: one base refresh per
/// this many versions.
const BASE_RELEASE_EVERY: usize = 6;
/// Runtime layer refresh cadence for application images.
const RUNTIME_REV_EVERY: usize = 4;
/// Application content is split into this many Docker sub-layers.
const APP_SUBLAYERS: usize = 4;
/// Per-version refresh probability of each sub-layer, deepest first. The
/// deepest sub-layer (vendored dependencies) changes rarely and gives Docker
/// some genuine layer reuse across versions; the rest are rebuilt on almost
/// every release. Crucially, a *rebuilt* layer still contains mostly
/// unchanged files (per-file churn inside a refresh is
/// `cold_churn / mean(profile)`), which is exactly the redundancy Docker's
/// layer-level dedup cannot see and Gear's file-level sharing can — the
/// core economics of the paper's Fig. 7.
const SUBLAYER_PROFILE: [f64; APP_SUBLAYERS] = [0.30, 1.0, 1.0, 1.0];

/// Mean of [`SUBLAYER_PROFILE`].
fn mean_refresh_prob() -> f64 {
    SUBLAYER_PROFILE.iter().sum::<f64>() / APP_SUBLAYERS as f64
}

struct Generator {
    config: CorpusConfig,
    /// family × release → evolved base file set (shared across series).
    base_cache: HashMap<(BaseFamily, usize), Vec<FileSpec>>,
    /// family × release → the full-variant extras of the distro series.
    extras_cache: HashMap<(BaseFamily, usize), Vec<FileSpec>>,
    /// Layer cache: identical (group, revision) layers are built once and
    /// shared, mirroring how identical Docker layers get identical digests.
    layer_cache: HashMap<u64, Layer>,
    /// Content cache so identical file bodies share one allocation.
    content_cache: HashMap<u64, Bytes>,
}

impl Generator {
    fn new(config: CorpusConfig) -> Self {
        Generator {
            config,
            base_cache: HashMap::new(),
            extras_cache: HashMap::new(),
            layer_cache: HashMap::new(),
            content_cache: HashMap::new(),
        }
    }

    fn run(mut self) -> Corpus {
        let wanted = wanted_specs(&self.config);
        let mut series = Vec::with_capacity(wanted.len());
        for spec in wanted {
            series.push(self.generate_series(spec));
        }
        Corpus { series, config: self.config }
    }

    fn generate_series(&mut self, spec: &'static SeriesSpec) -> ImageSeries {
        let versions = self
            .config
            .max_versions
            .map_or(spec.versions, |cap| spec.versions.min(cap));
        let series_seed = mix2(self.config.seed, splitmix(hash_str(spec.name)));
        let is_distro = spec.category == Category::LinuxDistro;

        // Non-base portion of the image (runtime + app groups).
        let base_mb = spec.family.base_size_mb();
        let scratch = spec.full_size_mb < base_mb * 1.2; // e.g. hello-world
        let rest_mb = if is_distro {
            0.0
        } else if scratch {
            spec.full_size_mb
        } else {
            (spec.full_size_mb - base_mb).max(base_mb * 0.2)
        };
        let runtime_mb = rest_mb * 0.35;
        let app_mb = rest_mb * 0.65;

        let mut runtime_files = if runtime_mb > 0.0 {
            self.new_group(
                mix2(series_seed, 1),
                &format!("opt/{}/runtime", spec.name),
                runtime_mb,
                spec.category.hot_fraction() * 0.45,
            )
        } else {
            Vec::new()
        };
        let mut app_files = if app_mb > 0.0 {
            let mut files = self.new_group(
                mix2(series_seed, 2),
                &format!("opt/{}/app", spec.name),
                app_mb,
                spec.category.hot_fraction(),
            );
            // Spread app files round-robin across the Docker sub-layers.
            for (i, file) in files.iter_mut().enumerate() {
                file.sublayer = i % APP_SUBLAYERS;
            }
            files
        } else {
            Vec::new()
        };

        // Within a refreshed sub-layer, per-file churn is scaled so the
        // *expected* per-file churn per version equals the category values.
        let refresh_probs = SUBLAYER_PROFILE;
        let mean_refresh = mean_refresh_prob();
        let cold_refresh_churn = (spec.category.cold_churn() / mean_refresh).min(0.97);
        let hot_refresh_churn = (spec.category.hot_churn() / mean_refresh).min(0.97);
        let mut app_rev = [0u64; APP_SUBLAYERS];

        let mut images = Vec::with_capacity(versions);
        let mut traces = Vec::with_capacity(versions);
        let mut runtime_rev_applied = 0usize;

        for v in 0..versions {
            // --- evolve groups ---------------------------------------------
            if v > 0 && !is_distro {
                let runtime_rev = v / RUNTIME_REV_EVERY;
                if runtime_rev > runtime_rev_applied {
                    runtime_rev_applied = runtime_rev;
                    evolve_group(
                        &mut runtime_files,
                        mix2(series_seed, 100 + runtime_rev as u64),
                        spec.category.cold_churn(),
                        spec.category.hot_churn() * 0.8,
                    );
                }
                for l in 0..APP_SUBLAYERS {
                    let refresh_key = mix2(series_seed, 0x900 + (v as u64) * 16 + l as u64);
                    if !roll(refresh_key, refresh_probs[l]) {
                        continue;
                    }
                    app_rev[l] += 1;
                    let rev_key =
                        mix2(series_seed, 0xA000 + (l as u64) * 0x1000 + app_rev[l]);
                    for (i, file) in app_files.iter_mut().enumerate() {
                        if file.sublayer != l {
                            continue;
                        }
                        let p = if file.hot { hot_refresh_churn } else { cold_refresh_churn };
                        if roll(mix2(rev_key, i as u64), p) {
                            file.seeds =
                                mutate_seeds(&file.seeds, rev_key, BLOCK_CHURN_ON_EDIT);
                        }
                    }
                    if l == APP_SUBLAYERS - 1 {
                        grow_group(
                            &mut app_files,
                            mix2(series_seed, 300 + v as u64),
                            &format!("opt/{}/app", spec.name),
                            self.config.scale_denom,
                        );
                    }
                }
            }

            // --- assemble layers --------------------------------------------
            let reference = ImageRef::new(spec.name, &version_tag(v)).expect("valid name");
            let mut builder = ImageBuilder::new(reference)
                .env("PATH=/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin")
                .env(format!(
                    "{}_VERSION={}",
                    spec.name.to_uppercase().replace('-', "_"),
                    version_tag(v)
                ))
                .cmd([format!("/opt/{}/app/start", spec.name)]);

            let mut hot_paths: Vec<String> = Vec::new();

            if is_distro {
                // A distro image is its slim base plus the full-variant
                // extras, evolving together per release. Sharing the slim
                // files with app series' base layers enables the
                // cross-series dedup visible in the whole-registry results.
                let release = v;
                let mut all = self.base_files(spec.family, release).to_vec();
                all.extend(self.distro_extras(spec.family, release).to_vec());
                hot_paths.extend(all.iter().filter(|f| f.hot).map(|f| f.path.clone()));
                let layer = self.layer_for(mix2(spec.family.seed() ^ 0xD15, release as u64), &all);
                builder = builder.existing_layer(layer);
            } else {
                if !scratch {
                    let release = v / BASE_RELEASE_EVERY;
                    let base = self.base_files(spec.family, release).to_vec();
                    // App containers read a handful of stable base files
                    // (ld.so, libc, sh) at startup.
                    hot_paths.extend(
                        base.iter().filter(|f| f.hot).take(4).map(|f| f.path.clone()),
                    );
                    let layer = self.layer_for(mix2(spec.family.seed(), release as u64), &base);
                    builder = builder.existing_layer(layer);
                }
                if !runtime_files.is_empty() {
                    hot_paths
                        .extend(runtime_files.iter().filter(|f| f.hot).map(|f| f.path.clone()));
                    let key = mix2(series_seed, 0x4000 + runtime_rev_applied as u64);
                    let layer = self.layer_for(key, &runtime_files);
                    builder = builder.existing_layer(layer);
                }
                if !app_files.is_empty() {
                    hot_paths.extend(app_files.iter().filter(|f| f.hot).map(|f| f.path.clone()));
                    // One Docker layer per sub-layer, keyed on its revision:
                    // unrefreshed sub-layers keep their digest and dedup in
                    // the registry across versions.
                    for (l, rev) in app_rev.iter().enumerate() {
                        let files: Vec<FileSpec> = app_files
                            .iter()
                            .filter(|f| f.sublayer == l)
                            .cloned()
                            .collect();
                        if files.is_empty() {
                            continue;
                        }
                        let key = mix2(
                            series_seed,
                            0x8000 + (l as u64) * 0x0001_0000 + rev,
                        );
                        builder = builder.existing_layer(self.layer_for(key, &files));
                    }
                }
            }

            hot_paths.sort();
            hot_paths.dedup();
            images.push(builder.build());
            traces.push(StartupTrace { reads: hot_paths, task: spec.category.task() });
        }

        ImageSeries { spec: *spec, images, traces }
    }

    /// The (cached) base file set of `family` at `release`. Release r evolves
    /// deterministically from release r−1 with the distro churn parameters.
    fn base_files(&mut self, family: BaseFamily, release: usize) -> &[FileSpec] {
        if !self.base_cache.contains_key(&(family, release)) {
            let files = if release == 0 {
                new_group_impl(
                    mix2(family.seed(), 0xBA5E),
                    &format!("usr/{}", family_prefix(family)),
                    family.base_size_mb(),
                    Category::LinuxDistro.hot_fraction(),
                    self.config.scale_denom,
                )
            } else {
                let mut prev = self.base_files(family, release - 1).to_vec();
                evolve_group(
                    &mut prev,
                    mix2(family.seed(), 0xEE00 + release as u64),
                    Category::LinuxDistro.cold_churn(),
                    Category::LinuxDistro.hot_churn(),
                );
                prev
            };
            self.base_cache.insert((family, release), files);
        }
        &self.base_cache[&(family, release)]
    }

    /// The (cached) full-variant extras of the distro series for `family`
    /// at `release`: the content beyond the slim base (docs, locales,
    /// package metadata), evolving at the same cadence.
    fn distro_extras(&mut self, family: BaseFamily, release: usize) -> &[FileSpec] {
        if !self.extras_cache.contains_key(&(family, release)) {
            let full_mb = CATALOG
                .iter()
                .find(|s| s.category == Category::LinuxDistro && s.family == family)
                .map_or(family.base_size_mb() * 2.0, |s| s.full_size_mb);
            let extra_mb = (full_mb - family.base_size_mb()).max(full_mb * 0.05);
            let files = if release == 0 {
                new_group_impl(
                    mix2(family.seed(), 0xF011),
                    &format!("usr/{}/full", family_prefix(family)),
                    extra_mb,
                    Category::LinuxDistro.hot_fraction() * 0.5,
                    self.config.scale_denom,
                )
            } else {
                let mut prev = self.distro_extras(family, release - 1).to_vec();
                evolve_group(
                    &mut prev,
                    mix2(family.seed(), 0xFE00 + release as u64),
                    Category::LinuxDistro.cold_churn(),
                    Category::LinuxDistro.hot_churn(),
                );
                prev
            };
            self.extras_cache.insert((family, release), files);
        }
        &self.extras_cache[&(family, release)]
    }

    fn new_group(
        &mut self,
        identity: u64,
        prefix: &str,
        total_mb: f64,
        hot_fraction: f64,
    ) -> Vec<FileSpec> {
        new_group_impl(identity, prefix, total_mb, hot_fraction, self.config.scale_denom)
    }

    /// Builds (and caches) the layer whose diff is exactly `files`.
    fn layer_for(&mut self, key: u64, files: &[FileSpec]) -> Layer {
        if let Some(layer) = self.layer_cache.get(&key) {
            return layer.clone();
        }
        let mut archive = Archive::new();
        let mut dirs_done = std::collections::HashSet::new();
        let mut sorted: Vec<&FileSpec> = files.iter().collect();
        sorted.sort_by(|a, b| a.path.cmp(&b.path));
        for file in sorted {
            let path = ArchivePath::new(&file.path).expect("generated paths are valid");
            // Emit parent dirs once.
            let mut ancestors = Vec::new();
            let mut cur = path.parent();
            while let Some(p) = cur {
                if !dirs_done.insert(p.as_str().to_owned()) {
                    break;
                }
                cur = p.parent();
                ancestors.push(p);
            }
            for dir in ancestors.into_iter().rev() {
                archive.push(Entry::dir(dir, Metadata::dir_default()));
            }
            let content = self.content_for(file);
            let meta = if file.exec { Metadata::exec_default() } else { Metadata::file_default() };
            archive.push(Entry::file(path, meta, content));
        }
        archive.sort_by_path();
        let layer = Layer::from_archive(archive);
        self.layer_cache.insert(key, layer.clone());
        layer
    }

    fn content_for(&mut self, file: &FileSpec) -> Bytes {
        match self.content_cache.entry(file.content_key()) {
            MapEntry::Occupied(e) => e.get().clone(),
            MapEntry::Vacant(e) => {
                e.insert(make_content(&file.seeds, file.len)).clone()
            }
        }
    }
}

/// The catalog entries selected by `config.series`, in catalog order.
fn wanted_specs(config: &CorpusConfig) -> Vec<&'static SeriesSpec> {
    CATALOG
        .iter()
        .filter(|spec| match &config.series {
            Some(names) => names.iter().any(|n| n == spec.name),
            None => true,
        })
        .collect()
}

fn family_prefix(family: BaseFamily) -> &'static str {
    match family {
        BaseFamily::Debian => "debian",
        BaseFamily::Alpine => "alpine",
        BaseFamily::Ubuntu => "ubuntu",
        BaseFamily::Centos => "centos",
        BaseFamily::AmazonLinux => "amazonlinux",
        BaseFamily::Busybox => "busybox",
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

fn version_tag(v: usize) -> String {
    format!("{}.{}.{}", 1 + v / 10, (v / 2) % 5, v % 2)
}

/// How many files a group of `total_mb` (full scale) contains.
fn file_count_for(total_mb: f64) -> usize {
    ((total_mb * 0.55) as usize).clamp(3, 230)
}

fn new_group_impl(
    identity: u64,
    prefix: &str,
    total_mb: f64,
    hot_fraction: f64,
    scale_denom: u64,
) -> Vec<FileSpec> {
    let count = file_count_for(total_mb);
    let total_full_bytes = (total_mb * 1e6) as u64;
    // Skewed size distribution: weight_i in [0.15, ~5.15), a few large files
    // carry most bytes (like real images: small configs, big binaries).
    let weights: Vec<f64> = (0..count)
        .map(|i| {
            let u = mix2(identity, 10 + i as u64) as f64 / u64::MAX as f64;
            0.15 + 5.0 * u * u
        })
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    (0..count)
        .map(|i| {
            let full = (total_full_bytes as f64 * weights[i] / weight_sum) as u64;
            let len = (full / scale_denom).max(24);
            let file_id = mix2(identity, 1000 + i as u64);
            let hot = roll(mix2(file_id, 0x407), hot_fraction);
            let exec = roll(mix2(file_id, 0xE7EC), 0.25);
            let sub = match mix2(file_id, 3) % 4 {
                0 => "lib",
                1 => "bin",
                2 => "share",
                _ => "etc",
            };
            FileSpec {
                path: format!("{prefix}/{sub}/f{i:04}"),
                seeds: new_file_seeds(file_id, len),
                len,
                hot,
                exec,
                sublayer: 0,
            }
        })
        .collect()
}

/// Evolves a group for one revision: each file churns with its
/// temperature's probability; churned files mutate a fraction of blocks.
fn evolve_group(files: &mut [FileSpec], revision_key: u64, cold_churn: f64, hot_churn: f64) {
    for (i, file) in files.iter_mut().enumerate() {
        let p = if file.hot { hot_churn } else { cold_churn };
        if roll(mix2(revision_key, i as u64), p) {
            file.seeds = mutate_seeds(&file.seeds, revision_key, BLOCK_CHURN_ON_EDIT);
        }
    }
}

/// Adds a few new cold files to a group (images grow over time).
fn grow_group(files: &mut Vec<FileSpec>, revision_key: u64, prefix: &str, scale_denom: u64) {
    let additions = ((files.len() as f64 * GROWTH_PER_VERSION).round() as usize).min(6);
    let avg_len = if files.is_empty() {
        1024
    } else {
        (files.iter().map(|f| f.len).sum::<u64>() / files.len() as u64).max(24)
    };
    for k in 0..additions {
        let id = mix2(revision_key, 0xADD + k as u64);
        let len = (avg_len / 2).max(24) * scale_denom / scale_denom.max(1); // scaled already
        files.push(FileSpec {
            path: format!("{prefix}/new/n{:016x}", id),
            seeds: new_file_seeds(id, len),
            len,
            hot: false,
            exec: false,
            sublayer: APP_SUBLAYERS - 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gear_hash::Fingerprint;

    fn quick() -> Corpus {
        Corpus::generate(&CorpusConfig::quick())
    }

    #[test]
    fn deterministic() {
        let a = quick();
        let b = quick();
        assert_eq!(a.image_count(), b.image_count());
        for (sa, sb) in a.series.iter().zip(&b.series) {
            for (ia, ib) in sa.images.iter().zip(&sb.images) {
                assert_eq!(ia.layers().len(), ib.layers().len());
                for (la, lb) in ia.layers().iter().zip(ib.layers()) {
                    assert_eq!(la.diff_id(), lb.diff_id());
                }
            }
        }
    }

    #[test]
    fn parallel_generation_matches_serial() {
        // All 50 catalog series so the pool actually goes parallel
        // (>= gear_par::PARALLEL_THRESHOLD items), one version each,
        // aggressively scaled down to stay cheap.
        let config = CorpusConfig {
            seed: 0x6EA2,
            scale_denom: 65536,
            series: None,
            max_versions: Some(1),
        };
        let serial = Corpus::generate(&config);
        let parallel = Corpus::generate_parallel(&config, &gear_par::Pool::new(4));
        assert_eq!(serial.series.len(), parallel.series.len());
        for (a, b) in serial.series.iter().zip(&parallel.series) {
            assert_eq!(a.spec.name, b.spec.name);
            assert_eq!(a.traces, b.traces);
            assert_eq!(a.images.len(), b.images.len());
            for (ia, ib) in a.images.iter().zip(&b.images) {
                assert_eq!(ia.reference(), ib.reference());
                let digests = |img: &Image| -> Vec<_> {
                    img.layers().iter().map(|l| l.diff_id()).collect()
                };
                assert_eq!(digests(ia), digests(ib), "{}", ia.reference());
            }
        }
    }

    #[test]
    fn quick_corpus_shape() {
        let corpus = quick();
        assert_eq!(corpus.series.len(), 6);
        assert_eq!(corpus.image_count(), 24);
        for series in &corpus.series {
            assert_eq!(series.images.len(), series.traces.len());
            for image in &series.images {
                assert!(image.file_count() > 0, "{}", image.reference());
                assert!(image.content_bytes() > 0);
            }
        }
    }

    #[test]
    fn traces_reference_existing_files() {
        let corpus = quick();
        for series in &corpus.series {
            for (image, trace) in series.images.iter().zip(&series.traces) {
                assert!(!trace.is_empty(), "{} has an empty trace", image.reference());
                let rootfs = image.root_fs().unwrap();
                for path in &trace.reads {
                    assert!(
                        rootfs.get(path).is_some_and(|n| n.is_file()),
                        "{}: trace path {path} missing",
                        image.reference()
                    );
                }
            }
        }
    }

    #[test]
    fn consecutive_versions_share_files() {
        let corpus = quick();
        // quick() may not include tomcat; any app series works.
        let series = corpus.series_by_name("tomcat").or(corpus.series.first());
        let series = series.expect("non-empty corpus");
        let fingerprints = |img: &Image| -> std::collections::HashSet<Fingerprint> {
            img.layers()
                .iter()
                .flat_map(|l| l.archive().iter())
                .filter_map(|e| match &e.kind {
                    gear_archive::EntryKind::File { content, .. } => {
                        Some(Fingerprint::of(content))
                    }
                    _ => None,
                })
                .collect()
        };
        let v0 = fingerprints(&series.images[0]);
        let v1 = fingerprints(&series.images[1]);
        let shared = v0.intersection(&v1).count();
        assert!(shared > 0, "consecutive versions must share file content");
        assert!(
            shared < v1.len(),
            "consecutive versions must also differ (churn), shared {shared}/{}",
            v1.len()
        );
    }

    #[test]
    fn app_images_share_base_across_series() {
        let config = CorpusConfig {
            series: Some(vec!["python".into(), "redis".into()]), // both Debian-based
            max_versions: Some(1),
            ..CorpusConfig::quick()
        };
        let corpus = Corpus::generate(&config);
        let python = &corpus.series_by_name("python").unwrap().images[0];
        let redis = &corpus.series_by_name("redis").unwrap().images[0];
        // Bottom (base) layers must be the identical layer object.
        assert_eq!(
            python.layers()[0].diff_id(),
            redis.layers()[0].diff_id(),
            "same-family app images share their base layer"
        );
    }

    #[test]
    fn distro_images_are_single_layer() {
        let corpus = quick();
        let debian = corpus.series_by_name("debian").unwrap();
        for image in &debian.images {
            assert_eq!(image.layers().len(), 1);
        }
    }

    #[test]
    fn scaled_total_is_near_expected() {
        let corpus = quick();
        // Quick config: 6 series at 1/8192 scale; just assert sane volume.
        let total: u64 = corpus.all_images().map(|i| i.content_bytes()).sum();
        assert!(total > 50_000, "total {total}");
        assert!(total < 50_000_000, "total {total}");
    }

    #[test]
    fn version_tags_unique() {
        let tags: Vec<String> = (0..20).map(version_tag).collect();
        let mut dedup = tags.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len());
    }

    #[test]
    fn scaled_chunk_matches_paper_ratio() {
        assert_eq!(CorpusConfig::default().scaled_chunk_size(), 128);
        assert_eq!(
            CorpusConfig { scale_denom: 1, ..Default::default() }.scaled_chunk_size(),
            128 * 1024
        );
    }
}
