//! Statistical validation: the generated corpus actually exhibits the
//! calibrated properties the experiments rely on.

use std::collections::HashSet;

use gear_corpus::{Category, Corpus, CorpusConfig};
use gear_hash::Fingerprint;
use gear_image::Image;

fn corpus(series: &[&str], versions: usize) -> Corpus {
    Corpus::generate(&CorpusConfig {
        seed: 11,
        scale_denom: 4096,
        series: Some(series.iter().map(|s| s.to_string()).collect()),
        max_versions: Some(versions),
    })
}

fn file_set(image: &Image) -> HashSet<Fingerprint> {
    image
        .layers()
        .iter()
        .flat_map(|l| l.archive().iter())
        .filter_map(|e| match &e.kind {
            gear_archive::EntryKind::File { content, .. } => Some(Fingerprint::of(content)),
            _ => None,
        })
        .collect()
}

/// Mean fraction of version v's file set carried over from version v−1.
fn mean_carryover(images: &[Image]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0;
    for pair in images.windows(2) {
        let prev = file_set(&pair[0]);
        let next = file_set(&pair[1]);
        let kept = next.intersection(&prev).count();
        acc += kept as f64 / next.len() as f64;
        n += 1;
    }
    acc / n as f64
}

#[test]
fn stable_categories_carry_more_files_than_volatile_ones() {
    let c = corpus(&["nginx", "golang", "debian"], 10);
    let nginx = mean_carryover(&c.series_by_name("nginx").unwrap().images);
    let golang = mean_carryover(&c.series_by_name("golang").unwrap().images);
    let debian = mean_carryover(&c.series_by_name("debian").unwrap().images);
    // Web components (cold churn .22) > languages (.40) > distros (.75).
    assert!(nginx > golang, "nginx {nginx} vs golang {golang}");
    assert!(golang > debian, "golang {golang} vs debian {debian}");
    // Rough magnitudes: carryover ≈ 1 − churn, within generous tolerance
    // (refresh bursts add variance).
    assert!((nginx - 0.78).abs() < 0.15, "nginx carryover {nginx}");
    assert!((debian - 0.25).abs() < 0.20, "debian carryover {debian}");
}

#[test]
fn image_sizes_track_catalog_sizes() {
    let c = corpus(&["busybox", "redis", "kibana"], 1);
    let size = |name: &str| c.series_by_name(name).unwrap().images[0].content_bytes();
    assert!(size("busybox") < size("redis"));
    assert!(size("redis") < size("kibana"));
    // Scaled magnitude: kibana is ~1.1 GB full scale → ~270 KB at 1/4096.
    let kibana = size("kibana");
    assert!((100_000..800_000).contains(&kibana), "kibana scaled size {kibana}");
}

#[test]
fn hot_fraction_of_trace_bytes_is_plausible() {
    // Necessary data should be a minority share of the image (the paper
    // cites 6.4 %–33 % for remote-image systems; we calibrate ~15–45 %).
    let c = corpus(&["postgres", "tomcat"], 2);
    for series in &c.series {
        for (image, trace) in series.images.iter().zip(&series.traces) {
            let rootfs = image.root_fs().unwrap();
            let trace_bytes: u64 = trace
                .reads
                .iter()
                .filter_map(|p| rootfs.get(p).map(gear_fs::Node::size))
                .sum();
            let fraction = trace_bytes as f64 / image.content_bytes() as f64;
            assert!(
                (0.05..0.60).contains(&fraction),
                "{}: necessary fraction {fraction}",
                image.reference()
            );
        }
    }
}

#[test]
fn base_layers_shared_and_refreshed_on_schedule() {
    // Base release bumps every 6 versions for app images: versions 0..5
    // share a base layer digest, version 6 gets a new one.
    let c = corpus(&["python"], 8);
    let images = &c.series_by_name("python").unwrap().images;
    let base = |i: usize| images[i].layers()[0].diff_id();
    for v in 1..6 {
        assert_eq!(base(v), base(0), "version {v} must reuse the base layer");
    }
    assert_ne!(base(6), base(0), "version 6 must carry the refreshed base");
}

#[test]
fn deterministic_across_generations_but_seed_sensitive() {
    let a = corpus(&["redis"], 3);
    let b = corpus(&["redis"], 3);
    for (x, y) in a.series[0].images.iter().zip(&b.series[0].images) {
        assert_eq!(file_set(x), file_set(y));
    }
    let other = Corpus::generate(&CorpusConfig {
        seed: 12,
        scale_denom: 4096,
        series: Some(vec!["redis".into()]),
        max_versions: Some(3),
    });
    assert_ne!(
        file_set(&a.series[0].images[0]),
        file_set(&other.series[0].images[0]),
        "different seeds must give different content"
    );
}

#[test]
fn category_coverage_in_full_catalog() {
    // A tiny full-catalog generation (1 version each) covers all categories
    // and all 50 series without panicking.
    let c = Corpus::generate(&CorpusConfig {
        seed: 5,
        scale_denom: 16384,
        series: None,
        max_versions: Some(1),
    });
    assert_eq!(c.series.len(), 50);
    for cat in Category::ALL {
        assert!(c.series.iter().any(|s| s.spec.category == cat));
    }
    assert_eq!(c.image_count(), 50);
}
