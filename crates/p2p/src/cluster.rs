//! The cluster: per-node caches + indexes, peer-first fetch policy.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use gear_client::{store_for, ClientConfig, Timeline, TimelineEvent};
use gear_core::{GearImage, GearIndex};
use gear_corpus::StartupTrace;
use gear_fs::{FsError, FsTree, UnionFs};
use gear_hash::Fingerprint;
use gear_image::ImageRef;
use gear_registry::{DockerRegistry, GearFileStore};
use gear_simnet::{FaultKind, FaultPlan, Link, RetryPolicy, StreamConfig};
use gear_store::BlobStore;
use gear_telemetry::{FleetCollector, Telemetry};

use crate::directory::PeerDirectory;

/// Identifies a node within a [`Cluster`].
pub type NodeId = usize;

/// Errors from cluster deployments.
#[derive(Debug)]
pub enum ClusterError {
    /// Node id out of range.
    NoSuchNode(NodeId),
    /// The index image is missing or malformed in the registry.
    ImageNotFound(ImageRef),
    /// A trace path could not be served.
    Fs(FsError),
    /// Injected faults exhausted the retry budget on a registry transfer
    /// (peers had already been tried; the registry was the last resort).
    FaultBudgetExhausted {
        /// Attempts the retry policy allowed (all consumed).
        attempts: u32,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            ClusterError::ImageNotFound(r) => write!(f, "image {r} not found"),
            ClusterError::Fs(e) => write!(f, "file system error: {e}"),
            ClusterError::FaultBudgetExhausted { attempts } => {
                write!(f, "injected faults exhausted the retry budget ({attempts} attempts)")
            }
        }
    }
}

impl Error for ClusterError {}

impl From<FsError> for ClusterError {
    fn from(e: FsError) -> Self {
        ClusterError::Fs(e)
    }
}

/// Cluster topology and cost model.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Node↔node link (typically a fast LAN).
    pub peer_link: Link,
    /// Node↔registry link (typically a slower WAN uplink shared by all).
    pub registry_link: Link,
    /// Per-node client cost model (disk, local costs, byte scaling).
    pub client: ClientConfig,
    /// Maximum concurrent transfers a deploying node fans out across
    /// distinct sources (each peer holder is an independent lane; registry
    /// transfers share the uplink). `1` fetches holder-by-holder.
    pub fan_out: usize,
}

impl ClusterConfig {
    /// A LAN cluster: 10 Gbps between nodes, the paper's 904 Mbps testbed
    /// uplink to the registry.
    pub fn lan(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            peer_link: Link::mbps(10_000.0).with_rtt(Duration::from_micros(80)),
            registry_link: Link::paper_testbed(),
            client: ClientConfig::default(),
            fan_out: 1,
        }
    }

    /// An edge cluster: 1 Gbps local mesh, a thin 20 Mbps uplink — the
    /// regime where cooperative caching matters most.
    pub fn edge(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            peer_link: Link::mbps(1_000.0),
            registry_link: Link::mbps(20.0),
            client: ClientConfig::default(),
            fan_out: 1,
        }
    }

    /// Replaces the per-node client config (e.g. to set the byte scale).
    pub fn with_client(mut self, client: ClientConfig) -> Self {
        self.client = client;
        self
    }

    /// Sets how many transfers a deploying node keeps in flight (clamped to
    /// at least 1).
    pub fn with_fan_out(mut self, fan_out: usize) -> Self {
        self.fan_out = fan_out.max(1);
        self
    }
}

/// Outcome of deploying on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeDeployment {
    /// The node that deployed.
    pub node: NodeId,
    /// Simulated pull + run time.
    pub total: Duration,
    /// Files served from the node's own cache.
    pub local_files: u64,
    /// Files fetched from peers.
    pub peer_files: u64,
    /// Files fetched from the remote registry.
    pub registry_files: u64,
    /// Bytes fetched from peers (paper scale).
    pub peer_bytes: u64,
    /// Bytes fetched from the registry (paper scale).
    pub registry_bytes: u64,
    /// Failed transfer attempts retried or degraded under fault injection
    /// (zero when no fault plan is active).
    pub retries: u64,
    /// Ordered record of the deployment's steps, including
    /// [`TimelineEvent::PeerFetch`] entries for files served by peers.
    pub timeline: Timeline,
}

/// Cluster-wide fault-injection state (see [`Cluster::inject_faults`]).
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    policy: RetryPolicy,
    retries: u64,
}

/// Where a fetched file came from — the "lane" its transfer occupies when
/// deploys fan out.
#[derive(Debug, Clone, Copy)]
enum Lane {
    /// The node's own cache: no transfer.
    Local,
    /// A peer holder: its lane is serial per holder, parallel across
    /// holders.
    Peer(NodeId),
    /// The registry uplink, shared by all registry transfers.
    Registry,
}

/// One fetch's cost, decomposed so serial and fanned-out deployments can
/// price the same side effects differently.
#[derive(Debug, Clone, Copy)]
struct FetchCharge {
    lane: Lane,
    /// Bytes this fetch reports in its timeline event: logical size for a
    /// local hit, scaled wire bytes for peer and registry transfers.
    bytes: u64,
    /// Time occupying a peer holder's lane (clean transfer + in-budget
    /// stall). Zero for registry fetches — their lane is priced from
    /// `payload` by a stream schedule over the shared uplink.
    lane_time: Duration,
    /// Scaled wire bytes of a registry transfer (zero otherwise).
    payload: u64,
    /// Time that blocks the deployment regardless of fan-out: wasted
    /// attempts, timeouts, backoffs, and registry stalls.
    serial: Duration,
    /// Local post-transfer work: hard links, decompression, disk writes.
    post: Duration,
}

#[derive(Debug)]
struct Node {
    /// Per-node blob store, built by [`store_for`] from the cluster's
    /// client config — a flat memory cache by default, a tiered
    /// memory-over-disk store when `client.tier` is set.
    cache: Box<dyn BlobStore>,
    indexes: HashMap<ImageRef, (Arc<GearIndex>, Arc<FsTree>)>,
}

/// A cluster of Gear clients with a shared peer directory.
///
/// Fetch policy per fingerprint: own cache → any peer holding it (LAN) →
/// the Gear registry (uplink). Every fetched file is announced to the
/// directory, so each unique file crosses the uplink at most once for the
/// whole cluster.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    nodes: Vec<Node>,
    directory: PeerDirectory,
    registry_egress: u64,
    peer_traffic: u64,
    faults: Option<FaultState>,
    telemetry: Telemetry,
    /// Per-node telemetry shards, when the cluster records into a fleet
    /// collector: node `n` feeds shard `n`, and node replacement
    /// ([`Cluster::reset_node`] / [`Cluster::upgrade_node`]) wipes the
    /// shard so post-upgrade tails never mix pre-upgrade samples.
    fleet: Option<Arc<FleetCollector>>,
}

impl Cluster {
    /// Creates a cluster of `config.nodes` empty nodes.
    pub fn new(config: ClusterConfig) -> Self {
        let nodes = (0..config.nodes)
            .map(|_| Node { cache: store_for(&config.client), indexes: HashMap::new() })
            .collect();
        Cluster {
            config,
            nodes,
            directory: PeerDirectory::new(),
            registry_egress: 0,
            peer_traffic: 0,
            faults: None,
            telemetry: Telemetry::noop(),
            fleet: None,
        }
    }

    /// Attaches a telemetry recorder: each node deployment is replayed as a
    /// `p2p` span tree, fetch sources feed `p2p.*` counters, and peer
    /// degradations under fault injection emit instant events.
    pub fn set_recorder(&mut self, telemetry: Telemetry) {
        if let Some(state) = &mut self.faults {
            state.plan.set_recorder(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Binds the cluster to a fleet collector whose shard `n` is node
    /// `n`'s flight recorder. Callers still route each deployment's
    /// recording with [`Cluster::set_recorder`]`(fleet.telemetry(node))`;
    /// what the binding adds is lifecycle hygiene — resetting or upgrading
    /// a node also wipes its shard, so post-upgrade tail distributions
    /// never mix in pre-upgrade samples.
    pub fn set_fleet(&mut self, fleet: Arc<FleetCollector>) {
        self.fleet = Some(fleet);
    }

    /// Wipes `node`'s telemetry shard, when a fleet collector is bound and
    /// has a shard for the node.
    fn reset_telemetry_shard(&self, node: NodeId) {
        if let Some(fleet) = &self.fleet {
            if (node as u32) < fleet.nodes() {
                fleet.reset_shard(node as u32);
            }
        }
    }

    /// Activates fault injection: every network transfer in the cluster
    /// (peer and registry alike) draws from `plan`. A failed peer transfer
    /// degrades to the next holder and finally to the registry; registry
    /// transfers are retried under `policy`, and only exhausting that last
    /// resort aborts the deployment with
    /// [`ClusterError::FaultBudgetExhausted`].
    pub fn inject_faults(&mut self, mut plan: FaultPlan, policy: RetryPolicy) {
        plan.set_recorder(self.telemetry.clone());
        self.faults = Some(FaultState { plan, policy, retries: 0 });
    }

    /// Deactivates fault injection.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Failed transfer attempts retried since [`Cluster::inject_faults`].
    pub fn fault_retries(&self) -> u64 {
        self.faults.as_ref().map_or(0, |state| state.retries)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total bytes the registry served to this cluster (paper scale) — the
    /// number P2P distribution exists to minimize.
    pub fn registry_egress(&self) -> u64 {
        self.registry_egress
    }

    /// Total node-to-node bytes (paper scale).
    pub fn peer_traffic(&self) -> u64 {
        self.peer_traffic
    }

    /// The cluster-wide file directory.
    pub fn directory(&self) -> &PeerDirectory {
        &self.directory
    }

    /// Deploys `reference` on `node`, replaying `trace` with the
    /// peer-first fetch policy.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchNode`], [`ClusterError::ImageNotFound`], or
    /// [`ClusterError::Fs`] if a trace path cannot be served (e.g. the file
    /// is in neither any cache nor the registry).
    pub fn deploy_on(
        &mut self,
        node: NodeId,
        reference: &ImageRef,
        trace: &StartupTrace,
        index_registry: &DockerRegistry,
        file_store: &GearFileStore,
    ) -> Result<NodeDeployment, ClusterError> {
        if node >= self.nodes.len() {
            return Err(ClusterError::NoSuchNode(node));
        }
        let client = self.config.client;
        let retries_before = self.fault_retries();
        let base = self.telemetry.now();
        let mut total = Duration::ZERO;
        let mut report = NodeDeployment {
            node,
            total: Duration::ZERO,
            local_files: 0,
            peer_files: 0,
            registry_files: 0,
            peer_bytes: 0,
            registry_bytes: 0,
            retries: 0,
            timeline: Timeline::new(),
        };

        // --- pull: install the index if missing -----------------------------
        if !self.nodes[node].indexes.contains_key(reference) {
            let image = index_registry
                .image(reference)
                .ok_or_else(|| ClusterError::ImageNotFound(reference.clone()))?;
            let gear = GearImage::from_index_image(&image)
                .map_err(|_| ClusterError::ImageNotFound(reference.clone()))?;
            let index = gear.into_index();
            let index_bytes = index.serialized_len();
            let nominal = self.registry_link_time(index_bytes);
            let took = self.charged_registry_transfer(nominal)?;
            report.timeline.push(total, took, TimelineEvent::Index { bytes: index_bytes });
            total += took;
            self.registry_egress += index_bytes;
            for (fp, _) in index.referenced_files() {
                self.nodes[node].cache.pin(fp);
            }
            let tree = Arc::new(index.to_tree());
            self.nodes[node].indexes.insert(reference.clone(), (Arc::new(index), tree));
        }

        // --- run: replay the trace ------------------------------------------
        let tree = Arc::clone(&self.nodes[node].indexes[reference].1);
        let mut mount = UnionFs::new(vec![tree]);
        mount.set_recorder(self.telemetry.clone());
        let launch = client.costs.container_start + client.costs.mount_setup;
        report.timeline.push(total, launch, TimelineEvent::Launch);
        total += launch;

        let index = Arc::clone(&self.nodes[node].indexes[reference].0);
        let fan_out = self.config.fan_out.max(1);
        let mut charges: Vec<FetchCharge> = Vec::new();
        for path in &trace.reads {
            // Resolve the fingerprint through the index, then fetch through
            // the cluster policy; the mount serves metadata/symlinks.
            let Some((fp, size)) = index.file_at(path) else {
                if let Some(chunks) = index.chunks_at(path) {
                    // Chunk-granularity file: pull every chunk through the
                    // same local → peer → registry lane policy. Chunks are
                    // first-class blobs, so peer hits, dedup, and fault
                    // degradation all work per chunk, and a second node can
                    // source a big file chunk-by-chunk from its neighbours.
                    self.telemetry.count("p2p.chunk_fetches", chunks.len() as u64);
                    for chunk in chunks {
                        let (content, charge) = self.fetch(
                            node,
                            chunk.fingerprint,
                            chunk.size,
                            file_store,
                            &mut report,
                        )?;
                        let at = total;
                        let mut took =
                            client.local_read(client.scaled(content.len() as u64));
                        if fan_out > 1 {
                            took += charge.serial + charge.post;
                            charges.push(charge);
                        } else {
                            took += self.charge_total(&charge);
                        }
                        report.timeline.push(at, took, Self::fetch_event(path, &charge));
                        total += took;
                    }
                    continue;
                }
                // Not a regular file: let the mount handle (symlink/dir) or
                // surface NotFound.
                mount.metadata(path)?;
                continue;
            };
            let (content, charge) = self.fetch(node, fp, size, file_store, &mut report)?;
            let at = total;
            let mut took = client.local_read(client.scaled(content.len() as u64));
            if fan_out > 1 {
                // Transfers overlap (priced below); everything local or
                // fault-bound still gates the deployment serially.
                took += charge.serial + charge.post;
                charges.push(charge);
            } else {
                took += self.charge_total(&charge);
            }
            report.timeline.push(at, took, Self::fetch_event(path, &charge));
            total += took;
        }
        if fan_out > 1 {
            let makespan = self.fan_out_makespan(&charges, fan_out);
            if !makespan.is_zero() {
                report.timeline.push(
                    total,
                    makespan,
                    TimelineEvent::ParallelFetch {
                        files: charges.len() as u64,
                        bytes: charges.iter().map(|c| c.payload).sum(),
                    },
                );
            }
            total += makespan;
        }
        let task = trace.task.compute_time();
        report.timeline.push(total, task, TimelineEvent::Task);
        total += task;
        report.total = total;
        report.retries = self.fault_retries() - retries_before;
        if self.telemetry.enabled() {
            self.record_deployment(&report, reference, base);
        }
        Ok(report)
    }

    /// The timeline event describing where one fetch was served from.
    fn fetch_event(path: &str, charge: &FetchCharge) -> TimelineEvent {
        match charge.lane {
            Lane::Local => {
                TimelineEvent::CacheHit { path: path.to_owned(), bytes: charge.bytes }
            }
            Lane::Peer(peer) => TimelineEvent::PeerFetch {
                path: path.to_owned(),
                bytes: charge.bytes,
                peer: peer as u64,
            },
            Lane::Registry => {
                TimelineEvent::RegistryFetch { path: path.to_owned(), bytes: charge.bytes }
            }
        }
    }

    /// Replays a finished node deployment into the telemetry recorder (same
    /// after-the-fact strategy as the client: pricing is never perturbed).
    fn record_deployment(&self, report: &NodeDeployment, reference: &ImageRef, base: Duration) {
        let t = &self.telemetry;
        t.scoped_span(
            "p2p",
            &format!("deploy node{} {}", report.node, reference),
            base,
            report.total,
            &[
                ("peer_files", report.peer_files),
                ("registry_files", report.registry_files),
            ],
        );
        report.timeline.record_spans(t, base, Some("p2p"));

        t.count("p2p.deploys", 1);
        t.count("p2p.local_files", report.local_files);
        t.count("p2p.peer_files", report.peer_files);
        t.count("p2p.peer_bytes", report.peer_bytes);
        t.count("p2p.registry_files", report.registry_files);
        t.count("p2p.registry_bytes", report.registry_bytes);
        t.count("p2p.retries", report.retries);
        t.gauge_set("p2p.registry_egress", self.registry_egress);
        t.gauge_set("p2p.peer_traffic", self.peer_traffic);
        t.sketch("p2p.deploy_nanos", report.total.as_nanos() as u64);
        for (_, took, event) in report.timeline.entries() {
            if let Some(lane) = event.lane() {
                t.sketch(&format!("p2p.fetch_nanos.{lane}"), took.as_nanos() as u64);
            }
        }
        // The cursor already sits at the deployment's end: the deploy
        // scoped_span dragged it there.
    }

    /// Live-upgrades one node mid-traffic: its cache state (contents, pins,
    /// eviction ticks, accrued I/O cost) is serialized to snapshot bytes —
    /// the payload an out-of-process upgrade would ship — and rehydrated
    /// into a "new version" store instance that behaves tick-for-tick
    /// identically. Directory announcements and installed indexes survive
    /// untouched, so peers keep fetching from the node across the upgrade.
    ///
    /// Returns the handoff payload size in bytes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchNode`].
    pub fn upgrade_node(&mut self, node: NodeId) -> Result<usize, ClusterError> {
        let n = self.nodes.get_mut(node).ok_or(ClusterError::NoSuchNode(node))?;
        let bytes = n.cache.snapshot().to_bytes();
        let snapshot = gear_store::StoreSnapshot::from_bytes(&bytes)
            .expect("snapshot bytes produced in-process always decode");
        n.cache = gear_client::restore_store_for(&self.config.client, &snapshot);
        // The replacement process starts with a clean flight recorder:
        // pre-upgrade samples must not blur post-upgrade tails.
        self.reset_telemetry_shard(node);
        if self.telemetry.enabled() {
            self.telemetry.count("p2p.upgrades", 1);
            self.telemetry.instant("p2p", &format!("upgrade node{node}"));
        }
        Ok(bytes.len())
    }

    /// Empties one node's cache (e.g. node failure / re-image), withdrawing
    /// its directory entries.
    pub fn reset_node(&mut self, node: NodeId) {
        if node >= self.nodes.len() {
            return;
        }
        // Withdraw everything this node announced.
        let fingerprints: Vec<Fingerprint> = self.nodes[node]
            .indexes
            .values()
            .flat_map(|(index, _)| index.referenced_files())
            .map(|(fp, _)| fp)
            .collect();
        for fp in fingerprints {
            self.directory.withdraw(fp, node);
        }
        self.nodes[node].cache.clear();
        self.nodes[node].indexes.clear();
        self.reset_telemetry_shard(node);
    }

    // --- internals ----------------------------------------------------------

    fn registry_link_time(&self, bytes: u64) -> Duration {
        let link = self.config.registry_link;
        (link.rtt + link.request_overhead)
            .mul_f64(self.config.client.request_amplification.max(0.0))
            + link.bandwidth.transfer_time(bytes)
    }

    fn peer_link_time(&self, bytes: u64) -> Duration {
        let link = self.config.peer_link;
        (link.rtt + link.request_overhead)
            .mul_f64(self.config.client.request_amplification.max(0.0))
            + link.bandwidth.transfer_time(bytes)
    }

    /// Draws one fault for a transfer whose clean duration is `nominal`.
    /// `Ok(extra)` means the transfer succeeded with `extra` stall time;
    /// `Err(wasted)` means it failed after `wasted` simulated time (a drop
    /// or over-budget stall burns the per-attempt timeout; corruption and
    /// truncation burn a full wasted transfer).
    fn attempt(faults: &mut Option<FaultState>, nominal: Duration) -> Result<Duration, Duration> {
        let Some(state) = faults else {
            return Ok(Duration::ZERO);
        };
        match state.plan.next_fault() {
            None => Ok(Duration::ZERO),
            Some(FaultKind::Stall(extra)) if nominal + extra <= state.policy.timeout => Ok(extra),
            Some(FaultKind::Drop) | Some(FaultKind::Stall(_)) => {
                state.retries += 1;
                Err(state.policy.timeout)
            }
            Some(FaultKind::Corrupt) | Some(FaultKind::Truncate) => {
                state.retries += 1;
                Err(nominal)
            }
        }
    }

    /// Charges one registry transfer of clean duration `nominal` under the
    /// full retry budget (the registry is the last resort — there is no one
    /// left to degrade to).
    fn charged_registry_transfer(&mut self, nominal: Duration) -> Result<Duration, ClusterError> {
        Ok(self.charged_registry_serial(nominal)? + nominal)
    }

    /// The serial part of one registry transfer under the retry budget:
    /// wasted attempts, backoffs, and in-budget stall extras. The full
    /// charge is this plus `nominal` (which fanned-out deploys price
    /// through the uplink stream schedule instead).
    fn charged_registry_serial(&mut self, nominal: Duration) -> Result<Duration, ClusterError> {
        let attempts = match &self.faults {
            None => return Ok(Duration::ZERO),
            Some(state) => state.policy.max_attempts.max(1),
        };
        let mut serial = Duration::ZERO;
        for attempt in 0..attempts {
            if attempt > 0 {
                if let Some(state) = &self.faults {
                    serial += state.policy.backoff(attempt);
                }
            }
            match Self::attempt(&mut self.faults, nominal) {
                Ok(extra) => return Ok(serial + extra),
                Err(wasted) => serial += wasted,
            }
        }
        Err(ClusterError::FaultBudgetExhausted { attempts })
    }

    /// Recomposes a [`FetchCharge`] into the holder-by-holder serial price
    /// (what `fan_out == 1` deployments pay per file).
    fn charge_total(&self, charge: &FetchCharge) -> Duration {
        let lane = match charge.lane {
            Lane::Registry => self.registry_link_time(charge.payload),
            Lane::Local | Lane::Peer(_) => charge.lane_time,
        };
        charge.serial + lane + charge.post
    }

    /// Prices the transfer portion of `charges` with up to `fan_out`
    /// streams in flight: each distinct peer holder is an independent lane
    /// served serially, all registry transfers share the uplink through a
    /// `fan_out`-deep stream schedule, and the lanes are packed
    /// longest-first onto `fan_out` slots — the makespan is what the
    /// deploying node actually waits for the network.
    fn fan_out_makespan(&self, charges: &[FetchCharge], fan_out: usize) -> Duration {
        let mut peer_lanes: BTreeMap<NodeId, Duration> = BTreeMap::new();
        let mut registry_payloads: Vec<u64> = Vec::new();
        for charge in charges {
            match charge.lane {
                Lane::Peer(holder) => {
                    *peer_lanes.entry(holder).or_insert(Duration::ZERO) += charge.lane_time;
                }
                Lane::Registry => registry_payloads.push(charge.payload),
                Lane::Local => {}
            }
        }
        let mut lanes: Vec<Duration> = peer_lanes.into_values().collect();
        if !registry_payloads.is_empty() {
            let link = self.config.registry_link;
            let fixed = (link.rtt + link.request_overhead)
                .mul_f64(self.config.client.request_amplification.max(0.0));
            lanes.push(
                link.stream_schedule(fixed, &registry_payloads, StreamConfig::concurrent(fan_out))
                    .duration,
            );
        }
        // Longest-processing-time first keeps the packing deterministic and
        // near-optimal.
        lanes.sort_unstable_by(|a, b| b.cmp(a));
        let mut slots = vec![Duration::ZERO; fan_out];
        for lane in lanes {
            if let Some(slot) = slots.iter_mut().min() {
                *slot += lane;
            }
        }
        slots.into_iter().max().unwrap_or(Duration::ZERO)
    }

    fn fetch(
        &mut self,
        node: NodeId,
        fingerprint: Fingerprint,
        size: u64,
        store: &GearFileStore,
        report: &mut NodeDeployment,
    ) -> Result<(Bytes, FetchCharge), ClusterError> {
        let client = self.config.client;
        // 1. Own cache. A tiered store may stage disk time for an L2 hit;
        // that is local post-transfer work (zero for a flat memory cache).
        if let Some(content) = self.nodes[node].cache.get(fingerprint) {
            let tier_io = self.nodes[node].cache.drain_cost();
            report.local_files += 1;
            let charge = FetchCharge {
                lane: Lane::Local,
                bytes: content.len() as u64,
                lane_time: Duration::ZERO,
                payload: 0,
                serial: Duration::ZERO,
                post: client.costs.hard_link + tier_io,
            };
            return Ok((content, charge));
        }
        let mut serial = Duration::ZERO;
        // 2. Peers, in load-spreading order. A faulty transfer gets one
        // attempt per holder — real P2P clients switch peers rather than
        // hammer a bad one — and degrades to the next, then to the registry.
        for peer in self.directory.holders_except(fingerprint, node) {
            let Some(content) = self.nodes[peer].cache.get(fingerprint) else {
                // Stale directory entry (peer evicted): try the next holder.
                self.directory.withdraw(fingerprint, peer);
                continue;
            };
            // Serving from a tiered peer may stage disk time on the peer's
            // side; it occupies that holder's lane along with the transfer.
            let peer_tier_io = self.nodes[peer].cache.drain_cost();
            let scaled = client.scaled(content.len() as u64);
            let nominal = self.peer_link_time(scaled);
            match Self::attempt(&mut self.faults, nominal) {
                Ok(extra) => {
                    self.peer_traffic += scaled;
                    report.peer_files += 1;
                    report.peer_bytes += scaled;
                    self.admit(node, fingerprint, content.clone());
                    let tier_io = self.nodes[node].cache.drain_cost();
                    let charge = FetchCharge {
                        lane: Lane::Peer(peer),
                        bytes: scaled,
                        lane_time: nominal + extra + peer_tier_io,
                        payload: 0,
                        serial,
                        post: client.disk.io_time(scaled, 1) + tier_io,
                    };
                    return Ok((content, charge));
                }
                Err(wasted) => {
                    serial += wasted;
                    // A failed peer attempt degrades to the next holder (and
                    // eventually the registry) — worth a mark on the trace.
                    if self.telemetry.enabled() {
                        self.telemetry.count("p2p.degradations", 1);
                        self.telemetry.instant("p2p", "degrade");
                    }
                }
            }
        }
        // 3. The registry.
        let content = store.download(fingerprint).ok_or_else(|| {
            ClusterError::Fs(FsError::Materialize {
                path: fingerprint.to_string(),
                reason: "not in any cache or the registry".to_owned(),
            })
        })?;
        let transfer = client.scaled(store.transfer_size(fingerprint).unwrap_or(size));
        let nominal = self.registry_link_time(transfer);
        serial += self.charged_registry_serial(nominal)?;
        self.registry_egress += transfer;
        report.registry_files += 1;
        report.registry_bytes += transfer;
        self.admit(node, fingerprint, content.clone());
        let tier_io = self.nodes[node].cache.drain_cost();
        let charge = FetchCharge {
            lane: Lane::Registry,
            bytes: transfer,
            lane_time: Duration::ZERO,
            payload: transfer,
            serial,
            post: client.decompress(transfer)
                + client.disk.io_time(client.scaled(content.len() as u64), 1)
                + tier_io,
        };
        Ok((content, charge))
    }

    fn admit(&mut self, node: NodeId, fingerprint: Fingerprint, content: Bytes) {
        if self.nodes[node].cache.put(fingerprint, content) {
            self.directory.announce(fingerprint, node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gear_core::{publish, Converter};
    use gear_corpus::TaskKind;
    use gear_image::ImageBuilder;

    fn published(files: &[(&str, &[u8])]) -> (DockerRegistry, GearFileStore, ImageRef) {
        let mut tree = FsTree::new();
        for (p, c) in files {
            tree.create_file(p, Bytes::copy_from_slice(c)).unwrap();
        }
        let r: ImageRef = "app:1".parse().unwrap();
        let image = ImageBuilder::new(r.clone()).layer_from_tree(&tree).build();
        let conv = Converter::new().convert(&image).unwrap();
        let mut reg = DockerRegistry::new();
        let mut store = GearFileStore::new();
        publish(&conv, &mut reg, &mut store);
        (reg, store, r)
    }

    fn trace(paths: &[&str]) -> StartupTrace {
        StartupTrace {
            reads: paths.iter().map(|s| s.to_string()).collect(),
            task: TaskKind::Echo,
        }
    }

    #[test]
    fn second_node_fetches_from_first() {
        let body = vec![7u8; 50_000];
        let (reg, store, r) = published(&[("lib/shared.so", &body)]);
        let mut cluster = Cluster::new(ClusterConfig::lan(3));
        let first = cluster.deploy_on(0, &r, &trace(&["lib/shared.so"]), &reg, &store).unwrap();
        assert_eq!(first.registry_files, 1);
        assert_eq!(first.peer_files, 0);

        let second = cluster.deploy_on(1, &r, &trace(&["lib/shared.so"]), &reg, &store).unwrap();
        assert_eq!(second.registry_files, 0, "the file must come from node 0");
        assert_eq!(second.peer_files, 1);
        // Registry egress counted the file once plus two index pulls.
        assert!(cluster.peer_traffic() > 0);
    }

    #[test]
    fn chunked_big_file_deploys_and_second_node_peers_per_chunk() {
        use gear_core::ConverterOptions;

        // A big file that the CDC converter splits into several chunks.
        let body: Vec<u8> = (0..60_000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let mut tree = FsTree::new();
        tree.create_file("models/weights.bin", Bytes::from(body)).unwrap();
        tree.create_file("bin/app", Bytes::from_static(b"tiny launcher")).unwrap();
        let r: ImageRef = "chunked:1".parse().unwrap();
        let image = ImageBuilder::new(r.clone()).layer_from_tree(&tree).build();
        let conv = Converter::with_options(ConverterOptions {
            big_file_threshold: Some(16 * 1024),
            cdc: Some(gear_hash::ChunkerConfig {
                min_size: 2 * 1024,
                avg_size: 8 * 1024,
                max_size: 32 * 1024,
            }),
            ..Default::default()
        })
        .convert(&image)
        .unwrap();
        let mut reg = DockerRegistry::new();
        let mut store = GearFileStore::new();
        publish(&conv, &mut reg, &mut store);
        let chunks =
            conv.gear_image.index().chunks_at("models/weights.bin").expect("file was chunked");
        assert!(chunks.len() > 1, "CDC must split the big file");

        let mut cluster = Cluster::new(ClusterConfig::lan(2));
        let t = trace(&["models/weights.bin", "bin/app"]);
        let first = cluster.deploy_on(0, &r, &t, &reg, &store).unwrap();
        // Every chunk plus the small file came from the registry.
        assert_eq!(first.registry_files as usize, chunks.len() + 1);
        assert_eq!(first.peer_files, 0);

        // The second node sources all of them chunk-by-chunk from node 0.
        let second = cluster.deploy_on(1, &r, &t, &reg, &store).unwrap();
        assert_eq!(second.registry_files, 0, "chunks must come from the peer");
        assert_eq!(second.peer_files as usize, chunks.len() + 1);
    }

    #[test]
    fn unique_files_cross_uplink_once_cluster_wide() {
        let (reg, store, r) =
            published(&[("a", &[1u8; 10_000]), ("b", &[2u8; 10_000]), ("c", &[3u8; 10_000])]);
        let mut cluster = Cluster::new(ClusterConfig::lan(8));
        let t = trace(&["a", "b", "c"]);
        let mut registry_files = 0;
        for node in 0..8 {
            let report = cluster.deploy_on(node, &r, &t, &reg, &store).unwrap();
            registry_files += report.registry_files;
        }
        assert_eq!(registry_files, 3, "each unique file leaves the registry exactly once");
    }

    #[test]
    fn peer_fetch_is_faster_on_edge_uplink() {
        let body = vec![9u8; 200_000];
        let (reg, store, r) = published(&[("blob", &body)]);
        let mut cluster = Cluster::new(ClusterConfig::edge(2));
        let t = trace(&["blob"]);
        let cold = cluster.deploy_on(0, &r, &t, &reg, &store).unwrap();
        let warm = cluster.deploy_on(1, &r, &t, &reg, &store).unwrap();
        assert!(
            warm.total < cold.total,
            "peer fetch over the LAN must beat the thin uplink: {:?} vs {:?}",
            warm.total,
            cold.total
        );
    }

    #[test]
    fn reset_node_withdraws_directory_entries() {
        let (reg, store, r) = published(&[("f", &[5u8; 5_000])]);
        let mut cluster = Cluster::new(ClusterConfig::lan(2));
        let t = trace(&["f"]);
        cluster.deploy_on(0, &r, &t, &reg, &store).unwrap();
        cluster.reset_node(0);
        // Node 1 cannot find a peer; must go to the registry.
        let report = cluster.deploy_on(1, &r, &t, &reg, &store).unwrap();
        assert_eq!(report.registry_files, 1);
        assert_eq!(report.peer_files, 0);
    }

    #[test]
    fn stale_directory_entry_falls_back_to_registry() {
        let (reg, store, r) = published(&[("f", &[5u8; 5_000])]);
        let mut cluster = Cluster::new(ClusterConfig::lan(2));
        let t = trace(&["f"]);
        cluster.deploy_on(0, &r, &t, &reg, &store).unwrap();
        // Evict behind the directory's back (simulates cache pressure).
        cluster.nodes[0].cache.clear();
        let report = cluster.deploy_on(1, &r, &t, &reg, &store).unwrap();
        assert_eq!(report.registry_files, 1, "stale peer entry must not fail the fetch");
    }

    #[test]
    fn node_replacement_resets_its_telemetry_shard() {
        let (reg, store, r) = published(&[("f", &[5u8; 5_000])]);
        let t = trace(&["f"]);
        let fleet = Arc::new(FleetCollector::new(2, 64));
        let mut cluster = Cluster::new(ClusterConfig::lan(2));
        cluster.set_fleet(fleet.clone());
        for node in 0..2 {
            cluster.set_recorder(fleet.telemetry(node as u32));
            cluster.deploy_on(node, &r, &t, &reg, &store).unwrap();
        }
        let before = fleet.merged_metrics().unwrap();
        assert_eq!(before.counter("p2p.deploys"), 2);

        // Upgrading node 1 wipes shard 1 (pre-upgrade samples must not
        // blur post-upgrade tails) but leaves shard 0 untouched.
        cluster.set_recorder(fleet.telemetry(1));
        cluster.upgrade_node(1).unwrap();
        let after = fleet.merged_metrics().unwrap();
        assert_eq!(after.counter("p2p.deploys"), 1, "shard 1 forgot its deploy");
        assert_eq!(after.counter("p2p.upgrades"), 1, "the upgrade marker survives");
        assert!(after.sketch("p2p.deploy_nanos").is_none_or(|s| s.count() == 1));

        // Re-imaging node 0 wipes the remaining shard.
        cluster.reset_node(0);
        let wiped = fleet.merged_metrics().unwrap();
        assert_eq!(wiped.counter("p2p.deploys"), 0);
        // Post-replacement deploys land in clean shards only.
        cluster.set_recorder(fleet.telemetry(0));
        cluster.deploy_on(0, &r, &t, &reg, &store).unwrap();
        let fresh = fleet.merged_metrics().unwrap();
        assert_eq!(fresh.counter("p2p.deploys"), 1);
        assert_eq!(fresh.sketch("p2p.deploy_nanos").unwrap().count(), 1);
    }

    #[test]
    fn cross_image_sharing_through_peers() {
        // Two images share a library; node 0 deploys image A, node 1 then
        // deploys image B and gets the shared file from node 0 — file-level
        // sharing composes across images *and* across nodes.
        let shared = vec![0xABu8; 20_000];
        let mut tree_a = FsTree::new();
        tree_a.create_file("lib/shared.so", Bytes::from(shared.clone())).unwrap();
        tree_a.create_file("bin/a", Bytes::from_static(b"A")).unwrap();
        let mut tree_b = FsTree::new();
        tree_b.create_file("lib/shared.so", Bytes::from(shared)).unwrap();
        tree_b.create_file("bin/b", Bytes::from_static(b"B")).unwrap();

        let ra: ImageRef = "svc-a:1".parse().unwrap();
        let rb: ImageRef = "svc-b:1".parse().unwrap();
        let image_a = gear_image::ImageBuilder::new(ra.clone()).layer_from_tree(&tree_a).build();
        let image_b = gear_image::ImageBuilder::new(rb.clone()).layer_from_tree(&tree_b).build();
        let mut reg = DockerRegistry::new();
        let mut store = GearFileStore::new();
        let converter = Converter::new();
        publish(&converter.convert(&image_a).unwrap(), &mut reg, &mut store);
        publish(&converter.convert(&image_b).unwrap(), &mut reg, &mut store);

        let mut cluster = Cluster::new(ClusterConfig::lan(2));
        let ta = trace(&["lib/shared.so", "bin/a"]);
        let tb = trace(&["lib/shared.so", "bin/b"]);
        cluster.deploy_on(0, &ra, &ta, &reg, &store).unwrap();
        let report = cluster.deploy_on(1, &rb, &tb, &reg, &store).unwrap();
        assert_eq!(report.peer_files, 1, "the shared library comes from node 0");
        assert_eq!(report.registry_files, 1, "only bin/b comes from the registry");
    }

    #[test]
    fn faulty_peer_degrades_to_another_peer() {
        let body = vec![5u8; 40_000];
        let (reg, store, r) = published(&[("f", &body)]);
        let mut cluster = Cluster::new(ClusterConfig::lan(3));
        let t = trace(&["f"]);
        cluster.deploy_on(0, &r, &t, &reg, &store).unwrap(); // registry
        cluster.deploy_on(1, &r, &t, &reg, &store).unwrap(); // peer 0
        // Node 2: draw 0 is its index pull, draw 1 the first peer attempt.
        cluster.inject_faults(
            FaultPlan::new(9).fail_requests(1, 1, FaultKind::Drop),
            RetryPolicy::standard(9),
        );
        let report = cluster.deploy_on(2, &r, &t, &reg, &store).unwrap();
        assert_eq!(report.peer_files, 1, "the second holder serves the file");
        assert_eq!(report.registry_files, 0);
        assert_eq!(report.retries, 1);
    }

    #[test]
    fn all_peers_faulty_degrades_to_registry() {
        let body = vec![5u8; 40_000];
        let (reg, store, r) = published(&[("f", &body)]);
        let mut cluster = Cluster::new(ClusterConfig::lan(3));
        let t = trace(&["f"]);
        cluster.deploy_on(0, &r, &t, &reg, &store).unwrap();
        cluster.deploy_on(1, &r, &t, &reg, &store).unwrap();
        // Node 2: fail both peer attempts (draws 1 and 2); the registry
        // attempt (draw 3) is clean.
        cluster.inject_faults(
            FaultPlan::new(9).fail_requests(1, 2, FaultKind::Drop),
            RetryPolicy::standard(9),
        );
        let clean = {
            let mut c = Cluster::new(ClusterConfig::lan(3));
            c.deploy_on(0, &r, &t, &reg, &store).unwrap();
            c.deploy_on(1, &r, &t, &reg, &store).unwrap();
            c.deploy_on(2, &r, &t, &reg, &store).unwrap()
        };
        let report = cluster.deploy_on(2, &r, &t, &reg, &store).unwrap();
        assert_eq!(report.peer_files, 0);
        assert_eq!(report.registry_files, 1, "the registry is the last resort");
        assert_eq!(report.retries, 2);
        assert!(
            report.total > clean.total,
            "degradation costs simulated time: {:?} !> {:?}",
            report.total,
            clean.total
        );
    }

    #[test]
    fn registry_exhaustion_is_a_typed_error() {
        let (reg, store, r) = published(&[("f", &[5u8; 5_000])]);
        let mut cluster = Cluster::new(ClusterConfig::lan(1));
        cluster.inject_faults(FaultPlan::new(2).with_drop(1.0), RetryPolicy::standard(4));
        assert!(matches!(
            cluster.deploy_on(0, &r, &trace(&["f"]), &reg, &store),
            Err(ClusterError::FaultBudgetExhausted { attempts: 4 })
        ));
        // Clearing the plan makes the same deployment succeed.
        cluster.clear_faults();
        let report = cluster.deploy_on(0, &r, &trace(&["f"]), &reg, &store).unwrap();
        assert_eq!(report.registry_files, 1);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn cluster_fault_injection_is_deterministic() {
        let (reg, store, r) = published(&[("a", &[1u8; 9_000]), ("b", &[2u8; 9_000])]);
        let t = trace(&["a", "b"]);
        let deploy_once = || {
            let mut cluster = Cluster::new(ClusterConfig::edge(2));
            cluster.deploy_on(0, &r, &t, &reg, &store).unwrap();
            cluster.inject_faults(
                FaultPlan::new(77).with_drop(0.4),
                RetryPolicy::standard(77),
            );
            cluster.deploy_on(1, &r, &t, &reg, &store).unwrap()
        };
        assert_eq!(deploy_once(), deploy_once(), "same seeds → identical deployment");
    }

    /// Publishes one image holding `files`, plus one single-file image per
    /// entry (same content → same fingerprint), so deploying the singles on
    /// distinct nodes seeds a distinct peer holder for every file.
    fn published_with_singles(
        files: &[(&str, &[u8])],
    ) -> (DockerRegistry, GearFileStore, ImageRef, Vec<ImageRef>) {
        let mut reg = DockerRegistry::new();
        let mut store = GearFileStore::new();
        let converter = Converter::new();

        let mut tree = FsTree::new();
        for (p, c) in files {
            tree.create_file(p, Bytes::copy_from_slice(c)).unwrap();
        }
        let all: ImageRef = "all:1".parse().unwrap();
        let image = ImageBuilder::new(all.clone()).layer_from_tree(&tree).build();
        publish(&converter.convert(&image).unwrap(), &mut reg, &mut store);

        let mut singles = Vec::new();
        for (i, (p, c)) in files.iter().enumerate() {
            let mut tree = FsTree::new();
            tree.create_file(p, Bytes::copy_from_slice(c)).unwrap();
            let r: ImageRef = format!("single-{i}:1").parse().unwrap();
            let image = ImageBuilder::new(r.clone()).layer_from_tree(&tree).build();
            publish(&converter.convert(&image).unwrap(), &mut reg, &mut store);
            singles.push(r);
        }
        (reg, store, all, singles)
    }

    #[test]
    fn fan_out_beats_serial_across_distinct_holders() {
        let files: Vec<(String, Vec<u8>)> =
            (0..4).map(|i| (format!("f{i}"), vec![i as u8 + 1; 400_000])).collect();
        let refs: Vec<(&str, &[u8])> =
            files.iter().map(|(p, c)| (p.as_str(), c.as_slice())).collect();
        let (reg, store, all, singles) = published_with_singles(&refs);
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        let t = trace(&paths);

        let deploy_with = |fan_out: usize| {
            let mut cluster = Cluster::new(ClusterConfig::edge(5).with_fan_out(fan_out));
            for (i, r) in singles.iter().enumerate() {
                let path = [paths[i]];
                cluster.deploy_on(i, r, &trace(&path), &reg, &store).unwrap();
            }
            cluster.deploy_on(4, &all, &t, &reg, &store).unwrap()
        };

        let serial = deploy_with(1);
        let fanned = deploy_with(4);
        assert_eq!(serial.peer_files, 4, "every file has a peer holder");
        assert_eq!(fanned.peer_files, 4);
        assert!(
            fanned.total < serial.total,
            "4 holders in parallel must beat holder-by-holder: {:?} !< {:?}",
            fanned.total,
            serial.total
        );
    }

    #[test]
    fn fan_out_overlaps_registry_fixed_costs() {
        // No peers at all: fan-out still helps by pipelining the uplink's
        // per-request fixed costs, exactly like the client fetch engine.
        let files: Vec<(String, Vec<u8>)> =
            (0..6).map(|i| (format!("f{i}"), vec![i as u8 + 1; 50_000])).collect();
        let refs: Vec<(&str, &[u8])> =
            files.iter().map(|(p, c)| (p.as_str(), c.as_slice())).collect();
        let (reg, store, r) = published(&refs);
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        let t = trace(&paths);

        let deploy_with = |fan_out: usize| {
            let mut cluster = Cluster::new(ClusterConfig::edge(1).with_fan_out(fan_out));
            cluster.deploy_on(0, &r, &t, &reg, &store).unwrap()
        };
        let serial = deploy_with(1);
        let fanned = deploy_with(4);
        assert_eq!(serial.registry_files, 6);
        assert_eq!(fanned.registry_files, 6, "the same files move either way");
        assert_eq!(fanned.registry_bytes, serial.registry_bytes);
        assert!(
            fanned.total < serial.total,
            "pipelined uplink must beat serial requests: {:?} !< {:?}",
            fanned.total,
            serial.total
        );
    }

    #[test]
    fn more_fan_out_is_never_slower() {
        let files: Vec<(String, Vec<u8>)> =
            (0..3).map(|i| (format!("f{i}"), vec![i as u8 + 1; 120_000])).collect();
        let refs: Vec<(&str, &[u8])> =
            files.iter().map(|(p, c)| (p.as_str(), c.as_slice())).collect();
        let (reg, store, all, singles) = published_with_singles(&refs);
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();

        let mut previous = Duration::MAX;
        for fan_out in [1usize, 2, 4, 8] {
            let mut cluster = Cluster::new(ClusterConfig::edge(4).with_fan_out(fan_out));
            for (i, r) in singles.iter().enumerate() {
                let path = [paths[i]];
                cluster.deploy_on(i, r, &trace(&path), &reg, &store).unwrap();
            }
            let report = cluster.deploy_on(3, &all, &trace(&paths), &reg, &store).unwrap();
            assert!(
                report.total <= previous,
                "fan_out {fan_out} slower: {:?} > {:?}",
                report.total,
                previous
            );
            previous = report.total;
        }
    }

    #[test]
    fn fan_out_fault_injection_is_deterministic() {
        let (reg, store, r) = published(&[("a", &[1u8; 9_000]), ("b", &[2u8; 9_000])]);
        let t = trace(&["a", "b"]);
        let deploy_once = || {
            let mut cluster = Cluster::new(ClusterConfig::edge(2).with_fan_out(4));
            cluster.deploy_on(0, &r, &t, &reg, &store).unwrap();
            cluster.inject_faults(FaultPlan::new(77).with_drop(0.4), RetryPolicy::standard(77));
            cluster.deploy_on(1, &r, &t, &reg, &store).unwrap()
        };
        assert_eq!(deploy_once(), deploy_once(), "same seeds → identical deployment");
    }

    #[test]
    fn upgrade_under_load_changes_nothing_observable() {
        use gear_client::TierConfig;
        // Tiered node caches so the handoff must carry eviction ticks and
        // accrued disk cost, not just contents.
        let tiered = ClientConfig::default().with_tier(TierConfig {
            l1_capacity: Some(2_000),
            disk: gear_simnet::DiskModel::hdd(),
            promote_on_hit: true,
        });
        let files: Vec<(String, Vec<u8>)> =
            (0..6).map(|i| (format!("f{i}"), vec![i as u8 + 1; 9_000])).collect();
        let refs: Vec<(&str, &[u8])> =
            files.iter().map(|(p, c)| (p.as_str(), c.as_slice())).collect();
        let (reg, store, r) = published(&refs);
        let paths: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        let warm = trace(&paths[..4]);
        let hot = trace(&paths[2..]);

        let run = |upgrade: bool| {
            let mut cluster = Cluster::new(ClusterConfig::edge(3).with_client(tiered));
            cluster.deploy_on(0, &r, &warm, &reg, &store).unwrap();
            cluster.deploy_on(1, &r, &warm, &reg, &store).unwrap();
            if upgrade {
                let payload = cluster.upgrade_node(0).unwrap();
                assert!(payload > 0, "the handoff ships real state");
            }
            // Post-upgrade traffic: node 0 serves peers and keeps deploying.
            let third = cluster.deploy_on(2, &r, &hot, &reg, &store).unwrap();
            let again = cluster.deploy_on(0, &r, &hot, &reg, &store).unwrap();
            (third, again, cluster.registry_egress(), cluster.peer_traffic())
        };

        let control = run(false);
        let upgraded = run(true);
        assert_eq!(upgraded, control, "an upgraded node must be indistinguishable");
        assert!(upgraded.0.peer_files > 0, "the upgraded node still serves peers");
    }

    #[test]
    fn upgrade_node_out_of_range_is_a_typed_error() {
        let mut cluster = Cluster::new(ClusterConfig::lan(1));
        assert!(matches!(cluster.upgrade_node(5), Err(ClusterError::NoSuchNode(5))));
    }

    #[test]
    fn bad_node_and_bad_image() {
        let (reg, store, r) = published(&[("f", b"x")]);
        let mut cluster = Cluster::new(ClusterConfig::lan(1));
        assert!(matches!(
            cluster.deploy_on(9, &r, &trace(&[]), &reg, &store),
            Err(ClusterError::NoSuchNode(9))
        ));
        let ghost: ImageRef = "ghost:1".parse().unwrap();
        assert!(matches!(
            cluster.deploy_on(0, &ghost, &trace(&[]), &reg, &store),
            Err(ClusterError::ImageNotFound(_))
        ));
    }
}
