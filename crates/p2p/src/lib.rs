//! Cooperative peer-to-peer distribution of Gear files across a cluster.
//!
//! The Gear paper's related-work section (§VI-B) observes that decentralized
//! image distribution — CoMICon/Wharf-style cooperative caches and
//! Dragonfly/FID/DADI-style P2P — is *orthogonal* to the Gear format and
//! "also help[s] speed up the distribution of Gear files". This crate
//! implements that combination: a [`Cluster`] of nodes, each with its own
//! level-1 shared cache and installed indexes, where a fingerprint miss is
//! served **by a peer over the LAN** whenever any node already holds the
//! file, and only falls back to the remote Gear registry otherwise.
//!
//! Because Gear files are content-addressed, peer transfers need no trust
//! beyond an MD5 check, and the peer directory is just a
//! fingerprint → nodes map — exactly the property that makes file-level
//! sharing compose with P2P.
//!
//! # Examples
//!
//! ```
//! use gear_p2p::{Cluster, ClusterConfig};
//! use gear_core::{publish, Converter};
//! use gear_corpus::{StartupTrace, TaskKind};
//! use gear_fs::FsTree;
//! use gear_image::{ImageBuilder, ImageRef};
//! use gear_registry::{DockerRegistry, GearFileStore};
//! use bytes::Bytes;
//!
//! // Publish one image.
//! let mut tree = FsTree::new();
//! tree.create_file("bin/app", Bytes::from_static(b"binary"))?;
//! let image = ImageBuilder::new("app:1".parse::<ImageRef>()?).layer_from_tree(&tree).build();
//! let conv = Converter::new().convert(&image)?;
//! let (mut reg, mut files) = (DockerRegistry::new(), GearFileStore::new());
//! publish(&conv, &mut reg, &mut files);
//!
//! // Deploy on node 0 (hits the registry), then node 1 (hits node 0).
//! let mut cluster = Cluster::new(ClusterConfig::lan(4));
//! let trace = StartupTrace { reads: vec!["bin/app".into()], task: TaskKind::Generic };
//! cluster.deploy_on(0, &"app:1".parse()?, &trace, &reg, &files)?;
//! let report = cluster.deploy_on(1, &"app:1".parse()?, &trace, &reg, &files)?;
//! assert_eq!(report.peer_files, 1);
//! assert_eq!(report.registry_files, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod directory;
mod fleet;
mod topology;

pub use cluster::{Cluster, ClusterConfig, ClusterError, NodeDeployment, NodeId};
pub use directory::PeerDirectory;
pub use fleet::{FleetConfig, FleetReport, FleetSim};
pub use topology::{LinkClass, SiteConfig, Topology, TopologyConfig};
