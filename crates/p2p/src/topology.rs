//! Hierarchical cloud → site → node topologies.
//!
//! The flat [`ClusterConfig`] models one LAN behind one uplink. A fleet is
//! a *tree*: a cloud registry at the root, edge **sites** below it (each
//! with its own uplink), and **nodes** inside each site joined by the
//! site's LAN. Sites talk to each other over a shared backbone — the
//! EdgePier-style hierarchy where a layer crosses the WAN once per site,
//! then fans out locally.
//!
//! [`TopologyConfig`] describes the tree; [`Topology`] is the built form
//! answering placement queries (which site owns node *n*, which link class
//! joins two nodes). [`Topology::from_cluster`] embeds the historical flat
//! configs — `ClusterConfig::lan` / `ClusterConfig::edge` — as canonical
//! two-level instances (one site, the cluster's registry link as its
//! uplink), with arithmetically identical link pricing.

use std::time::Duration;

use gear_client::ClientConfig;
use gear_simnet::Link;

use crate::cluster::{ClusterConfig, NodeId};

/// Which class of wire a transfer crosses in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// Node ↔ node inside one site.
    Lan,
    /// Site ↔ cloud registry.
    Uplink,
    /// Site ↔ site.
    Backbone,
}

/// One edge site: a node count plus the uplink joining it to the cloud.
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// Nodes in the site.
    pub nodes: usize,
    /// The site's link to the cloud registry.
    pub uplink: Link,
}

/// A hierarchical topology description.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Edge sites, in id order.
    pub sites: Vec<SiteConfig>,
    /// Node ↔ node link within every site.
    pub lan: Link,
    /// Site ↔ site link.
    pub backbone: Link,
    /// Per-node client cost model.
    pub client: ClientConfig,
}

impl TopologyConfig {
    /// `sites` identical sites of `nodes_per_site` nodes each.
    pub fn symmetric(
        sites: usize,
        nodes_per_site: usize,
        lan: Link,
        uplink: Link,
        backbone: Link,
    ) -> Self {
        TopologyConfig {
            sites: vec![SiteConfig { nodes: nodes_per_site, uplink }; sites.max(1)],
            lan,
            backbone,
            client: ClientConfig::default(),
        }
    }

    /// An edge fleet in the regime where cooperative caching matters most:
    /// 1 Gbps site LANs, thin 20 Mbps uplinks (the flat
    /// [`ClusterConfig::edge`] numbers), and a 100 Mbps backbone between
    /// sites.
    pub fn edge_fleet(sites: usize, nodes_per_site: usize) -> Self {
        Self::symmetric(
            sites,
            nodes_per_site,
            Link::mbps(1_000.0),
            Link::mbps(20.0),
            Link::mbps(100.0),
        )
    }

    /// Replaces the per-node client config.
    #[must_use]
    pub fn with_client(mut self, client: ClientConfig) -> Self {
        self.client = client;
        self
    }
}

/// A built topology: placement and link-class queries over the tree.
#[derive(Debug, Clone)]
pub struct Topology {
    config: TopologyConfig,
    /// Site of each node, indexed by node id (sites own contiguous id
    /// ranges in site order).
    site_of: Vec<u32>,
    /// First node id of each site.
    first_node: Vec<usize>,
}

impl Topology {
    /// Builds the tree; node ids are assigned contiguously site by site.
    pub fn new(config: TopologyConfig) -> Self {
        let mut site_of = Vec::new();
        let mut first_node = Vec::with_capacity(config.sites.len());
        for (site, sc) in config.sites.iter().enumerate() {
            first_node.push(site_of.len());
            site_of.extend(std::iter::repeat_n(site as u32, sc.nodes));
        }
        Topology { config, site_of, first_node }
    }

    /// Embeds a flat cluster as a canonical two-level topology: one site
    /// holding every node, the cluster's peer link as the LAN, its
    /// registry link as the uplink (and, vacuously, as the backbone —
    /// there is no second site to reach). Link pricing is the same
    /// [`Link`] arithmetic, so schedules stay bit-identical.
    pub fn from_cluster(config: &ClusterConfig) -> Self {
        Self::new(TopologyConfig {
            sites: vec![SiteConfig { nodes: config.nodes, uplink: config.registry_link }],
            lan: config.peer_link,
            backbone: config.registry_link,
            client: config.client,
        })
    }

    /// The description this topology was built from.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// Total nodes across all sites.
    pub fn nodes(&self) -> usize {
        self.site_of.len()
    }

    /// Sites in the tree.
    pub fn sites(&self) -> usize {
        self.config.sites.len()
    }

    /// The site owning `node`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn site_of(&self, node: NodeId) -> u32 {
        self.site_of[node]
    }

    /// Site of every node, indexed by node id — the shape site-scoped
    /// peer discovery consumes.
    pub fn site_map(&self) -> &[u32] {
        &self.site_of
    }

    /// The contiguous node-id range of `site`.
    pub fn site_nodes(&self, site: u32) -> std::ops::Range<NodeId> {
        let start = self.first_node[site as usize];
        start..start + self.config.sites[site as usize].nodes
    }

    /// The uplink of `site`.
    pub fn uplink(&self, site: u32) -> &Link {
        &self.config.sites[site as usize].uplink
    }

    /// The intra-site LAN link.
    pub fn lan(&self) -> &Link {
        &self.config.lan
    }

    /// The inter-site backbone link.
    pub fn backbone(&self) -> &Link {
        &self.config.backbone
    }

    /// Whether two nodes share a site.
    pub fn same_site(&self, a: NodeId, b: NodeId) -> bool {
        self.site_of[a] == self.site_of[b]
    }

    /// The link class (and link) a transfer between two nodes crosses:
    /// [`LinkClass::Lan`] within a site, [`LinkClass::Backbone`] across
    /// sites.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> (LinkClass, &Link) {
        if self.same_site(a, b) {
            (LinkClass::Lan, &self.config.lan)
        } else {
            (LinkClass::Backbone, &self.config.backbone)
        }
    }

    /// Time for `bytes` to cross the link joining `a` and `b`, amplified
    /// by the client's request amplification — the same formula the flat
    /// cluster charges for peer transfers.
    pub fn peer_time(&self, a: NodeId, b: NodeId, bytes: u64) -> Duration {
        let (_, link) = self.link_between(a, b);
        Self::amplified(link, self.config.client.request_amplification, bytes)
    }

    /// Time for `bytes` to cross `site`'s uplink, amplified like a
    /// registry transfer in the flat cluster.
    pub fn uplink_time(&self, site: u32, bytes: u64) -> Duration {
        Self::amplified(
            self.uplink(site),
            self.config.client.request_amplification,
            bytes,
        )
    }

    fn amplified(link: &Link, amplification: f64, bytes: u64) -> Duration {
        (link.rtt + link.request_overhead).mul_f64(amplification.max(0.0))
            + link.bandwidth.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_assigned_contiguously_site_by_site() {
        let topo = Topology::new(TopologyConfig::edge_fleet(3, 4));
        assert_eq!(topo.nodes(), 12);
        assert_eq!(topo.sites(), 3);
        for site in 0..3u32 {
            let range = topo.site_nodes(site);
            assert_eq!(range.len(), 4);
            for node in range {
                assert_eq!(topo.site_of(node), site);
            }
        }
    }

    #[test]
    fn link_classes_follow_the_tree() {
        let topo = Topology::new(TopologyConfig::edge_fleet(2, 3));
        assert_eq!(topo.link_between(0, 2).0, LinkClass::Lan);
        assert_eq!(topo.link_between(0, 3).0, LinkClass::Backbone);
        assert!(topo.same_site(3, 5));
        assert!(!topo.same_site(2, 3));
    }

    #[test]
    fn flat_cluster_embeds_as_one_site_with_identical_pricing() {
        for flat in [ClusterConfig::lan(6), ClusterConfig::edge(6)] {
            let topo = Topology::from_cluster(&flat);
            assert_eq!(topo.sites(), 1);
            assert_eq!(topo.nodes(), 6);
            for &bytes in &[0u64, 999, 250_000, 7_000_000] {
                // Peer pricing: same Duration arithmetic as the flat
                // cluster's peer_link_time, bit for bit.
                let amp = flat.client.request_amplification.max(0.0);
                let expected_peer = (flat.peer_link.rtt + flat.peer_link.request_overhead)
                    .mul_f64(amp)
                    + flat.peer_link.bandwidth.transfer_time(bytes);
                assert_eq!(topo.peer_time(0, 5, bytes), expected_peer);
                let expected_up = (flat.registry_link.rtt
                    + flat.registry_link.request_overhead)
                    .mul_f64(amp)
                    + flat.registry_link.bandwidth.transfer_time(bytes);
                assert_eq!(topo.uplink_time(0, bytes), expected_up);
            }
        }
    }

    #[test]
    fn heterogeneous_sites_keep_their_own_uplinks() {
        let mut config = TopologyConfig::edge_fleet(2, 2);
        config.sites[1].uplink = Link::mbps(5.0);
        let topo = Topology::new(config);
        let slow = topo.uplink_time(1, 1_000_000);
        let fast = topo.uplink_time(0, 1_000_000);
        assert!(slow > fast.mul_f64(3.0), "5 Mbps uplink must dwarf 20 Mbps");
    }
}
