//! Event-driven fleet deployment: tens of thousands of clients over a
//! hierarchical topology against a sharded registry.
//!
//! [`FleetSim`] is the driver the event core in `gear-simnet` was built
//! for. It owns one [`EventQueue`] and one [`FifoLane`] per contended
//! resource — each site's LAN and uplink, the inter-site backbone, and
//! each registry shard's egress — and advances a single simulated clock by
//! popping events in deterministic `(time, push-order)` sequence. Cost is
//! O(events), never O(clients × polling).
//!
//! The deployment policy mirrors the hierarchical cache the paper's
//! related work describes (§VI-B): a client arriving at a cold node seeds
//! the node from, in order of preference, a **same-site holder over the
//! LAN**, a **sibling already seeding** (the node joins the site's waiter
//! list instead of crossing the WAN again), a **foreign holder over the
//! backbone**, or — only when nobody holds the image — the **sharded
//! registry**, object by object, with per-shard admission control,
//! replica failover, and seeded retry-with-backoff. Once a node is ready
//! every queued and future client deploys at LAN-local cost.
//!
//! Everything is deterministic: same topology, same schedule, same seed →
//! bit-identical report.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use gear_hash::Fingerprint;
use gear_registry::{ShardRejection, ShardedStore};
use gear_simnet::{EventQueue, FifoLane, Link, RetryPolicy};
use gear_telemetry::FleetCollector;

use crate::cluster::NodeId;
use crate::directory::PeerDirectory;
use crate::topology::Topology;

/// Knobs for a fleet run: registry sharding, admission, retries, and the
/// per-deployment launch cost.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Registry shards behind the consistent-hash ring.
    pub shards: u32,
    /// Replicas per object (clamped to the shard count).
    pub replication: usize,
    /// Per-shard admission queue depth.
    pub queue_depth: u32,
    /// Each shard's egress link.
    pub shard_link: Link,
    /// Retry budget for overloaded/unavailable shards.
    pub retry: RetryPolicy,
    /// Local container-launch cost charged per deployment.
    pub launch: Duration,
    /// Span retention per node flight recorder.
    pub span_capacity: usize,
    /// Seed for the hash ring and retry jitter.
    pub seed: u64,
}

impl FleetConfig {
    /// A 4-shard, 2-replica registry with gigabit shard egress and a
    /// patient retry budget (ten attempts, 50 ms base backoff) — flash
    /// crowds drain through admission control instead of losing clients.
    pub fn standard(seed: u64) -> Self {
        FleetConfig {
            shards: 4,
            replication: 2,
            queue_depth: 64,
            shard_link: Link::mbps(1_000.0),
            retry: RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::standard(seed)
            },
            launch: Duration::from_millis(20),
            span_capacity: 64,
            seed,
        }
    }
}

/// How a node acquired (or is acquiring) the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeedKind {
    /// From a same-site holder over the LAN.
    Lan,
    /// From a foreign holder over the backbone.
    Backbone,
    /// Object by object from the sharded registry.
    Registry,
    /// Parked on the site waiter list behind a sibling's seed.
    Waiter,
}

impl SeedKind {
    fn counter(self) -> &'static str {
        match self {
            SeedKind::Lan => "fleet.seed_lan",
            SeedKind::Backbone => "fleet.seed_backbone",
            SeedKind::Registry => "fleet.seed_registry",
            SeedKind::Waiter => "fleet.seed_waited",
        }
    }
}

#[derive(Debug)]
struct NodeState {
    /// Set once the image is installed; deployments then cost `launch`.
    ready: Option<Duration>,
    /// The in-flight seed, if any.
    seeding: Option<SeedKind>,
    /// When the in-flight seed started (arrival of its first client).
    seed_started: Duration,
    /// Bumped by a site reset; stale completion events check it.
    generation: u32,
    /// Clients waiting for the node to become ready.
    queued: Vec<u32>,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            ready: None,
            seeding: None,
            seed_started: Duration::ZERO,
            generation: 0,
            queued: Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
struct SiteState {
    /// In-flight WAN seeds (registry or backbone) in this site; cold
    /// arrivals park as waiters while one is pending.
    wan_seeds: u32,
    /// Nodes waiting for a sibling's seed to finish.
    waiters: Vec<NodeId>,
}

/// One registry seed in flight: a node pulling every object.
#[derive(Debug)]
struct RegistrySeed {
    node: NodeId,
    generation: u32,
    remaining: usize,
    failed: bool,
}

#[derive(Debug)]
struct FleetClient {
    node: NodeId,
    arrive: Duration,
    done: Option<Duration>,
}

#[derive(Debug)]
struct FleetObject {
    fingerprint: Fingerprint,
    wire: u64,
}

#[derive(Debug)]
enum Event {
    /// Client `idx` arrives at its node.
    Arrive(u32),
    /// A shard finished serving one object: return the admission token.
    Release { shard: u32 },
    /// One object of registry seed `seed` fully delivered.
    ObjectDone { seed: usize },
    /// Retry one object of registry seed `seed`.
    Fetch { seed: usize, object: usize, attempt: u32 },
    /// A LAN/backbone seed finished installing on `node`.
    SeedDone { node: NodeId, generation: u32 },
    /// Scripted: wipe a site (rolling update / re-image).
    ResetSite(u32),
    /// Scripted: take a registry shard down or bring it back.
    SetShardDown { shard: u32, down: bool },
}

/// What a fleet run produced: completion accounting, tail latencies from
/// the merged per-node sketches, traffic per link class, and registry
/// health counters.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Clients scheduled.
    pub clients: u32,
    /// Clients whose deployment completed.
    pub completed: u32,
    /// Clients lost to exhausted retry budgets (must be 0 when replicas
    /// cover every outage).
    pub lost: u32,
    /// Completion time of the last deployment.
    pub makespan: Duration,
    /// Median deployment latency (merged fleet sketch).
    pub p50: Duration,
    /// 99th-percentile deployment latency.
    pub p99: Duration,
    /// 99.9th-percentile deployment latency.
    pub p999: Duration,
    /// Worst deployment latency observed by the sketch.
    pub max: Duration,
    /// Samples in the merged latency sketch (site resets wipe their
    /// nodes' samples, so this can trail `completed`).
    pub deploy_samples: u64,
    /// Object fetches re-attempted after every replica refused.
    pub retries: u64,
    /// Fetch waves in which every replica refused admission.
    pub overload_rejections: u64,
    /// Store-level admission rejections summed over shards.
    pub shard_rejections: u64,
    /// Requests a down shard refused (served by a replica instead).
    pub shard_down_refusals: u64,
    /// max/min of per-shard admitted requests (∞ if a shard served none).
    pub shard_balance: f64,
    /// Bytes that crossed site uplinks (registry traffic).
    pub registry_bytes: u64,
    /// Bytes that crossed site LANs.
    pub lan_bytes: u64,
    /// Bytes that crossed the inter-site backbone.
    pub backbone_bytes: u64,
    /// Events processed — the run's cost measure.
    pub events: u64,
    /// Spans shed by the bounded flight recorders.
    pub dropped_spans: u64,
    /// Structural telemetry validation failures (must be 0).
    pub validation_problems: usize,
    /// Resident bytes of fleet span storage.
    pub collector_bytes: u64,
}

/// An event-driven simulation of fleet-wide image deployment.
#[derive(Debug)]
pub struct FleetSim {
    topo: Topology,
    config: FleetConfig,
    store: ShardedStore,
    directory: PeerDirectory,
    fleet: Arc<FleetCollector>,
    queue: EventQueue<Event>,
    objects: Vec<FleetObject>,
    /// Representative fingerprint announced to the peer directory: holding
    /// it means holding the whole image.
    image_fp: Fingerprint,
    /// Whole-image wire bytes for peer (LAN/backbone) transfers.
    image_wire: u64,
    lan: Vec<FifoLane>,
    uplinks: Vec<FifoLane>,
    backbone: FifoLane,
    shard_lanes: Vec<FifoLane>,
    nodes: Vec<NodeState>,
    sites: Vec<SiteState>,
    seeds: Vec<RegistrySeed>,
    clients: Vec<FleetClient>,
    completed: u32,
    lost: u32,
    retries: u64,
    overload_rejections: u64,
    down_refusals: u64,
    processed: u64,
}

impl FleetSim {
    /// Builds a fleet over `topo` whose image consists of `objects`
    /// (fingerprint + content), uploaded to every replica of a fresh
    /// sharded store.
    ///
    /// # Panics
    ///
    /// Panics when `objects` is empty or an object's content does not
    /// match its fingerprint — both are programming errors in the
    /// scenario, not simulated conditions.
    pub fn new(topo: Topology, config: FleetConfig, objects: &[(Fingerprint, Bytes)]) -> Self {
        assert!(!objects.is_empty(), "a fleet image needs at least one object");
        let mut store = ShardedStore::new(config.shards, config.replication, config.seed)
            .with_queue_depth(config.queue_depth);
        let mut manifest = Vec::with_capacity(objects.len());
        let mut image_wire = 0u64;
        for (fp, content) in objects {
            match store.upload(*fp, content) {
                Some(Ok(_)) => {}
                Some(Err(e)) => panic!("fleet image object rejected: {e}"),
                None => unreachable!("no shard is down at construction"),
            }
            let wire = store.transfer_size(*fp).unwrap_or(content.len() as u64);
            image_wire += wire;
            manifest.push(FleetObject { fingerprint: *fp, wire });
        }
        let image_fp = manifest[0].fingerprint;
        let sites = topo.sites();
        let lan = (0..sites).map(|_| FifoLane::new(*topo.lan())).collect();
        let uplinks =
            (0..sites).map(|s| FifoLane::new(*topo.uplink(s as u32))).collect();
        let backbone = FifoLane::new(*topo.backbone());
        let shard_lanes =
            (0..config.shards).map(|_| FifoLane::new(config.shard_link)).collect();
        let fleet = Arc::new(FleetCollector::new(topo.nodes() as u32, config.span_capacity));
        let nodes = (0..topo.nodes()).map(|_| NodeState::new()).collect();
        let site_states = (0..sites).map(|_| SiteState::default()).collect();
        FleetSim {
            topo,
            config,
            store,
            directory: PeerDirectory::new(),
            fleet,
            queue: EventQueue::new(),
            objects: manifest,
            image_fp,
            image_wire,
            lan,
            uplinks,
            backbone,
            shard_lanes,
            nodes,
            sites: site_states,
            seeds: Vec::new(),
            clients: Vec::new(),
            completed: 0,
            lost: 0,
            retries: 0,
            overload_rejections: 0,
            down_refusals: 0,
            processed: 0,
        }
    }

    /// The fleet's per-node flight recorders.
    pub fn fleet(&self) -> &Arc<FleetCollector> {
        &self.fleet
    }

    /// The sharded registry backing the run.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// The topology the fleet runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Schedules one client to arrive at `node` at simulated time `at`.
    ///
    /// # Panics
    ///
    /// Panics when `node` is outside the topology.
    pub fn schedule_client(&mut self, node: NodeId, at: Duration) {
        assert!(node < self.topo.nodes(), "client scheduled on unknown node {node}");
        let idx = self.clients.len() as u32;
        self.clients.push(FleetClient { node, arrive: at, done: None });
        self.queue.push(at, Event::Arrive(idx));
    }

    /// Schedules `count` clients round-robin across every node, the first
    /// at `start` and each subsequent one `spacing` later — the flash-crowd
    /// arrival pattern.
    pub fn schedule_flash_crowd(&mut self, count: u32, start: Duration, spacing: Duration) {
        let nodes = self.topo.nodes();
        for i in 0..count {
            self.schedule_client((i as usize) % nodes, start + spacing * i);
        }
    }

    /// Schedules a scripted wipe of `site` at `at`: every node loses its
    /// image, its directory announcements, and its telemetry shard, then
    /// re-seeds for any still-queued clients. Models a rolling update.
    pub fn schedule_site_reset(&mut self, site: u32, at: Duration) {
        self.queue.push(at, Event::ResetSite(site));
    }

    /// Schedules a registry shard outage over `[from, to)`: the shard
    /// refuses admission (typed `Down`) and replicas carry its keys.
    pub fn schedule_shard_outage(&mut self, shard: u32, from: Duration, to: Duration) {
        self.queue.push(from, Event::SetShardDown { shard, down: true });
        self.queue.push(to, Event::SetShardDown { shard, down: false });
    }

    /// Drains the event queue and reports. Idempotent in the sense that
    /// running again with no new schedule is a no-op over the same report.
    pub fn run(&mut self) -> FleetReport {
        while let Some((t, event)) = self.queue.pop() {
            self.processed += 1;
            match event {
                Event::Arrive(client) => self.on_arrive(t, client),
                Event::Release { shard } => self.store.release(shard),
                Event::ObjectDone { seed } => self.on_object_done(t, seed),
                Event::Fetch { seed, object, attempt } => {
                    self.fetch_object(t, seed, object, attempt);
                }
                Event::SeedDone { node, generation } => {
                    if self.nodes[node].generation == generation {
                        self.node_ready(t, node);
                    }
                }
                Event::ResetSite(site) => self.on_reset_site(t, site),
                Event::SetShardDown { shard, down } => self.store.set_down(shard, down),
            }
        }
        self.report()
    }

    fn on_arrive(&mut self, t: Duration, client: u32) {
        let node = self.clients[client as usize].node;
        if self.nodes[node].ready.is_some() {
            self.complete_client(client, t + self.config.launch);
            return;
        }
        self.nodes[node].queued.push(client);
        if self.nodes[node].seeding.is_none() {
            self.start_seed(t, node);
        }
    }

    /// Picks the cheapest source for a cold node, in policy order:
    /// same-site holder → wait on a sibling's WAN seed → foreign holder →
    /// sharded registry.
    fn start_seed(&mut self, t: Duration, node: NodeId) {
        let site = self.topo.site_of(node) as usize;
        let holders = self.directory.holders_scoped(self.image_fp, node, self.topo.site_map());
        let same_site = holders.first().is_some_and(|&h| self.topo.same_site(h, node));
        self.nodes[node].seed_started = t;
        if same_site {
            let fixed = self.amplified_fixed(*self.topo.lan());
            let slot = self.lan[site].transfer_with_fixed(t, fixed, self.image_wire);
            self.nodes[node].seeding = Some(SeedKind::Lan);
            self.queue.push(
                slot.done,
                Event::SeedDone { node, generation: self.nodes[node].generation },
            );
        } else if self.sites[site].wan_seeds > 0 {
            self.nodes[node].seeding = Some(SeedKind::Waiter);
            self.sites[site].waiters.push(node);
        } else if !holders.is_empty() {
            let fixed = self.amplified_fixed(*self.topo.backbone());
            let slot = self.backbone.transfer_with_fixed(t, fixed, self.image_wire);
            self.nodes[node].seeding = Some(SeedKind::Backbone);
            self.sites[site].wan_seeds += 1;
            self.queue.push(
                slot.done,
                Event::SeedDone { node, generation: self.nodes[node].generation },
            );
        } else {
            let seed = self.seeds.len();
            self.seeds.push(RegistrySeed {
                node,
                generation: self.nodes[node].generation,
                remaining: self.objects.len(),
                failed: false,
            });
            self.nodes[node].seeding = Some(SeedKind::Registry);
            self.sites[site].wan_seeds += 1;
            for object in 0..self.objects.len() {
                self.fetch_object(t, seed, object, 0);
            }
        }
    }

    /// One admission attempt for one object of a registry seed: replicas
    /// in ring order, skipping down shards and full queues. When every
    /// replica refuses, the whole wave backs off and retries.
    fn fetch_object(&mut self, t: Duration, seed: usize, object: usize, attempt: u32) {
        {
            let s = &self.seeds[seed];
            if s.failed || self.nodes[s.node].generation != s.generation {
                return;
            }
        }
        let node = self.seeds[seed].node;
        let site = self.topo.site_of(node) as usize;
        let obj = &self.objects[object];
        let (fingerprint, wire) = (obj.fingerprint, obj.wire);
        for shard in self.store.replicas_for(fingerprint) {
            match self.store.try_admit(shard) {
                Ok(()) => {
                    // Shard egress and the site uplink are crossed in
                    // parallel; the object lands when the slower
                    // finishes. The admission token is held for the
                    // shard's service time only.
                    let served = self.shard_lanes[shard as usize].transfer(t, wire);
                    let fixed = self.amplified_fixed(*self.topo.uplink(site as u32));
                    let hauled = self.uplinks[site].transfer_with_fixed(t, fixed, wire);
                    self.queue.push(served.done, Event::Release { shard });
                    self.queue.push(served.done.max(hauled.done), Event::ObjectDone { seed });
                    return;
                }
                Err(ShardRejection::Down) => self.down_refusals += 1,
                Err(ShardRejection::Overloaded) => {}
            }
        }
        self.overload_rejections += 1;
        let next = attempt + 1;
        if next < self.config.retry.max_attempts {
            self.retries += 1;
            let policy = RetryPolicy {
                jitter_seed: self
                    .config
                    .retry
                    .jitter_seed
                    .wrapping_add(((seed as u64) << 20) ^ object as u64),
                ..self.config.retry
            };
            self.queue.push(t + policy.backoff(next), Event::Fetch { seed, object, attempt: next });
        } else {
            self.fail_seed(t, seed);
        }
    }

    fn on_object_done(&mut self, t: Duration, seed: usize) {
        self.seeds[seed].remaining -= 1;
        let s = &self.seeds[seed];
        if s.failed || s.remaining > 0 || self.nodes[s.node].generation != s.generation {
            return;
        }
        self.node_ready(t, self.seeds[seed].node);
    }

    /// A registry seed ran out of retry budget: its node's queued clients
    /// are lost and the site's waiters re-plan.
    fn fail_seed(&mut self, t: Duration, seed: usize) {
        self.seeds[seed].failed = true;
        let node = self.seeds[seed].node;
        if self.nodes[node].generation != self.seeds[seed].generation {
            return;
        }
        let site = self.topo.site_of(node) as usize;
        self.sites[site].wan_seeds = self.sites[site].wan_seeds.saturating_sub(1);
        let abandoned = std::mem::take(&mut self.nodes[node].queued);
        self.lost += abandoned.len() as u32;
        self.fleet.telemetry(node as u32).count("fleet.lost", abandoned.len() as u64);
        self.nodes[node].seeding = None;
        if self.sites[site].wan_seeds == 0 {
            let waiters = std::mem::take(&mut self.sites[site].waiters);
            for w in waiters {
                self.nodes[w].seeding = None;
                self.start_seed(t, w);
            }
        }
    }

    /// The image finished installing on `node`: complete queued clients,
    /// announce to the directory, and fan the site's waiters out over the
    /// LAN.
    fn node_ready(&mut self, r: Duration, node: NodeId) {
        let Some(kind) = self.nodes[node].seeding.take() else { return };
        self.nodes[node].ready = Some(r);
        let site = self.topo.site_of(node) as usize;
        if matches!(kind, SeedKind::Backbone | SeedKind::Registry) {
            self.sites[site].wan_seeds = self.sites[site].wan_seeds.saturating_sub(1);
        }
        let started = self.nodes[node].seed_started;
        let telemetry = self.fleet.telemetry(node as u32);
        telemetry.scoped_span(
            "fleet",
            "seed",
            started,
            r.saturating_sub(started),
            &[("bytes", self.image_wire)],
        );
        telemetry.count("fleet.seeds", 1);
        telemetry.count(kind.counter(), 1);
        self.directory.announce(self.image_fp, node);
        let queued = std::mem::take(&mut self.nodes[node].queued);
        for client in queued {
            self.complete_client(client, r + self.config.launch);
        }
        let waiters = std::mem::take(&mut self.sites[site].waiters);
        for w in waiters {
            let fixed = self.amplified_fixed(*self.topo.lan());
            let slot = self.lan[site].transfer_with_fixed(r, fixed, self.image_wire);
            self.nodes[w].seeding = Some(SeedKind::Lan);
            self.queue
                .push(slot.done, Event::SeedDone { node: w, generation: self.nodes[w].generation });
        }
    }

    fn complete_client(&mut self, client: u32, finish: Duration) {
        let c = &mut self.clients[client as usize];
        c.done = Some(finish);
        self.completed += 1;
        let latency = finish.saturating_sub(c.arrive);
        let node = c.node;
        let telemetry = self.fleet.telemetry(node as u32);
        telemetry.count("fleet.deploys", 1);
        telemetry.sketch("fleet.deploy_nanos", latency.as_nanos() as u64);
    }

    /// Rolling-update semantics: every node in the site goes cold, its
    /// announcements withdraw, its telemetry shard resets (post-upgrade
    /// tails never mix pre-upgrade samples), and nodes with queued clients
    /// immediately re-plan their seed. Queued clients are never lost to a
    /// reset — they wait for the re-seed.
    fn on_reset_site(&mut self, t: Duration, site: u32) {
        for node in self.topo.site_nodes(site) {
            self.directory.withdraw(self.image_fp, node);
            let ns = &mut self.nodes[node];
            ns.generation += 1;
            ns.ready = None;
            ns.seeding = None;
            self.fleet.reset_shard(node as u32);
        }
        self.sites[site as usize].wan_seeds = 0;
        self.sites[site as usize].waiters.clear();
        for node in self.topo.site_nodes(site) {
            if !self.nodes[node].queued.is_empty() {
                self.start_seed(t, node);
            }
        }
    }

    fn amplified_fixed(&self, link: Link) -> Duration {
        let amp = self.topo.config().client.request_amplification.max(0.0);
        (link.rtt + link.request_overhead).mul_f64(amp)
    }

    fn report(&self) -> FleetReport {
        let makespan = self
            .clients
            .iter()
            .filter_map(|c| c.done)
            .max()
            .unwrap_or(Duration::ZERO);
        let merged = self.fleet.merged_metrics().unwrap_or_default();
        let nanos = |v: Option<u64>| Duration::from_nanos(v.unwrap_or(0));
        let (p50, p99, p999, max, samples) = match merged.sketch("fleet.deploy_nanos") {
            Some(sketch) => (
                nanos(sketch.quantile(0.50)),
                nanos(sketch.quantile(0.99)),
                nanos(sketch.quantile(0.999)),
                nanos(sketch.max()),
                sketch.count(),
            ),
            None => (Duration::ZERO, Duration::ZERO, Duration::ZERO, Duration::ZERO, 0),
        };
        let stats = self.store.shard_stats();
        let admitted: Vec<u64> = stats.iter().map(|s| s.admitted).collect();
        let shard_balance = match (admitted.iter().max(), admitted.iter().min()) {
            (Some(&hi), Some(&lo)) if lo > 0 => hi as f64 / lo as f64,
            (Some(&hi), _) if hi > 0 => f64::INFINITY,
            _ => 1.0,
        };
        FleetReport {
            clients: self.clients.len() as u32,
            completed: self.completed,
            lost: self.lost,
            makespan,
            p50,
            p99,
            p999,
            max,
            deploy_samples: samples,
            retries: self.retries,
            overload_rejections: self.overload_rejections,
            shard_rejections: stats.iter().map(|s| s.rejected).sum(),
            shard_down_refusals: self.down_refusals,
            shard_balance,
            registry_bytes: self.uplinks.iter().map(FifoLane::bytes).sum(),
            lan_bytes: self.lan.iter().map(FifoLane::bytes).sum(),
            backbone_bytes: self.backbone.bytes(),
            events: self.processed,
            dropped_spans: self.fleet.dropped_spans(),
            validation_problems: self.fleet.validate().len(),
            collector_bytes: self.fleet.span_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;

    fn image(objects: usize) -> Vec<(Fingerprint, Bytes)> {
        (0..objects)
            .map(|i| {
                let content = Bytes::from(format!("object-{i}-{}", "x".repeat(4_000 + i * 37)));
                (Fingerprint::of(&content), content)
            })
            .collect()
    }

    fn sim(sites: usize, nodes_per_site: usize, seed: u64) -> FleetSim {
        FleetSim::new(
            Topology::new(TopologyConfig::edge_fleet(sites, nodes_per_site)),
            FleetConfig::standard(seed),
            &image(12),
        )
    }

    #[test]
    fn flash_crowd_completes_everyone() {
        let mut fleet = sim(4, 4, 7);
        fleet.schedule_flash_crowd(400, Duration::ZERO, Duration::from_micros(50));
        let report = fleet.run();
        assert_eq!(report.completed, 400);
        assert_eq!(report.lost, 0);
        assert!(report.makespan > Duration::ZERO);
        assert!(report.p999 >= report.p99 && report.p99 >= report.p50);
        assert_eq!(report.validation_problems, 0);
        assert_eq!(report.deploy_samples, 400);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut fleet = sim(3, 5, seed);
            fleet.schedule_flash_crowd(300, Duration::ZERO, Duration::from_micros(20));
            fleet.schedule_shard_outage(1, Duration::from_millis(5), Duration::from_secs(2));
            fleet.run()
        };
        let (a, b) = (run(42), run(42));
        assert_eq!(a.makespan, b.makespan, "same seed, same makespan, bit for bit");
        assert_eq!(a.p999, b.p999);
        assert_eq!(a.events, b.events);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.registry_bytes, b.registry_bytes);
    }

    #[test]
    fn site_locality_keeps_registry_traffic_per_site_not_per_node() {
        let mut fleet = sim(2, 8, 9);
        fleet.schedule_flash_crowd(160, Duration::ZERO, Duration::from_micros(10));
        let report = fleet.run();
        assert_eq!(report.lost, 0);
        // Each site crosses the WAN roughly once (one registry or
        // backbone seed); the other 7 nodes per site seed over the LAN.
        let wan = report.registry_bytes + report.backbone_bytes;
        assert!(
            wan <= 3 * (report.registry_bytes + report.lan_bytes + report.backbone_bytes) / 8,
            "WAN carried too much: registry={} backbone={} lan={}",
            report.registry_bytes,
            report.backbone_bytes,
            report.lan_bytes
        );
        assert!(report.lan_bytes > report.registry_bytes, "LAN should dominate");
    }

    #[test]
    fn shard_outage_loses_nothing_thanks_to_replicas() {
        let mut fleet = sim(4, 4, 11);
        // Shard 0 is down for the entire seeding phase.
        fleet.schedule_shard_outage(0, Duration::ZERO, Duration::from_secs(600));
        fleet.schedule_flash_crowd(320, Duration::ZERO, Duration::from_micros(25));
        let report = fleet.run();
        assert_eq!(report.lost, 0, "replicas must absorb the outage");
        assert_eq!(report.completed, 320);
        assert!(report.shard_down_refusals > 0, "the down shard was actually consulted");
    }

    #[test]
    fn warm_nodes_deploy_at_launch_cost() {
        let mut fleet = sim(1, 2, 3);
        fleet.schedule_client(0, Duration::ZERO);
        // Arrives an hour later: the node is long since ready.
        fleet.schedule_client(0, Duration::from_secs(3_600));
        let report = fleet.run();
        assert_eq!(report.completed, 2);
        let warm = fleet.clients[1].done.expect("completed") - Duration::from_secs(3_600);
        assert_eq!(warm, fleet.config.launch, "warm deploys cost exactly the launch");
    }

    #[test]
    fn site_reset_reseeds_and_drops_stale_samples() {
        let mut fleet = sim(2, 2, 5);
        fleet.schedule_flash_crowd(40, Duration::ZERO, Duration::from_micros(10));
        fleet.schedule_site_reset(0, Duration::from_secs(300));
        // Post-reset arrivals must re-seed site 0.
        fleet.schedule_client(0, Duration::from_secs(301));
        let report = fleet.run();
        assert_eq!(report.completed, 41);
        assert_eq!(report.lost, 0);
        assert!(
            report.deploy_samples < u64::from(report.completed),
            "the reset site's pre-reset samples are gone"
        );
        assert_eq!(report.validation_problems, 0);
    }

    #[test]
    fn event_cost_scales_with_work_not_clients_squared() {
        let mut fleet = sim(4, 4, 13);
        fleet.schedule_flash_crowd(1_000, Duration::ZERO, Duration::from_micros(5));
        let report = fleet.run();
        assert_eq!(report.lost, 0);
        // Arrivals dominate: everything else is per-seed, not per-client.
        assert!(
            report.events < 1_000 + 16 * 12 * 40,
            "event count blew up: {}",
            report.events
        );
    }
}
