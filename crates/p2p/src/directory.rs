//! The cluster's fingerprint → holders directory.
//!
//! Models the tracker/supernode of a P2P image-distribution system: a map
//! from content fingerprint to the set of nodes currently holding it. The
//! directory stores only metadata; content always flows node-to-node.

use std::collections::{HashMap, HashSet};

use gear_hash::Fingerprint;

/// A node identifier within one cluster.
pub(crate) type RawNode = usize;

/// Tracks which nodes hold which Gear files.
#[derive(Debug, Default)]
pub struct PeerDirectory {
    holders: HashMap<Fingerprint, HashSet<RawNode>>,
    /// Round-robin cursor so peer load spreads across holders.
    cursor: usize,
}

impl PeerDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` now holds `fingerprint`.
    pub(crate) fn announce(&mut self, fingerprint: Fingerprint, node: RawNode) {
        self.holders.entry(fingerprint).or_default().insert(node);
    }

    /// Removes `node` as a holder of `fingerprint` (cache eviction).
    pub(crate) fn withdraw(&mut self, fingerprint: Fingerprint, node: RawNode) {
        if let Some(set) = self.holders.get_mut(&fingerprint) {
            set.remove(&node);
            if set.is_empty() {
                self.holders.remove(&fingerprint);
            }
        }
    }

    /// All holders of `fingerprint` other than `asker`, in the order a
    /// degrading fetch should try them: rotated among candidates so repeated
    /// lookups spread load, with the rest serving as fallbacks for when the
    /// preferred peer's transfer fails.
    pub(crate) fn holders_except(
        &mut self,
        fingerprint: Fingerprint,
        asker: RawNode,
    ) -> Vec<RawNode> {
        let Some(set) = self.holders.get(&fingerprint) else {
            return Vec::new();
        };
        let mut candidates: Vec<RawNode> =
            set.iter().copied().filter(|n| *n != asker).collect();
        if candidates.is_empty() {
            return candidates;
        }
        candidates.sort_unstable();
        self.cursor = self.cursor.wrapping_add(1);
        let start = self.cursor % candidates.len();
        candidates.rotate_left(start);
        candidates
    }

    /// Number of distinct fingerprints known to the cluster.
    pub fn distinct_files(&self) -> usize {
        self.holders.len()
    }

    /// Total replica count across nodes.
    pub fn replicas(&self) -> usize {
        self.holders.values().map(HashSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    #[test]
    fn announce_locate_withdraw() {
        let mut dir = PeerDirectory::new();
        assert!(dir.holders_except(fp(1), 0).is_empty());
        dir.announce(fp(1), 1);
        dir.announce(fp(1), 2);
        // Node 0 finds everyone else.
        let holders = dir.holders_except(fp(1), 0);
        assert_eq!(holders.len(), 2);
        assert!(holders.contains(&1) && holders.contains(&2));
        // A holder never locates itself.
        dir.withdraw(fp(1), 2);
        assert!(dir.holders_except(fp(1), 1).is_empty());
        assert_eq!(dir.holders_except(fp(1), 0), vec![1]);
        dir.withdraw(fp(1), 1);
        assert_eq!(dir.distinct_files(), 0);
    }

    #[test]
    fn rotation_spreads_load() {
        let mut dir = PeerDirectory::new();
        for node in 1..=4 {
            dir.announce(fp(9), node);
        }
        let mut seen = HashSet::new();
        for _ in 0..16 {
            seen.insert(dir.holders_except(fp(9), 0)[0]);
        }
        assert!(seen.len() >= 3, "round-robin should reach most holders: {seen:?}");
    }

    #[test]
    fn replica_accounting() {
        let mut dir = PeerDirectory::new();
        dir.announce(fp(1), 0);
        dir.announce(fp(1), 1);
        dir.announce(fp(2), 0);
        assert_eq!(dir.distinct_files(), 2);
        assert_eq!(dir.replicas(), 3);
    }
}
