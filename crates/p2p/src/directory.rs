//! The cluster's fingerprint → holders directory.
//!
//! Models the tracker/supernode of a P2P image-distribution system: a map
//! from content fingerprint to the set of nodes currently holding it. The
//! directory stores only metadata; content always flows node-to-node.

use std::collections::{HashMap, HashSet};

use gear_hash::Fingerprint;

/// A node identifier within one cluster.
pub(crate) type RawNode = usize;

/// Tracks which nodes hold which Gear files.
#[derive(Debug, Default)]
pub struct PeerDirectory {
    holders: HashMap<Fingerprint, HashSet<RawNode>>,
    /// Round-robin cursor so peer load spreads across holders.
    cursor: usize,
}

impl PeerDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` now holds `fingerprint`.
    pub(crate) fn announce(&mut self, fingerprint: Fingerprint, node: RawNode) {
        self.holders.entry(fingerprint).or_default().insert(node);
    }

    /// Removes `node` as a holder of `fingerprint` (cache eviction).
    pub(crate) fn withdraw(&mut self, fingerprint: Fingerprint, node: RawNode) {
        if let Some(set) = self.holders.get_mut(&fingerprint) {
            set.remove(&node);
            if set.is_empty() {
                self.holders.remove(&fingerprint);
            }
        }
    }

    /// All holders of `fingerprint` other than `asker`, in the order a
    /// degrading fetch should try them: rotated among candidates so repeated
    /// lookups spread load, with the rest serving as fallbacks for when the
    /// preferred peer's transfer fails.
    pub(crate) fn holders_except(
        &mut self,
        fingerprint: Fingerprint,
        asker: RawNode,
    ) -> Vec<RawNode> {
        let Some(set) = self.holders.get(&fingerprint) else {
            return Vec::new();
        };
        let mut candidates: Vec<RawNode> =
            set.iter().copied().filter(|n| *n != asker).collect();
        if candidates.is_empty() {
            return candidates;
        }
        candidates.sort_unstable();
        self.cursor = self.cursor.wrapping_add(1);
        let start = self.cursor % candidates.len();
        candidates.rotate_left(start);
        candidates
    }

    /// Site-scoped discovery for hierarchical topologies: all holders of
    /// `fingerprint` other than `asker`, same-site holders first.
    ///
    /// `site_of[n]` is node `n`'s site. Within each group (same-site, then
    /// foreign) holders come in ascending node-id order, so the answer is a
    /// pure function of the directory contents — no rotation cursor. A
    /// hierarchical fetch drains the LAN candidates before it ever
    /// considers crossing the backbone.
    pub(crate) fn holders_scoped(
        &self,
        fingerprint: Fingerprint,
        asker: RawNode,
        site_of: &[u32],
    ) -> Vec<RawNode> {
        let Some(set) = self.holders.get(&fingerprint) else {
            return Vec::new();
        };
        let my_site = site_of.get(asker).copied();
        let mut candidates: Vec<RawNode> =
            set.iter().copied().filter(|n| *n != asker).collect();
        candidates.sort_unstable();
        candidates.sort_by_key(|n| site_of.get(*n).copied() != my_site);
        candidates
    }

    /// Number of distinct fingerprints known to the cluster.
    pub fn distinct_files(&self) -> usize {
        self.holders.len()
    }

    /// Total replica count across nodes.
    pub fn replicas(&self) -> usize {
        self.holders.values().map(HashSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u8) -> Fingerprint {
        Fingerprint::of(&[n])
    }

    #[test]
    fn announce_locate_withdraw() {
        let mut dir = PeerDirectory::new();
        assert!(dir.holders_except(fp(1), 0).is_empty());
        dir.announce(fp(1), 1);
        dir.announce(fp(1), 2);
        // Node 0 finds everyone else.
        let holders = dir.holders_except(fp(1), 0);
        assert_eq!(holders.len(), 2);
        assert!(holders.contains(&1) && holders.contains(&2));
        // A holder never locates itself.
        dir.withdraw(fp(1), 2);
        assert!(dir.holders_except(fp(1), 1).is_empty());
        assert_eq!(dir.holders_except(fp(1), 0), vec![1]);
        dir.withdraw(fp(1), 1);
        assert_eq!(dir.distinct_files(), 0);
    }

    #[test]
    fn rotation_spreads_load() {
        let mut dir = PeerDirectory::new();
        for node in 1..=4 {
            dir.announce(fp(9), node);
        }
        let mut seen = HashSet::new();
        for _ in 0..16 {
            seen.insert(dir.holders_except(fp(9), 0)[0]);
        }
        assert!(seen.len() >= 3, "round-robin should reach most holders: {seen:?}");
    }

    #[test]
    fn replica_accounting() {
        let mut dir = PeerDirectory::new();
        dir.announce(fp(1), 0);
        dir.announce(fp(1), 1);
        dir.announce(fp(2), 0);
        assert_eq!(dir.distinct_files(), 2);
        assert_eq!(dir.replicas(), 3);
    }

    #[test]
    fn scoped_discovery_prefers_the_asker_site() {
        let mut dir = PeerDirectory::new();
        // Sites: nodes 0..3 in site 0, 3..6 in site 1.
        let site_of = [0u32, 0, 0, 1, 1, 1];
        for node in [1, 2, 4, 5] {
            dir.announce(fp(7), node);
        }
        assert_eq!(dir.holders_scoped(fp(7), 0, &site_of), vec![1, 2, 4, 5]);
        assert_eq!(dir.holders_scoped(fp(7), 3, &site_of), vec![4, 5, 1, 2]);
        // A holder never sees itself, whichever site it asks from.
        assert_eq!(dir.holders_scoped(fp(7), 4, &site_of), vec![5, 1, 2]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        const NODES: usize = 12;
        const FILES: u8 = 6;

        #[derive(Debug, Clone)]
        enum Op {
            Announce(u8, usize),
            Withdraw(u8, usize),
        }

        fn ops() -> impl Strategy<Value = Vec<Op>> {
            proptest::collection::vec(
                (0..FILES, 0..NODES, any::<bool>()).prop_map(|(file, node, announce)| {
                    if announce {
                        Op::Announce(file, node)
                    } else {
                        Op::Withdraw(file, node)
                    }
                }),
                0..64,
            )
        }

        fn apply(dir: &mut PeerDirectory, ops: &[Op]) {
            for op in ops {
                match *op {
                    Op::Announce(file, node) => dir.announce(fp(file), node),
                    Op::Withdraw(file, node) => dir.withdraw(fp(file), node),
                }
            }
        }

        /// Ground truth: the surviving holder set per file.
        fn model(ops: &[Op]) -> HashMap<u8, HashSet<usize>> {
            let mut holders: HashMap<u8, HashSet<usize>> = HashMap::new();
            for op in ops {
                match *op {
                    Op::Announce(file, node) => {
                        holders.entry(file).or_default().insert(node);
                    }
                    Op::Withdraw(file, node) => {
                        if let Some(set) = holders.get_mut(&file) {
                            set.remove(&node);
                        }
                    }
                }
            }
            holders.retain(|_, set| !set.is_empty());
            holders
        }

        proptest! {
            /// Two directories fed the same registration history answer
            /// every lookup identically — lookups are a pure function of
            /// the history (plus the shared rotation cursor).
            #[test]
            fn lookups_are_deterministic(ops in ops(), asker in 0..NODES) {
                let mut a = PeerDirectory::new();
                let mut b = PeerDirectory::new();
                apply(&mut a, &ops);
                apply(&mut b, &ops);
                for file in 0..FILES {
                    prop_assert_eq!(
                        a.holders_except(fp(file), asker),
                        b.holders_except(fp(file), asker)
                    );
                }
            }

            /// A lookup returns exactly the announced-and-not-withdrawn
            /// holders, minus the asker — rotation reorders, never edits.
            #[test]
            fn lookups_match_the_registration_history(ops in ops(), asker in 0..NODES) {
                let mut dir = PeerDirectory::new();
                apply(&mut dir, &ops);
                let truth = model(&ops);
                for file in 0..FILES {
                    let mut got = dir.holders_except(fp(file), asker);
                    got.sort_unstable();
                    let mut want: Vec<usize> = truth
                        .get(&file)
                        .map(|set| set.iter().copied().filter(|n| *n != asker).collect())
                        .unwrap_or_default();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                let replicas: usize = truth.values().map(HashSet::len).sum();
                prop_assert_eq!(dir.replicas(), replicas);
                prop_assert_eq!(dir.distinct_files(), truth.len());
            }

            /// Site-scoped discovery returns the same holder *set* as the
            /// flat lookup, with every same-site holder strictly before
            /// every foreign one, each group in ascending id order — and is
            /// cursor-free, so repeated lookups never change.
            #[test]
            fn scoped_discovery_is_sited_and_stable(
                ops in ops(),
                asker in 0..NODES,
                site_count in 1u32..4,
            ) {
                let mut dir = PeerDirectory::new();
                apply(&mut dir, &ops);
                let site_of: Vec<u32> =
                    (0..NODES).map(|n| n as u32 % site_count).collect();
                let truth = model(&ops);
                for file in 0..FILES {
                    let got = dir.holders_scoped(fp(file), asker, &site_of);
                    prop_assert_eq!(
                        got.clone(),
                        dir.holders_scoped(fp(file), asker, &site_of),
                        "scoped lookups must be repeatable"
                    );
                    let mut sorted = got.clone();
                    sorted.sort_unstable();
                    let mut want: Vec<usize> = truth
                        .get(&file)
                        .map(|set| set.iter().copied().filter(|n| *n != asker).collect())
                        .unwrap_or_default();
                    want.sort_unstable();
                    prop_assert_eq!(sorted, want, "same holder set as the flat lookup");
                    // Same-site prefix, foreign suffix, ids ascending in each.
                    let my_site = site_of[asker];
                    let boundary =
                        got.iter().take_while(|n| site_of[**n] == my_site).count();
                    prop_assert!(
                        got[boundary..].iter().all(|n| site_of[*n] != my_site),
                        "foreign holder before a same-site one: {:?}",
                        got
                    );
                    prop_assert!(got[..boundary].windows(2).all(|w| w[0] < w[1]));
                    prop_assert!(got[boundary..].windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }
}
