//! Deterministic parallel execution for the Gear hot paths.
//!
//! Every CPU-bound loop in the conversion pipeline (fingerprinting, corpus
//! synthesis, integrity scans) has the same shape: a pure function applied
//! independently to each element of a slice. This crate runs such loops on a
//! small [`std::thread::scope`]-based pool with two guarantees the rest of
//! the workspace depends on:
//!
//! * **Order preservation** — `pool.map(&items, f)` returns results in input
//!   order, exactly as the serial `items.iter().map(f).collect()` would.
//! * **Determinism** — the work split is a pure function of `(len, workers)`,
//!   never of thread timing, so a run is bit-identical to serial regardless
//!   of scheduling. Parallelism changes *when* work happens, never *what*.
//!
//! There is no work stealing and no shared mutable state: the input is cut
//! into at most `workers` contiguous chunks, each worker owns one chunk, and
//! results are stitched back in chunk order. For the corpus/hash workloads
//! (thousands of similar-cost items) static chunking loses almost nothing to
//! stealing and keeps the reasoning trivial.
//!
//! ```
//! use gear_par::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! // Bit-identical to any other worker count, including serial.
//! assert_eq!(squares, Pool::serial().map(&[1u64, 2, 3, 4, 5], |&x| x * x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Below this many items a `map` runs serially: spawning threads costs more
/// than it saves on tiny inputs, and serial is trivially deterministic.
pub const PARALLEL_THRESHOLD: usize = 32;

/// A fixed-width deterministic job pool.
///
/// The pool owns no threads between calls — each [`Pool::map`] spawns scoped
/// workers and joins them before returning, so there is no lifecycle to
/// manage and borrowed data can flow into the closure freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::with_available_parallelism()
    }
}

impl Pool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool { workers: workers.max(1) }
    }

    /// A pool that runs everything on the calling thread.
    pub fn serial() -> Self {
        Pool { workers: 1 }
    }

    /// A pool sized to the host's available parallelism (1 if unknown).
    pub fn with_available_parallelism() -> Self {
        Pool::new(std::thread::available_parallelism().map_or(1, usize::from))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel across the pool, returning
    /// results **in input order**. Output is bit-identical to
    /// `items.iter().map(f).collect()` for any worker count.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.workers == 1 || items.len() < PARALLEL_THRESHOLD {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(self.workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|slice| scope.spawn(|| slice.iter().map(&f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for handle in handles {
                out.extend(handle.join().expect("gear-par worker panicked"));
            }
            out
        })
    }

    /// Like [`Pool::map`] but with no small-input serial threshold: any
    /// two-or-more-item slice fans out across the pool.
    ///
    /// [`Pool::map`]'s [`PARALLEL_THRESHOLD`] assumes items are cheap (hash
    /// one small file, check one fingerprint), where thread spawn overhead
    /// swamps the win below a few dozen items. Block compression inverts
    /// that: a 2 MiB input is only eight 256 KiB blocks, but each block
    /// costs milliseconds — exactly the shape where eight scoped threads
    /// pay for themselves many times over. Results are returned in input
    /// order and are bit-identical to the serial map for any worker count,
    /// same as [`Pool::map`].
    pub fn map_heavy<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.workers == 1 || items.len() < 2 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(self.workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|slice| scope.spawn(|| slice.iter().map(&f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for handle in handles {
                out.extend(handle.join().expect("gear-par worker panicked"));
            }
            out
        })
    }

    /// Like [`Pool::map`] but `f` also receives the item's index in `items`
    /// (useful when the result must be keyed by position-derived state).
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.workers == 1 || items.len() < PARALLEL_THRESHOLD {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = items.len().div_ceil(self.workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(c, slice)| {
                    let f = &f;
                    scope.spawn(move || {
                        slice
                            .iter()
                            .enumerate()
                            .map(|(i, t)| f(c * chunk + i, t))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(items.len());
            for handle in handles {
                out.extend(handle.join().expect("gear-par worker panicked"));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_matches_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        for workers in [1, 2, 3, 7, 8, 64] {
            let par = Pool::new(workers).map(&items, |&x| x.wrapping_mul(x) ^ 7);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn small_inputs_run_serially() {
        let items: Vec<u32> = (0..(PARALLEL_THRESHOLD as u32 - 1)).collect();
        let out = Pool::new(8).map(&items, |&x| x + 1);
        assert_eq!(out.len(), items.len());
        assert_eq!(out[0], 1);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::new(4).map(&empty, |&x| x).is_empty());
        assert_eq!(Pool::new(4).map(&[9u8], |&x| x * 2), vec![18]);
    }

    #[test]
    fn map_indexed_matches_enumerated_serial() {
        let items: Vec<u64> = (0..500).map(|i| i * 3).collect();
        let serial: Vec<u64> =
            items.iter().enumerate().map(|(i, &x)| x + i as u64).collect();
        for workers in [1, 2, 5, 16] {
            let par = Pool::new(workers).map_indexed(&items, |i, &x| x + i as u64);
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn map_heavy_parallelizes_small_item_counts() {
        // Below PARALLEL_THRESHOLD items, map_heavy still matches serial
        // output exactly at every worker count.
        let items: Vec<u64> = (0..8).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 31 + 1).collect();
        for workers in [1, 2, 3, 8, 16] {
            let par = Pool::new(workers).map_heavy(&items, |&x| x * 31 + 1);
            assert_eq!(par, serial, "workers={workers}");
        }
        assert!(Pool::new(4).map_heavy(&Vec::<u8>::new(), |&x| x).is_empty());
        assert_eq!(Pool::new(4).map_heavy(&[5u8], |&x| x + 1), vec![6]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(Pool::new(0).workers(), 1);
    }

    #[test]
    fn borrowed_context_flows_into_closures() {
        let offset = 41u64;
        let out = Pool::new(2).map(&(0..100u64).collect::<Vec<_>>(), |&x| x + offset);
        assert_eq!(out[1], 42);
    }
}
