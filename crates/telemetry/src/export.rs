//! Exporters: Chrome/Perfetto `trace.json` and a flat `metrics.json`.
//!
//! Both writers are hand-rolled (this crate has no dependencies) and fully
//! deterministic: spans and instants are emitted in recording order,
//! metrics in key order, and timestamps as exact decimal microseconds
//! (`nanos / 1000` with a fixed three-digit fraction) — so a deterministic
//! recording serializes to byte-identical files.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Duration;

use crate::collector::Collector;
use crate::metrics::MetricsRegistry;

/// Escapes a string for a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats a simulated duration as Chrome-trace microseconds with a fixed
/// three-digit nanosecond fraction (`"12.345"`).
fn micros(d: Duration) -> String {
    let nanos = d.as_nanos();
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

impl Collector {
    /// Serializes the recording in the Chrome trace-event format: one
    /// complete (`"ph":"X"`) event per span and one instant (`"ph":"i"`)
    /// event per instant, all on `pid` 1 / `tid` 1 — the whole deployment
    /// path shares one simulated timeline, and Perfetto nests same-track
    /// spans by interval containment.
    pub fn trace_json(&self) -> String {
        let spans = self.spans();
        let instants = self.instants();
        let mut out = String::with_capacity(128 + 160 * (spans.len() + instants.len()));
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for span in &spans {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"");
            escape_json(span.cat, &mut out);
            out.push_str("\",\"name\":\"");
            escape_json(&span.name, &mut out);
            let end = span.end.unwrap_or(span.start);
            let _ = write!(
                out,
                "\",\"ts\":{},\"dur\":{}",
                micros(span.start),
                micros(end.saturating_sub(span.start))
            );
            if !span.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in span.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(key, &mut out);
                    let _ = write!(out, "\":{value}");
                }
                out.push('}');
            }
            out.push('}');
        }
        for instant in &instants {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str("{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"t\",\"cat\":\"");
            escape_json(instant.cat, &mut out);
            out.push_str("\",\"name\":\"");
            escape_json(&instant.name, &mut out);
            let _ = write!(out, "\",\"ts\":{}", micros(instant.at));
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Serializes the metrics registry as flat, key-sorted JSON (see
    /// [`metrics_json`]).
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.metrics())
    }

    /// Writes `trace.json` and `metrics.json` into `dir`, creating it if
    /// missing. Returns the two paths.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory or writing the files.
    pub fn write_files(&self, dir: &Path) -> io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        std::fs::write(&trace, self.trace_json())?;
        std::fs::write(&metrics, self.metrics_json())?;
        Ok((trace, metrics))
    }
}

/// Serializes a registry as `{"counters":{...},"gauges":{...},
/// "histograms":{...}}` with keys in sorted order. Histograms carry
/// `count`/`sum`/`min`/`max` and explicit buckets; the overflow bucket's
/// bound serializes as the string `"+Inf"`.
pub fn metrics_json(metrics: &MetricsRegistry) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (key, value)) in metrics.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, &mut out);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (key, value)) in metrics.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, &mut out);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (key, histogram)) in metrics.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, &mut out);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            histogram.count(),
            histogram.sum(),
            histogram.min().unwrap_or(0),
            histogram.max().unwrap_or(0),
        );
        for (j, (bound, count)) in histogram.buckets().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match bound {
                Some(le) => {
                    let _ = write!(out, "{{\"le\":{le},\"count\":{count}}}");
                }
                None => {
                    let _ = write!(out, "{{\"le\":\"+Inf\",\"count\":{count}}}");
                }
            }
        }
        out.push_str("]}");
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn trace_json_shape() {
        let c = Collector::new();
        let span = c.span_start("client", "deploy");
        c.span_arg(span, "bytes", 42);
        c.advance(Duration::from_micros(1500));
        c.instant("simnet", "fault.drop");
        c.span_end(span);
        let json = c.trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"client\",\"name\":\"deploy\",\
             \"ts\":0.000,\"dur\":1500.000,\"args\":{\"bytes\":42}}"
        ));
        assert!(json.contains(
            "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"t\",\"cat\":\"simnet\",\
             \"name\":\"fault.drop\",\"ts\":1500.000}"
        ));
    }

    #[test]
    fn metrics_json_shape() {
        let c = Collector::new();
        c.count("b.two", 2);
        c.count("a.one", 1);
        c.gauge_set("g", 7);
        c.observe("h", 2048);
        let json = c.metrics_json();
        // Counters in sorted key order.
        assert!(json.contains("\"counters\":{\"a.one\":1,\"b.two\":2}"));
        assert!(json.contains("\"gauges\":{\"g\":7}"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum\":2048,\"min\":2048,\"max\":2048"));
        assert!(json.contains("{\"le\":\"+Inf\",\"count\":0}"));
    }

    #[test]
    fn escaping_controls_and_quotes() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let c = Collector::new();
            let s = c.span_start("x", "outer");
            c.advance(Duration::from_nanos(1_234_567));
            c.count("k", 3);
            c.observe("h", 99);
            c.span_end(s);
            (c.trace_json(), c.metrics_json())
        };
        assert_eq!(build(), build());
    }
}
