//! Exporters: Chrome/Perfetto `trace.json` and a flat `metrics.json`.
//!
//! Both writers are hand-rolled (this crate has no dependencies) and fully
//! deterministic: spans and instants are emitted in recording order,
//! metrics in key order, and timestamps as exact decimal microseconds
//! (`nanos / 1000` with a fixed three-digit fraction) — so a deterministic
//! recording serializes to byte-identical files.
//!
//! Cross-node causality exports as Chrome **flow events**: a span marked as
//! a flow producer emits a flow-start (`"ph":"s"`) at its start, and every
//! span that adopted the matching trace context emits a flow-end
//! (`"ph":"f","bp":"e"`) carrying the same `id` — the producer's global
//! span key — which is how Perfetto draws arrows from a deploy span on one
//! track to the registry/peer spans it caused on other tracks. Each fleet
//! shard exports on its own `tid` (`shard + 1`), so a single-shard
//! collector stays byte-compatible with the historical all-`tid:1` format.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Duration;

use crate::collector::{Collector, InstantData, SpanData};
use crate::metrics::MetricsRegistry;

/// Escapes a string for a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats a simulated duration as Chrome-trace microseconds with a fixed
/// three-digit nanosecond fraction (`"12.345"`).
fn micros(d: Duration) -> String {
    let nanos = d.as_nanos();
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// The opening of every trace export.
pub(crate) const TRACE_PRELUDE: &str = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

/// Appends one shard's events — complete spans (with their flow companions)
/// then instants — on Chrome-trace thread `tid`. `first` threads the comma
/// state across shards.
pub(crate) fn write_events(
    out: &mut String,
    spans: &[SpanData],
    instants: &[InstantData],
    tid: u32,
    first: &mut bool,
) {
    let mut sep = |out: &mut String| {
        if !std::mem::take(first) {
            out.push(',');
        }
    };
    for span in spans {
        sep(out);
        let _ = write!(out, "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"cat\":\"");
        escape_json(span.cat, out);
        out.push_str("\",\"name\":\"");
        escape_json(&span.name, out);
        let end = span.end.unwrap_or(span.start);
        let _ = write!(
            out,
            "\",\"ts\":{},\"dur\":{}",
            micros(span.start),
            micros(end.saturating_sub(span.start))
        );
        if !span.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in span.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(key, out);
                let _ = write!(out, "\":{value}");
            }
            out.push('}');
        }
        out.push('}');
        if span.flow_out {
            sep(out);
            let _ = write!(
                out,
                "{{\"ph\":\"s\",\"pid\":1,\"tid\":{tid},\"cat\":\"flow\",\"name\":\"req\",\
                 \"id\":{},\"ts\":{}}}",
                span.key,
                micros(span.start),
            );
        }
        if let Some(flow) = span.flow_in {
            sep(out);
            let _ = write!(
                out,
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{tid},\"cat\":\"flow\",\
                 \"name\":\"req\",\"id\":{flow},\"ts\":{}}}",
                micros(span.start),
            );
        }
    }
    for instant in instants {
        sep(out);
        let _ = write!(out, "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"s\":\"t\",\"cat\":\"");
        escape_json(instant.cat, out);
        out.push_str("\",\"name\":\"");
        escape_json(&instant.name, out);
        let _ = write!(out, "\",\"ts\":{}", micros(instant.at));
        out.push('}');
    }
}

impl Collector {
    /// Serializes the recording in the Chrome trace-event format: one
    /// complete (`"ph":"X"`) event per span, flow-start/flow-end events for
    /// spans bound by a trace context, and one instant (`"ph":"i"`) event
    /// per instant — all on `pid` 1, `tid` `shard + 1` (so the default
    /// shard-0 collector keeps the historical single-track layout, and
    /// Perfetto nests same-track spans by interval containment).
    pub fn trace_json(&self) -> String {
        let spans = self.spans();
        let instants = self.instants();
        let mut out = String::with_capacity(128 + 160 * (spans.len() + instants.len()));
        out.push_str(TRACE_PRELUDE);
        let mut first = true;
        write_events(&mut out, &spans, &instants, self.shard() + 1, &mut first);
        out.push_str("]}\n");
        out
    }

    /// Serializes the metrics registry as flat, key-sorted JSON (see
    /// [`metrics_json`]).
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.metrics())
    }

    /// Writes `trace.json` and `metrics.json` into `dir`, creating it if
    /// missing. Returns the two paths.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory or writing the files.
    pub fn write_files(&self, dir: &Path) -> io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        std::fs::write(&trace, self.trace_json())?;
        std::fs::write(&metrics, self.metrics_json())?;
        Ok((trace, metrics))
    }
}

/// Serializes a registry as `{"counters":{...},"gauges":{...},
/// "histograms":{...},"sketches":{...}}` with keys in sorted order.
/// Histograms carry `count`/`sum`/`min`/`max` and explicit buckets; the
/// overflow bucket's bound serializes as the string `"+Inf"`. Sketches
/// carry their summary stats, the pre-computed p50/p99/p999, the relative
/// -error bound, and the sparse `[index, count]` bucket list.
pub fn metrics_json(metrics: &MetricsRegistry) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (key, value)) in metrics.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, &mut out);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (key, value)) in metrics.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, &mut out);
        let _ = write!(out, "\":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (key, histogram)) in metrics.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, &mut out);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            histogram.count(),
            histogram.sum(),
            histogram.min().unwrap_or(0),
            histogram.max().unwrap_or(0),
        );
        for (j, (bound, count)) in histogram.buckets().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match bound {
                Some(le) => {
                    let _ = write!(out, "{{\"le\":{le},\"count\":{count}}}");
                }
                None => {
                    let _ = write!(out, "{{\"le\":\"+Inf\",\"count\":{count}}}");
                }
            }
        }
        out.push_str("]}");
    }
    out.push_str("},\"sketches\":{");
    for (i, (key, sketch)) in metrics.sketches().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, &mut out);
        let q = |p: f64| sketch.quantile(p).unwrap_or(0);
        let _ = write!(
            out,
            "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"err\":{},\
             \"p50\":{},\"p99\":{},\"p999\":{},\"zero\":{},\"buckets\":[",
            sketch.count(),
            sketch.sum(),
            sketch.min().unwrap_or(0),
            sketch.max().unwrap_or(0),
            sketch.relative_error_bound(),
            q(0.5),
            q(0.99),
            q(0.999),
            sketch.zero_count(),
        );
        for (j, (index, count)) in sketch.buckets().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{index},{count}]");
        }
        out.push_str("]}");
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceContext;
    use crate::recorder::Recorder;

    #[test]
    fn trace_json_shape() {
        let c = Collector::new();
        let span = c.span_start("client", "deploy");
        c.span_arg(span, "bytes", 42);
        c.advance(Duration::from_micros(1500));
        c.instant("simnet", "fault.drop");
        c.span_end(span);
        let json = c.trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"client\",\"name\":\"deploy\",\
             \"ts\":0.000,\"dur\":1500.000,\"args\":{\"bytes\":42}}"
        ));
        assert!(json.contains(
            "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"t\",\"cat\":\"simnet\",\
             \"name\":\"fault.drop\",\"ts\":1500.000}"
        ));
    }

    #[test]
    fn flow_events_bind_producer_to_consumer() {
        let c = Collector::new();
        c.set_trace_id(0x7);
        let span = c.span_start("client", "deploy");
        let ctx = c.outbound_context().expect("trace active");
        c.advance(Duration::from_micros(10));
        let server = c.span_at("registry", "serve", c.now(), Duration::ZERO);
        c.adopt_context(server, ctx);
        c.span_end(span);
        let json = c.trace_json();
        assert!(
            json.contains(
                "{\"ph\":\"s\",\"pid\":1,\"tid\":1,\"cat\":\"flow\",\"name\":\"req\",\
                 \"id\":0,\"ts\":0.000}"
            ),
            "{json}"
        );
        assert!(
            json.contains(
                "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":1,\"cat\":\"flow\",\
                 \"name\":\"req\",\"id\":0,\"ts\":10.000}"
            ),
            "{json}"
        );
        assert!(json.contains("\"args\":{\"trace_id\":7}"), "{json}");
    }

    #[test]
    fn adopting_without_a_producer_emits_no_flow() {
        let c = Collector::new();
        let server = c.span_at("registry", "serve", Duration::ZERO, Duration::ZERO);
        c.adopt_context(
            server,
            TraceContext { trace_id: 9, parent_span: crate::context::NO_PARENT_SPAN },
        );
        let json = c.trace_json();
        assert!(!json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains("\"trace_id\":9"), "{json}");
    }

    #[test]
    fn metrics_json_shape() {
        let c = Collector::new();
        c.count("b.two", 2);
        c.count("a.one", 1);
        c.gauge_set("g", 7);
        c.observe("h", 2048);
        let json = c.metrics_json();
        // Counters in sorted key order.
        assert!(json.contains("\"counters\":{\"a.one\":1,\"b.two\":2}"));
        assert!(json.contains("\"gauges\":{\"g\":7}"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum\":2048,\"min\":2048,\"max\":2048"));
        assert!(json.contains("{\"le\":\"+Inf\",\"count\":0}"));
        assert!(json.trim_end().ends_with("\"sketches\":{}}"));
    }

    #[test]
    fn metrics_json_sketch_shape() {
        let c = Collector::new();
        for v in [0u64, 5, 5, 900] {
            c.sketch("lat", v);
        }
        let json = c.metrics_json();
        assert!(
            json.contains("\"lat\":{\"count\":4,\"sum\":910,\"min\":0,\"max\":900,"),
            "{json}"
        );
        assert!(json.contains("\"err\":0.0078125"), "{json}");
        assert!(json.contains("\"zero\":1"), "{json}");
        assert!(json.contains("\"p999\":"), "{json}");
    }

    #[test]
    fn escaping_controls_and_quotes() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let c = Collector::new();
            let s = c.span_start("x", "outer");
            c.advance(Duration::from_nanos(1_234_567));
            c.count("k", 3);
            c.observe("h", 99);
            c.sketch("q", 1_000);
            c.span_end(s);
            (c.trace_json(), c.metrics_json())
        };
        assert_eq!(build(), build());
    }
}
