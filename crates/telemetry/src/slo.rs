//! Service-level objectives evaluated from quantile sketches.
//!
//! An [`SloSpec`] names the latency targets a deployment path must meet
//! at p50, p99, and p999. [`SloSpec::evaluate`] reads those quantiles out
//! of a [`QuantileSketch`] and returns an [`SloEval`] carrying both the
//! measured tails and the per-target verdicts — the structure
//! `DeploymentReport` surfaces and the `repro tails` flash-crowd gate
//! fails on.

use std::fmt;
use std::time::Duration;

use crate::sketch::QuantileSketch;

/// Latency targets for one operation class. Durations are simulated time,
/// like every latency in this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Median target.
    pub p50: Duration,
    /// 99th-percentile target.
    pub p99: Duration,
    /// 99.9th-percentile target — the fleet tail the paper's evaluations
    /// are judged by.
    pub p999: Duration,
}

/// Measured tails plus per-target verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloEval {
    /// Measured median.
    pub p50: Duration,
    /// Measured 99th percentile.
    pub p99: Duration,
    /// Measured 99.9th percentile.
    pub p999: Duration,
    /// Observations the tails were computed from.
    pub count: u64,
    /// Whether each measured tail is within its target.
    pub p50_ok: bool,
    /// p99 within target.
    pub p99_ok: bool,
    /// p999 within target.
    pub p999_ok: bool,
}

impl SloEval {
    /// Whether every target is met.
    pub fn ok(&self) -> bool {
        self.p50_ok && self.p99_ok && self.p999_ok
    }
}

impl fmt::Display for SloEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = |ok: bool| if ok { "ok" } else { "VIOLATED" };
        write!(
            f,
            "p50 {:.3}ms [{}]  p99 {:.3}ms [{}]  p999 {:.3}ms [{}]  ({} samples)",
            self.p50.as_secs_f64() * 1e3,
            mark(self.p50_ok),
            self.p99.as_secs_f64() * 1e3,
            mark(self.p99_ok),
            self.p999.as_secs_f64() * 1e3,
            mark(self.p999_ok),
            self.count,
        )
    }
}

impl SloSpec {
    /// Evaluates this spec against a sketch of latency observations in
    /// **nanoseconds** (the unit every recorder observes latencies in).
    /// An empty sketch trivially passes with zero tails.
    pub fn evaluate(&self, sketch: &QuantileSketch) -> SloEval {
        let at = |q: f64| Duration::from_nanos(sketch.quantile(q).unwrap_or(0));
        let (p50, p99, p999) = (at(0.5), at(0.99), at(0.999));
        SloEval {
            p50,
            p99,
            p999,
            count: sketch.count(),
            p50_ok: p50 <= self.p50,
            p99_ok: p99 <= self.p99,
            p999_ok: p999 <= self.p999,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(nanos: impl IntoIterator<Item = u64>) -> QuantileSketch {
        let mut s = QuantileSketch::new();
        for v in nanos {
            s.observe(v);
        }
        s
    }

    #[test]
    fn evaluates_pass_and_fail() {
        let sketch = sketch_of((1..=1000).map(|i| i * 1_000));
        let loose = SloSpec {
            p50: Duration::from_micros(600),
            p99: Duration::from_micros(1_000),
            p999: Duration::from_micros(1_010),
        };
        let eval = loose.evaluate(&sketch);
        assert!(eval.ok(), "{eval}");
        assert_eq!(eval.count, 1000);

        let tight = SloSpec {
            p50: Duration::from_micros(600),
            p99: Duration::from_micros(700),
            p999: Duration::from_micros(1_010),
        };
        let eval = tight.evaluate(&sketch);
        assert!(!eval.ok());
        assert!(eval.p50_ok && !eval.p99_ok && eval.p999_ok, "{eval}");
    }

    #[test]
    fn empty_sketch_passes_trivially() {
        let spec = SloSpec {
            p50: Duration::ZERO,
            p99: Duration::ZERO,
            p999: Duration::ZERO,
        };
        let eval = spec.evaluate(&QuantileSketch::new());
        assert!(eval.ok());
        assert_eq!(eval.count, 0);
    }
}
