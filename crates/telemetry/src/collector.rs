//! The recording [`Recorder`]: sim-time spans, instants, and metrics behind
//! one mutex.

use std::sync::Mutex;
use std::time::Duration;

use crate::metrics::MetricsRegistry;
use crate::recorder::{Recorder, SpanId};

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    /// Category (the emitting subsystem, e.g. `"simnet"`).
    pub cat: &'static str,
    /// Span name (e.g. `"transfer"`).
    pub name: String,
    /// Start, in simulated time.
    pub start: Duration,
    /// End, once closed.
    pub end: Option<Duration>,
    /// The span open when this one was opened, if any.
    pub parent: Option<u32>,
    /// Numeric arguments (`bytes`, `files`, ...), in attach order.
    pub args: Vec<(&'static str, u64)>,
}

/// One recorded instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantData {
    /// Category.
    pub cat: &'static str,
    /// Event name (e.g. `"fault.drop"`).
    pub name: String,
    /// When, in simulated time.
    pub at: Duration,
}

#[derive(Debug, Default)]
struct Inner {
    now: Duration,
    spans: Vec<SpanData>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<u32>,
    instants: Vec<InstantData>,
    metrics: MetricsRegistry,
}

/// Records spans, instants, and metrics stamped in simulated time.
///
/// The collector holds a **sim-time cursor**: instrumented code moves it
/// forward ([`Recorder::advance`] / [`Recorder::set_now`], which clamps —
/// the cursor never goes backward) as it charges simulated durations, and
/// everything stamped at "now" reads it. Since every stamp derives from the
/// deterministic cost models, two runs with the same seed produce identical
/// recordings and therefore byte-identical exports.
///
/// One `std::sync::Mutex` guards the whole recording; parallel sections
/// (e.g. `gear-par` workers) should compute first and record complete spans
/// afterward in submission order via [`Recorder::span_at`], which is what
/// keeps traces independent of worker count.
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<Inner>,
}

impl Collector {
    /// An empty collector with the cursor at zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Snapshot of all recorded spans, in recording order.
    pub fn spans(&self) -> Vec<SpanData> {
        self.lock().spans.clone()
    }

    /// Snapshot of all recorded instants, in recording order.
    pub fn instants(&self) -> Vec<InstantData> {
        self.lock().instants.clone()
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        self.lock().metrics.clone()
    }

    /// Structural validation of the recording:
    ///
    /// * every span is closed and ends no earlier than it starts;
    /// * spans form a well-nested forest under interval containment — for
    ///   any two spans, their intervals are disjoint or one contains the
    ///   other;
    /// * a child opened inside a parent lies within the parent's interval.
    ///
    /// Returns human-readable problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let inner = self.lock();
        let mut problems = Vec::new();
        for (i, span) in inner.spans.iter().enumerate() {
            let Some(end) = span.end else {
                problems.push(format!("span #{i} {}/{} never closed", span.cat, span.name));
                continue;
            };
            if end < span.start {
                problems.push(format!(
                    "span #{i} {}/{} ends before it starts ({:?} < {:?})",
                    span.cat, span.name, end, span.start
                ));
            }
            if let Some(parent) = span.parent {
                let p = &inner.spans[parent as usize];
                let p_end = p.end.unwrap_or(Duration::MAX);
                if span.start < p.start || end > p_end {
                    problems.push(format!(
                        "span #{i} {}/{} escapes its parent {}/{}",
                        span.cat, span.name, p.cat, p.name
                    ));
                }
            }
        }
        // Interval well-nestedness sweep: sort by (start, longest-first) and
        // keep a stack of enclosing end times.
        let mut order: Vec<usize> = (0..inner.spans.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&inner.spans[a], &inner.spans[b]);
            sa.start.cmp(&sb.start).then(sb.end.cmp(&sa.end)).then(a.cmp(&b))
        });
        let mut open: Vec<Duration> = Vec::new();
        for index in order {
            let span = &inner.spans[index];
            let Some(end) = span.end else { continue };
            while open.last().is_some_and(|&e| e <= span.start) {
                open.pop();
            }
            if let Some(&enclosing) = open.last() {
                if end > enclosing {
                    problems.push(format!(
                        "span {}/{} [{:?}..{:?}] straddles an enclosing span ending at {:?}",
                        span.cat, span.name, span.start, end, enclosing
                    ));
                }
            }
            open.push(end);
        }
        problems
    }
}

impl Recorder for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn now(&self) -> Duration {
        self.lock().now
    }

    fn set_now(&self, now: Duration) {
        let mut inner = self.lock();
        inner.now = inner.now.max(now);
    }

    fn advance(&self, delta: Duration) {
        self.lock().now += delta;
    }

    fn span_start(&self, cat: &'static str, name: &str) -> SpanId {
        let mut inner = self.lock();
        let id = inner.spans.len() as u32;
        let parent = inner.stack.last().copied();
        let start = inner.now;
        inner.spans.push(SpanData {
            cat,
            name: name.to_owned(),
            start,
            end: None,
            parent,
            args: Vec::new(),
        });
        inner.stack.push(id);
        SpanId(id)
    }

    fn span_end(&self, span: SpanId) {
        if !span.is_some() {
            return;
        }
        let mut inner = self.lock();
        let now = inner.now;
        if let Some(data) = inner.spans.get_mut(span.0 as usize) {
            if data.end.is_none() {
                data.end = Some(now.max(data.start));
            }
        }
        if let Some(pos) = inner.stack.iter().rposition(|&id| id == span.0) {
            inner.stack.truncate(pos);
        }
    }

    fn span_at(&self, cat: &'static str, name: &str, start: Duration, dur: Duration) -> SpanId {
        let mut inner = self.lock();
        let id = inner.spans.len() as u32;
        let parent = inner.stack.last().copied();
        inner.spans.push(SpanData {
            cat,
            name: name.to_owned(),
            start,
            end: Some(start + dur),
            parent,
            args: Vec::new(),
        });
        SpanId(id)
    }

    fn span_arg(&self, span: SpanId, key: &'static str, value: u64) {
        if !span.is_some() {
            return;
        }
        let mut inner = self.lock();
        if let Some(data) = inner.spans.get_mut(span.0 as usize) {
            data.args.push((key, value));
        }
    }

    fn instant(&self, cat: &'static str, name: &str) {
        let mut inner = self.lock();
        let at = inner.now;
        inner.instants.push(InstantData { cat, name: name.to_owned(), at });
    }

    fn count(&self, key: &str, delta: u64) {
        self.lock().metrics.add(key, delta);
    }

    fn gauge_set(&self, key: &str, value: u64) {
        self.lock().metrics.gauge_set(key, value);
    }

    fn gauge_max(&self, key: &str, value: u64) {
        self.lock().metrics.gauge_max(key, value);
    }

    fn observe(&self, key: &str, value: u64) {
        self.lock().metrics.observe(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn spans_nest_on_the_cursor() {
        let c = Collector::new();
        let outer = c.span_start("client", "deploy");
        c.advance(ms(1));
        let inner = c.span_start("client", "pull");
        c.advance(ms(2));
        c.span_end(inner);
        c.advance(ms(3));
        c.span_end(outer);

        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, ms(0));
        assert_eq!(spans[0].end, Some(ms(6)));
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].start, ms(1));
        assert_eq!(spans[1].end, Some(ms(3)));
        assert!(c.validate().is_empty(), "{:?}", c.validate());
    }

    #[test]
    fn set_now_never_rewinds() {
        let c = Collector::new();
        c.set_now(ms(10));
        c.set_now(ms(4));
        assert_eq!(c.now(), ms(10));
    }

    #[test]
    fn validate_catches_unclosed_and_straddling_spans() {
        let c = Collector::new();
        c.span_start("a", "open_forever");
        let problems = c.validate();
        assert!(problems.iter().any(|p| p.contains("never closed")));

        let c = Collector::new();
        c.span_at("a", "first", ms(0), ms(10));
        c.span_at("a", "straddler", ms(5), ms(10));
        let problems = c.validate();
        assert!(problems.iter().any(|p| p.contains("straddles")), "{problems:?}");
    }

    #[test]
    fn complete_spans_under_open_parent_are_contained() {
        let c = Collector::new();
        let parent = c.span_start("client", "window");
        c.span_at("simnet", "transfer", ms(0), ms(4));
        c.span_at("simnet", "transfer", ms(0), ms(7));
        c.set_now(ms(9));
        c.span_end(parent);
        assert!(c.validate().is_empty(), "{:?}", c.validate());
        assert_eq!(c.spans()[1].parent, Some(0));
    }
}
