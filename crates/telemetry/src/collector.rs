//! The recording [`Recorder`]: sim-time spans and instants in a bounded
//! ring ("flight recorder") behind one mutex, with counters, gauges,
//! histograms, and quantile sketches on striped locks off to the side.
//!
//! The split matters on the hot record path: bumping a counter or
//! observing a latency into a sketch never touches the span mutex — it
//! hashes the key onto one of [`STRIPES`] independent locks, and an
//! already-registered counter needs only a read lock plus one atomic add.
//! Only span and instant storage (which must preserve recording order)
//! stays behind the single mutex.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Duration;

use crate::context::{span_key, TraceContext, NO_PARENT_SPAN};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::recorder::{Recorder, SpanId};
use crate::sketch::QuantileSketch;

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    /// Category (the emitting subsystem, e.g. `"simnet"`).
    pub cat: &'static str,
    /// Span name (e.g. `"transfer"`).
    pub name: String,
    /// Start, in simulated time.
    pub start: Duration,
    /// End, once closed.
    pub end: Option<Duration>,
    /// Local id of the span open when this one was opened, if any. May
    /// name a span the flight recorder has since dropped.
    pub parent: Option<u32>,
    /// Numeric arguments (`bytes`, `files`, ...), in attach order.
    pub args: Vec<(&'static str, u64)>,
    /// Fleet-unique global key (`shard << 32 | local id`); doubles as the
    /// flow id when this span is a flow producer.
    pub key: u64,
    /// Whether this span caused an outbound request (emits a Chrome flow
    /// -start event with `id = key`).
    pub flow_out: bool,
    /// Flow id of the remote span that caused this one (emits a flow-end
    /// event), when a trace context was adopted.
    pub flow_in: Option<u64>,
}

/// One recorded instant event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantData {
    /// Category.
    pub cat: &'static str,
    /// Event name (e.g. `"fault.drop"`).
    pub name: String,
    /// When, in simulated time.
    pub at: Duration,
}

/// Number of independent metric stripes. Eight is plenty: the point is
/// that concurrent counter traffic on different keys almost never shares
/// a lock, not fine-grained per-key locking.
const STRIPES: usize = 8;

/// FNV-1a stripe selector — deterministic, so a key always lands on the
/// same stripe.
fn stripe_of(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % STRIPES as u64) as usize
}

/// Counters and gauges striped over read-write locks of atomic cells, and
/// histograms/sketches striped over plain mutexes. The hot path for an
/// existing counter key is a read lock + `fetch_add`; the write lock is
/// taken once per key, on first touch.
#[derive(Debug, Default)]
struct Stripes {
    counters: [RwLock<BTreeMap<String, AtomicU64>>; STRIPES],
    /// Gauges store the raw value; `gauge_max` uses `fetch_max`.
    gauges: [RwLock<BTreeMap<String, AtomicU64>>; STRIPES],
    histograms: [Mutex<BTreeMap<String, Histogram>>; STRIPES],
    sketches: [Mutex<BTreeMap<String, QuantileSketch>>; STRIPES],
}

/// Read-lock fast path over a striped atomic map; falls back to the write
/// lock to insert the key, then applies `op` under the read view again.
fn atomic_update(
    map: &RwLock<BTreeMap<String, AtomicU64>>,
    key: &str,
    init: u64,
    op: impl Fn(&AtomicU64),
) {
    {
        let read = map.read().unwrap_or_else(|e| e.into_inner());
        if let Some(cell) = read.get(key) {
            op(cell);
            return;
        }
    }
    let mut write = map.write().unwrap_or_else(|e| e.into_inner());
    match write.get(key) {
        Some(cell) => op(cell),
        None => {
            write.insert(key.to_owned(), AtomicU64::new(init));
        }
    }
}

impl Stripes {
    fn count(&self, key: &str, delta: u64) {
        atomic_update(&self.counters[stripe_of(key)], key, delta, |cell| {
            cell.fetch_add(delta, Ordering::Relaxed);
        });
    }

    fn gauge_set(&self, key: &str, value: u64) {
        atomic_update(&self.gauges[stripe_of(key)], key, value, |cell| {
            cell.store(value, Ordering::Relaxed);
        });
    }

    fn gauge_max(&self, key: &str, value: u64) {
        atomic_update(&self.gauges[stripe_of(key)], key, value, |cell| {
            cell.fetch_max(value, Ordering::Relaxed);
        });
    }

    fn observe(&self, key: &str, value: u64) {
        let mut map = self.histograms[stripe_of(key)].lock().unwrap_or_else(|e| e.into_inner());
        if let Some(h) = map.get_mut(key) {
            h.observe(value);
        } else {
            let mut h = Histogram::byte_sized();
            h.observe(value);
            map.insert(key.to_owned(), h);
        }
    }

    fn sketch(&self, key: &str, value: u64) {
        let mut map = self.sketches[stripe_of(key)].lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key.to_owned()).or_default().observe(value);
    }

    /// Discards every metric in every stripe.
    fn clear(&self) {
        for stripe in &self.counters {
            stripe.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
        for stripe in &self.gauges {
            stripe.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
        for stripe in &self.histograms {
            stripe.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        for stripe in &self.sketches {
            stripe.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Folds every stripe into one key-sorted registry snapshot.
    fn snapshot(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        for stripe in &self.counters {
            let read = stripe.read().unwrap_or_else(|e| e.into_inner());
            for (key, cell) in read.iter() {
                registry.add(key, cell.load(Ordering::Relaxed));
            }
        }
        for stripe in &self.gauges {
            let read = stripe.read().unwrap_or_else(|e| e.into_inner());
            for (key, cell) in read.iter() {
                registry.gauge_set(key, cell.load(Ordering::Relaxed));
            }
        }
        for stripe in &self.histograms {
            let map = stripe.lock().unwrap_or_else(|e| e.into_inner());
            for (key, histogram) in map.iter() {
                registry.set_histogram(key, histogram.clone());
            }
        }
        for stripe in &self.sketches {
            let map = stripe.lock().unwrap_or_else(|e| e.into_inner());
            for (key, sketch) in map.iter() {
                registry.set_sketch(key, sketch.clone());
            }
        }
        registry
    }
}

#[derive(Debug, Default)]
struct Inner {
    now: Duration,
    /// Retained spans; local ids are monotonic, `base` is the id of the
    /// front element (ids below it were dropped by the flight recorder).
    spans: VecDeque<SpanData>,
    /// Local id the front of `spans` carries.
    base: u32,
    /// Next local id to assign.
    next: u32,
    /// Ids of currently open spans, innermost last.
    stack: Vec<u32>,
    instants: VecDeque<InstantData>,
    dropped_spans: u64,
    dropped_instants: u64,
    /// Active trace id (0 = none); stamped onto outbound contexts.
    trace_id: u64,
}

impl Inner {
    fn span_mut(&mut self, id: u32) -> Option<&mut SpanData> {
        let index = id.checked_sub(self.base)? as usize;
        self.spans.get_mut(index)
    }

    fn push_span(&mut self, data: SpanData, cap: usize) -> u32 {
        let id = self.next;
        self.next = self.next.wrapping_add(1);
        if self.spans.len() == cap {
            self.spans.pop_front();
            self.base = self.base.wrapping_add(1);
            self.dropped_spans += 1;
        }
        self.spans.push_back(data);
        id
    }
}

/// Records spans, instants, and metrics stamped in simulated time.
///
/// The collector holds a **sim-time cursor**: instrumented code moves it
/// forward ([`Recorder::advance`] / [`Recorder::set_now`], which clamps —
/// the cursor never goes backward) as it charges simulated durations, and
/// everything stamped at "now" reads it. Since every stamp derives from the
/// deterministic cost models, two runs with the same seed produce identical
/// recordings and therefore byte-identical exports.
///
/// Span and instant storage sits behind one `std::sync::Mutex` (recording
/// order is the contract); metrics live on striped locks and never contend
/// with it. Parallel sections (e.g. `gear-par` workers) should compute
/// first and record complete spans afterward in submission order via
/// [`Recorder::span_at`], which is what keeps traces independent of worker
/// count.
///
/// A collector built with [`Collector::with_span_capacity`] is a **flight
/// recorder**: it retains only the last N spans and instants, counting
/// what it sheds ([`Collector::dropped_spans`]) — per-node recorders in a
/// fleet are bounded this way so collector memory never scales with
/// deployment count.
#[derive(Debug)]
pub struct Collector {
    inner: Mutex<Inner>,
    stripes: Stripes,
    /// Maximum retained spans (and, separately, instants).
    cap: usize,
    /// Shard id baked into every span's global key; shard `s` exports on
    /// Chrome-trace tid `s + 1`.
    shard: u32,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// An unbounded collector (shard 0) with the cursor at zero.
    pub fn new() -> Self {
        Self::with_shard_and_capacity(0, usize::MAX)
    }

    /// A flight recorder: retains only the last `cap` spans (and the last
    /// `cap` instants), dropping the oldest beyond that.
    pub fn with_span_capacity(cap: usize) -> Self {
        Self::with_shard_and_capacity(0, cap)
    }

    /// A bounded collector recording as fleet shard `shard`.
    pub fn with_shard_and_capacity(shard: u32, cap: usize) -> Self {
        Collector {
            inner: Mutex::new(Inner::default()),
            stripes: Stripes::default(),
            cap: cap.max(1),
            shard,
        }
    }

    /// This collector's fleet shard id.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Maximum spans the flight recorder retains (`usize::MAX` when
    /// unbounded).
    pub fn span_capacity(&self) -> usize {
        self.cap
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Wipes the recording: spans, instants, drop counters, metrics, the
    /// open-span stack, and the trace id all return to the freshly
    /// constructed state. The shard id, capacity, and sim-time cursor
    /// survive — a reset node keeps its identity and its place on the
    /// simulated timeline, it just forgets what it recorded.
    ///
    /// This is the node-replacement path: when a cluster resets or
    /// upgrades a node, the node's telemetry shard must not leak
    /// pre-upgrade samples into post-upgrade tail distributions.
    pub fn reset(&self) {
        {
            let mut inner = self.lock();
            let now = inner.now;
            *inner = Inner::default();
            inner.now = now;
        }
        self.stripes.clear();
    }

    /// Snapshot of all retained spans, in recording order.
    pub fn spans(&self) -> Vec<SpanData> {
        self.lock().spans.iter().cloned().collect()
    }

    /// Snapshot of all retained instants, in recording order.
    pub fn instants(&self) -> Vec<InstantData> {
        self.lock().instants.iter().cloned().collect()
    }

    /// Snapshot of the metrics registry (folded from the stripes, keys
    /// sorted).
    pub fn metrics(&self) -> MetricsRegistry {
        self.stripes.snapshot()
    }

    /// Spans shed by the flight recorder so far.
    pub fn dropped_spans(&self) -> u64 {
        self.lock().dropped_spans
    }

    /// Instants shed by the flight recorder so far.
    pub fn dropped_instants(&self) -> u64 {
        self.lock().dropped_instants
    }

    /// Approximate resident bytes of retained span and instant storage —
    /// the quantity the fleet experiments gate. Bounded by construction
    /// when a span capacity is set.
    pub fn span_bytes(&self) -> u64 {
        let inner = self.lock();
        let spans: u64 = inner
            .spans
            .iter()
            .map(|s| std::mem::size_of::<SpanData>() as u64 + s.name.len() as u64
                + 16 * s.args.len() as u64)
            .sum();
        let instants: u64 = inner
            .instants
            .iter()
            .map(|i| std::mem::size_of::<InstantData>() as u64 + i.name.len() as u64)
            .sum();
        spans + instants
    }

    /// Structural validation of the recording:
    ///
    /// * every span is closed and ends no earlier than it starts;
    /// * spans form a well-nested forest under interval containment — for
    ///   any two spans, their intervals are disjoint or one contains the
    ///   other;
    /// * a child opened inside a retained parent lies within the parent's
    ///   interval (a parent the flight recorder dropped is skipped).
    ///
    /// Returns human-readable problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let inner = self.lock();
        let mut problems = Vec::new();
        for (i, span) in inner.spans.iter().enumerate() {
            let Some(end) = span.end else {
                problems.push(format!("span #{i} {}/{} never closed", span.cat, span.name));
                continue;
            };
            if end < span.start {
                problems.push(format!(
                    "span #{i} {}/{} ends before it starts ({:?} < {:?})",
                    span.cat, span.name, end, span.start
                ));
            }
            if let Some(parent) = span.parent {
                let Some(index) = parent.checked_sub(inner.base).map(|x| x as usize) else {
                    continue; // Parent dropped by the flight recorder.
                };
                let Some(p) = inner.spans.get(index) else { continue };
                let p_end = p.end.unwrap_or(Duration::MAX);
                if span.start < p.start || end > p_end {
                    problems.push(format!(
                        "span #{i} {}/{} escapes its parent {}/{}",
                        span.cat, span.name, p.cat, p.name
                    ));
                }
            }
        }
        // Interval well-nestedness sweep: sort by (start, longest-first) and
        // keep a stack of enclosing end times.
        let mut order: Vec<usize> = (0..inner.spans.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&inner.spans[a], &inner.spans[b]);
            sa.start.cmp(&sb.start).then(sb.end.cmp(&sa.end)).then(a.cmp(&b))
        });
        let mut open: Vec<Duration> = Vec::new();
        for index in order {
            let span = &inner.spans[index];
            let Some(end) = span.end else { continue };
            while open.last().is_some_and(|&e| e <= span.start) {
                open.pop();
            }
            if let Some(&enclosing) = open.last() {
                if end > enclosing {
                    problems.push(format!(
                        "span {}/{} [{:?}..{:?}] straddles an enclosing span ending at {:?}",
                        span.cat, span.name, span.start, end, enclosing
                    ));
                }
            }
            open.push(end);
        }
        problems
    }
}

impl Recorder for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn now(&self) -> Duration {
        self.lock().now
    }

    fn set_now(&self, now: Duration) {
        let mut inner = self.lock();
        inner.now = inner.now.max(now);
    }

    fn advance(&self, delta: Duration) {
        self.lock().now += delta;
    }

    fn span_start(&self, cat: &'static str, name: &str) -> SpanId {
        let mut inner = self.lock();
        let parent = inner.stack.last().copied();
        let start = inner.now;
        let key = span_key(self.shard, inner.next);
        let id = inner.push_span(
            SpanData {
                cat,
                name: name.to_owned(),
                start,
                end: None,
                parent,
                args: Vec::new(),
                key,
                flow_out: false,
                flow_in: None,
            },
            self.cap,
        );
        inner.stack.push(id);
        SpanId(id)
    }

    fn span_end(&self, span: SpanId) {
        if !span.is_some() {
            return;
        }
        let mut inner = self.lock();
        let now = inner.now;
        if let Some(data) = inner.span_mut(span.0) {
            if data.end.is_none() {
                data.end = Some(now.max(data.start));
            }
        }
        if let Some(pos) = inner.stack.iter().rposition(|&id| id == span.0) {
            inner.stack.truncate(pos);
        }
    }

    fn span_at(&self, cat: &'static str, name: &str, start: Duration, dur: Duration) -> SpanId {
        let mut inner = self.lock();
        let parent = inner.stack.last().copied();
        let key = span_key(self.shard, inner.next);
        let id = inner.push_span(
            SpanData {
                cat,
                name: name.to_owned(),
                start,
                end: Some(start + dur),
                parent,
                args: Vec::new(),
                key,
                flow_out: false,
                flow_in: None,
            },
            self.cap,
        );
        SpanId(id)
    }

    fn span_arg(&self, span: SpanId, key: &'static str, value: u64) {
        if !span.is_some() {
            return;
        }
        let mut inner = self.lock();
        if let Some(data) = inner.span_mut(span.0) {
            data.args.push((key, value));
        }
    }

    fn instant(&self, cat: &'static str, name: &str) {
        let mut inner = self.lock();
        let at = inner.now;
        if inner.instants.len() == self.cap {
            inner.instants.pop_front();
            inner.dropped_instants += 1;
        }
        inner.instants.push_back(InstantData { cat, name: name.to_owned(), at });
    }

    fn count(&self, key: &str, delta: u64) {
        self.stripes.count(key, delta);
    }

    fn gauge_set(&self, key: &str, value: u64) {
        self.stripes.gauge_set(key, value);
    }

    fn gauge_max(&self, key: &str, value: u64) {
        self.stripes.gauge_max(key, value);
    }

    fn observe(&self, key: &str, value: u64) {
        self.stripes.observe(key, value);
    }

    fn sketch(&self, key: &str, value: u64) {
        self.stripes.sketch(key, value);
    }

    fn set_trace_id(&self, trace_id: u64) {
        self.lock().trace_id = trace_id;
    }

    fn outbound_context(&self) -> Option<TraceContext> {
        let mut inner = self.lock();
        if inner.trace_id == 0 {
            return None;
        }
        let trace_id = inner.trace_id;
        let parent_span = match inner.stack.last().copied() {
            Some(id) => {
                // The innermost open span caused this request: mark it as
                // a flow producer so the exporter emits the flow start.
                if let Some(data) = inner.span_mut(id) {
                    data.flow_out = true;
                    data.key
                } else {
                    NO_PARENT_SPAN
                }
            }
            None => NO_PARENT_SPAN,
        };
        Some(TraceContext { trace_id, parent_span })
    }

    fn adopt_context(&self, span: SpanId, ctx: TraceContext) {
        if !span.is_some() {
            return;
        }
        let mut inner = self.lock();
        if let Some(data) = inner.span_mut(span.0) {
            if ctx.parent_span != NO_PARENT_SPAN {
                data.flow_in = Some(ctx.parent_span);
            }
            data.args.push(("trace_id", ctx.trace_id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn spans_nest_on_the_cursor() {
        let c = Collector::new();
        let outer = c.span_start("client", "deploy");
        c.advance(ms(1));
        let inner = c.span_start("client", "pull");
        c.advance(ms(2));
        c.span_end(inner);
        c.advance(ms(3));
        c.span_end(outer);

        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, ms(0));
        assert_eq!(spans[0].end, Some(ms(6)));
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].start, ms(1));
        assert_eq!(spans[1].end, Some(ms(3)));
        assert!(c.validate().is_empty(), "{:?}", c.validate());
    }

    #[test]
    fn set_now_never_rewinds() {
        let c = Collector::new();
        c.set_now(ms(10));
        c.set_now(ms(4));
        assert_eq!(c.now(), ms(10));
    }

    #[test]
    fn reset_forgets_the_recording_but_not_the_timeline() {
        let c = Collector::with_shard_and_capacity(3, 2);
        for _ in 0..5 {
            let span = c.span_start("p2p", "deploy");
            c.advance(ms(1));
            c.span_end(span);
            c.instant("p2p", "tick");
        }
        c.count("p2p.deploys", 5);
        c.gauge_set("p2p.registry_egress", 100);
        c.observe("p2p.bytes", 42);
        c.sketch("p2p.deploy_nanos", 1_000_000);
        c.set_trace_id(9);
        assert!(c.dropped_spans() > 0);

        c.reset();
        assert!(c.spans().is_empty());
        assert!(c.instants().is_empty());
        assert_eq!(c.dropped_spans(), 0);
        assert_eq!(c.dropped_instants(), 0);
        assert!(c.metrics().is_empty(), "metrics survived reset");
        assert_eq!(c.shard(), 3, "identity survives");
        assert_eq!(c.span_capacity(), 2, "capacity survives");
        assert_eq!(c.now(), ms(5), "the sim-time cursor survives");

        // The collector keeps recording cleanly after the wipe.
        let span = c.span_start("p2p", "deploy");
        c.advance(ms(2));
        c.span_end(span);
        assert_eq!(c.spans().len(), 1);
        assert_eq!(c.spans()[0].start, ms(5));
        assert!(c.validate().is_empty(), "{:?}", c.validate());
    }

    #[test]
    fn validate_catches_unclosed_and_straddling_spans() {
        let c = Collector::new();
        c.span_start("a", "open_forever");
        let problems = c.validate();
        assert!(problems.iter().any(|p| p.contains("never closed")));

        let c = Collector::new();
        c.span_at("a", "first", ms(0), ms(10));
        c.span_at("a", "straddler", ms(5), ms(10));
        let problems = c.validate();
        assert!(problems.iter().any(|p| p.contains("straddles")), "{problems:?}");
    }

    #[test]
    fn complete_spans_under_open_parent_are_contained() {
        let c = Collector::new();
        let parent = c.span_start("client", "window");
        c.span_at("simnet", "transfer", ms(0), ms(4));
        c.span_at("simnet", "transfer", ms(0), ms(7));
        c.set_now(ms(9));
        c.span_end(parent);
        assert!(c.validate().is_empty(), "{:?}", c.validate());
        assert_eq!(c.spans()[1].parent, Some(0));
    }

    #[test]
    fn flight_recorder_keeps_the_last_n() {
        let c = Collector::with_span_capacity(4);
        for i in 0..10u64 {
            let span = c.span_at("sim", &format!("op{i}"), ms(i), ms(1));
            c.span_arg(span, "i", i);
            c.instant("sim", "tick");
        }
        let spans = c.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "op6");
        assert_eq!(spans[3].name, "op9");
        // Args attach to retained spans by monotonic id even after drops.
        assert_eq!(spans[3].args, vec![("i", 9)]);
        assert_eq!(c.dropped_spans(), 6);
        assert_eq!(c.instants().len(), 4);
        assert_eq!(c.dropped_instants(), 6);
        assert!(c.span_bytes() > 0);
    }

    #[test]
    fn counters_move_without_the_span_mutex() {
        // Hold the span mutex on this thread; counters must still land.
        let c = Collector::new();
        let _guard = c.inner.lock().expect("unpoisoned");
        c.count("cache.hits", 2);
        c.gauge_max("peak", 9);
        c.gauge_max("peak", 4);
        c.observe("bytes", 2048);
        c.sketch("lat", 1_000);
        drop(_guard);
        let m = c.metrics();
        assert_eq!(m.counter("cache.hits"), 2);
        assert_eq!(m.gauge("peak"), Some(9));
        assert_eq!(m.histogram("bytes").expect("observed").count(), 1);
        assert_eq!(m.sketch("lat").expect("sketched").count(), 1);
    }

    #[test]
    fn outbound_context_marks_the_open_span() {
        let c = Collector::with_shard_and_capacity(2, usize::MAX);
        assert_eq!(c.outbound_context(), None, "no trace id yet");
        c.set_trace_id(0xabc);
        let span = c.span_start("client", "deploy");
        let ctx = c.outbound_context().expect("trace active");
        assert_eq!(ctx.trace_id, 0xabc);
        assert_eq!(ctx.parent_span, span_key(2, 0));
        c.span_end(span);
        let spans = c.spans();
        assert!(spans[0].flow_out);

        // Consumer side: adopting binds the flow and stamps the trace arg.
        let server = c.span_at("registry", "serve", ms(0), ms(0));
        c.adopt_context(server, ctx);
        let spans = c.spans();
        assert_eq!(spans[1].flow_in, Some(span_key(2, 0)));
        assert!(spans[1].args.contains(&(("trace_id"), 0xabc)));
    }
}
