//! The [`Recorder`] trait instrumented crates talk to, its zero-cost no-op
//! implementation, and the cheap [`Telemetry`] handle they hold.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::collector::Collector;
use crate::context::TraceContext;

/// Identifies a span inside one recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub(crate) u32);

impl SpanId {
    /// The id returned by disabled recorders; every span operation on it is
    /// a no-op.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// Whether this id refers to a real span.
    pub fn is_some(self) -> bool {
        self != SpanId::NONE
    }
}

/// Sink for spans, instant events, and metrics, stamped in simulated time.
///
/// All methods take `&self` (implementations use interior mutability) so a
/// recorder can be shared across crates and threads behind one `Arc`. The
/// **sim-time cursor** is the recorder's notion of "now": instrumented code
/// advances it as it charges simulated durations, and open-span starts,
/// span ends, and instants are stamped at the cursor. Pre-priced sections
/// (parallel batches, replayed timelines) record *complete* spans at
/// explicit times with [`Recorder::span_at`] instead of touching the
/// cursor.
///
/// Every method has a no-op default, which is the entire implementation of
/// [`NoopRecorder`].
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything (false = all methods no-op).
    fn enabled(&self) -> bool {
        false
    }

    /// The sim-time cursor.
    fn now(&self) -> Duration {
        Duration::ZERO
    }

    /// Moves the sim-time cursor to `now` (a sync point after a pre-priced
    /// section; the cursor also never moves backward — see
    /// [`Collector`](crate::Collector)).
    fn set_now(&self, _now: Duration) {}

    /// Advances the sim-time cursor by `delta`.
    fn advance(&self, _delta: Duration) {}

    /// Opens a span starting at the cursor; close it with
    /// [`Recorder::span_end`].
    fn span_start(&self, _cat: &'static str, _name: &str) -> SpanId {
        SpanId::NONE
    }

    /// Closes `span` at the cursor.
    fn span_end(&self, _span: SpanId) {}

    /// Records a complete span at an explicit start and duration (used for
    /// pre-priced work whose cost was computed before recording).
    fn span_at(&self, _cat: &'static str, _name: &str, _start: Duration, _dur: Duration) -> SpanId {
        SpanId::NONE
    }

    /// Attaches a numeric argument to `span`.
    fn span_arg(&self, _span: SpanId, _key: &'static str, _value: u64) {}

    /// Records an instant event at the cursor.
    fn instant(&self, _cat: &'static str, _name: &str) {}

    /// Adds `delta` to counter `key`.
    fn count(&self, _key: &str, _delta: u64) {}

    /// Sets gauge `key` to `value`.
    fn gauge_set(&self, _key: &str, _value: u64) {}

    /// Raises gauge `key` to `value` if larger.
    fn gauge_max(&self, _key: &str, _value: u64) {}

    /// Records `value` into histogram `key`.
    fn observe(&self, _key: &str, _value: u64) {}

    /// Records `value` into quantile sketch `key` (latencies in
    /// nanoseconds, by convention).
    fn sketch(&self, _key: &str, _value: u64) {}

    /// Activates trace `trace_id` on this recorder: subsequent spans belong
    /// to it and [`Recorder::outbound_context`] stamps it on the wire.
    /// Id `0` means "no trace".
    fn set_trace_id(&self, _trace_id: u64) {}

    /// The context to attach to an outbound request: the active trace id
    /// plus the global key of the innermost open span, which is marked as a
    /// flow producer (the exporter emits its flow-start event). `None` when
    /// no trace is active.
    fn outbound_context(&self) -> Option<TraceContext> {
        None
    }

    /// Adopts a context received off the wire onto `span`: binds the flow
    /// (the exporter emits a flow-end from the remote parent into `span`)
    /// and stamps the trace id as a span argument.
    fn adopt_context(&self, _span: SpanId, _ctx: TraceContext) {}
}

/// A recorder that keeps nothing; every method is the trait's no-op default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// The handle instrumented crates store: a shared [`Recorder`] plus a cached
/// `enabled` flag.
///
/// The flag is copied out of the recorder at construction, so the disabled
/// path costs one inline branch — no virtual call, which is what keeps
/// always-on instrumentation free on hot paths (union lookups, cache
/// probes). Cloning shares the recorder.
#[derive(Clone)]
pub struct Telemetry {
    recorder: Arc<dyn Recorder>,
    enabled: bool,
}

impl Telemetry {
    /// A disabled handle (the default everywhere).
    pub fn noop() -> Self {
        Telemetry { recorder: Arc::new(NoopRecorder), enabled: false }
    }

    /// Wraps an arbitrary recorder, caching its `enabled` flag.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        let enabled = recorder.enabled();
        Telemetry { recorder, enabled }
    }

    /// A fresh [`Collector`] and the handle that feeds it.
    pub fn collector() -> (Self, Arc<Collector>) {
        let collector = Arc::new(Collector::new());
        (Self::new(collector.clone()), collector)
    }

    /// Whether recording is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The underlying recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// The sim-time cursor ([`Recorder::now`]).
    pub fn now(&self) -> Duration {
        if self.enabled {
            self.recorder.now()
        } else {
            Duration::ZERO
        }
    }

    /// Moves the cursor forward to `now` ([`Recorder::set_now`]).
    #[inline]
    pub fn set_now(&self, now: Duration) {
        if self.enabled {
            self.recorder.set_now(now);
        }
    }

    /// Advances the cursor ([`Recorder::advance`]).
    #[inline]
    pub fn advance(&self, delta: Duration) {
        if self.enabled {
            self.recorder.advance(delta);
        }
    }

    /// Opens a span at the cursor ([`Recorder::span_start`]).
    #[inline]
    pub fn span_start(&self, cat: &'static str, name: &str) -> SpanId {
        if self.enabled {
            self.recorder.span_start(cat, name)
        } else {
            SpanId::NONE
        }
    }

    /// Closes a span at the cursor ([`Recorder::span_end`]).
    #[inline]
    pub fn span_end(&self, span: SpanId) {
        if self.enabled {
            self.recorder.span_end(span);
        }
    }

    /// Records a complete span ([`Recorder::span_at`]).
    #[inline]
    pub fn span_at(&self, cat: &'static str, name: &str, start: Duration, dur: Duration) -> SpanId {
        if self.enabled {
            self.recorder.span_at(cat, name, start, dur)
        } else {
            SpanId::NONE
        }
    }

    /// Attaches an argument to a span ([`Recorder::span_arg`]).
    #[inline]
    pub fn span_arg(&self, span: SpanId, key: &'static str, value: u64) {
        if self.enabled {
            self.recorder.span_arg(span, key, value);
        }
    }

    /// Records an instant event at the cursor ([`Recorder::instant`]).
    #[inline]
    pub fn instant(&self, cat: &'static str, name: &str) {
        if self.enabled {
            self.recorder.instant(cat, name);
        }
    }

    /// Adds to a counter ([`Recorder::count`]).
    #[inline]
    pub fn count(&self, key: &str, delta: u64) {
        if self.enabled {
            self.recorder.count(key, delta);
        }
    }

    /// Sets a gauge ([`Recorder::gauge_set`]).
    #[inline]
    pub fn gauge_set(&self, key: &str, value: u64) {
        if self.enabled {
            self.recorder.gauge_set(key, value);
        }
    }

    /// Raises a gauge high-water mark ([`Recorder::gauge_max`]).
    #[inline]
    pub fn gauge_max(&self, key: &str, value: u64) {
        if self.enabled {
            self.recorder.gauge_max(key, value);
        }
    }

    /// Records a histogram observation ([`Recorder::observe`]).
    #[inline]
    pub fn observe(&self, key: &str, value: u64) {
        if self.enabled {
            self.recorder.observe(key, value);
        }
    }

    /// Records a quantile-sketch observation ([`Recorder::sketch`]).
    #[inline]
    pub fn sketch(&self, key: &str, value: u64) {
        if self.enabled {
            self.recorder.sketch(key, value);
        }
    }

    /// Activates a trace ([`Recorder::set_trace_id`]).
    #[inline]
    pub fn set_trace_id(&self, trace_id: u64) {
        if self.enabled {
            self.recorder.set_trace_id(trace_id);
        }
    }

    /// Context for an outbound request ([`Recorder::outbound_context`]).
    #[inline]
    pub fn outbound_context(&self) -> Option<TraceContext> {
        if self.enabled {
            self.recorder.outbound_context()
        } else {
            None
        }
    }

    /// Adopts a received context onto a span
    /// ([`Recorder::adopt_context`]).
    #[inline]
    pub fn adopt_context(&self, span: SpanId, ctx: TraceContext) {
        if self.enabled {
            self.recorder.adopt_context(span, ctx);
        }
    }

    /// The one idiom every replay path uses: record a complete, pre-priced
    /// span with its arguments and drag the sim-time cursor to its end
    /// (never backward). Collapses the hand-rolled
    /// "span_at + span_arg… + set_now" blocks in gear-client, gear-p2p,
    /// and gear-registry into a single call.
    pub fn scoped_span(
        &self,
        cat: &'static str,
        name: &str,
        start: Duration,
        dur: Duration,
        args: &[(&'static str, u64)],
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let span = self.recorder.span_at(cat, name, start, dur);
        for &(key, value) in args {
            self.recorder.span_arg(span, key, value);
        }
        self.recorder.set_now(start + dur);
        span
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::noop()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_is_inert() {
        let t = Telemetry::noop();
        assert!(!t.enabled());
        let span = t.span_start("cat", "name");
        assert!(!span.is_some());
        t.count("k", 1);
        t.advance(Duration::from_secs(1));
        assert_eq!(t.now(), Duration::ZERO);
    }

    #[test]
    fn collector_handle_is_enabled() {
        let (t, collector) = Telemetry::collector();
        assert!(t.enabled());
        t.count("k", 2);
        assert_eq!(collector.metrics().counter("k"), 2);
    }

    #[test]
    fn scoped_span_records_args_and_drags_the_cursor() {
        let (t, collector) = Telemetry::collector();
        let base = Duration::from_millis(5);
        t.scoped_span("client", "pull", base, Duration::from_millis(3), &[("bytes", 42)]);
        // A shorter span later must not rewind the cursor.
        t.scoped_span("client", "warm", base, Duration::from_millis(1), &[]);
        assert_eq!(t.now(), Duration::from_millis(8));
        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].args, vec![("bytes", 42)]);
        assert_eq!(spans[0].end, Some(Duration::from_millis(8)));
    }
}
