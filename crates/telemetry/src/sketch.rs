//! Mergeable quantile sketches with a fixed relative-error bound.
//!
//! A [`QuantileSketch`] is a DDSketch-style log-linear sketch over `u64`
//! observations: bucket boundaries grow geometrically, so the bucket a
//! value lands in — and therefore the bucket's representative value —
//! is within a fixed *relative* error of the value itself. Unlike the
//! fixed-bound [`Histogram`](crate::Histogram) (which answers "how many
//! fell under 1 MiB"), a sketch answers rank queries: p50, p99, p999.
//!
//! Determinism is the design constraint. Bucket indices are computed with
//! integer arithmetic only (`ilog2` plus shifts — no `f64::ln`, whose
//! libm implementation varies across platforms), so two observations of
//! the same value land in the same bucket on every machine, and merging
//! is exact bucket-count addition: associative, commutative, and lossless
//! at sketch granularity. A merged sketch is bit-identical to the sketch
//! of the concatenated stream, which is what lets per-node sketches fold
//! hierarchically (node → site → cloud) in any grouping.
//!
//! # Bucket layout
//!
//! For a value `v ≥ 1` with `e = ilog2(v)` and `k` sub-bucket bits:
//!
//! * `e ≤ k`: the bucket index is exact — every integer below `2^(k+1)`
//!   gets its own bucket and queries return it exactly;
//! * `e > k`: the octave `[2^e, 2^(e+1))` is split into `2^k` equal
//!   buckets of width `2^(e-k)`; the representative is the bucket
//!   midpoint, so the error is at most half a bucket width:
//!   `|rep − v| ≤ 2^(e-k-1) ≤ v / 2^(k+1)`.
//!
//! Zero has a dedicated slot. With the default `k = 6` the guaranteed
//! relative error is `1/128 < 0.8 %` and a sketch never exceeds
//! `64 · 2^k + 1` buckets regardless of stream length — the bounded-memory
//! property the fleet collector's peak-memory gate relies on.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Default sub-bucket bits: 2^6 buckets per octave, relative error ≤ 1/128.
pub const DEFAULT_SUB_BUCKET_BITS: u32 = 6;

/// Two sketches with different sub-bucket resolution cannot be merged
/// losslessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchMergeError {
    /// Sub-bucket bits of the receiving sketch.
    pub ours: u32,
    /// Sub-bucket bits of the sketch being merged in.
    pub theirs: u32,
}

impl fmt::Display for SketchMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sketch resolutions differ: {} vs {} sub-bucket bits — merge would lose precision",
            self.ours, self.theirs
        )
    }
}

impl Error for SketchMergeError {}

/// A deterministic mergeable quantile sketch over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    /// Sub-bucket bits `k`: each octave splits into `2^k` buckets.
    k: u32,
    /// Sparse bucket counts keyed by log-linear index, in index order.
    buckets: BTreeMap<u32, u64>,
    /// Observations of exactly zero (no logarithmic bucket exists for 0).
    zero: u64,
    count: u64,
    /// Saturating sum of observations.
    sum: u64,
    /// `u64::MAX` while empty (identity for `min`).
    min: u64,
    /// `0` while empty (identity for `max`).
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch at the default resolution
    /// ([`DEFAULT_SUB_BUCKET_BITS`]).
    pub fn new() -> Self {
        Self::with_sub_bucket_bits(DEFAULT_SUB_BUCKET_BITS)
    }

    /// An empty sketch with `2^k` buckets per octave. `k` is clamped to
    /// `1..=16` (beyond 16 the index would not fit the packed `u32`).
    pub fn with_sub_bucket_bits(k: u32) -> Self {
        let k = k.clamp(1, 16);
        QuantileSketch {
            k,
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The sub-bucket resolution this sketch was built with.
    pub fn sub_bucket_bits(&self) -> u32 {
        self.k
    }

    /// The guaranteed bound on `|answer − true value| / true value` for
    /// any rank query: `1 / 2^(k+1)`.
    pub fn relative_error_bound(&self) -> f64 {
        1.0 / (1u64 << (self.k + 1)) as f64
    }

    /// The log-linear bucket index of `v ≥ 1`.
    fn index(&self, v: u64) -> u32 {
        debug_assert!(v >= 1);
        let e = v.ilog2();
        let base = 1u64 << e;
        let m = if e <= self.k {
            // Small octaves are exact: every integer has its own bucket.
            ((v - base) << (self.k - e)) as u32
        } else {
            ((v - base) >> (e - self.k)) as u32
        };
        (e << self.k) | m
    }

    /// The deterministic representative value of bucket `index`: the exact
    /// value for small octaves, the bucket midpoint above them.
    fn representative(&self, index: u32) -> u64 {
        let e = index >> self.k;
        let m = u64::from(index & ((1 << self.k) - 1));
        let base = 1u64 << e;
        if e <= self.k {
            base + (m >> (self.k - e))
        } else {
            let step = 1u64 << (e - self.k);
            base + (m << (e - self.k)) + (step >> 1)
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        if value == 0 {
            self.zero += 1;
        } else {
            *self.buckets.entry(self.index(value)).or_insert(0) += 1;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges `other` into `self` by exact bucket-count addition.
    ///
    /// # Errors
    ///
    /// [`SketchMergeError`] when the resolutions differ; `self` is
    /// untouched in that case.
    pub fn merge(&mut self, other: &QuantileSketch) -> Result<(), SketchMergeError> {
        if self.k != other.k {
            return Err(SketchMergeError { ours: self.k, theirs: other.k });
        }
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// The value at quantile `q ∈ [0, 1]`, within the relative-error
    /// bound; `None` while empty. `q = 0` answers at rank 1 and `q = 1`
    /// at rank `count`; the mapping is pure IEEE arithmetic (no libm), so
    /// it is deterministic across platforms.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        self.value_at_rank(rank)
    }

    /// The representative value at 1-based `rank` in sorted order;
    /// `None` when the sketch holds fewer than `rank` observations.
    pub fn value_at_rank(&self, rank: u64) -> Option<u64> {
        if rank == 0 || rank > self.count {
            return None;
        }
        let mut seen = self.zero;
        if rank <= seen {
            return Some(0);
        }
        for (&index, &n) in &self.buckets {
            seen += n;
            if rank <= seen {
                return Some(self.representative(index));
            }
        }
        None
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` while empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` while empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Number of occupied buckets (including the zero slot when used).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() + usize::from(self.zero > 0)
    }

    /// Approximate resident size: the fixed header plus one
    /// `(index, count)` node per occupied bucket. The log-linear layout
    /// caps this at `64 · 2^k + 1` buckets no matter how long the stream.
    pub fn memory_bytes(&self) -> u64 {
        // BTreeMap node payload: u32 key padded + u64 count.
        64 + 16 * self.bucket_count() as u64
    }

    /// Occupied log-linear buckets as `(index, count)`, in index (= value)
    /// order. The zero slot is not included — read it via
    /// [`QuantileSketch::zero_count`]; callers that need representative
    /// values should use [`QuantileSketch::value_at_rank`].
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&i, &n)| (i, n))
    }

    /// Observations of exactly zero.
    pub fn zero_count(&self) -> u64 {
        self.zero
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in 0..128 {
            s.observe(v);
        }
        // Every integer below 2^(k+1) = 128 has its own bucket.
        for rank in 1..=128 {
            assert_eq!(s.value_at_rank(rank), Some(rank - 1));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let s0 = QuantileSketch::new();
        let eps = s0.relative_error_bound();
        for v in [129u64, 1_000, 65_537, 1 << 33, u64::MAX / 3, u64::MAX] {
            let mut s = QuantileSketch::new();
            s.observe(v);
            let got = s.quantile(0.5).expect("non-empty");
            let err = got.abs_diff(v) as f64;
            assert!(
                err <= eps * v as f64,
                "value {v}: answered {got}, error {err} above bound {}",
                eps * v as f64
            );
        }
    }

    #[test]
    fn quantiles_hit_expected_ranks() {
        let mut s = QuantileSketch::new();
        for v in 1..=1000u64 {
            s.observe(v);
        }
        let eps = s.relative_error_bound();
        for (q, expected) in [(0.5, 500u64), (0.99, 990), (0.999, 999), (1.0, 1000)] {
            let got = s.quantile(q).expect("non-empty");
            assert!(
                (got.abs_diff(expected)) as f64 <= eps * expected as f64 + 1.0,
                "q={q}: got {got}, expected ~{expected}"
            );
        }
        assert_eq!(s.quantile(0.0), Some(1));
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for v in [0u64, 5, 129, 4_096, 70_000, 70_001, 1 << 40] {
            a.observe(v);
            all.observe(v);
        }
        for v in [3u64, 129, 999_999, u64::MAX] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b).expect("same resolution");
        assert_eq!(a, all);
    }

    #[test]
    fn merge_rejects_mismatched_resolution() {
        let mut a = QuantileSketch::with_sub_bucket_bits(4);
        let b = QuantileSketch::with_sub_bucket_bits(8);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn memory_is_bounded_for_long_streams() {
        let mut s = QuantileSketch::new();
        let mut x = 0x9e37_79b9u64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            s.observe(x);
        }
        let cap = 64 * (1 << DEFAULT_SUB_BUCKET_BITS) + 1;
        assert!(s.bucket_count() <= cap, "{} buckets > cap {cap}", s.bucket_count());
        assert!(s.memory_bytes() <= 64 + 16 * cap as u64);
    }

    #[test]
    fn rank_queries_are_monotone() {
        let mut s = QuantileSketch::new();
        let mut x = 7u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1442695040888963407);
            s.observe(x >> (x % 50));
        }
        let mut last = 0;
        for rank in 1..=s.count() {
            let v = s.value_at_rank(rank).expect("within count");
            assert!(v >= last, "rank {rank} answered {v} below previous {last}");
            last = v;
        }
    }
}
