//! Fleet aggregation: many bounded per-node recorders, one merged view.
//!
//! A [`FleetCollector`] owns one flight-recorder [`Collector`] per node
//! (shard). Each node records through its own shard with no shared state
//! on the record path — shard `i` takes shard `i`'s locks only — and the
//! fleet view is computed at read time by *merging*: metrics registries
//! fold with the exact merge semantics of
//! [`MetricsRegistry::merge`](crate::MetricsRegistry), which is
//! associative and commutative, so a hierarchical node → site → cloud
//! rollup ([`FleetCollector::merged_metrics_grouped`]) produces the same
//! registry as the flat fold — the property the fleet proptests pin down.
//!
//! The trace export interleaves every shard on its own Chrome-trace `tid`
//! (`shard + 1`), with flow events stitching cross-shard causality; span
//! storage stays bounded per node, so fleet memory is
//! `nodes × span_capacity`, never a function of how many deployments ran.

use std::sync::Arc;

use crate::collector::Collector;
use crate::export::{write_events, TRACE_PRELUDE};
use crate::metrics::{MergeError, MetricsRegistry};
use crate::recorder::Telemetry;

/// A fixed-size fleet of per-node flight recorders.
#[derive(Debug)]
pub struct FleetCollector {
    shards: Vec<Arc<Collector>>,
}

impl FleetCollector {
    /// `nodes` bounded collectors, each retaining at most `span_capacity`
    /// spans (and instants).
    pub fn new(nodes: u32, span_capacity: usize) -> Self {
        let shards = (0..nodes)
            .map(|shard| Arc::new(Collector::with_shard_and_capacity(shard, span_capacity)))
            .collect();
        FleetCollector { shards }
    }

    /// Number of node shards.
    pub fn nodes(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The recorder for node `shard`; panics if out of range (a fleet's
    /// size is fixed at construction).
    pub fn shard(&self, shard: u32) -> &Arc<Collector> {
        &self.shards[shard as usize]
    }

    /// A [`Telemetry`] handle feeding node `shard`.
    pub fn telemetry(&self, shard: u32) -> Telemetry {
        Telemetry::new(self.shards[shard as usize].clone())
    }

    /// Wipes node `shard`'s recording (spans, instants, metrics, drop
    /// counters) while keeping its identity, capacity, and sim-time
    /// cursor. Called when a cluster resets or upgrades the node, so
    /// post-upgrade tail distributions never mix in pre-upgrade samples.
    pub fn reset_shard(&self, shard: u32) {
        self.shards[shard as usize].reset();
    }

    /// Flat fold of every shard's metrics, in shard order.
    ///
    /// # Errors
    ///
    /// [`MergeError`] if shards recorded incompatible distribution shapes
    /// under one key (impossible when all shards use the defaults).
    pub fn merged_metrics(&self) -> Result<MetricsRegistry, MergeError> {
        let mut merged = MetricsRegistry::new();
        for shard in &self.shards {
            merged.merge(&shard.metrics())?;
        }
        Ok(merged)
    }

    /// Hierarchical rollup: shards merge into sites of `site_size`, sites
    /// merge into the cloud view. Associativity of registry merge makes
    /// this equal to [`FleetCollector::merged_metrics`] for any
    /// `site_size ≥ 1`.
    ///
    /// # Errors
    ///
    /// [`MergeError`] on incompatible distribution shapes, as above.
    pub fn merged_metrics_grouped(&self, site_size: usize) -> Result<MetricsRegistry, MergeError> {
        let mut cloud = MetricsRegistry::new();
        for site in self.shards.chunks(site_size.max(1)) {
            let mut rollup = MetricsRegistry::new();
            for shard in site {
                rollup.merge(&shard.metrics())?;
            }
            cloud.merge(&rollup)?;
        }
        Ok(cloud)
    }

    /// One Chrome trace for the whole fleet: shard `i`'s spans and
    /// instants on `tid = i + 1`, in shard order, flow events included.
    pub fn trace_json(&self) -> String {
        let mut out = String::with_capacity(256 * self.shards.len().max(1));
        out.push_str(TRACE_PRELUDE);
        let mut first = true;
        for shard in &self.shards {
            write_events(
                &mut out,
                &shard.spans(),
                &shard.instants(),
                shard.shard() + 1,
                &mut first,
            );
        }
        out.push_str("]}\n");
        out
    }

    /// Serialized merged metrics (see [`crate::export::metrics_json`]).
    ///
    /// # Errors
    ///
    /// [`MergeError`] on incompatible distribution shapes, as above.
    pub fn metrics_json(&self) -> Result<String, MergeError> {
        Ok(crate::export::metrics_json(&self.merged_metrics()?))
    }

    /// Structural validation of every shard's recording; problems are
    /// prefixed with the shard id.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for shard in &self.shards {
            for p in shard.validate() {
                problems.push(format!("shard {}: {p}", shard.shard()));
            }
        }
        problems
    }

    /// Total spans shed by flight recorders across the fleet.
    pub fn dropped_spans(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_spans()).sum()
    }

    /// Approximate resident bytes of span/instant storage across the
    /// fleet — bounded by `nodes × span_capacity` by construction.
    pub fn span_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.span_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use std::time::Duration;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn shards_record_independently_and_merge() {
        let fleet = FleetCollector::new(3, 16);
        for shard in 0..3u32 {
            let t = fleet.telemetry(shard);
            t.count("deploys", u64::from(shard) + 1);
            t.sketch("lat", u64::from(shard + 1) * 100);
            t.scoped_span("client", "deploy", ms(0), ms(u64::from(shard) + 1), &[]);
        }
        let merged = fleet.merged_metrics().expect("default shapes");
        assert_eq!(merged.counter("deploys"), 6);
        assert_eq!(merged.sketch("lat").expect("observed").count(), 3);
        assert_eq!(merged.sketch("lat").expect("observed").max(), Some(300));
        assert!(fleet.validate().is_empty(), "{:?}", fleet.validate());
    }

    #[test]
    fn reset_shard_wipes_only_that_node() {
        let fleet = FleetCollector::new(3, 16);
        for shard in 0..3u32 {
            let t = fleet.telemetry(shard);
            t.count("deploys", 10);
            t.sketch("lat", u64::from(shard + 1) * 100);
            t.scoped_span("client", "deploy", ms(0), ms(1), &[]);
        }
        fleet.reset_shard(1);
        let merged = fleet.merged_metrics().expect("merge");
        assert_eq!(merged.counter("deploys"), 20, "only shard 1 forgot");
        let lat = merged.sketch("lat").expect("other shards kept samples");
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.max(), Some(300), "shard 2's sample survives");
        assert!(fleet.shard(1).spans().is_empty());
        assert_eq!(fleet.shard(0).spans().len(), 1);
        // Post-reset samples land in a clean shard: no pre-reset mixing.
        fleet.telemetry(1).sketch("lat", 999);
        let after = fleet.merged_metrics().expect("merge");
        assert_eq!(after.sketch("lat").expect("3 samples").count(), 3);
    }

    #[test]
    fn hierarchical_rollup_equals_flat_merge() {
        let fleet = FleetCollector::new(8, 8);
        for shard in 0..8u32 {
            let t = fleet.telemetry(shard);
            for i in 0..10u64 {
                t.sketch("lat", (u64::from(shard) + 1) * 37 + i * 1_000);
                t.count("ops", 1);
                t.gauge_max("peak", u64::from(shard) * 5 + i);
            }
        }
        let flat = fleet.merged_metrics().expect("merge");
        for site_size in [1, 2, 3, 4, 8, 100] {
            assert_eq!(
                fleet.merged_metrics_grouped(site_size).expect("merge"),
                flat,
                "site_size {site_size} changed the rollup"
            );
        }
    }

    #[test]
    fn fleet_trace_uses_one_tid_per_shard() {
        let fleet = FleetCollector::new(2, 8);
        fleet.telemetry(0).scoped_span("client", "a", ms(0), ms(1), &[]);
        fleet.telemetry(1).scoped_span("p2p", "b", ms(0), ms(2), &[]);
        let json = fleet.trace_json();
        assert!(json.contains("\"tid\":1,\"cat\":\"client\",\"name\":\"a\""), "{json}");
        assert!(json.contains("\"tid\":2,\"cat\":\"p2p\",\"name\":\"b\""), "{json}");
    }

    #[test]
    fn fleet_memory_is_bounded() {
        let fleet = FleetCollector::new(4, 8);
        for shard in 0..4u32 {
            let c = fleet.shard(shard);
            for i in 0..1_000u64 {
                c.span_at("sim", "op", ms(i), ms(1));
            }
        }
        assert_eq!(fleet.dropped_spans(), 4 * (1_000 - 8));
        let bytes = fleet.span_bytes();
        // 4 shards × 8 retained spans, far below the 4 000 recorded.
        assert!(bytes < 4 * 8 * 512, "span storage unbounded: {bytes} bytes");
        for shard in 0..4u32 {
            assert_eq!(fleet.shard(shard).spans().len(), 8);
        }
    }

    #[test]
    fn cross_shard_flows_export_in_one_trace() {
        let fleet = FleetCollector::new(2, 64);
        let client = fleet.telemetry(0);
        let server = fleet.telemetry(1);
        client.set_trace_id(0xfeed);
        let deploy = client.span_start("client", "deploy");
        let ctx = client.outbound_context().expect("trace active");
        let serve = server.span_at("registry", "serve", ms(0), ms(1));
        server.adopt_context(serve, ctx);
        client.span_end(deploy);
        let json = fleet.trace_json();
        let flow_id = crate::context::span_key(0, 0);
        assert!(json.contains(&format!("\"ph\":\"s\",\"pid\":1,\"tid\":1,\"cat\":\"flow\",\"name\":\"req\",\"id\":{flow_id}")), "{json}");
        assert!(json.contains(&format!("\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":2,\"cat\":\"flow\",\"name\":\"req\",\"id\":{flow_id}")), "{json}");
    }
}
