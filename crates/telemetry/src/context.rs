//! Causal trace context: the identity a request carries across node
//! boundaries so spans recorded on different recorders stitch into one
//! cross-node tree.
//!
//! A [`TraceContext`] names a trace (`trace_id`, typically derived from
//! the deployment reference and sequence number) and the **global span
//! key** of the span that caused the request (`parent_span`). Global keys
//! pack the recording shard and the span's local index
//! (`shard << 32 | index`, see [`span_key`]), so they are unique across a
//! whole fleet of sharded recorders and stable under merging.
//!
//! On the wire the context travels as one extra HTTP header,
//! [`TRACE_HEADER`], encoded by [`TraceContext::encode`] as two fixed
//! -width hex fields. The gear-proto framing tolerates unknown headers,
//! so traced and untraced peers interoperate: an old server ignores the
//! header, an old client simply never sends it.
//!
//! The `parent_span` key doubles as the Chrome-trace **flow id**: the
//! producer span emits a flow-start (`"ph":"s"`) and every consumer span
//! that adopted the context emits a flow-end (`"ph":"f"`), all carrying
//! `id = parent_span` — which is how Perfetto draws the arrows from a
//! deploy's client span to the registry spans it caused.

use std::fmt;

/// The HTTP header (lowercased, as the wire parser normalizes) carrying
/// an encoded [`TraceContext`].
pub const TRACE_HEADER: &str = "x-gear-trace";

/// Packs a shard id and a span's local index into a fleet-unique global
/// span key.
pub fn span_key(shard: u32, index: u32) -> u64 {
    (u64::from(shard) << 32) | u64::from(index)
}

/// Sentinel `parent_span` meaning "no producer span was open" — the trace
/// id still propagates, but no flow arrow is drawn. (`u64::MAX` packs
/// shard and index `u32::MAX`, which [`span_key`] never produces for a
/// real span: local index `u32::MAX` is [`SpanId::NONE`](crate::SpanId).)
pub const NO_PARENT_SPAN: u64 = u64::MAX;

/// Causal identity carried on every gear-proto verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the whole causal tree (one deployment, typically).
    pub trace_id: u64,
    /// Global key of the span that issued the request; also the flow id
    /// binding the producer's flow-start to the consumers' flow-ends.
    pub parent_span: u64,
}

impl TraceContext {
    /// Encodes as two fixed-width lowercase hex fields,
    /// `"{trace_id:016x}-{parent_span:016x}"` — 33 bytes, no allocation
    /// surprises, trivially parseable.
    pub fn encode(&self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.parent_span)
    }

    /// Parses [`TraceContext::encode`]'s form; `None` on anything else
    /// (malformed contexts are dropped, never an error — tracing is
    /// best-effort metadata, not protocol).
    pub fn parse(s: &str) -> Option<TraceContext> {
        let (trace, parent) = s.split_once('-')?;
        if trace.len() != 16 || parent.len() != 16 {
            return None;
        }
        Some(TraceContext {
            trace_id: u64::from_str_radix(trace, 16).ok()?,
            parent_span: u64::from_str_radix(parent, 16).ok()?,
        })
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.encode())
    }
}

/// FNV-1a of a byte string — the deterministic, dependency-free hash used
/// to derive trace ids from deployment references.
pub fn trace_id_for(name: &str, seq: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for b in seq.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Trace id 0 is reserved for "no trace".
    if h == 0 {
        1
    } else {
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_parse_roundtrip() {
        let ctx = TraceContext { trace_id: 0xdead_beef_0123_4567, parent_span: span_key(3, 41) };
        let wire = ctx.encode();
        assert_eq!(wire.len(), 33);
        assert_eq!(TraceContext::parse(&wire), Some(ctx));
    }

    #[test]
    fn malformed_contexts_are_dropped() {
        for bad in ["", "zz", "123-456", &"f".repeat(33), "0123456789abcdef_0123456789abcdef"] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn span_keys_are_unique_across_shards() {
        assert_ne!(span_key(0, 7), span_key(1, 7));
        assert_eq!(span_key(2, 9) >> 32, 2);
        assert_eq!(span_key(2, 9) & 0xffff_ffff, 9);
    }

    #[test]
    fn trace_ids_are_stable_and_nonzero() {
        assert_eq!(trace_id_for("app:v1", 0), trace_id_for("app:v1", 0));
        assert_ne!(trace_id_for("app:v1", 0), trace_id_for("app:v1", 1));
        assert_ne!(trace_id_for("app:v1", 0), 0);
    }
}
