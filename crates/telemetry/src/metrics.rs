//! The unified metrics registry: counters, gauges, fixed-bucket
//! histograms, and quantile sketches with exact merge semantics.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::sketch::{QuantileSketch, SketchMergeError};

/// Bucket upper bounds used when a histogram is first observed through the
/// registry without explicit bounds: byte sizes from 1 KiB to 256 MiB in
/// powers of four (plus the implicit overflow bucket).
pub const DEFAULT_BYTE_BOUNDS: [u64; 10] = [
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
];

/// Two histograms with different bucket bounds cannot be merged losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramMergeError {
    /// Bounds of the receiving histogram.
    pub ours: Vec<u64>,
    /// Bounds of the histogram being merged in.
    pub theirs: Vec<u64>,
}

impl fmt::Display for HistogramMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram bounds differ: {:?} vs {:?} — merge would lose counts",
            self.ours, self.theirs
        )
    }
}

impl Error for HistogramMergeError {}

/// Two registries could not be merged losslessly: a shared key holds
/// distributions of incompatible shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A shared histogram key has different bucket bounds.
    Histogram(HistogramMergeError),
    /// A shared sketch key has different resolution.
    Sketch(SketchMergeError),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Histogram(e) => e.fmt(f),
            MergeError::Sketch(e) => e.fmt(f),
        }
    }
}

impl Error for MergeError {}

impl From<HistogramMergeError> for MergeError {
    fn from(e: HistogramMergeError) -> Self {
        MergeError::Histogram(e)
    }
}

impl From<SketchMergeError> for MergeError {
    fn from(e: SketchMergeError) -> Self {
        MergeError::Sketch(e)
    }
}

/// A fixed-bucket histogram of `u64` observations.
///
/// `bounds` are inclusive upper bounds, strictly increasing; an observation
/// lands in the first bucket whose bound is `>= value`, or in the implicit
/// overflow bucket. Merging two histograms with identical bounds adds bucket
/// counts elementwise and combines `count`/`sum`/`min`/`max` exactly, so
/// merge is associative, commutative, and lossless — the property the
/// per-worker → global aggregation path relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    /// `u64::MAX` while empty (identity for `min`).
    min: u64,
    /// `0` while empty (identity for `max`).
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram; `bounds` are sorted and deduplicated.
    pub fn new(bounds: impl Into<Vec<u64>>) -> Self {
        let mut bounds = bounds.into();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = bounds.len() + 1;
        Histogram { bounds, counts: vec![0; buckets], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// An empty histogram with [`DEFAULT_BYTE_BOUNDS`].
    pub fn byte_sized() -> Self {
        Self::new(DEFAULT_BYTE_BOUNDS)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let slot = self.bounds.partition_point(|&b| b < value);
        self.counts[slot] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges `other` into `self` exactly.
    ///
    /// # Errors
    ///
    /// [`HistogramMergeError`] when the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), HistogramMergeError> {
        if self.bounds != other.bounds {
            return Err(HistogramMergeError {
                ours: self.bounds.clone(),
                theirs: other.bounds.clone(),
            });
        }
        for (ours, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *ours += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` while empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` while empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Buckets as `(upper_bound, count)`; the final bucket's bound is `None`
    /// (overflow / +Inf).
    pub fn buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
    }
}

/// Counters, gauges, histograms, and quantile sketches keyed by dotted
/// names (e.g. `cache.hits`). Keys live in `BTreeMap`s so iteration — and
/// therefore every export — has one deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    sketches: BTreeMap<String, QuantileSketch>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `key` (created at zero).
    pub fn add(&mut self, key: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(key) {
            *v += delta;
        } else {
            self.counters.insert(key.to_owned(), delta);
        }
    }

    /// Sets gauge `key` to `value`.
    pub fn gauge_set(&mut self, key: &str, value: u64) {
        self.gauges.insert(key.to_owned(), value);
    }

    /// Raises gauge `key` to `value` if larger (high-water mark).
    pub fn gauge_max(&mut self, key: &str, value: u64) {
        let slot = self.gauges.entry(key.to_owned()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Records `value` into histogram `key`, created with
    /// [`DEFAULT_BYTE_BOUNDS`] on first observation.
    pub fn observe(&mut self, key: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(key) {
            h.observe(value);
        } else {
            let mut h = Histogram::byte_sized();
            h.observe(value);
            self.histograms.insert(key.to_owned(), h);
        }
    }

    /// Records `value` into quantile sketch `key`, created at default
    /// resolution on first observation.
    pub fn sketch_observe(&mut self, key: &str, value: u64) {
        self.sketches
            .entry(key.to_owned())
            .or_default()
            .observe(value);
    }

    /// Installs (or replaces) a whole histogram under `key` — the
    /// snapshot path from striped collector storage.
    pub fn set_histogram(&mut self, key: &str, histogram: Histogram) {
        self.histograms.insert(key.to_owned(), histogram);
    }

    /// Installs (or replaces) a whole sketch under `key`.
    pub fn set_sketch(&mut self, key: &str, sketch: QuantileSketch) {
        self.sketches.insert(key.to_owned(), sketch);
    }

    /// Current value of counter `key` (zero if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Current value of gauge `key`, if set.
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.get(key).copied()
    }

    /// Histogram `key`, if any observation was recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Quantile sketch `key`, if any observation was recorded.
    pub fn sketch(&self, key: &str) -> Option<&QuantileSketch> {
        self.sketches.get(key)
    }

    /// Counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Quantile sketches in key order.
    pub fn sketches(&self) -> impl Iterator<Item = (&str, &QuantileSketch)> {
        self.sketches.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.sketches.is_empty()
    }

    /// Merges `other` in: counters add, gauges keep the max (the only
    /// commutative choice for a high-water aggregation), histograms and
    /// sketches merge exactly — which is what makes registry merge
    /// associative and commutative, so node → site → cloud aggregation
    /// yields the same registry in any grouping.
    ///
    /// # Errors
    ///
    /// [`MergeError`] when a shared histogram key has different bounds or a
    /// shared sketch key has different resolution; `self` keeps everything
    /// merged before the mismatch.
    pub fn merge(&mut self, other: &MetricsRegistry) -> Result<(), MergeError> {
        for (key, &delta) in &other.counters {
            self.add(key, delta);
        }
        for (key, &value) in &other.gauges {
            self.gauge_max(key, value);
        }
        for (key, theirs) in &other.histograms {
            if let Some(ours) = self.histograms.get_mut(key) {
                ours.merge(theirs)?;
            } else {
                self.histograms.insert(key.clone(), theirs.clone());
            }
        }
        for (key, theirs) in &other.sketches {
            if let Some(ours) = self.sketches.get_mut(key) {
                ours.merge(theirs)?;
            } else {
                self.sketches.insert(key.clone(), theirs.clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new([10u64, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(
            buckets,
            vec![(Some(10), 2), (Some(100), 2), (Some(1000), 0), (None, 1)]
        );
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5126);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(5000));
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::new([8u64, 64]);
        let mut b = Histogram::new([8u64, 64]);
        a.observe(4);
        a.observe(100);
        b.observe(64);
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.sum(), 168);
        assert_eq!(merged.min(), Some(4));
        assert_eq!(merged.max(), Some(100));
        // Commutative.
        let mut other_way = b.clone();
        other_way.merge(&a).unwrap();
        assert_eq!(merged, other_way);
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new([1u64, 2]);
        let b = Histogram::new([1u64, 3]);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.add("cache.hits", 2);
        r.add("cache.hits", 3);
        r.gauge_set("cache.bytes", 10);
        r.gauge_max("cache.bytes", 4);
        r.gauge_max("cache.bytes", 40);
        r.observe("fetch.bytes", 2048);
        assert_eq!(r.counter("cache.hits"), 5);
        assert_eq!(r.gauge("cache.bytes"), Some(40));
        assert_eq!(r.histogram("fetch.bytes").unwrap().count(), 1);
    }

    #[test]
    fn registry_merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.add("n", 1);
        a.gauge_set("g", 7);
        a.observe("h", 10);
        let mut b = MetricsRegistry::new();
        b.add("n", 2);
        b.add("only_b", 9);
        b.gauge_set("g", 3);
        b.observe("h", 20);
        a.merge(&b).unwrap();
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.counter("only_b"), 9);
        assert_eq!(a.gauge("g"), Some(7), "gauge merge keeps the max");
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn registry_merge_combines_sketches() {
        let mut a = MetricsRegistry::new();
        a.sketch_observe("lat", 100);
        a.sketch_observe("lat", 200);
        let mut b = MetricsRegistry::new();
        b.sketch_observe("lat", 300);
        b.sketch_observe("only_b", 1);
        a.merge(&b).unwrap();
        assert_eq!(a.sketch("lat").unwrap().count(), 3);
        assert_eq!(a.sketch("lat").unwrap().max(), Some(300));
        assert_eq!(a.sketch("only_b").unwrap().count(), 1);
    }

    #[test]
    fn registry_merge_rejects_mismatched_sketch_resolution() {
        let mut a = MetricsRegistry::new();
        a.sketch_observe("lat", 100);
        let mut b = MetricsRegistry::new();
        let mut coarse = QuantileSketch::with_sub_bucket_bits(2);
        coarse.observe(100);
        b.set_sketch("lat", coarse);
        assert!(matches!(a.merge(&b), Err(MergeError::Sketch(_))));
    }
}
