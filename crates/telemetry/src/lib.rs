//! Deterministic observability for the Gear deployment path.
//!
//! Every latency in this repository is *simulated*: links, disks, and retry
//! backoffs are priced by cost models, never by the wall clock. This crate
//! makes that timeline observable without breaking it. A [`Collector`]
//! records hierarchical spans and instant events stamped in **simulated
//! time** (a cursor the instrumented code advances as it charges durations)
//! plus a typed [`MetricsRegistry`] of counters, gauges, and fixed-bucket
//! histograms with exact merge semantics. Because every stamp derives from
//! the deterministic cost models, the exported trace is a pure function of
//! the experiment seed — same seed, byte-identical `trace.json`.
//!
//! Instrumented crates talk to the [`Recorder`] trait through a cheap
//! [`Telemetry`] handle. The default handle is a no-op whose `enabled` flag
//! is cached inline, so hot paths (union-mount lookups, cache probes) pay
//! one predictable branch when telemetry is off — no dynamic dispatch, no
//! allocation, no lock.
//!
//! Exports follow the Chrome/Perfetto trace-event format
//! ([`Collector::trace_json`]) and a flat, sorted `metrics.json`
//! ([`Collector::metrics_json`]); both are hand-rolled writers, keeping this
//! crate dependency-free.

mod collector;
mod export;
mod metrics;
mod recorder;

pub use collector::{Collector, InstantData, SpanData};
pub use metrics::{Histogram, HistogramMergeError, MetricsRegistry};
pub use recorder::{NoopRecorder, Recorder, SpanId, Telemetry};
