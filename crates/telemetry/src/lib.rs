//! Deterministic observability for the Gear deployment path.
//!
//! Every latency in this repository is *simulated*: links, disks, and retry
//! backoffs are priced by cost models, never by the wall clock. This crate
//! makes that timeline observable without breaking it. A [`Collector`]
//! records hierarchical spans and instant events stamped in **simulated
//! time** (a cursor the instrumented code advances as it charges durations)
//! plus a typed [`MetricsRegistry`] of counters, gauges, fixed-bucket
//! histograms, and mergeable [`QuantileSketch`]es with exact merge
//! semantics. Because every stamp derives from the deterministic cost
//! models, the exported trace is a pure function of the experiment seed —
//! same seed, byte-identical `trace.json`.
//!
//! Instrumented crates talk to the [`Recorder`] trait through a cheap
//! [`Telemetry`] handle. The default handle is a no-op whose `enabled` flag
//! is cached inline, so hot paths (union-mount lookups, cache probes) pay
//! one predictable branch when telemetry is off — no dynamic dispatch, no
//! allocation, no lock.
//!
//! Fleet-scale aggregation is built from three pieces:
//!
//! * [`QuantileSketch`] — DDSketch-style log-linear buckets with a fixed
//!   relative-error bound and exact (associative, commutative) merge;
//! * [`FleetCollector`] — one bounded flight-recorder [`Collector`] per
//!   node shard, merged hierarchically at read time, with no shared lock
//!   on the record path (counters and gauges additionally sit on striped
//!   atomics inside each collector);
//! * [`TraceContext`] — the causal identity a request carries across node
//!   boundaries (one extra gear-proto header, [`TRACE_HEADER`]), exported
//!   as Chrome flow events so cross-node spans stitch into one tree.
//!
//! [`SloSpec`] closes the loop: tail targets evaluated straight from the
//! sketches, surfaced in deployment reports and gated by `repro tails`.
//!
//! Exports follow the Chrome/Perfetto trace-event format
//! ([`Collector::trace_json`]) and a flat, sorted `metrics.json`
//! ([`Collector::metrics_json`]); both are hand-rolled writers, keeping this
//! crate dependency-free.

mod collector;
mod context;
mod export;
mod fleet;
mod metrics;
mod recorder;
mod sketch;
mod slo;

pub use collector::{Collector, InstantData, SpanData};
pub use context::{span_key, trace_id_for, TraceContext, NO_PARENT_SPAN, TRACE_HEADER};
pub use export::metrics_json;
pub use fleet::FleetCollector;
pub use metrics::{Histogram, HistogramMergeError, MergeError, MetricsRegistry};
pub use recorder::{NoopRecorder, Recorder, SpanId, Telemetry};
pub use sketch::{QuantileSketch, SketchMergeError, DEFAULT_SUB_BUCKET_BITS};
pub use slo::{SloEval, SloSpec};
