//! Property tests for the telemetry core: exact histogram merges,
//! worker-count-independent span recording, and bit-identical exports for a
//! fixed seed.

use std::time::Duration;

use gear_par::Pool;
use gear_telemetry::{Histogram, Telemetry};
use proptest::prelude::*;

/// Deterministic pseudo-random stream (splitmix64) for the fixed-seed
/// recording script.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::byte_sized();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    /// Merging is commutative: `a ∪ b` and `b ∪ a` are the same histogram.
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..1 << 30, 0..64),
        b in prop::collection::vec(0u64..1 << 30, 0..64),
    ) {
        let mut ab = histogram_of(&a);
        ab.merge(&histogram_of(&b)).unwrap();
        let mut ba = histogram_of(&b);
        ba.merge(&histogram_of(&a)).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Merging is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`.
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0u64..1 << 30, 0..48),
        b in prop::collection::vec(0u64..1 << 30, 0..48),
        c in prop::collection::vec(0u64..1 << 30, 0..48),
    ) {
        let mut left = histogram_of(&a);
        left.merge(&histogram_of(&b)).unwrap();
        left.merge(&histogram_of(&c)).unwrap();
        let mut bc = histogram_of(&b);
        bc.merge(&histogram_of(&c)).unwrap();
        let mut right = histogram_of(&a);
        right.merge(&bc).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Merging loses nothing: the merged histogram equals observing the
    /// concatenated stream directly — same count, sum, min/max, buckets.
    #[test]
    fn histogram_merge_is_lossless(
        a in prop::collection::vec(0u64..1 << 30, 0..64),
        b in prop::collection::vec(0u64..1 << 30, 0..64),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b)).unwrap();
        let mut all = a;
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, histogram_of(&all));
    }

    /// Parallel sections record complete spans in submission order, so the
    /// span tree is well-nested and identical at every worker count.
    #[test]
    fn span_tree_is_worker_count_independent(
        durs in prop::collection::vec(1u64..10_000, 1..24),
        workers in 1usize..8,
    ) {
        let record = |pool: &Pool| {
            let (telemetry, collector) = Telemetry::collector();
            let parent = telemetry.span_start("test", "batch");
            // Compute in parallel (any worker count, any interleaving)...
            let spans: Vec<(Duration, Duration)> = {
                let mut start = telemetry.now();
                let offsets: Vec<(Duration, Duration)> = durs
                    .iter()
                    .map(|&d| {
                        let s = start;
                        start += Duration::from_nanos(d);
                        (s, Duration::from_nanos(d))
                    })
                    .collect();
                pool.map(&offsets, |&(s, d)| (s, d))
            };
            // ...then record complete spans afterward in submission order.
            let mut end = telemetry.now();
            for (i, &(start, dur)) in spans.iter().enumerate() {
                let span = telemetry.span_at("test", &format!("task{i}"), start, dur);
                telemetry.span_arg(span, "nanos", dur.as_nanos() as u64);
                end = end.max(start + dur);
            }
            telemetry.set_now(end);
            telemetry.span_end(parent);
            (collector.validate(), collector.trace_json())
        };

        let (problems, serial) = record(&Pool::serial());
        prop_assert!(problems.is_empty(), "{problems:?}");
        let (problems, parallel) = record(&Pool::new(workers));
        prop_assert!(problems.is_empty(), "{problems:?}");
        prop_assert_eq!(serial, parallel, "trace depends on worker count");
    }

    /// The same seed drives byte-identical trace and metrics exports.
    #[test]
    fn fixed_seed_exports_are_bit_identical(seed in any::<u64>()) {
        let record = |seed: u64| {
            let (telemetry, collector) = Telemetry::collector();
            let mut rng = Rng(seed);
            for i in 0..32 {
                let span = telemetry.span_start("sim", &format!("op{i}"));
                telemetry.advance(Duration::from_nanos(rng.next() % 1_000_000));
                telemetry.count("ops", 1);
                telemetry.observe("op_bytes", rng.next() % (1 << 20));
                if rng.next().is_multiple_of(3) {
                    telemetry.instant("sim", "tick");
                }
                telemetry.gauge_max("peak", rng.next() % (1 << 16));
                telemetry.span_end(span);
            }
            (collector.trace_json(), collector.metrics_json())
        };
        prop_assert_eq!(record(seed), record(seed));
    }
}
