//! Property tests for the telemetry core: exact histogram merges,
//! worker-count-independent span recording, and bit-identical exports for a
//! fixed seed.

use std::time::Duration;

use gear_par::Pool;
use gear_telemetry::{FleetCollector, Histogram, QuantileSketch, Telemetry};
use proptest::prelude::*;

/// Deterministic pseudo-random stream (splitmix64) for the fixed-seed
/// recording script.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::byte_sized();
    for &v in values {
        h.observe(v);
    }
    h
}

fn sketch_of(values: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in values {
        s.observe(v);
    }
    s
}

proptest! {
    /// Merging is commutative: `a ∪ b` and `b ∪ a` are the same histogram.
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..1 << 30, 0..64),
        b in prop::collection::vec(0u64..1 << 30, 0..64),
    ) {
        let mut ab = histogram_of(&a);
        ab.merge(&histogram_of(&b)).unwrap();
        let mut ba = histogram_of(&b);
        ba.merge(&histogram_of(&a)).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Merging is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`.
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0u64..1 << 30, 0..48),
        b in prop::collection::vec(0u64..1 << 30, 0..48),
        c in prop::collection::vec(0u64..1 << 30, 0..48),
    ) {
        let mut left = histogram_of(&a);
        left.merge(&histogram_of(&b)).unwrap();
        left.merge(&histogram_of(&c)).unwrap();
        let mut bc = histogram_of(&b);
        bc.merge(&histogram_of(&c)).unwrap();
        let mut right = histogram_of(&a);
        right.merge(&bc).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Merging loses nothing: the merged histogram equals observing the
    /// concatenated stream directly — same count, sum, min/max, buckets.
    #[test]
    fn histogram_merge_is_lossless(
        a in prop::collection::vec(0u64..1 << 30, 0..64),
        b in prop::collection::vec(0u64..1 << 30, 0..64),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b)).unwrap();
        let mut all = a;
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, histogram_of(&all));
    }

    /// Parallel sections record complete spans in submission order, so the
    /// span tree is well-nested and identical at every worker count.
    #[test]
    fn span_tree_is_worker_count_independent(
        durs in prop::collection::vec(1u64..10_000, 1..24),
        workers in 1usize..8,
    ) {
        let record = |pool: &Pool| {
            let (telemetry, collector) = Telemetry::collector();
            let parent = telemetry.span_start("test", "batch");
            // Compute in parallel (any worker count, any interleaving)...
            let spans: Vec<(Duration, Duration)> = {
                let mut start = telemetry.now();
                let offsets: Vec<(Duration, Duration)> = durs
                    .iter()
                    .map(|&d| {
                        let s = start;
                        start += Duration::from_nanos(d);
                        (s, Duration::from_nanos(d))
                    })
                    .collect();
                pool.map(&offsets, |&(s, d)| (s, d))
            };
            // ...then record complete spans afterward in submission order.
            let mut end = telemetry.now();
            for (i, &(start, dur)) in spans.iter().enumerate() {
                let span = telemetry.span_at("test", &format!("task{i}"), start, dur);
                telemetry.span_arg(span, "nanos", dur.as_nanos() as u64);
                end = end.max(start + dur);
            }
            telemetry.set_now(end);
            telemetry.span_end(parent);
            (collector.validate(), collector.trace_json())
        };

        let (problems, serial) = record(&Pool::serial());
        prop_assert!(problems.is_empty(), "{problems:?}");
        let (problems, parallel) = record(&Pool::new(workers));
        prop_assert!(problems.is_empty(), "{problems:?}");
        prop_assert_eq!(serial, parallel, "trace depends on worker count");
    }

    /// Sketch merging is commutative: `a ∪ b == b ∪ a` bucket-for-bucket.
    #[test]
    fn sketch_merge_is_commutative(
        a in prop::collection::vec(0u64..u64::MAX, 0..64),
        b in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let mut ab = sketch_of(&a);
        ab.merge(&sketch_of(&b)).unwrap();
        let mut ba = sketch_of(&b);
        ba.merge(&sketch_of(&a)).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Sketch merging is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`.
    #[test]
    fn sketch_merge_is_associative(
        a in prop::collection::vec(0u64..u64::MAX, 0..48),
        b in prop::collection::vec(0u64..u64::MAX, 0..48),
        c in prop::collection::vec(0u64..u64::MAX, 0..48),
    ) {
        let mut left = sketch_of(&a);
        left.merge(&sketch_of(&b)).unwrap();
        left.merge(&sketch_of(&c)).unwrap();
        let mut bc = sketch_of(&b);
        bc.merge(&sketch_of(&c)).unwrap();
        let mut right = sketch_of(&a);
        right.merge(&bc).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Sketch merging loses nothing: the merged sketch equals observing the
    /// concatenated stream directly — same count, sum, min/max, buckets,
    /// and therefore identical answers to every quantile query.
    #[test]
    fn sketch_merge_is_lossless(
        a in prop::collection::vec(0u64..u64::MAX, 0..64),
        b in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let mut merged = sketch_of(&a);
        merged.merge(&sketch_of(&b)).unwrap();
        let mut all = a;
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, sketch_of(&all));
    }

    /// Every rank query answers within the configured relative-error bound
    /// of the exact order statistic, for arbitrary value streams.
    #[test]
    fn sketch_rank_answers_stay_within_relative_error(
        mut values in prop::collection::vec(0u64..u64::MAX, 1..128),
    ) {
        let sketch = sketch_of(&values);
        values.sort_unstable();
        let err = sketch.relative_error_bound();
        for (i, &exact) in values.iter().enumerate() {
            let got = sketch.value_at_rank(i as u64 + 1).unwrap();
            let bound = (exact as f64) * err;
            prop_assert!(
                (got as f64 - exact as f64).abs() <= bound,
                "rank {}: got {} for exact {} (bound {})",
                i + 1, got, exact, bound,
            );
        }
    }

    /// Rank queries are monotone: a higher rank never answers a smaller
    /// value.
    #[test]
    fn sketch_rank_queries_are_monotone(
        values in prop::collection::vec(0u64..u64::MAX, 1..128),
    ) {
        let sketch = sketch_of(&values);
        let mut last = 0u64;
        for rank in 1..=sketch.count() {
            let v = sketch.value_at_rank(rank).unwrap();
            prop_assert!(v >= last, "rank {rank} answered {v} after {last}");
            last = v;
        }
    }

    /// Sharding the same recording script over any number of per-node
    /// collectors merges to the same metrics export as recording it all on
    /// one node — shard count is an implementation detail of the fleet.
    #[test]
    fn sharded_recorders_merge_to_the_unsharded_export(
        seed in any::<u64>(),
        nodes in 1u32..6,
    ) {
        let script = |seed: u64| -> Vec<(u64, u64)> {
            let mut rng = Rng(seed);
            (0..48).map(|_| (rng.next() % 1_000_000, rng.next() % (1 << 20))).collect()
        };
        let ops = script(seed);

        // One node records everything.
        let (telemetry, collector) = Telemetry::collector();
        for &(nanos, bytes) in &ops {
            telemetry.count("ops", 1);
            telemetry.sketch("latency_nanos", nanos);
            telemetry.observe("op_bytes", bytes);
            telemetry.gauge_max("peak", bytes);
        }
        let flat = collector.metrics();

        // The same ops striped round-robin over `nodes` shards, merged.
        let fleet = FleetCollector::new(nodes, 64);
        for (i, &(nanos, bytes)) in ops.iter().enumerate() {
            let t = fleet.telemetry(i as u32 % nodes);
            t.count("ops", 1);
            t.sketch("latency_nanos", nanos);
            t.observe("op_bytes", bytes);
            t.gauge_max("peak", bytes);
        }
        let merged = fleet.merged_metrics().unwrap();
        prop_assert_eq!(&flat, &merged, "shard count leaked into the export");
        prop_assert_eq!(
            gear_telemetry::metrics_json(&flat),
            gear_telemetry::metrics_json(&merged),
        );
    }

    /// The same seed drives byte-identical trace and metrics exports.
    #[test]
    fn fixed_seed_exports_are_bit_identical(seed in any::<u64>()) {
        let record = |seed: u64| {
            let (telemetry, collector) = Telemetry::collector();
            let mut rng = Rng(seed);
            for i in 0..32 {
                let span = telemetry.span_start("sim", &format!("op{i}"));
                telemetry.advance(Duration::from_nanos(rng.next() % 1_000_000));
                telemetry.count("ops", 1);
                telemetry.observe("op_bytes", rng.next() % (1 << 20));
                if rng.next().is_multiple_of(3) {
                    telemetry.instant("sim", "tick");
                }
                telemetry.gauge_max("peak", rng.next() % (1 << 16));
                telemetry.span_end(span);
            }
            (collector.trace_json(), collector.metrics_json())
        };
        prop_assert_eq!(record(seed), record(seed));
    }
}
