//! Property-based tests on the timing models' sanity invariants.

use std::time::Duration;

use gear_simnet::{Bandwidth, DiskModel, Link, VirtualClock};
use proptest::prelude::*;

proptest! {
    /// Transfer time is monotone in bytes and inversely monotone in rate.
    #[test]
    fn transfer_monotonicity(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000, mbps in 1.0f64..10_000.0) {
        let bw = Bandwidth::mbps(mbps);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bw.transfer_time(lo) <= bw.transfer_time(hi));
        let faster = Bandwidth::mbps(mbps * 2.0);
        prop_assert!(faster.transfer_time(hi) <= bw.transfer_time(hi));
    }

    /// A request is never cheaper than its raw payload transfer, and
    /// batching with pipelining never beats the pure payload bound.
    #[test]
    fn request_lower_bounds(bytes in 0u64..100_000_000, count in 1u64..500, pipeline in 1u32..64, mbps in 1.0f64..1_000.0) {
        let link = Link::mbps(mbps);
        prop_assert!(link.request_time(bytes) >= link.bandwidth.transfer_time(bytes));
        let batch = link.batch_time(count, bytes, pipeline);
        prop_assert!(batch >= link.bandwidth.transfer_time(bytes));
        // Deeper pipelines never slow a batch down.
        prop_assert!(link.batch_time(count, bytes, pipeline + 1) <= batch);
    }

    /// Disk I/O time decomposes additively over (bytes, files).
    #[test]
    fn disk_additivity(bytes in 0u64..1_000_000_000, files in 0u64..10_000) {
        let disk = DiskModel::hdd();
        let whole = disk.io_time(bytes, files);
        let parts = disk.io_time(bytes, 0) + disk.io_time(0, files);
        let delta = whole.abs_diff(parts);
        prop_assert!(delta < Duration::from_micros(5), "delta {delta:?}");
    }

    /// The virtual clock sums an arbitrary advance sequence exactly.
    #[test]
    fn clock_sums_exactly(advances in proptest::collection::vec(0u64..10_000_000, 0..64)) {
        let clock = VirtualClock::new();
        let mut total = Duration::ZERO;
        for nanos in advances {
            let d = Duration::from_nanos(nanos);
            clock.advance(d);
            total += d;
        }
        prop_assert_eq!(clock.elapsed(), total);
    }
}
