//! Property-based tests on the timing models' sanity invariants.

use std::time::Duration;

use gear_simnet::{Bandwidth, DiskModel, FaultKind, FaultPlan, FaultyLink, Link, VirtualClock};
use proptest::prelude::*;

proptest! {
    /// Transfer time is monotone in bytes and inversely monotone in rate.
    #[test]
    fn transfer_monotonicity(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000, mbps in 1.0f64..10_000.0) {
        let bw = Bandwidth::mbps(mbps);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bw.transfer_time(lo) <= bw.transfer_time(hi));
        let faster = Bandwidth::mbps(mbps * 2.0);
        prop_assert!(faster.transfer_time(hi) <= bw.transfer_time(hi));
    }

    /// A request is never cheaper than its raw payload transfer, and
    /// batching with pipelining never beats the pure payload bound.
    #[test]
    fn request_lower_bounds(bytes in 0u64..100_000_000, count in 1u64..500, pipeline in 1u32..64, mbps in 1.0f64..1_000.0) {
        let link = Link::mbps(mbps);
        prop_assert!(link.request_time(bytes) >= link.bandwidth.transfer_time(bytes));
        let batch = link.batch_time(count, bytes, pipeline);
        prop_assert!(batch >= link.bandwidth.transfer_time(bytes));
        // Deeper pipelines never slow a batch down.
        prop_assert!(link.batch_time(count, bytes, pipeline + 1) <= batch);
    }

    /// Disk I/O time decomposes additively over (bytes, files).
    #[test]
    fn disk_additivity(bytes in 0u64..1_000_000_000, files in 0u64..10_000) {
        let disk = DiskModel::hdd();
        let whole = disk.io_time(bytes, files);
        let parts = disk.io_time(bytes, 0) + disk.io_time(0, files);
        let delta = whole.abs_diff(parts);
        prop_assert!(delta < Duration::from_micros(5), "delta {delta:?}");
    }

    /// The virtual clock sums an arbitrary advance sequence exactly.
    #[test]
    fn clock_sums_exactly(advances in proptest::collection::vec(0u64..10_000_000, 0..64)) {
        let clock = VirtualClock::new();
        let mut total = Duration::ZERO;
        for nanos in advances {
            let d = Duration::from_nanos(nanos);
            clock.advance(d);
            total += d;
        }
        prop_assert_eq!(clock.elapsed(), total);
    }

    /// A fault plan's decisions are a pure function of (seed, request
    /// index): replays agree draw by draw, and `fault_at` predicts them.
    #[test]
    fn fault_plans_are_deterministic(
        seed in any::<u64>(),
        drop_p in 0.0f64..1.0,
        corrupt_p in 0.0f64..0.5,
        draws in 1usize..64,
    ) {
        let mut a = FaultPlan::new(seed).with_drop(drop_p).with_corrupt(corrupt_p);
        let mut b = FaultPlan::new(seed).with_drop(drop_p).with_corrupt(corrupt_p);
        for index in 0..draws {
            let predicted = a.fault_at(index as u64);
            prop_assert_eq!(a.next_fault(), b.next_fault());
            prop_assert_eq!(a.fault_at(index as u64), predicted, "fault_at must be pure");
        }
        prop_assert_eq!(a.injected(), b.injected());
    }

    /// Total simulated time over a request sequence is monotonically
    /// non-decreasing in the number of scripted faults: every injected
    /// fault costs time, never saves it.
    #[test]
    fn faulty_time_is_monotone_in_fault_count(
        requests in 1u64..32,
        payload in 1u64..1_000_000,
        kind in prop_oneof![
            Just(FaultKind::Drop),
            Just(FaultKind::Corrupt),
            Just(FaultKind::Truncate),
            (1u64..500).prop_map(|ms| FaultKind::Stall(Duration::from_millis(ms))),
        ],
    ) {
        let elapsed_with_faults = |faulted: u64| {
            let mut plan = FaultPlan::reliable();
            if faulted > 0 {
                plan = FaultPlan::new(0).fail_requests(0, faulted - 1, kind);
            }
            let mut link = FaultyLink::new(Link::mbps(100.0), plan);
            let mut total = Duration::ZERO;
            for _ in 0..requests {
                total += link.request(payload).elapsed;
            }
            total
        };
        let mut previous = elapsed_with_faults(0);
        for faulted in 1..=requests {
            let now = elapsed_with_faults(faulted);
            prop_assert!(
                now >= previous,
                "{faulted} faults took {now:?}, fewer took {previous:?}"
            );
            previous = now;
        }
    }
}
