//! Network byte/request accounting.

use serde::{Deserialize, Serialize};

/// Counters for traffic between a client and the registries, used by the
/// bandwidth experiments (paper Fig. 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetMetrics {
    /// Bytes downloaded (registry → client).
    pub bytes_down: u64,
    /// Bytes uploaded (client → registry).
    pub bytes_up: u64,
    /// Download requests issued.
    pub requests_down: u64,
    /// Upload requests issued.
    pub requests_up: u64,
}

impl NetMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one download of `bytes`.
    pub fn download(&mut self, bytes: u64) {
        self.bytes_down += bytes;
        self.requests_down += 1;
    }

    /// Records one upload of `bytes`.
    pub fn upload(&mut self, bytes: u64) {
        self.bytes_up += bytes;
        self.requests_up += 1;
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_down + self.bytes_up
    }

    /// Merges another metrics record into this one.
    pub fn merge(&mut self, other: &NetMetrics) {
        self.bytes_down += other.bytes_down;
        self.bytes_up += other.bytes_up;
        self.requests_down += other.requests_down;
        self.requests_up += other.requests_up;
    }
}

impl std::ops::Add for NetMetrics {
    type Output = NetMetrics;

    fn add(mut self, rhs: NetMetrics) -> NetMetrics {
        self.merge(&rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_merges() {
        let mut a = NetMetrics::new();
        a.download(100);
        a.download(50);
        a.upload(10);
        assert_eq!(a.bytes_down, 150);
        assert_eq!(a.requests_down, 2);
        assert_eq!(a.total_bytes(), 160);

        let mut b = NetMetrics::new();
        b.download(1);
        let sum = a + b;
        assert_eq!(sum.bytes_down, 151);
        assert_eq!(sum.requests_down, 3);
    }
}
