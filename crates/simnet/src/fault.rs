//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] decides, per request, whether the simulated link misbehaves
//! and how: the response is dropped, stalled, bit-flipped, or truncated.
//! Decisions are a pure function of the plan's seed and the request index, so
//! a run is exactly reproducible — same seed, same faults, same simulated
//! timings. [`FaultyLink`] wraps a [`Link`] with a plan and prices failed
//! attempts in simulated time; [`RetryPolicy`] describes how a client spends
//! its retry budget (attempts, per-attempt timeout, exponential backoff with
//! seeded jitter).

use std::time::Duration;

use gear_telemetry::Telemetry;

use crate::link::Link;

/// How one request misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The response never arrives; the caller waits its timeout for nothing.
    Drop,
    /// The response arrives, but only after the extra delay.
    Stall(Duration),
    /// The response arrives on time with flipped payload bits.
    Corrupt,
    /// The response arrives on time but cut short.
    Truncate,
}

impl FaultKind {
    /// Short lowercase label (`"drop"`, `"stall"`, ...), used as the metric
    /// key suffix and trace event name for injected faults.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Stall(_) => "stall",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Truncate => "truncate",
        }
    }
}

/// A scripted fault: every request whose index falls in `from..=to` fails
/// with `kind`, regardless of the random probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Scripted {
    from: u64,
    to: u64,
    kind: FaultKind,
}

/// A seeded, deterministic source of per-request fault decisions.
///
/// Probabilistic faults draw from a splitmix64 stream keyed by
/// `(seed, request index)`, so the decision for request *n* does not depend
/// on how many requests preceded it in real time — replaying the same
/// request sequence replays the same faults. Scripted schedules
/// ([`FaultPlan::fail_requests`]) override the random draw.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    corrupt_p: f64,
    truncate_p: f64,
    stall_p: f64,
    stall: Duration,
    scripted: Vec<Scripted>,
    requests: u64,
    injected: u64,
    /// Where injected faults are reported (disabled by default; recording
    /// never changes fault decisions, so plans with and without a recorder
    /// behave identically).
    telemetry: Telemetry,
}

/// Telemetry is an observation channel, not plan state: two plans are equal
/// when they inject the same faults, recorder or not.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.drop_p == other.drop_p
            && self.corrupt_p == other.corrupt_p
            && self.truncate_p == other.truncate_p
            && self.stall_p == other.stall_p
            && self.stall == other.stall
            && self.scripted == other.scripted
            && self.requests == other.requests
            && self.injected == other.injected
    }
}

impl FaultPlan {
    /// A plan that never injects a fault.
    pub fn reliable() -> Self {
        Self::default()
    }

    /// An empty plan with the given seed; add faults with the `with_*`
    /// builders or [`FaultPlan::fail_requests`].
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..Self::default() }
    }

    /// Sets the per-request probability of a dropped response.
    pub fn with_drop(mut self, probability: f64) -> Self {
        self.drop_p = probability.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-request probability of a corrupted response.
    pub fn with_corrupt(mut self, probability: f64) -> Self {
        self.corrupt_p = probability.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-request probability of a truncated response.
    pub fn with_truncate(mut self, probability: f64) -> Self {
        self.truncate_p = probability.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-request probability of a stalled response and the extra
    /// delay a stall adds.
    pub fn with_stall(mut self, probability: f64, delay: Duration) -> Self {
        self.stall_p = probability.clamp(0.0, 1.0);
        self.stall = delay;
        self
    }

    /// Scripts a deterministic failure window: every request with index in
    /// `from..=to` (0-based, counting every attempt) fails with `kind`.
    pub fn fail_requests(mut self, from: u64, to: u64, kind: FaultKind) -> Self {
        self.scripted.push(Scripted { from, to, kind });
        self
    }

    /// Reports every injected fault to `telemetry` (an instant event plus
    /// `simnet.faults` / `simnet.faults.<kind>` counters), stamped at the
    /// recorder's sim-time cursor.
    pub fn set_recorder(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Builder form of [`FaultPlan::set_recorder`].
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Decides the fate of the next request, advancing the request counter.
    pub fn next_fault(&mut self) -> Option<FaultKind> {
        let index = self.requests;
        self.requests += 1;
        let fault = self.fault_at(index);
        if let Some(kind) = fault {
            self.injected += 1;
            if self.telemetry.enabled() {
                let (key, event) = match kind {
                    FaultKind::Drop => ("simnet.faults.drop", "fault.drop"),
                    FaultKind::Stall(_) => ("simnet.faults.stall", "fault.stall"),
                    FaultKind::Corrupt => ("simnet.faults.corrupt", "fault.corrupt"),
                    FaultKind::Truncate => ("simnet.faults.truncate", "fault.truncate"),
                };
                self.telemetry.count("simnet.faults", 1);
                self.telemetry.count(key, 1);
                self.telemetry.instant("simnet", event);
            }
        }
        fault
    }

    /// The decision for request `index` without advancing any state.
    pub fn fault_at(&self, index: u64) -> Option<FaultKind> {
        for s in &self.scripted {
            if (s.from..=s.to).contains(&index) {
                return Some(s.kind);
            }
        }
        let unit = unit_draw(self.seed, index);
        let mut threshold = self.drop_p;
        if unit < threshold {
            return Some(FaultKind::Drop);
        }
        threshold += self.stall_p;
        if unit < threshold {
            return Some(FaultKind::Stall(self.stall));
        }
        threshold += self.corrupt_p;
        if unit < threshold {
            return Some(FaultKind::Corrupt);
        }
        threshold += self.truncate_p;
        if unit < threshold {
            return Some(FaultKind::Truncate);
        }
        None
    }

    /// Requests decided so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

/// How a client spends its retry budget: attempt count, per-attempt timeout
/// (in simulated time), and exponential backoff with seeded jitter. All
/// waiting is charged to the virtual clock, never to wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Per-attempt budget in simulated time; an attempt exceeding it counts
    /// as failed and is charged exactly this long.
    pub timeout: Duration,
    /// Backoff before the second attempt; doubles every further attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff (before jitter).
    pub max_backoff: Duration,
    /// Seed for deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// A single attempt, no retries: faults surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            timeout: Duration::from_secs(30),
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Four attempts, 2 s per-attempt timeout, 50 ms base backoff capped at
    /// 1 s — a typical client default.
    pub fn standard(jitter_seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 4,
            timeout: Duration::from_secs(2),
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            jitter_seed,
        }
    }

    /// The backoff charged before attempt number `attempt` (1-based; attempt
    /// 0 is the first try and waits nothing): exponential in the attempt
    /// number, capped, plus up to 50 % seeded jitter.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.base_backoff.saturating_mul(1u32 << (attempt - 1).min(16));
        let capped = exp.min(self.max_backoff.max(self.base_backoff));
        let jitter = capped.mul_f64(0.5 * unit_draw(self.jitter_seed, attempt as u64));
        capped + jitter
    }
}

/// Outcome of one request over a [`FaultyLink`]: the injected fault (if any)
/// and the simulated time the attempt cost, successful or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkOutcome {
    /// The fault injected into this request, or `None` on clean delivery.
    pub fault: Option<FaultKind>,
    /// Simulated time the attempt took. Failed attempts still cost time:
    /// a drop costs the give-up timeout, a stall costs the transfer plus the
    /// stall, corruption and truncation cost the full transfer.
    pub elapsed: Duration,
}

/// A [`Link`] that misbehaves according to a [`FaultPlan`], charging
/// simulated time for failed attempts exactly as a real client would
/// experience them.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyLink {
    link: Link,
    plan: FaultPlan,
    give_up: Duration,
}

impl FaultyLink {
    /// Wraps `link` with `plan`; dropped responses cost the default 1 s
    /// give-up timeout (see [`FaultyLink::with_give_up`]).
    pub fn new(link: Link, plan: FaultPlan) -> Self {
        FaultyLink { link, plan, give_up: Duration::from_secs(1) }
    }

    /// Sets how long a caller waits before declaring a request lost.
    pub fn with_give_up(mut self, give_up: Duration) -> Self {
        self.give_up = give_up;
        self
    }

    /// The underlying healthy link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// The fault plan (request/injection counters included).
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The give-up timeout charged for dropped responses.
    pub fn give_up(&self) -> Duration {
        self.give_up
    }

    /// Decides the fate of the next request, advancing the plan.
    pub fn next_fault(&mut self) -> Option<FaultKind> {
        self.plan.next_fault()
    }

    /// The healthy price of one request moving `payload_bytes`.
    pub fn transfer(&self, payload_bytes: u64) -> Duration {
        self.link.request_time(payload_bytes)
    }

    /// Performs one request of `payload_bytes`, drawing the next fault from
    /// the plan and pricing the attempt in simulated time.
    pub fn request(&mut self, payload_bytes: u64) -> LinkOutcome {
        let fault = self.plan.next_fault();
        let elapsed = match fault {
            None | Some(FaultKind::Corrupt) | Some(FaultKind::Truncate) => {
                self.link.request_time(payload_bytes)
            }
            Some(FaultKind::Stall(extra)) => self.link.request_time(payload_bytes) + extra,
            Some(FaultKind::Drop) => self.give_up,
        };
        LinkOutcome { fault, elapsed }
    }
}

/// A uniform draw in `[0, 1)`, pure in `(seed, index)` (splitmix64).
/// Shared with [`CrashPlan`](crate::CrashPlan) so fault and crash schedules
/// stream from the same generator family.
pub(crate) fn unit_draw(seed: u64, index: u64) -> f64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 significant bits → an exact double in [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_faults() {
        let mut a = FaultPlan::new(7).with_drop(0.3).with_corrupt(0.2);
        let mut b = FaultPlan::new(7).with_drop(0.3).with_corrupt(0.2);
        let seq_a: Vec<_> = (0..200).map(|_| a.next_fault()).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.next_fault()).collect();
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "p=0.5 over 200 draws must fault sometimes");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(1).with_drop(0.5);
        let mut b = FaultPlan::new(2).with_drop(0.5);
        let seq_a: Vec<_> = (0..200).map(|_| a.next_fault()).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.next_fault()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn reliable_plan_never_faults() {
        let mut plan = FaultPlan::reliable();
        assert!((0..100).all(|_| plan.next_fault().is_none()));
        assert_eq!(plan.injected(), 0);
        assert_eq!(plan.requests(), 100);
    }

    #[test]
    fn certain_drop_always_faults() {
        let mut plan = FaultPlan::new(9).with_drop(1.0);
        assert!((0..50).all(|_| plan.next_fault() == Some(FaultKind::Drop)));
    }

    #[test]
    fn scripted_window_fires_exactly() {
        let mut plan = FaultPlan::new(0).fail_requests(3, 7, FaultKind::Truncate);
        for i in 0..12u64 {
            let fault = plan.next_fault();
            if (3..=7).contains(&i) {
                assert_eq!(fault, Some(FaultKind::Truncate), "request {i}");
            } else {
                assert_eq!(fault, None, "request {i}");
            }
        }
        assert_eq!(plan.injected(), 5);
    }

    #[test]
    fn fault_at_is_pure() {
        let plan = FaultPlan::new(42).with_drop(0.4);
        let first: Vec<_> = (0..64).map(|i| plan.fault_at(i)).collect();
        let second: Vec<_> = (0..64).map(|i| plan.fault_at(i)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn faulty_link_charges_failed_attempts() {
        let link = Link::mbps(100.0);
        let plan = FaultPlan::new(0)
            .fail_requests(0, 0, FaultKind::Drop)
            .fail_requests(1, 1, FaultKind::Stall(Duration::from_millis(300)))
            .fail_requests(2, 2, FaultKind::Corrupt);
        let mut faulty = FaultyLink::new(link, plan).with_give_up(Duration::from_millis(500));
        let clean = link.request_time(10_000);

        let dropped = faulty.request(10_000);
        assert_eq!(dropped.fault, Some(FaultKind::Drop));
        assert_eq!(dropped.elapsed, Duration::from_millis(500));

        let stalled = faulty.request(10_000);
        assert_eq!(stalled.elapsed, clean + Duration::from_millis(300));

        let corrupted = faulty.request(10_000);
        assert_eq!(corrupted.fault, Some(FaultKind::Corrupt));
        assert_eq!(corrupted.elapsed, clean, "bytes still crossed the wire");

        let ok = faulty.request(10_000);
        assert_eq!(ok.fault, None);
        assert_eq!(ok.elapsed, clean);
        assert_eq!(faulty.plan().injected(), 3);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy::standard(11);
        assert_eq!(policy.backoff(0), Duration::ZERO);
        let b1 = policy.backoff(1);
        let b2 = policy.backoff(2);
        assert!(b1 >= policy.base_backoff);
        assert!(b2 > b1, "exponential growth: {b1:?} !< {b2:?}");
        // Far attempts stay below cap + 50 % jitter.
        let far = policy.backoff(30);
        assert!(far <= policy.max_backoff.mul_f64(1.5));
    }

    #[test]
    fn backoff_jitter_is_deterministic() {
        let a = RetryPolicy::standard(5);
        let b = RetryPolicy::standard(5);
        let c = RetryPolicy::standard(6);
        assert_eq!(a.backoff(3), b.backoff(3));
        assert_ne!(a.backoff(3), c.backoff(3), "different seed, different jitter");
    }
}
