//! Event-driven scheduling core for fleet-scale simulations.
//!
//! The historical simnet pricing model charges whole transfers eagerly: a
//! caller asks a [`Link`] what a batch costs and advances its clock by the
//! answer. That is exact and fast for one client, but a fleet run with tens
//! of thousands of concurrent clients would pay O(clients × polling) to
//! interleave them. This module supplies the two primitives that make the
//! cost O(events) instead:
//!
//! * [`EventQueue`] — a binary-heap priority queue keyed on simulated time
//!   with a monotonically increasing sequence number breaking ties in push
//!   order, so the processing order is a pure function of the pushes (no
//!   dependence on heap internals or iteration order).
//! * [`FifoLane`] — a shared link serving transfers strictly in arrival
//!   order. Each transfer starts at `max(now, lane.busy_until)` and runs
//!   for `fixed + bandwidth.transfer_time(bytes)` of exact integer
//!   [`Duration`] arithmetic — the same sums the sequential scheduler has
//!   always produced, so single-stream schedules stay bit-identical.
//!
//! A driver owns one queue plus one lane per contended resource (a site
//! uplink, a registry shard's egress, a LAN segment), pops events in time
//! order, and books transfers onto lanes as they arise. Every completion
//! time is derived from exact `Duration` additions; there is no floating
//! point anywhere on this path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::link::Link;

/// A deterministic priority queue of simulation events.
///
/// Events pop in ascending time order; events scheduled for the same
/// instant pop in the order they were pushed. Determinism is structural:
/// the key is `(time, push sequence)`, so two runs that push the same
/// events observe the same ordering regardless of heap layout.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    at: Duration,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `payload` to fire at simulated time `at`.
    pub fn push(&mut self, at: Duration, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Removes and returns the earliest event, ties broken by push order.
    pub fn pop(&mut self) -> Option<(Duration, T)> {
        self.heap.pop().map(|Reverse(entry)| (entry.at, entry.payload))
    }

    /// The firing time of the next event, if any.
    pub fn peek_time(&self) -> Option<Duration> {
        self.heap.peek().map(|Reverse(entry)| entry.at)
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (the event-count cost of the run so far).
    pub fn pushed(&self) -> u64 {
        self.seq
    }
}

/// One booked transfer on a [`FifoLane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSlot {
    /// When the transfer actually started (after any queueing delay).
    pub start: Duration,
    /// When the last byte was delivered.
    pub done: Duration,
}

impl LaneSlot {
    /// How long the transfer waited behind earlier traffic.
    pub fn queued(&self, requested_at: Duration) -> Duration {
        self.start.saturating_sub(requested_at)
    }
}

/// A shared link serving transfers strictly in arrival order.
///
/// The lane replaces eager whole-transfer pricing: instead of each client
/// charging the full link cost to a private clock, concurrent clients book
/// transfers onto the shared lane and observe queueing delay when it is
/// busy. All arithmetic is exact integer [`Duration`] addition — for a
/// single client the booked completion times are bit-identical to the
/// historical `fixed + transfer_time(bytes)` sums.
#[derive(Debug, Clone)]
pub struct FifoLane {
    link: Link,
    busy_until: Duration,
    transfers: u64,
    bytes: u64,
    busy: Duration,
    queued: Duration,
}

impl FifoLane {
    /// An idle lane over `link`.
    pub fn new(link: Link) -> Self {
        FifoLane {
            link,
            busy_until: Duration::ZERO,
            transfers: 0,
            bytes: 0,
            busy: Duration::ZERO,
            queued: Duration::ZERO,
        }
    }

    /// The underlying link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// When the lane next falls idle.
    pub fn busy_until(&self) -> Duration {
        self.busy_until
    }

    /// Transfers booked so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Payload bytes booked so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total service time booked (utilization numerator).
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Total time transfers spent queued behind earlier traffic.
    pub fn queued_time(&self) -> Duration {
        self.queued
    }

    /// Books a transfer of `bytes` requested at `now`, paying the link's
    /// own RTT + request overhead as the fixed phase.
    pub fn transfer(&mut self, now: Duration, bytes: u64) -> LaneSlot {
        self.transfer_with_fixed(now, self.link.rtt + self.link.request_overhead, bytes)
    }

    /// Books a transfer of `bytes` requested at `now` with an explicit
    /// per-request fixed phase (caller-amplified RTT/overhead).
    ///
    /// Service time is `fixed + bandwidth.transfer_time(bytes)` — the exact
    /// integer sum the sequential scheduler charges — starting at
    /// `max(now, busy_until)`.
    pub fn transfer_with_fixed(&mut self, now: Duration, fixed: Duration, bytes: u64) -> LaneSlot {
        let start = self.busy_until.max(now);
        let service = fixed + self.link.bandwidth.transfer_time(bytes);
        let done = start + service;
        self.busy_until = done;
        self.transfers += 1;
        self.bytes += bytes;
        self.busy += service;
        self.queued += start.saturating_sub(now);
        LaneSlot { start, done }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut queue = EventQueue::new();
        queue.push(Duration::from_millis(30), "c");
        queue.push(Duration::from_millis(10), "a");
        queue.push(Duration::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| queue.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut queue = EventQueue::new();
        for label in 0..100u32 {
            queue.push(Duration::from_millis(5), label);
        }
        let order: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>(), "same-time events keep push order");
    }

    #[test]
    fn interleaved_pushes_stay_deterministic() {
        // Push/pop interleaving must not disturb the (time, seq) order.
        let mut queue = EventQueue::new();
        queue.push(Duration::from_millis(10), 0u32);
        queue.push(Duration::from_millis(10), 1);
        assert_eq!(queue.pop().map(|(_, p)| p), Some(0));
        queue.push(Duration::from_millis(10), 2);
        queue.push(Duration::from_millis(5), 3);
        assert_eq!(queue.pop().map(|(_, p)| p), Some(3));
        assert_eq!(queue.pop().map(|(_, p)| p), Some(1));
        assert_eq!(queue.pop().map(|(_, p)| p), Some(2));
        assert_eq!(queue.pushed(), 4);
    }

    #[test]
    fn lane_matches_sequential_request_time_sums_exactly() {
        // The fleet lane and the historical sequential scheduler must be
        // the same integer arithmetic, bit for bit.
        let link = Link::mbps(80.0);
        let payloads = [10_000u64, 250_000, 999, 0, 1_000_000];
        let mut lane = FifoLane::new(link);
        let mut expected = Duration::ZERO;
        for &bytes in &payloads {
            let slot = lane.transfer(Duration::ZERO, bytes);
            expected += link.request_time(bytes);
            assert_eq!(slot.done, expected, "bit-for-bit sequential sums");
        }
        assert_eq!(lane.transfers(), payloads.len() as u64);
    }

    #[test]
    fn lane_queues_concurrent_arrivals_in_fifo_order() {
        let mut lane = FifoLane::new(Link::mbps(80.0));
        let first = lane.transfer(Duration::ZERO, 1_000_000);
        let second = lane.transfer(Duration::ZERO, 1_000_000);
        assert_eq!(second.start, first.done, "second waits for the lane");
        assert!(second.queued(Duration::ZERO) >= Duration::from_millis(100));
        assert_eq!(lane.queued_time(), second.queued(Duration::ZERO));
    }

    #[test]
    fn idle_lane_starts_immediately() {
        let mut lane = FifoLane::new(Link::mbps(80.0));
        lane.transfer(Duration::ZERO, 10_000);
        let late = lane.transfer(Duration::from_secs(5), 10_000);
        assert_eq!(late.start, Duration::from_secs(5), "idle lane serves on arrival");
        assert_eq!(late.queued(Duration::from_secs(5)), Duration::ZERO);
    }

    #[test]
    fn lane_accounts_bytes_and_busy_time() {
        let link = Link::mbps(80.0);
        let mut lane = FifoLane::new(link);
        lane.transfer(Duration::ZERO, 40_000);
        lane.transfer(Duration::ZERO, 60_000);
        assert_eq!(lane.bytes(), 100_000);
        assert_eq!(lane.busy_time(), link.request_time(40_000) + link.request_time(60_000));
        assert_eq!(lane.busy_until(), lane.busy_time(), "back-to-back service");
    }
}
