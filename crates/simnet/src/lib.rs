//! Deterministic resource-timing models for deployment experiments.
//!
//! The Gear paper measures wall-clock deployment times on two servers joined
//! by a 904 Mbps link, repeating the experiments at 100/20/5 Mbps. This crate
//! replaces the physical testbed with explicit, deterministic models:
//!
//! * [`VirtualClock`] — simulated time, advanced by charges.
//! * [`Link`] — bandwidth + RTT + per-request overhead; computes how long a
//!   request/response of a given size takes.
//! * [`DiskModel`] — sequential throughput + per-file overhead for local I/O
//!   (the paper's HDD vs SSD conversion-time comparison, Fig. 6).
//! * [`NetMetrics`] — byte/request accounting (bandwidth experiments, Fig. 8).
//! * [`FaultPlan`] / [`FaultyLink`] — seeded, deterministic fault injection
//!   (drops, stalls, corruption, truncation) with failed attempts priced in
//!   simulated time; [`RetryPolicy`] describes a client's retry budget.
//! * [`EventQueue`] / [`FifoLane`] — the event-driven core for fleet-scale
//!   runs: a deterministic binary-heap event queue keyed on sim-time plus
//!   per-link FIFO lanes, replacing eager whole-transfer pricing so that
//!   simulating N concurrent clients costs O(events), not O(N × polling).
//!
//! Every deployment result in `gear-client` and `gear-bench` is a pure
//! function of these models plus the workload, so runs are reproducible
//! bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use gear_simnet::{Link, VirtualClock};
//!
//! let clock = VirtualClock::new();
//! let link = Link::mbps(100.0);
//! clock.advance(link.request_time(1_000_000)); // download 1 MB
//! assert!(clock.elapsed().as_millis() >= 80);   // ~80 ms of transfer
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod crash;
mod disk;
mod event;
mod fault;
mod link;
mod metrics;
mod stream;

pub use clock::VirtualClock;
pub use crash::{CrashPlan, CrashPoint};
pub use disk::DiskModel;
pub use event::{EventQueue, FifoLane, LaneSlot};
pub use fault::{FaultKind, FaultPlan, FaultyLink, LinkOutcome, RetryPolicy};
pub use link::{Bandwidth, Link};
pub use metrics::NetMetrics;
pub use stream::{StreamConfig, StreamSchedule};
