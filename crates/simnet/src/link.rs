//! Network link model.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Link bandwidth, stored in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From megabits per second.
    pub fn mbps(mbps: f64) -> Self {
        Bandwidth(mbps * 1_000_000.0)
    }

    /// From gigabits per second.
    pub fn gbps(gbps: f64) -> Self {
        Bandwidth(gbps * 1_000_000_000.0)
    }

    /// In bits per second.
    pub fn bits_per_sec(&self) -> f64 {
        self.0
    }

    /// In megabits per second.
    pub fn as_mbps(&self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// Time to move `bytes` payload bytes at this rate.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.0)
    }
}

/// A point-to-point link between a client and a registry.
///
/// A request costs `rtt + request_overhead + payload_bits / bandwidth`. The
/// per-request overhead models HTTP/registry processing; it is what makes
/// many small fetches (Slacker's blocks) slower than few larger ones (Gear's
/// files) at the same total byte count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Payload bandwidth.
    pub bandwidth: Bandwidth,
    /// Round-trip latency charged once per request.
    pub rtt: Duration,
    /// Fixed server/client processing overhead per request.
    pub request_overhead: Duration,
    /// Concurrent transfers the link endpoint keeps in flight (`1` =
    /// strictly sequential requests). Streams share `bandwidth` fairly but
    /// overlap their fixed costs; see [`Link::stream_schedule`].
    #[serde(default = "default_streams")]
    pub streams: usize,
}

fn default_streams() -> usize {
    1
}

impl Link {
    /// A link of the given bandwidth with LAN-like latency defaults
    /// (0.2 ms RTT, 0.5 ms per-request overhead).
    pub fn mbps(mbps: f64) -> Self {
        Link {
            bandwidth: Bandwidth::mbps(mbps),
            rtt: Duration::from_micros(200),
            request_overhead: Duration::from_micros(500),
            streams: 1,
        }
    }

    /// The paper's measured testbed link: 904 Mbps between two servers
    /// (paper §V-A).
    pub fn paper_testbed() -> Self {
        Link::mbps(904.0)
    }

    /// The four bandwidth settings used in the deployment-time experiments
    /// (paper Fig. 9): 904, 100, 20, and 5 Mbps.
    pub fn figure9_presets() -> [(&'static str, Link); 4] {
        [
            ("904Mbps", Link::paper_testbed()),
            ("100Mbps", Link::mbps(100.0)),
            ("20Mbps", Link::mbps(20.0)),
            ("5Mbps", Link::mbps(5.0)),
        ]
    }

    /// Returns a copy with a different RTT.
    pub fn with_rtt(mut self, rtt: Duration) -> Self {
        self.rtt = rtt;
        self
    }

    /// Returns a copy with a different per-request overhead.
    pub fn with_request_overhead(mut self, overhead: Duration) -> Self {
        self.request_overhead = overhead;
        self
    }

    /// Returns a copy keeping `streams` transfers in flight (clamped to
    /// at least 1).
    pub fn with_streams(mut self, streams: usize) -> Self {
        self.streams = streams.max(1);
        self
    }

    /// Total time for one request transferring `payload_bytes`.
    pub fn request_time(&self, payload_bytes: u64) -> Duration {
        self.rtt + self.request_overhead + self.bandwidth.transfer_time(payload_bytes)
    }

    /// Time for `count` requests whose payloads sum to `total_bytes`, with
    /// `pipeline` requests kept in flight (fixed costs overlap; the shared
    /// link serializes payload bytes).
    ///
    /// `pipeline = 1` is strictly sequential. Docker pulls layers with 3
    /// parallel downloads; block stores pipeline reads aggressively.
    pub fn batch_time(&self, count: u64, total_bytes: u64, pipeline: u32) -> Duration {
        if count == 0 {
            return Duration::ZERO;
        }
        let pipeline = pipeline.max(1) as u64;
        let fixed = self.rtt + self.request_overhead;
        let effective_rounds = count.div_ceil(pipeline);
        fixed * (effective_rounds as u32) + self.bandwidth.transfer_time(total_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_transfer_time() {
        // 1 MB at 8 Mbps = 1 second.
        let bw = Bandwidth::mbps(8.0);
        assert_eq!(bw.transfer_time(1_000_000), Duration::from_secs(1));
        assert_eq!(Bandwidth::gbps(1.0).as_mbps(), 1000.0);
    }

    #[test]
    fn request_time_includes_fixed_costs() {
        let link = Link::mbps(8.0);
        let t = link.request_time(1_000_000);
        assert!(t > Duration::from_secs(1));
        assert!(t < Duration::from_millis(1010));
    }

    #[test]
    fn batch_pipelining_reduces_fixed_costs() {
        let link = Link::mbps(100.0);
        let sequential = link.batch_time(100, 1_000_000, 1);
        let pipelined = link.batch_time(100, 1_000_000, 16);
        assert!(pipelined < sequential);
        // Payload time is identical; only fixed costs shrink.
        let payload = link.bandwidth.transfer_time(1_000_000);
        assert!(pipelined >= payload);
    }

    #[test]
    fn zero_requests_cost_nothing() {
        assert_eq!(Link::mbps(10.0).batch_time(0, 0, 4), Duration::ZERO);
    }

    #[test]
    fn presets_cover_paper_settings() {
        let presets = Link::figure9_presets();
        assert_eq!(presets.len(), 4);
        assert!((presets[0].1.bandwidth.as_mbps() - 904.0).abs() < 1e-9);
        assert!((presets[3].1.bandwidth.as_mbps() - 5.0).abs() < 1e-9);
    }
}
