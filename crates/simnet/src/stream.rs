//! Multi-stream transfer scheduling over a shared [`Link`].
//!
//! A [`Link`] prices one request at a time; real clients keep several
//! transfers in flight. This module computes how long a *batch* of requests
//! takes when up to `streams` of them run concurrently:
//!
//! * every request starts with a latency phase of `fixed` simulated time
//!   (RTT + per-request overhead, possibly amplified by the caller) that
//!   overlaps freely with everything else;
//! * transferring requests share the link's bandwidth **fairly** — with
//!   `k` payloads moving, each progresses at `bandwidth / k`;
//! * at most `max_buffered_bytes` of *undelivered* payload may be admitted:
//!   requests are started in order, delivered in order, and a request whose
//!   payload would overflow the window waits until the in-order delivery
//!   frontier drains (the bounded-memory pulling discipline — a consumer
//!   that unpacks files in order can never be forced to buffer more than
//!   the window).
//!
//! The schedule is a deterministic discrete-event simulation: charge = the
//! completion time of the *last* request, not the sum of all of them. With
//! `streams = 1` the schedule degenerates to exact sequential
//! [`Link::request_time`] arithmetic (same `Duration` sums, bit-for-bit),
//! which is what keeps single-stream experiments reproducible against
//! historical numbers.

use std::time::Duration;

use crate::link::Link;

/// How a batch of transfers may overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Concurrent requests kept in flight (`1` = strictly sequential).
    pub streams: usize,
    /// Bound on undelivered payload bytes (in flight or completed but
    /// blocked behind the in-order delivery frontier). A single payload
    /// larger than the window is still admitted — alone — so progress is
    /// always possible; the effective bound is
    /// `max(max_buffered_bytes, largest single payload)`.
    pub max_buffered_bytes: u64,
}

impl StreamConfig {
    /// Sequential transfers, unbounded window — the historical behaviour.
    pub fn sequential() -> Self {
        StreamConfig { streams: 1, max_buffered_bytes: u64::MAX }
    }

    /// `streams` concurrent transfers, unbounded window.
    pub fn concurrent(streams: usize) -> Self {
        StreamConfig { streams: streams.max(1), max_buffered_bytes: u64::MAX }
    }

    /// Caps the undelivered-bytes window.
    pub fn with_window(mut self, max_buffered_bytes: u64) -> Self {
        self.max_buffered_bytes = max_buffered_bytes;
        self
    }
}

/// The computed schedule of one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSchedule {
    /// Completion time of the whole batch (max over per-request completion
    /// times — the virtual-clock charge).
    pub duration: Duration,
    /// Per-request completion offsets, in submission order.
    pub completions: Vec<Duration>,
    /// Most requests simultaneously in flight at any instant.
    pub peak_in_flight: usize,
    /// Most undelivered payload bytes held at any instant.
    pub peak_buffered_bytes: u64,
    /// Requests whose start was delayed by the window (not by streams).
    pub window_stalls: u64,
}

impl StreamSchedule {
    fn empty() -> Self {
        StreamSchedule {
            duration: Duration::ZERO,
            completions: Vec::new(),
            peak_in_flight: 0,
            peak_buffered_bytes: 0,
            window_stalls: 0,
        }
    }

    /// Reports this schedule to `telemetry`: a complete `simnet/transfer`
    /// span starting at the recorder's sim-time cursor and lasting the batch
    /// duration, plus wire-level counters (`simnet.wire_bytes`,
    /// `simnet.transfers`, `simnet.window_stalls`), the
    /// `simnet.peak_buffered_bytes` high-water gauge, and one
    /// `simnet.transfer_bytes` histogram observation per payload. The cursor
    /// is not advanced — the caller owns pricing.
    pub fn record(&self, telemetry: &gear_telemetry::Telemetry, payloads: &[u64]) {
        if !telemetry.enabled() || payloads.is_empty() {
            return;
        }
        let wire_bytes: u64 = payloads.iter().sum();
        let span = telemetry.span_at("simnet", "transfer", telemetry.now(), self.duration);
        telemetry.span_arg(span, "bytes", wire_bytes);
        telemetry.span_arg(span, "transfers", payloads.len() as u64);
        telemetry.count("simnet.wire_bytes", wire_bytes);
        telemetry.count("simnet.transfers", payloads.len() as u64);
        telemetry.count("simnet.window_stalls", self.window_stalls);
        telemetry.gauge_max("simnet.peak_buffered_bytes", self.peak_buffered_bytes);
        telemetry.sketch("simnet.transfer_nanos", self.duration.as_nanos() as u64);
        for &payload in payloads {
            telemetry.observe("simnet.transfer_bytes", payload);
        }
    }
}

/// One in-flight request inside the event loop.
struct InFlight {
    index: usize,
    /// Remaining latency seconds before the payload starts moving.
    latency_left: f64,
    /// Remaining payload bits.
    bits_left: f64,
}

impl Link {
    /// Schedules `payloads` (bytes, in submission order) over this link with
    /// `fixed` per-request latency and the given concurrency/window policy;
    /// see the module docs for the model.
    pub fn stream_schedule(
        &self,
        fixed: Duration,
        payloads: &[u64],
        config: StreamConfig,
    ) -> StreamSchedule {
        if payloads.is_empty() {
            return StreamSchedule::empty();
        }
        if config.streams <= 1 {
            return self.sequential_schedule(fixed, payloads, config.max_buffered_bytes);
        }
        self.concurrent_schedule(fixed, payloads, config)
    }

    /// Exact sequential arithmetic: the same per-request `Duration` values a
    /// caller charging `fixed + transfer_time(bytes)` one by one would sum.
    ///
    /// Runs on the event-driven [`crate::FifoLane`] core: a lone client
    /// booking back-to-back transfers onto a FIFO lane performs the exact
    /// same integer additions (`start + fixed + transfer_time`), so the
    /// schedule stays bit-identical to the historical eager sums.
    fn sequential_schedule(
        &self,
        fixed: Duration,
        payloads: &[u64],
        window: u64,
    ) -> StreamSchedule {
        let mut lane = crate::event::FifoLane::new(*self);
        let mut completions = Vec::with_capacity(payloads.len());
        let mut peak = 0u64;
        for &bytes in payloads {
            completions.push(lane.transfer_with_fixed(Duration::ZERO, fixed, bytes).done);
            peak = peak.max(bytes);
        }
        StreamSchedule {
            duration: lane.busy_until(),
            completions,
            peak_in_flight: 1,
            // Sequential delivery drains each payload before the next
            // starts; the window can only ever hold one payload.
            peak_buffered_bytes: peak.min(window.max(peak)),
            window_stalls: 0,
        }
    }

    fn concurrent_schedule(
        &self,
        fixed: Duration,
        payloads: &[u64],
        config: StreamConfig,
    ) -> StreamSchedule {
        let n = payloads.len();
        let fixed_s = fixed.as_secs_f64();
        let bits_per_sec = self.bandwidth.bits_per_sec().max(f64::MIN_POSITIVE);

        let mut now = 0.0f64;
        let mut next = 0usize; // next request to admit
        let mut active: Vec<InFlight> = Vec::with_capacity(config.streams);
        let mut done = vec![false; n];
        let mut completions_s = vec![0.0f64; n];
        let mut delivered = 0usize; // in-order delivery frontier
        let mut buffered: u64 = 0; // undelivered payload bytes admitted
        let mut peak_in_flight = 0usize;
        let mut peak_buffered = 0u64;
        let mut window_stalls = 0u64;
        let mut stall_counted = vec![false; n];

        loop {
            // Admit requests while a stream is free and the window allows.
            while next < n && active.len() < config.streams {
                let bytes = payloads[next];
                let fits =
                    buffered == 0 || buffered.saturating_add(bytes) <= config.max_buffered_bytes;
                if !fits {
                    if !stall_counted[next] {
                        stall_counted[next] = true;
                        window_stalls += 1;
                    }
                    break;
                }
                buffered += bytes;
                peak_buffered = peak_buffered.max(buffered);
                active.push(InFlight {
                    index: next,
                    latency_left: fixed_s,
                    bits_left: bytes as f64 * 8.0,
                });
                next += 1;
            }
            if active.is_empty() {
                break; // all admitted requests finished; window can't block here
            }
            peak_in_flight = peak_in_flight.max(active.len());

            // Next event: a latency phase expiring or a transfer draining at
            // the fair-share rate.
            let transferring = active.iter().filter(|r| r.latency_left <= 0.0).count();
            let rate = if transferring > 0 { bits_per_sec / transferring as f64 } else { 0.0 };
            let mut dt = f64::INFINITY;
            for request in &active {
                let eta = if request.latency_left > 0.0 {
                    request.latency_left
                } else if rate > 0.0 {
                    request.bits_left / rate
                } else {
                    f64::INFINITY
                };
                dt = dt.min(eta);
            }
            debug_assert!(dt.is_finite(), "stream schedule must always progress");
            now += dt;

            // Advance every request by dt and retire the finished ones.
            let mut index = 0;
            while index < active.len() {
                let request = &mut active[index];
                if request.latency_left > 0.0 {
                    request.latency_left -= dt;
                    if request.latency_left <= 1e-12 {
                        request.latency_left = 0.0;
                    }
                } else {
                    request.bits_left -= rate * dt;
                }
                if request.latency_left <= 0.0 && request.bits_left <= 1e-6 {
                    done[request.index] = true;
                    completions_s[request.index] = now;
                    active.swap_remove(index);
                } else {
                    index += 1;
                }
            }

            // Drain the in-order delivery frontier.
            while delivered < n && done[delivered] {
                buffered -= payloads[delivered];
                delivered += 1;
            }
        }

        let completions: Vec<Duration> =
            completions_s.iter().map(|&s| Duration::from_secs_f64(s)).collect();
        StreamSchedule {
            duration: Duration::from_secs_f64(now),
            completions,
            peak_in_flight,
            peak_buffered_bytes: peak_buffered,
            window_stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::mbps(80.0) // 10 MB/s
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let schedule = link().stream_schedule(
            Duration::from_millis(5),
            &[],
            StreamConfig::concurrent(4),
        );
        assert_eq!(schedule.duration, Duration::ZERO);
        assert!(schedule.completions.is_empty());
    }

    #[test]
    fn sequential_matches_request_time_sums_exactly() {
        let link = link();
        let fixed = link.rtt + link.request_overhead;
        let payloads = [10_000u64, 250_000, 999, 0, 1_000_000];
        let schedule =
            link.stream_schedule(fixed, &payloads, StreamConfig::sequential());
        let mut expected = Duration::ZERO;
        for &bytes in &payloads {
            expected += link.request_time(bytes);
        }
        assert_eq!(schedule.duration, expected, "bit-for-bit sequential sums");
        assert_eq!(schedule.completions.len(), payloads.len());
        assert_eq!(*schedule.completions.last().unwrap(), expected);
        assert_eq!(schedule.peak_in_flight, 1);
    }

    #[test]
    fn more_streams_never_slower() {
        let link = link();
        let fixed = Duration::from_millis(8);
        let payloads: Vec<u64> = (0..40).map(|i| 20_000 + i * 1_000).collect();
        let mut previous = link
            .stream_schedule(fixed, &payloads, StreamConfig::sequential())
            .duration;
        for streams in [2usize, 4, 8, 16] {
            let t = link
                .stream_schedule(fixed, &payloads, StreamConfig::concurrent(streams))
                .duration;
            assert!(
                t <= previous,
                "{streams} streams took {t:?}, slower than fewer streams ({previous:?})"
            );
            previous = t;
        }
    }

    #[test]
    fn latency_overlap_saves_roughly_the_fixed_costs() {
        // 20 equal payloads with a fat fixed cost: 4 streams should cut the
        // serial fixed component by close to 4x while payload time is shared.
        let link = link();
        let fixed = Duration::from_millis(50);
        let payloads = [10_000u64; 20];
        let serial = link.stream_schedule(fixed, &payloads, StreamConfig::sequential());
        let wide = link.stream_schedule(fixed, &payloads, StreamConfig::concurrent(4));
        let payload_floor = link.bandwidth.transfer_time(payloads.iter().sum());
        assert!(wide.duration >= payload_floor, "cannot beat the shared link");
        assert!(
            wide.duration < serial.duration.mul_f64(0.5),
            "4 streams over latency-dominated work must at least halve the time: \
             {:?} !< {:?}/2",
            wide.duration,
            serial.duration
        );
    }

    #[test]
    fn fair_share_serializes_payload_bytes() {
        // Two large payloads over two streams: total time is bounded below
        // by total bits / bandwidth — concurrency overlaps latency, never
        // multiplies bandwidth.
        let link = link();
        let payloads = [2_000_000u64, 2_000_000];
        let schedule = link.stream_schedule(
            Duration::from_micros(100),
            &payloads,
            StreamConfig::concurrent(2),
        );
        let floor = link.bandwidth.transfer_time(4_000_000);
        assert!(schedule.duration >= floor);
        assert!(schedule.duration < floor + Duration::from_millis(5));
    }

    #[test]
    fn window_bounds_undelivered_bytes() {
        let link = link();
        let payloads = [30_000u64; 12];
        let config = StreamConfig::concurrent(8).with_window(70_000);
        let schedule = link.stream_schedule(Duration::from_millis(2), &payloads, config);
        assert!(
            schedule.peak_buffered_bytes <= 70_000,
            "window violated: {} > 70000",
            schedule.peak_buffered_bytes
        );
        assert!(schedule.window_stalls > 0, "a tight window must throttle admission");
        // The same batch with an unbounded window buffers more and is no slower.
        let open = link.stream_schedule(
            Duration::from_millis(2),
            &payloads,
            StreamConfig::concurrent(8),
        );
        assert!(open.peak_buffered_bytes > schedule.peak_buffered_bytes);
        assert!(open.duration <= schedule.duration);
    }

    #[test]
    fn oversized_payload_is_admitted_alone() {
        let link = link();
        let payloads = [10_000u64, 500_000, 10_000];
        let config = StreamConfig::concurrent(4).with_window(50_000);
        let schedule = link.stream_schedule(Duration::from_millis(1), &payloads, config);
        assert_eq!(schedule.completions.len(), 3, "no payload may starve");
        // The oversized payload is the only resident while it moves.
        assert!(schedule.peak_buffered_bytes >= 500_000);
    }

    #[test]
    fn completion_offsets_are_consistent() {
        let link = link();
        let payloads = [40_000u64, 10_000, 25_000, 5_000];
        let schedule = link.stream_schedule(
            Duration::from_millis(3),
            &payloads,
            StreamConfig::concurrent(2),
        );
        let max = schedule.completions.iter().max().copied().unwrap();
        assert_eq!(schedule.duration, max, "charge = max completion, not sum");
        assert!(schedule.peak_in_flight <= 2);
    }
}
