//! Deterministic crash-point injection for durable stores.
//!
//! A [`CrashPlan`] mirrors [`FaultPlan`](crate::FaultPlan), but where a fault
//! plan decides the fate of *network requests*, a crash plan decides the fate
//! of *journal writes*: a store consulting the plan before each write-ahead
//! journal append learns whether the simulated machine loses power at that
//! write — and, if so, what the durable medium is left holding. Decisions are
//! a pure function of the plan's seed and the write index, so a crash
//! schedule replays exactly: same seed, same workload, same crash, same
//! recovered state.
//!
//! A plan fires **at most once** — a machine that lost power is dead until
//! the store is recovered from its journal, at which point the harness
//! attaches a fresh plan if it wants to crash again.

use gear_telemetry::Telemetry;

/// What the durable medium holds after the power cut, relative to the
/// journal write the crash interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Power was lost before the write reached the medium: the record is
    /// entirely absent from the journal.
    BeforeWrite,
    /// Power was lost mid-write: a torn record — a prefix of the encoded
    /// bytes — sits at the journal tail and must be detected and discarded
    /// by replay.
    TornWrite,
    /// Power was lost just after the write was durable: the record is
    /// intact, but nothing after it (in particular no commit marker for an
    /// operation still in flight) ever reached the medium.
    AfterWrite,
}

impl CrashPoint {
    /// Every crash point, in replay-severity order.
    pub const ALL: [CrashPoint; 3] =
        [CrashPoint::BeforeWrite, CrashPoint::TornWrite, CrashPoint::AfterWrite];

    /// Short lowercase label (`"before"` / `"torn"` / `"after"`), used as
    /// metric key suffix and sweep-table row name.
    pub fn label(self) -> &'static str {
        match self {
            CrashPoint::BeforeWrite => "before",
            CrashPoint::TornWrite => "torn",
            CrashPoint::AfterWrite => "after",
        }
    }
}

/// A scripted crash: the journal write with index `at` is interrupted at
/// `point`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScriptedCrash {
    at: u64,
    point: CrashPoint,
}

/// A seeded, deterministic source of per-journal-write crash decisions.
///
/// Probabilistic crashes draw from the same splitmix64 stream the
/// [`FaultPlan`](crate::FaultPlan) uses, keyed by `(seed, write index)`;
/// scripted crashes ([`CrashPlan::crash_at_write`]) override the random
/// draw. Either way the plan fires at most once.
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    seed: u64,
    crash_p: f64,
    scripted: Vec<ScriptedCrash>,
    writes: u64,
    fired: Option<(u64, CrashPoint)>,
    /// Observation channel only — recording never changes crash decisions.
    telemetry: Telemetry,
}

/// Telemetry is an observation channel, not plan state: two plans are equal
/// when they crash the same writes, recorder or not.
impl PartialEq for CrashPlan {
    fn eq(&self, other: &Self) -> bool {
        self.seed == other.seed
            && self.crash_p == other.crash_p
            && self.scripted == other.scripted
            && self.writes == other.writes
            && self.fired == other.fired
    }
}

impl CrashPlan {
    /// A plan that never crashes (the crash-free default).
    pub fn never() -> Self {
        Self::default()
    }

    /// An empty plan with the given seed; add crashes with
    /// [`CrashPlan::with_crash`] or [`CrashPlan::crash_at_write`].
    pub fn new(seed: u64) -> Self {
        CrashPlan { seed, ..Self::default() }
    }

    /// Sets the per-journal-write probability of a power cut. Which
    /// [`CrashPoint`] the cut hits is drawn from the same stream, uniformly
    /// over the three points.
    pub fn with_crash(mut self, probability: f64) -> Self {
        self.crash_p = probability.clamp(0.0, 1.0);
        self
    }

    /// Scripts a deterministic power cut at journal write `at` (0-based,
    /// counting every append the store attempts), interrupted at `point`.
    pub fn crash_at_write(mut self, at: u64, point: CrashPoint) -> Self {
        self.scripted.push(ScriptedCrash { at, point });
        self
    }

    /// Reports the (single) injected crash to `telemetry`: an instant event
    /// plus `simnet.crashes` / `simnet.crashes.<point>` counters.
    pub fn set_recorder(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Builder form of [`CrashPlan::set_recorder`].
    pub fn with_recorder(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Decides the fate of the next journal write, advancing the write
    /// counter. Returns `None` once the plan has fired: the machine is
    /// already dead, later writes never happen.
    pub fn next_write(&mut self) -> Option<CrashPoint> {
        if self.fired.is_some() {
            return None;
        }
        let index = self.writes;
        self.writes += 1;
        let point = self.decision_at(index)?;
        self.fired = Some((index, point));
        if self.telemetry.enabled() {
            self.telemetry.count("simnet.crashes", 1);
            self.telemetry.count(
                match point {
                    CrashPoint::BeforeWrite => "simnet.crashes.before",
                    CrashPoint::TornWrite => "simnet.crashes.torn",
                    CrashPoint::AfterWrite => "simnet.crashes.after",
                },
                1,
            );
            self.telemetry.instant("simnet", "crash");
        }
        Some(point)
    }

    /// The decision for journal write `index` without advancing any state
    /// (and ignoring whether the plan already fired).
    pub fn decision_at(&self, index: u64) -> Option<CrashPoint> {
        for s in &self.scripted {
            if s.at == index {
                return Some(s.point);
            }
        }
        let unit = crate::fault::unit_draw(self.seed, index);
        if unit < self.crash_p {
            // A second draw (offset stream) picks the crash point uniformly.
            let which = crate::fault::unit_draw(self.seed ^ 0x0063_7261_7368_u64, index);
            let idx = ((which * 3.0) as usize).min(2);
            return Some(CrashPoint::ALL[idx]);
        }
        None
    }

    /// Journal writes decided so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The crash this plan injected, as `(write index, point)`; `None`
    /// while the machine is still up.
    pub fn fired(&self) -> Option<(u64, CrashPoint)> {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_plan_never_crashes() {
        let mut plan = CrashPlan::never();
        assert!((0..200).all(|_| plan.next_write().is_none()));
        assert_eq!(plan.writes(), 200);
        assert_eq!(plan.fired(), None);
    }

    #[test]
    fn same_seed_same_crash() {
        let mut a = CrashPlan::new(7).with_crash(0.05);
        let mut b = CrashPlan::new(7).with_crash(0.05);
        let fate_a: Vec<_> = (0..400).map(|_| a.next_write()).collect();
        let fate_b: Vec<_> = (0..400).map(|_| b.next_write()).collect();
        assert_eq!(fate_a, fate_b);
        assert_eq!(a.fired(), b.fired());
        assert!(a.fired().is_some(), "p=0.05 over 400 writes fires with this seed");
    }

    #[test]
    fn fires_at_most_once() {
        let mut plan = CrashPlan::new(1).with_crash(1.0);
        assert!(plan.next_write().is_some(), "certain crash fires immediately");
        assert!((0..50).all(|_| plan.next_write().is_none()), "dead machines stay dead");
        assert_eq!(plan.fired().map(|(at, _)| at), Some(0));
    }

    #[test]
    fn scripted_crash_fires_exactly_at_index() {
        let mut plan = CrashPlan::new(0).crash_at_write(3, CrashPoint::TornWrite);
        for i in 0..3u64 {
            assert_eq!(plan.next_write(), None, "write {i}");
        }
        assert_eq!(plan.next_write(), Some(CrashPoint::TornWrite));
        assert_eq!(plan.fired(), Some((3, CrashPoint::TornWrite)));
    }

    #[test]
    fn decision_at_is_pure_and_covers_all_points() {
        let plan = CrashPlan::new(99).with_crash(0.5);
        let first: Vec<_> = (0..256).map(|i| plan.decision_at(i)).collect();
        let second: Vec<_> = (0..256).map(|i| plan.decision_at(i)).collect();
        assert_eq!(first, second);
        for point in CrashPoint::ALL {
            assert!(
                first.contains(&Some(point)),
                "p=0.5 over 256 draws must hit {point:?}"
            );
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CrashPoint::BeforeWrite.label(), "before");
        assert_eq!(CrashPoint::TornWrite.label(), "torn");
        assert_eq!(CrashPoint::AfterWrite.label(), "after");
    }
}
