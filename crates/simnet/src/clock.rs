//! Shared virtual clock.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// A monotonically advancing simulated clock, cheaply cloneable and shared
/// between the components that charge time to it.
///
/// ```
/// use gear_simnet::VirtualClock;
/// use std::time::Duration;
///
/// let clock = VirtualClock::new();
/// let view = clock.clone(); // same underlying time
/// clock.advance(Duration::from_millis(250));
/// assert_eq!(view.elapsed(), Duration::from_millis(250));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    nanos: Arc<Mutex<u128>>,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances simulated time by `d`.
    pub fn advance(&self, d: Duration) {
        *self.nanos.lock() += d.as_nanos();
    }

    /// Time elapsed since the clock was created (or last [`reset`]).
    ///
    /// [`reset`]: VirtualClock::reset
    pub fn elapsed(&self) -> Duration {
        nanos_to_duration(*self.nanos.lock())
    }

    /// Resets the clock to zero.
    pub fn reset(&self) {
        *self.nanos.lock() = 0;
    }

    /// Runs `f` and returns how much simulated time it consumed along with
    /// its result.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (Duration, T) {
        let before = *self.nanos.lock();
        let out = f();
        let after = *self.nanos.lock();
        (nanos_to_duration(after - before), out)
    }
}

fn nanos_to_duration(nanos: u128) -> Duration {
    let secs = (nanos / 1_000_000_000) as u64;
    let sub = (nanos % 1_000_000_000) as u32;
    Duration::new(secs, sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_shares() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(Duration::from_secs(1));
        b.advance(Duration::from_millis(500));
        assert_eq!(a.elapsed(), Duration::from_millis(1500));
    }

    #[test]
    fn measure_reports_delta() {
        let clock = VirtualClock::new();
        clock.advance(Duration::from_secs(10));
        let (took, val) = clock.measure(|| {
            clock.advance(Duration::from_millis(42));
            7
        });
        assert_eq!(took, Duration::from_millis(42));
        assert_eq!(val, 7);
        assert_eq!(clock.elapsed(), Duration::from_millis(10_042));
    }

    #[test]
    fn reset_zeroes() {
        let clock = VirtualClock::new();
        clock.advance(Duration::from_secs(3));
        clock.reset();
        assert_eq!(clock.elapsed(), Duration::ZERO);
    }

    #[test]
    fn large_accumulation_does_not_overflow() {
        let clock = VirtualClock::new();
        for _ in 0..1000 {
            clock.advance(Duration::from_secs(1_000_000));
        }
        assert_eq!(clock.elapsed().as_secs(), 1_000_000_000);
    }
}
