//! Local-storage timing model.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Sequential-throughput + per-file-overhead disk model.
///
/// The Gear paper attributes conversion time to file-system traversal plus
/// image build I/O, dominated by per-file costs for the many small files in
/// images, and reports a 65.7 % reduction for the `node` series when moving
/// from HDD to SSD (paper §V-B). The two presets are calibrated to that
/// observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Sequential throughput in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed cost per file touched (open/create/metadata/seek).
    pub per_file: Duration,
}

impl DiskModel {
    /// A 5900 rpm surveillance HDD (the paper's WD60PURX): ~110 MB/s
    /// sequential, ~3 ms of seek/metadata cost per small file.
    pub fn hdd() -> Self {
        DiskModel { bytes_per_sec: 110.0e6, per_file: Duration::from_micros(3000) }
    }

    /// A SATA SSD: ~500 MB/s sequential, ~80 µs per file.
    pub fn ssd() -> Self {
        DiskModel { bytes_per_sec: 500.0e6, per_file: Duration::from_micros(80) }
    }

    /// A PCIe NVMe drive: ~3 GB/s sequential, ~10 µs per file. On this
    /// class of storage conversion is CPU-bound (hashing + recompression),
    /// which is what the hot-path benchmarks want to expose.
    pub fn nvme() -> Self {
        DiskModel { bytes_per_sec: 3.0e9, per_file: Duration::from_micros(10) }
    }

    /// A RAM-backed filesystem (tmpfs): ~12 GB/s copy bandwidth, ~1 µs of
    /// VFS metadata cost per file. The fastest tier the tiering experiment
    /// sweeps — near-free, but not free, so tier placement still shows up
    /// in deployment times.
    pub fn ram() -> Self {
        DiskModel { bytes_per_sec: 12.0e9, per_file: Duration::from_micros(1) }
    }

    /// Time to read or write `bytes` spread over `files` files.
    pub fn io_time(&self, bytes: u64, files: u64) -> Duration {
        self.per_file * (files as u32)
            + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Time to stat/traverse `files` directory entries without reading data.
    pub fn traverse_time(&self, files: u64) -> Duration {
        // Metadata-only access: cheaper than a full per-file open+read.
        self.per_file / 2 * (files as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_is_much_faster_per_file() {
        // 10k small files totalling 100 MB: HDD should be several times
        // slower, dominated by per-file costs (the paper's Fig. 6 argument).
        let bytes = 100_000_000;
        let files = 10_000;
        let hdd = DiskModel::hdd().io_time(bytes, files);
        let ssd = DiskModel::ssd().io_time(bytes, files);
        let speedup = hdd.as_secs_f64() / ssd.as_secs_f64();
        assert!(speedup > 2.0, "speedup {speedup}");
    }

    #[test]
    fn nvme_is_fastest_disk() {
        let bytes = 100_000_000;
        let files = 10_000;
        assert!(DiskModel::nvme().io_time(bytes, files) < DiskModel::ssd().io_time(bytes, files));
    }

    #[test]
    fn ram_beats_every_disk_but_is_not_free() {
        let bytes = 100_000_000;
        let files = 10_000;
        let ram = DiskModel::ram().io_time(bytes, files);
        assert!(ram < DiskModel::nvme().io_time(bytes, files));
        assert!(ram > Duration::ZERO);
    }

    #[test]
    fn io_time_scales_linearly() {
        let disk = DiskModel::ssd();
        let one = disk.io_time(1_000_000, 10);
        let two = disk.io_time(2_000_000, 20);
        assert!((two.as_secs_f64() - 2.0 * one.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn traverse_cheaper_than_io() {
        let disk = DiskModel::hdd();
        assert!(disk.traverse_time(1000) < disk.io_time(0, 1000));
    }
}
