//! Property-based tests on the VFS and union-mount invariants.

use std::sync::Arc;

use bytes::Bytes;
use gear_fs::{FsTree, NoFetch, UnionFs};
use proptest::prelude::*;

fn any_component() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,6}".prop_filter("reserved", |s| s != "." && s != "..")
}

fn any_rel_path() -> impl Strategy<Value = String> {
    proptest::collection::vec(any_component(), 1..4).prop_map(|v| v.join("/"))
}

/// A random sequence of mutations applied to a union mount.
#[derive(Debug, Clone)]
enum Op {
    Write(String, Vec<u8>),
    Mkdir(String),
    Unlink(String),
}

fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any_rel_path(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(p, c)| Op::Write(p, c)),
        any_rel_path().prop_map(Op::Mkdir),
        any_rel_path().prop_map(Op::Unlink),
    ]
}

fn any_lower() -> impl Strategy<Value = FsTree> {
    proptest::collection::vec(
        (any_rel_path(), proptest::collection::vec(any::<u8>(), 0..16)),
        0..12,
    )
    .prop_map(|files| {
        let mut t = FsTree::new();
        for (p, c) in files {
            let _ = t.create_file(&p, Bytes::from(c));
        }
        t
    })
}

proptest! {
    /// `diff()` applied to the lower state reproduces `flatten()` — the
    /// union mount's commit invariant — for arbitrary operation sequences.
    #[test]
    fn commit_invariant(lower in any_lower(), ops in proptest::collection::vec(any_op(), 0..24)) {
        let lower = Arc::new(lower);
        let mut mount = UnionFs::new(vec![lower.clone()]);
        for op in ops {
            match op {
                Op::Write(p, c) => { let _ = mount.write(&p, Bytes::from(c)); }
                Op::Mkdir(p) => { let _ = mount.mkdir_p(&p); }
                Op::Unlink(p) => { let _ = mount.unlink(&p); }
            }
        }
        let mut replay = (*lower).clone();
        replay.apply_layer(&mount.diff()).unwrap();
        prop_assert_eq!(replay, mount.flatten());
    }

    /// After a successful write, reading the same path returns the bytes.
    #[test]
    fn read_your_writes(lower in any_lower(), path in any_rel_path(), content in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut mount = UnionFs::new(vec![Arc::new(lower)]);
        if mount.write(&path, Bytes::from(content.clone())).is_ok() {
            prop_assert_eq!(&mount.read(&path, &NoFetch).unwrap()[..], &content[..]);
        }
    }

    /// After unlink, the path is gone; unlink of visible paths never errors.
    #[test]
    fn unlink_removes(lower in any_lower(), path in any_rel_path()) {
        let mut mount = UnionFs::new(vec![Arc::new(lower)]);
        if mount.contains(&path) {
            mount.unlink(&path).unwrap();
            prop_assert!(!mount.contains(&path));
        } else {
            prop_assert!(mount.unlink(&path).is_err());
        }
    }

    /// Tree stats agree with a walk-based recount after arbitrary inserts.
    #[test]
    fn stats_agree_with_walk(files in proptest::collection::vec((any_rel_path(), proptest::collection::vec(any::<u8>(), 0..16)), 0..16)) {
        let mut t = FsTree::new();
        for (p, c) in &files {
            let _ = t.create_file(p, Bytes::from(c.clone()));
        }
        let s = t.stats();
        let files_n = t.walk().filter(|(_, n)| n.is_file()).count() as u64;
        let bytes_n: u64 = t.walk().map(|(_, n)| n.size()).sum();
        prop_assert_eq!(s.files, files_n);
        prop_assert_eq!(s.bytes, bytes_n);
    }

    /// to_layer/apply_layer roundtrips arbitrary trees.
    #[test]
    fn layer_roundtrip(lower in any_lower()) {
        let layer = lower.to_layer();
        let mut rebuilt = FsTree::new();
        rebuilt.apply_layer(&layer).unwrap();
        prop_assert_eq!(rebuilt, lower);
    }
}
