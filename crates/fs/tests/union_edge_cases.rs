//! Edge-case integration tests for the union mount: multi-layer masking,
//! symlink pathologies, whiteout/opaque interactions, and metadata flow.

use std::sync::Arc;

use bytes::Bytes;
use gear_archive::Metadata;
use gear_fs::{FsError, FsTree, NoFetch, Node, UnionFs};

fn tree(files: &[(&str, &[u8])]) -> FsTree {
    let mut t = FsTree::new();
    for (p, c) in files {
        t.create_file(p, Bytes::copy_from_slice(c)).unwrap();
    }
    t
}

#[test]
fn lower_file_masks_deeper_directory() {
    // Deep layer has a directory `conf/`; a higher layer replaces it with a
    // *file* `conf`. The directory's children must become invisible.
    let deep = tree(&[("conf/a", b"deep"), ("conf/b", b"deep")]);
    let mut shallow = FsTree::new();
    shallow.create_file("conf", Bytes::from_static(b"now a file")).unwrap();
    let mut mount = UnionFs::new(vec![Arc::new(deep), Arc::new(shallow)]);
    assert_eq!(&mount.read("conf", &NoFetch).unwrap()[..], b"now a file");
    assert!(matches!(mount.read("conf/a", &NoFetch), Err(FsError::NotFound(_))));
    assert!(mount.readdir("conf").is_err());
}

#[test]
fn merged_dirs_across_three_layers() {
    let l0 = tree(&[("d/zero", b"0")]);
    let l1 = tree(&[("d/one", b"1")]);
    let l2 = tree(&[("d/two", b"2")]);
    let mut mount = UnionFs::new(vec![Arc::new(l0), Arc::new(l1), Arc::new(l2)]);
    assert_eq!(mount.readdir("d").unwrap(), vec!["one", "two", "zero"]);
    for (p, want) in [("d/zero", b"0"), ("d/one", b"1"), ("d/two", b"2")] {
        assert_eq!(&mount.read(p, &NoFetch).unwrap()[..], want);
    }
}

#[test]
fn whiteout_then_mkdir_then_unlink_again() {
    let lower = tree(&[("d/f", b"x")]);
    let mut mount = UnionFs::new(vec![Arc::new(lower)]);
    mount.unlink("d").unwrap(); // whiteout the whole dir
    mount.mkdir_p("d").unwrap(); // opaque re-creation
    mount.write("d/g", Bytes::from_static(b"y")).unwrap();
    assert_eq!(mount.readdir("d").unwrap(), vec!["g"]);
    mount.unlink("d/g").unwrap();
    assert_eq!(mount.readdir("d").unwrap(), Vec::<String>::new());
    // The lower file stays hidden through all of it.
    assert!(mount.read("d/f", &NoFetch).is_err());
}

#[test]
fn symlink_chain_across_layers() {
    // A symlink in an upper layer pointing into a lower layer, via a
    // relative `..` hop.
    let lower = tree(&[("data/real.txt", b"payload")]);
    let mut upper_tree = FsTree::new();
    upper_tree
        .insert("links/to-data", Node::symlink(Metadata::file_default(), "../data/real.txt"))
        .unwrap();
    let mut mount = UnionFs::new(vec![Arc::new(lower), Arc::new(upper_tree)]);
    assert_eq!(&mount.read("links/to-data", &NoFetch).unwrap()[..], b"payload");
}

#[test]
fn symlink_target_beyond_root_clamps_like_posix() {
    // `/..` resolves to `/` on POSIX; a target climbing past the root must
    // not panic and should resolve from the root.
    let mut t = FsTree::new();
    t.create_file("etc/passwd", Bytes::from_static(b"root")).unwrap();
    t.insert("weird", Node::symlink(Metadata::file_default(), "../../../etc/passwd")).unwrap();
    let mut mount = UnionFs::new(vec![Arc::new(t)]);
    assert_eq!(&mount.read("weird", &NoFetch).unwrap()[..], b"root");
}

#[test]
fn dangling_symlink_is_not_found() {
    let mut t = FsTree::new();
    t.insert("dangling", Node::symlink(Metadata::file_default(), "/no/such/file")).unwrap();
    let mut mount = UnionFs::new(vec![Arc::new(t)]);
    assert!(matches!(mount.read("dangling", &NoFetch), Err(FsError::NotFound(_))));
    // But reading the link itself (no follow) works.
    assert_eq!(mount.symlink_target("dangling").unwrap(), "/no/such/file");
}

#[test]
fn sixty_symlink_hops_is_a_loop_error() {
    let mut t = FsTree::new();
    t.create_file("end", Bytes::from_static(b"done")).unwrap();
    for i in 0..60 {
        let target = if i == 59 { "end".to_owned() } else { format!("hop{}", i + 1) };
        t.insert(&format!("hop{i}"), Node::symlink(Metadata::file_default(), target)).unwrap();
    }
    let mut mount = UnionFs::new(vec![Arc::new(t)]);
    assert!(matches!(mount.read("hop0", &NoFetch), Err(FsError::SymlinkLoop(_))));
}

#[test]
fn metadata_survives_copy_up_write() {
    let mut lower = FsTree::new();
    lower
        .insert(
            "bin/tool",
            Node::File(gear_fs::FileNode {
                meta: Metadata { mode: 0o755, uid: 10, gid: 20, mtime: 99 },
                data: gear_fs::FileData::Inline(Bytes::from_static(b"v1")),
            }),
        )
        .unwrap();
    let mut mount = UnionFs::new(vec![Arc::new(lower)]);
    mount.write("bin/tool", Bytes::from_static(b"v2")).unwrap();
    let meta = mount.metadata("bin/tool").unwrap();
    assert_eq!(meta.mode, 0o755, "overwrite preserves the original mode");
    assert_eq!(meta.uid, 10);
}

#[test]
fn readdir_root_merges_upper_and_lower() {
    let lower = tree(&[("from-lower", b"1")]);
    let mut mount = UnionFs::new(vec![Arc::new(lower)]);
    mount.write("from-upper", Bytes::from_static(b"2")).unwrap();
    let names = mount.readdir("").unwrap();
    assert!(names.contains(&"from-lower".to_owned()));
    assert!(names.contains(&"from-upper".to_owned()));
}

#[test]
fn write_through_symlinked_parent_fails_cleanly() {
    // Writing to a path whose ancestor is a file must not corrupt the tree.
    let lower = tree(&[("blocker", b"file")]);
    let mut mount = UnionFs::new(vec![Arc::new(lower)]);
    assert!(matches!(
        mount.write("blocker/child", Bytes::from_static(b"x")),
        Err(FsError::NotADirectory(_))
    ));
    // Mount still consistent.
    assert_eq!(&mount.read("blocker", &NoFetch).unwrap()[..], b"file");
}

#[test]
fn read_range_clamps_at_eof() {
    let lower = tree(&[("f", b"0123456789")]);
    let mut mount = UnionFs::new(vec![Arc::new(lower)]);
    assert_eq!(&mount.read_range("f", 5, 100, &NoFetch).unwrap()[..], b"56789");
    assert!(mount.read_range("f", 50, 10, &NoFetch).unwrap().is_empty());
}

#[test]
fn flatten_after_heavy_mutation_matches_replay() {
    let lower = tree(&[("a/1", b"x"), ("a/2", b"y"), ("b/3", b"z")]);
    let lower = Arc::new(lower);
    let mut mount = UnionFs::new(vec![Arc::clone(&lower)]);
    mount.unlink("a/1").unwrap();
    mount.write("a/4", Bytes::from_static(b"new")).unwrap();
    mount.unlink("b").unwrap();
    mount.mkdir_p("b").unwrap();
    mount.write("b/5", Bytes::from_static(b"five")).unwrap();
    mount.symlink("s", "/a/4").unwrap();

    let mut replay = (*lower).clone();
    replay.apply_layer(&mount.diff()).unwrap();
    assert_eq!(replay, mount.flatten());
    // Sanity on the merged view itself.
    assert_eq!(&mount.read("s", &NoFetch).unwrap()[..], b"new");
    assert!(mount.read("b/3", &NoFetch).is_err());
}
