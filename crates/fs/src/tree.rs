//! A mutable directory tree with layer replay.

use bytes::Bytes;
use gear_archive::{Archive, ArchivePath, Entry, EntryKind, Metadata};

use crate::error::FsError;
use crate::node::{FileData, FileNode, Node};

/// Aggregate statistics over a tree (see [`FsTree::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of regular files.
    pub files: u64,
    /// Number of directories (excluding the root).
    pub dirs: u64,
    /// Number of symlinks.
    pub symlinks: u64,
    /// Total logical bytes of regular-file content.
    pub bytes: u64,
}

/// A mutable in-memory file-system tree rooted at `/`.
///
/// Paths are the rooted-relative [`ArchivePath`] strings used throughout the
/// workspace ("`etc/passwd`", never "`/etc/passwd`"). String-accepting
/// methods validate with [`ArchivePath::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsTree {
    root: Node,
}

impl Default for FsTree {
    fn default() -> Self {
        Self::new()
    }
}

impl FsTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        FsTree { root: Node::empty_dir(Metadata::dir_default()) }
    }

    /// Looks up the node at `path` without following symlinks.
    pub fn get(&self, path: &str) -> Option<&Node> {
        let mut node = &self.root;
        if path.is_empty() {
            return Some(node);
        }
        for comp in path.split('/') {
            match node {
                Node::Dir { children, .. } => node = children.get(comp)?,
                _ => return None,
            }
        }
        Some(node)
    }

    /// Mutable lookup without following symlinks.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut Node> {
        let mut node = &mut self.root;
        if path.is_empty() {
            return Some(node);
        }
        for comp in path.split('/') {
            match node {
                Node::Dir { children, .. } => node = children.get_mut(comp)?,
                _ => return None,
            }
        }
        Some(node)
    }

    /// Whether an entry exists at `path`.
    pub fn contains(&self, path: &str) -> bool {
        self.get(path).is_some()
    }

    /// Creates directory `path` and any missing ancestors.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] if a non-directory blocks the path;
    /// [`FsError::InvalidPath`] for malformed paths.
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), FsError> {
        let valid = ArchivePath::new(path).map_err(|e| FsError::InvalidPath(e.to_string()))?;
        let mut node = &mut self.root;
        let mut walked = String::new();
        for comp in valid.components() {
            if !walked.is_empty() {
                walked.push('/');
            }
            walked.push_str(comp);
            let Node::Dir { children, .. } = node else {
                return Err(FsError::NotADirectory(walked));
            };
            node = children
                .entry(comp.to_owned())
                .or_insert_with(|| Node::empty_dir(Metadata::dir_default()));
        }
        if !node.is_dir() {
            return Err(FsError::NotADirectory(path.to_owned()));
        }
        Ok(())
    }

    /// Inserts `node` at `path`, creating missing parent directories and
    /// replacing any existing entry at `path`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] if a non-directory blocks an ancestor;
    /// [`FsError::InvalidPath`] for malformed paths.
    pub fn insert(&mut self, path: &str, node: Node) -> Result<(), FsError> {
        let valid = ArchivePath::new(path).map_err(|e| FsError::InvalidPath(e.to_string()))?;
        if let Some(parent) = valid.parent() {
            self.mkdir_p(parent.as_str())?;
        }
        let parent = match valid.parent() {
            Some(p) => self.get_mut(p.as_str()).expect("just created"),
            None => &mut self.root,
        };
        let Node::Dir { children, .. } = parent else {
            return Err(FsError::NotADirectory(path.to_owned()));
        };
        children.insert(valid.file_name().to_owned(), node);
        Ok(())
    }

    /// Convenience: inserts an inline regular file with default metadata.
    ///
    /// # Errors
    ///
    /// Same as [`FsTree::insert`].
    pub fn create_file(&mut self, path: &str, content: Bytes) -> Result<(), FsError> {
        self.insert(path, Node::inline_file(Metadata::file_default(), content))
    }

    /// Removes and returns the node at `path` (recursively for directories).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if nothing exists at `path`.
    pub fn remove(&mut self, path: &str) -> Result<Node, FsError> {
        let valid = ArchivePath::new(path).map_err(|e| FsError::InvalidPath(e.to_string()))?;
        let parent_path = valid.parent().map(|p| p.as_str().to_owned()).unwrap_or_default();
        let parent = self
            .get_mut(&parent_path)
            .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        let Node::Dir { children, .. } = parent else {
            return Err(FsError::NotFound(path.to_owned()));
        };
        children
            .remove(valid.file_name())
            .ok_or_else(|| FsError::NotFound(path.to_owned()))
    }

    /// Child names of the directory at `path` (empty string = root).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::NotADirectory`].
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, FsError> {
        let node = self.get(path).ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        match node {
            Node::Dir { children, .. } => Ok(children.keys().cloned().collect()),
            _ => Err(FsError::NotADirectory(path.to_owned())),
        }
    }

    /// Depth-first pre-order walk of all nodes (excluding the root), yielding
    /// `(path, node)` pairs in sorted order.
    pub fn walk(&self) -> Walk<'_> {
        let mut stack = Vec::new();
        if let Node::Dir { children, .. } = &self.root {
            // Reverse so the BTreeMap's smallest key pops first.
            for (name, node) in children.iter().rev() {
                stack.push((name.clone(), node));
            }
        }
        Walk { stack }
    }

    /// Aggregate counts and sizes.
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats::default();
        for (_, node) in self.walk() {
            match node {
                Node::Dir { .. } => s.dirs += 1,
                Node::File(f) => {
                    s.files += 1;
                    s.bytes += f.data.size();
                }
                Node::Symlink(_) => s.symlinks += 1,
            }
        }
        s
    }

    /// Replays a layer diff onto this tree, following OCI whiteout semantics:
    /// whiteouts delete lower entries, opaque dirs clear the directory before
    /// applying, files/dirs/symlinks replace existing entries, hardlinks
    /// duplicate the target's current node.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for a hardlink whose target does not exist;
    /// [`FsError::NotADirectory`] / [`FsError::InvalidPath`] as per
    /// [`FsTree::insert`]. Whiteouts of missing paths are silently ignored
    /// (matching tar extraction behaviour).
    pub fn apply_layer(&mut self, layer: &Archive) -> Result<(), FsError> {
        for entry in layer {
            self.apply_entry(entry)?;
        }
        Ok(())
    }

    fn apply_entry(&mut self, entry: &Entry) -> Result<(), FsError> {
        let path = entry.path.as_str();
        match &entry.kind {
            EntryKind::Dir { meta } => {
                // Preserve children if the directory already exists.
                self.mkdir_p(path)?;
                if let Some(Node::Dir { meta: m, .. }) = self.get_mut(path) {
                    *m = *meta;
                }
                Ok(())
            }
            EntryKind::OpaqueDir { meta } => {
                // Clear everything below, then (re)create.
                let _ = self.remove(path);
                self.insert(path, Node::empty_dir(*meta))
            }
            EntryKind::File { meta, content } => self.insert(
                path,
                Node::File(FileNode { meta: *meta, data: FileData::Inline(content.clone()) }),
            ),
            EntryKind::Symlink { meta, target } => {
                self.insert(path, Node::symlink(*meta, target.clone()))
            }
            EntryKind::Hardlink { target } => {
                let node = self
                    .get(target.as_str())
                    .ok_or_else(|| FsError::NotFound(target.as_str().to_owned()))?
                    .clone();
                self.insert(path, node)
            }
            EntryKind::Whiteout => {
                let _ = self.remove(path);
                Ok(())
            }
        }
    }

    /// Serializes the whole tree as a single layer archive (parents first).
    /// This is how a flattened root file system is turned back into a layer.
    pub fn to_layer(&self) -> Archive {
        let mut archive = Archive::new();
        for (path, node) in self.walk() {
            let apath = ArchivePath::new(&path).expect("walk yields valid paths");
            match node {
                Node::Dir { meta, .. } => archive.push(Entry::dir(apath, *meta)),
                Node::File(f) => {
                    let content = match &f.data {
                        FileData::Inline(b) => b.clone(),
                        // Placeholder bodies serialize as their textual
                        // fingerprint — exactly the Gear index "fingerprint
                        // file" representation.
                        FileData::Fingerprint { fingerprint, .. } => {
                            Bytes::from(fingerprint.to_string())
                        }
                        FileData::Chunked { chunks, .. } => {
                            let listing: String =
                                chunks.iter().map(|c| format!("{}\n", c.fingerprint)).collect();
                            Bytes::from(listing)
                        }
                    };
                    archive.push(Entry::file(apath, f.meta, content));
                }
                Node::Symlink(s) => archive.push(Entry::symlink(apath, s.meta, s.target.clone())),
            }
        }
        archive
    }
}

/// Iterator returned by [`FsTree::walk`].
#[derive(Debug)]
pub struct Walk<'a> {
    stack: Vec<(String, &'a Node)>,
}

impl<'a> Iterator for Walk<'a> {
    type Item = (String, &'a Node);

    fn next(&mut self) -> Option<Self::Item> {
        let (path, node) = self.stack.pop()?;
        if let Node::Dir { children, .. } = node {
            for (name, child) in children.iter().rev() {
                self.stack.push((format!("{path}/{name}"), child));
            }
        }
        Some((path, node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gear_archive::Entry;

    fn ap(s: &str) -> ArchivePath {
        ArchivePath::new(s).unwrap()
    }

    #[test]
    fn mkdir_p_and_lookup() {
        let mut t = FsTree::new();
        t.mkdir_p("a/b/c").unwrap();
        assert!(t.get("a/b/c").unwrap().is_dir());
        assert!(t.get("a/b").unwrap().is_dir());
        assert!(t.get("a/b/c/d").is_none());
        assert!(t.get("").unwrap().is_dir());
    }

    #[test]
    fn mkdir_through_file_fails() {
        let mut t = FsTree::new();
        t.create_file("a", Bytes::from_static(b"x")).unwrap();
        assert!(matches!(t.mkdir_p("a/b"), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn insert_replaces() {
        let mut t = FsTree::new();
        t.create_file("f", Bytes::from_static(b"one")).unwrap();
        t.create_file("f", Bytes::from_static(b"two")).unwrap();
        match t.get("f").unwrap() {
            Node::File(f) => assert_eq!(f.data.size(), 3),
            _ => panic!("expected file"),
        }
        assert_eq!(t.stats().files, 1);
    }

    #[test]
    fn remove_missing_errors() {
        let mut t = FsTree::new();
        assert!(matches!(t.remove("nope"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn walk_is_sorted_dfs() {
        let mut t = FsTree::new();
        t.create_file("b/two", Bytes::new()).unwrap();
        t.create_file("a/one", Bytes::new()).unwrap();
        t.create_file("a/two", Bytes::new()).unwrap();
        let paths: Vec<_> = t.walk().map(|(p, _)| p).collect();
        assert_eq!(paths, ["a", "a/one", "a/two", "b", "b/two"]);
    }

    #[test]
    fn stats_counts() {
        let mut t = FsTree::new();
        t.create_file("d/f1", Bytes::from_static(b"1234")).unwrap();
        t.insert("d/link", Node::symlink(Metadata::file_default(), "f1")).unwrap();
        let s = t.stats();
        assert_eq!(s, TreeStats { files: 1, dirs: 1, symlinks: 1, bytes: 4 });
    }

    #[test]
    fn apply_layer_whiteout_and_opaque() {
        let mut t = FsTree::new();
        t.create_file("etc/a.conf", Bytes::from_static(b"a")).unwrap();
        t.create_file("etc/b.conf", Bytes::from_static(b"b")).unwrap();
        t.create_file("var/cache/x", Bytes::from_static(b"x")).unwrap();

        let mut layer = Archive::new();
        layer.push(Entry::whiteout(ap("etc/a.conf")));
        layer.push(Entry::opaque_dir(ap("var/cache"), Metadata::dir_default()));
        layer.push(Entry::file(ap("etc/c.conf"), Metadata::file_default(), Bytes::from_static(b"c")));
        t.apply_layer(&layer).unwrap();

        assert!(t.get("etc/a.conf").is_none());
        assert!(t.get("etc/b.conf").is_some());
        assert!(t.get("etc/c.conf").is_some());
        assert!(t.get("var/cache").unwrap().is_dir());
        assert!(t.get("var/cache/x").is_none());
    }

    #[test]
    fn apply_layer_dir_preserves_children() {
        let mut t = FsTree::new();
        t.create_file("usr/bin/sh", Bytes::from_static(b"#!")).unwrap();
        let mut layer = Archive::new();
        layer.push(Entry::dir(ap("usr/bin"), Metadata { mode: 0o700, uid: 1, gid: 1, mtime: 9 }));
        t.apply_layer(&layer).unwrap();
        assert!(t.get("usr/bin/sh").is_some(), "re-applying a dir entry must not drop children");
        assert_eq!(t.get("usr/bin").unwrap().meta().mode, 0o700);
    }

    #[test]
    fn apply_layer_hardlink() {
        let mut t = FsTree::new();
        t.create_file("data", Bytes::from_static(b"shared")).unwrap();
        let mut layer = Archive::new();
        layer.push(Entry::hardlink(ap("alias"), ap("data")));
        t.apply_layer(&layer).unwrap();
        assert_eq!(t.get("alias").unwrap().size(), 6);

        let mut bad = Archive::new();
        bad.push(Entry::hardlink(ap("broken"), ap("missing")));
        assert!(matches!(t.apply_layer(&bad), Err(FsError::NotFound(_))));
    }

    #[test]
    fn to_layer_roundtrips_through_apply() {
        let mut t = FsTree::new();
        t.create_file("a/f", Bytes::from_static(b"data")).unwrap();
        t.insert("a/s", Node::symlink(Metadata::file_default(), "/a/f")).unwrap();
        t.mkdir_p("empty").unwrap();
        let layer = t.to_layer();
        let mut rebuilt = FsTree::new();
        rebuilt.apply_layer(&layer).unwrap();
        assert_eq!(rebuilt, t);
    }
}
