//! In-memory virtual file system with overlay union mounts.
//!
//! This crate is the substrate standing in for the Linux VFS + overlayfs in
//! the Gear paper's prototype. It provides:
//!
//! * [`FsTree`] — a mutable directory tree of files, directories, and
//!   symlinks, with layer replay ([`FsTree::apply_layer`]) following the
//!   OCI/Docker whiteout semantics.
//! * [`UnionFs`] — an Overlay2-style union mount: any number of read-only
//!   lower trees plus one writable upper, with copy-up on write, whiteouts on
//!   unlink, opaque directories, and merged `readdir`.
//! * [`FileData`] — file bodies that are either inline bytes, a *fingerprint
//!   placeholder* (the Gear index representation; resolved on demand through
//!   a [`Materializer`], mirroring the paper's modified
//!   `ovl_lookup_single()`), or a chunk list for big files (the paper's
//!   future-work extension).
//!
//! # Examples
//!
//! ```
//! use gear_fs::{FsTree, UnionFs, FileData, Materializer, FsError};
//! use gear_archive::ArchivePath;
//! use bytes::Bytes;
//! use std::sync::Arc;
//!
//! let mut lower = FsTree::new();
//! lower.create_file("etc/os-release", Bytes::from_static(b"ID=debian\n"))?;
//!
//! let mut mount = UnionFs::new(vec![Arc::new(lower)]);
//! // Reads fall through to the lower layer.
//! assert_eq!(&mount.read("etc/os-release", &gear_fs::NoFetch)?[..], b"ID=debian\n");
//! // Writes land in the upper layer (copy-on-write).
//! mount.write("etc/hostname", Bytes::from_static(b"gear\n"))?;
//! assert_eq!(mount.diff().len(), 2); // etc/ + etc/hostname
//! # Ok::<(), FsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod node;
mod tree;
mod union;

pub use error::FsError;
pub use node::{ChunkRef, FileData, FileNode, Node, SymlinkNode};
pub use tree::{FsTree, TreeStats};
pub use union::{Materializer, MountStats, NoFetch, UnionFs};
