//! Overlay2-style union mount.
//!
//! A [`UnionFs`] merges any number of read-only *lower* trees (topmost first
//! in precedence after the upper) beneath a single writable *upper* tree.
//! Semantics follow Linux overlayfs:
//!
//! * lookups hit the upper first, then lowers top-to-bottom;
//! * directories present in several layers are merged; any non-directory
//!   masks everything beneath the same path in deeper layers;
//! * writes copy up into the upper; deletions of lower entries create
//!   *whiteouts*; deleting and recreating a directory marks it *opaque*;
//! * `readdir` merges child names across layers minus whiteouts.
//!
//! Reading a file whose body is a fingerprint placeholder consults the
//! mount's [`Materializer`] — the analogue of the Gear paper's modified
//! `ovl_lookup_single()` pausing to ask a user-mode helper for the file. The
//! resolved content is memoized in the mount, which models the paper's
//! "hard-link the Gear file into the index so later requests need not search
//! the cache again".

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;
use gear_archive::{Archive, ArchivePath, Entry, Metadata};
use gear_hash::Fingerprint;
use gear_telemetry::Telemetry;

use crate::error::FsError;
use crate::node::{FileData, Node};
use crate::tree::FsTree;

/// Maximum symlink indirections before declaring a loop (Linux uses 40).
const SYMLINK_MAX: usize = 40;

/// Resolves fingerprint placeholders to file content.
///
/// Implementations typically consult a local shared cache first and fall back
/// to a remote Gear registry (see `gear-client`).
pub trait Materializer {
    /// Fetches the `size`-byte content identified by `fingerprint`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the content cannot be produced;
    /// the mount surfaces it as [`FsError::Materialize`].
    fn fetch(&self, fingerprint: Fingerprint, size: u64) -> Result<Bytes, String>;
}

/// A [`Materializer`] that refuses every fetch. Use it for mounts that are
/// expected to contain only inline content.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFetch;

impl Materializer for NoFetch {
    fn fetch(&self, fingerprint: Fingerprint, _size: u64) -> Result<Bytes, String> {
        Err(format!("no materializer configured (wanted {fingerprint})"))
    }
}

/// Counters accumulated by a mount over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MountStats {
    /// Path lookups performed.
    pub lookups: u64,
    /// Whole-file reads served.
    pub reads: u64,
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Fingerprint placeholders resolved through the materializer.
    pub materializations: u64,
    /// Bytes fetched through the materializer.
    pub materialized_bytes: u64,
    /// Whiteouts created by unlinks.
    pub whiteouts_created: u64,
    /// Symlink resolutions answered from the lookup cache (repeated lookups
    /// of the same path are O(1) between mutations).
    pub resolve_cache_hits: u64,
}

/// An Overlay2-style union mount (read-write view over read-only layers).
#[derive(Debug, Clone)]
pub struct UnionFs {
    /// Lower trees, bottom-most first (index 0 is the deepest layer).
    lowers: Vec<Arc<FsTree>>,
    upper: FsTree,
    whiteouts: BTreeSet<String>,
    opaques: BTreeSet<String>,
    /// Memoized fingerprint resolutions ("hard links into the index").
    resolved: HashMap<Fingerprint, Bytes>,
    /// Interned path strings: every stored path (touched set, lookup-cache
    /// keys and values) shares one allocation per distinct path, so a hot
    /// path is allocated once however many times it is served.
    interner: HashSet<Arc<str>>,
    /// Symlink-resolution cache for `follow_final = true` lookups, keyed by
    /// the raw request path. Cleared on every mutation (write / mkdir /
    /// symlink / unlink), since any of them can change what a path means.
    resolve_follow: HashMap<Arc<str>, Arc<str>>,
    /// Same, for `follow_final = false` lookups.
    resolve_nofollow: HashMap<Arc<str>, Arc<str>>,
    /// Paths whose inodes have been instantiated (for unmount-cost modelling).
    touched: HashSet<Arc<str>>,
    /// Lazily rebuilt sorted view of `touched`; `None` after a new touch.
    touched_snapshot: RefCell<Option<Arc<[String]>>>,
    stats: MountStats,
    telemetry: Telemetry,
}

impl UnionFs {
    /// Creates a mount over `lowers` (bottom-most first) with an empty upper.
    pub fn new(lowers: Vec<Arc<FsTree>>) -> Self {
        UnionFs {
            lowers,
            upper: FsTree::new(),
            whiteouts: BTreeSet::new(),
            opaques: BTreeSet::new(),
            resolved: HashMap::new(),
            interner: HashSet::new(),
            resolve_follow: HashMap::new(),
            resolve_nofollow: HashMap::new(),
            touched: HashSet::new(),
            touched_snapshot: RefCell::new(None),
            stats: MountStats::default(),
            telemetry: Telemetry::noop(),
        }
    }

    /// Attaches a telemetry recorder: lookups, reads, copy-ups, and
    /// materializations feed `fs.*` counters, and each materializer fetch
    /// shows up as an instant event.
    pub fn set_recorder(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Mount statistics so far.
    pub fn stats(&self) -> MountStats {
        self.stats
    }

    /// Number of distinct inodes (paths) instantiated by this mount. The
    /// short-running experiment (paper Fig. 11b) models unmount cost as
    /// proportional to this count.
    pub fn inode_count(&self) -> usize {
        self.touched.len()
    }

    /// The distinct paths this mount has served, sorted — an access trace
    /// usable to warm future deployments of the same image.
    ///
    /// The snapshot is cached: repeated calls with no intervening touches
    /// return the same `Arc` without re-sorting or re-cloning, so polling
    /// the trace (metrics, warm-trace export) costs O(1) between accesses.
    pub fn touched_paths(&self) -> Arc<[String]> {
        let mut cache = self.touched_snapshot.borrow_mut();
        if cache.is_none() {
            let mut paths: Vec<String> = self.touched.iter().map(|p| p.to_string()).collect();
            paths.sort();
            *cache = Some(Arc::from(paths));
        }
        Arc::clone(cache.as_ref().expect("snapshot just built"))
    }

    /// Read-only view of the writable upper tree.
    pub fn upper(&self) -> &FsTree {
        &self.upper
    }

    /// Whether `path` is visible in the merged view (symlinks not followed).
    pub fn contains(&mut self, path: &str) -> bool {
        self.stats.lookups += 1;
        self.find(path).is_some()
    }

    /// Metadata of the node at `path` after following symlinks.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or [`FsError::SymlinkLoop`].
    pub fn metadata(&mut self, path: &str) -> Result<Metadata, FsError> {
        let resolved = self.resolve(path, true)?;
        self.touch(&resolved);
        let node = self.find(&resolved).ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        Ok(node.meta())
    }

    /// Logical size of the file at `path` after following symlinks, without
    /// materializing its content.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::NotAFile`], [`FsError::SymlinkLoop`].
    pub fn file_size(&mut self, path: &str) -> Result<u64, FsError> {
        let resolved = self.resolve(path, true)?;
        match self.find(&resolved) {
            Some(Node::File(f)) => Ok(f.data.size()),
            Some(_) => Err(FsError::NotAFile(path.to_owned())),
            None => Err(FsError::NotFound(path.to_owned())),
        }
    }

    /// Target of the symlink at `path` (final component not followed).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if nothing is there, [`FsError::NotAFile`] if
    /// the entry is not a symlink.
    pub fn symlink_target(&mut self, path: &str) -> Result<String, FsError> {
        let resolved = self.resolve(path, false)?;
        self.stats.lookups += 1;
        match self.find(&resolved) {
            Some(Node::Symlink(s)) => Ok(s.target.clone()),
            Some(_) => Err(FsError::NotAFile(path.to_owned())),
            None => Err(FsError::NotFound(path.to_owned())),
        }
    }

    /// Reads the whole file at `path`, following symlinks and materializing
    /// fingerprint/chunked bodies through `mat`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`], [`FsError::NotAFile`], [`FsError::SymlinkLoop`],
    /// or [`FsError::Materialize`] when `mat` cannot provide the content.
    pub fn read(&mut self, path: &str, mat: &dyn Materializer) -> Result<Bytes, FsError> {
        let resolved = self.resolve(path, true)?;
        self.touch(&resolved);
        self.stats.lookups += 1;
        let data = match self.find(&resolved) {
            Some(Node::File(f)) => f.data.clone(),
            Some(_) => return Err(FsError::NotAFile(path.to_owned())),
            None => return Err(FsError::NotFound(path.to_owned())),
        };
        let content = self.load(&resolved, &data, mat)?;
        self.stats.reads += 1;
        self.stats.bytes_read += content.len() as u64;
        if self.telemetry.enabled() {
            self.telemetry.count("fs.reads", 1);
            self.telemetry.count("fs.bytes_read", content.len() as u64);
            self.telemetry.sketch("fs.read_bytes", content.len() as u64);
        }
        Ok(content)
    }

    /// Reads `len` bytes at `offset` from the file at `path`. For chunked
    /// files only the overlapping chunks are materialized — the point of the
    /// paper's big-file extension.
    ///
    /// # Errors
    ///
    /// As [`UnionFs::read`]; reads past end-of-file are truncated, not errors.
    pub fn read_range(
        &mut self,
        path: &str,
        offset: u64,
        len: u64,
        mat: &dyn Materializer,
    ) -> Result<Bytes, FsError> {
        let resolved = self.resolve(path, true)?;
        self.touch(&resolved);
        self.stats.lookups += 1;
        let data = match self.find(&resolved) {
            Some(Node::File(f)) => f.data.clone(),
            Some(_) => return Err(FsError::NotAFile(path.to_owned())),
            None => return Err(FsError::NotFound(path.to_owned())),
        };
        let content = match &data {
            FileData::Chunked { chunks, size } => {
                let end = (offset + len).min(*size);
                if offset >= end {
                    Bytes::new()
                } else {
                    let mut out = Vec::with_capacity((end - offset) as usize);
                    let mut chunk_start = 0u64;
                    for chunk in chunks {
                        let chunk_end = chunk_start + chunk.size;
                        if chunk_end > offset && chunk_start < end {
                            let bytes =
                                self.materialize(&resolved, chunk.fingerprint, chunk.size, mat)?;
                            let from = offset.saturating_sub(chunk_start) as usize;
                            let to = (end.min(chunk_end) - chunk_start) as usize;
                            out.extend_from_slice(&bytes[from..to]);
                        }
                        chunk_start = chunk_end;
                        if chunk_start >= end {
                            break;
                        }
                    }
                    Bytes::from(out)
                }
            }
            other => {
                let whole = self.load(&resolved, other, mat)?;
                let start = (offset as usize).min(whole.len());
                let stop = ((offset + len) as usize).min(whole.len());
                whole.slice(start..stop)
            }
        };
        self.stats.reads += 1;
        self.stats.bytes_read += content.len() as u64;
        if self.telemetry.enabled() {
            self.telemetry.count("fs.reads", 1);
            self.telemetry.count("fs.bytes_read", content.len() as u64);
            self.telemetry.sketch("fs.read_bytes", content.len() as u64);
        }
        Ok(content)
    }

    /// Merged child names of the directory at `path` (symlinks followed).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::NotADirectory`] /
    /// [`FsError::SymlinkLoop`].
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>, FsError> {
        let resolved = self.resolve(path, true)?;
        self.touch(&resolved);
        self.stats.lookups += 1;
        let mut names = BTreeSet::new();
        let mut found_dir = false;
        let mut found_any = false;
        if let Some(node) = self.upper.get(&resolved) {
            found_any = true;
            match node {
                Node::Dir { children, .. } => {
                    found_dir = true;
                    names.extend(children.keys().cloned());
                }
                _ => return Err(FsError::NotADirectory(path.to_owned())),
            }
        }
        if !self.lower_masked(&resolved, found_any && !found_dir) {
            for tree in self.visible_lowers(&resolved) {
                if let Some(Node::Dir { children, .. }) = tree.get(&resolved) {
                    found_any = true;
                    found_dir = true;
                    for name in children.keys() {
                        let child_path = join(&resolved, name);
                        if !self.whiteouts.contains(&child_path) || self.upper.contains(&child_path)
                        {
                            names.insert(name.clone());
                        }
                    }
                } else if tree.get(&resolved).is_some() && !found_any {
                    return Err(FsError::NotADirectory(path.to_owned()));
                }
            }
        }
        if !found_dir {
            return if found_any {
                Err(FsError::NotADirectory(path.to_owned()))
            } else {
                Err(FsError::NotFound(path.to_owned()))
            };
        }
        // Drop children whited-out and not recreated.
        names.retain(|name| {
            let p = join(&resolved, name);
            self.upper.contains(&p) || !self.whiteouts.contains(&p)
        });
        Ok(names.into_iter().collect())
    }

    /// Writes `content` to `path` in the upper layer, creating parents
    /// (copy-up) as needed and uncovering any whiteout at `path`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] if a non-directory blocks an ancestor;
    /// [`FsError::InvalidPath`] for malformed paths.
    pub fn write(&mut self, path: &str, content: Bytes) -> Result<(), FsError> {
        self.invalidate_lookups();
        let valid = ArchivePath::new(path).map_err(|e| FsError::InvalidPath(e.to_string()))?;
        let meta = match self.find(valid.as_str()) {
            Some(Node::File(f)) => f.meta,
            Some(Node::Dir { .. }) => return Err(FsError::NotAFile(path.to_owned())),
            _ => Metadata::file_default(),
        };
        self.copy_up_parents(&valid)?;
        self.upper.insert(valid.as_str(), Node::inline_file(meta, content))?;
        self.whiteouts.remove(valid.as_str());
        self.touch(valid.as_str());
        Ok(())
    }

    /// Creates a directory (and parents) in the upper layer.
    ///
    /// # Errors
    ///
    /// As [`UnionFs::write`].
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), FsError> {
        self.invalidate_lookups();
        let valid = ArchivePath::new(path).map_err(|e| FsError::InvalidPath(e.to_string()))?;
        // Creating a directory over a visible non-directory is EEXIST; check
        // every prefix so `mkdir -p a/b` cannot tunnel through a lower file.
        let mut prefix = String::new();
        for comp in valid.components() {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(comp);
            match self.find(&prefix) {
                Some(n) if !n.is_dir() => return Err(FsError::NotADirectory(prefix)),
                _ => {}
            }
        }
        self.copy_up_parents(&valid)?;
        self.upper.mkdir_p(valid.as_str())?;
        // Deleting a lower dir and re-creating it makes the new one opaque.
        if self.whiteouts.remove(valid.as_str()) {
            self.opaques.insert(valid.as_str().to_owned());
        }
        Ok(())
    }

    /// Creates a symlink at `path` in the upper layer.
    ///
    /// # Errors
    ///
    /// As [`UnionFs::write`].
    pub fn symlink(&mut self, path: &str, target: impl Into<String>) -> Result<(), FsError> {
        self.invalidate_lookups();
        let valid = ArchivePath::new(path).map_err(|e| FsError::InvalidPath(e.to_string()))?;
        if matches!(self.find(valid.as_str()), Some(Node::Dir { .. })) {
            return Err(FsError::AlreadyExists(path.to_owned()));
        }
        self.copy_up_parents(&valid)?;
        self.upper.insert(valid.as_str(), Node::symlink(Metadata::file_default(), target))?;
        self.whiteouts.remove(valid.as_str());
        Ok(())
    }

    /// Appends `data` to the file at `path` (copy-up if it lives in a lower
    /// layer), creating it when absent — `open(O_APPEND)` semantics.
    ///
    /// # Errors
    ///
    /// [`FsError::NotAFile`] for directories; [`FsError::Materialize`] when
    /// the existing content cannot be fetched; plus [`UnionFs::write`]'s
    /// errors.
    pub fn append(
        &mut self,
        path: &str,
        data: &[u8],
        mat: &dyn Materializer,
    ) -> Result<(), FsError> {
        let existing = match self.find(path) {
            Some(Node::File(_)) => self.read(path, mat)?,
            Some(_) => return Err(FsError::NotAFile(path.to_owned())),
            None => Bytes::new(),
        };
        let mut combined = Vec::with_capacity(existing.len() + data.len());
        combined.extend_from_slice(&existing);
        combined.extend_from_slice(data);
        self.write(path, Bytes::from(combined))
    }

    /// Truncates the file at `path` to `len` bytes (copy-up as needed).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::NotAFile`] /
    /// [`FsError::Materialize`].
    pub fn truncate(
        &mut self,
        path: &str,
        len: u64,
        mat: &dyn Materializer,
    ) -> Result<(), FsError> {
        match self.find(path) {
            Some(Node::File(_)) => {}
            Some(_) => return Err(FsError::NotAFile(path.to_owned())),
            None => return Err(FsError::NotFound(path.to_owned())),
        }
        let existing = self.read(path, mat)?;
        let end = (len as usize).min(existing.len());
        self.write(path, existing.slice(..end))
    }

    /// Renames a regular file or symlink: copy-up + whiteout, exactly how
    /// overlayfs implements rename without `redirect_dir`.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for a missing source; [`FsError::NotAFile`]
    /// when the source is a directory (directory rename is not supported,
    /// as in overlayfs's default mode); [`FsError::Materialize`] when the
    /// content cannot be fetched; plus [`UnionFs::write`]'s errors for the
    /// destination.
    pub fn rename(
        &mut self,
        from: &str,
        to: &str,
        mat: &dyn Materializer,
    ) -> Result<(), FsError> {
        match self.find(from) {
            Some(Node::Dir { .. }) => Err(FsError::NotAFile(from.to_owned())),
            Some(Node::Symlink(link)) => {
                let target = link.target.clone();
                self.symlink(to, target)?;
                self.unlink(from)
            }
            Some(Node::File(_)) => {
                let content = self.read(from, mat)?;
                let meta = self.metadata(from)?;
                self.write(to, content)?;
                // Preserve the original metadata on the new upper entry.
                if let Some(Node::File(f)) = self.upper.get_mut(to) {
                    f.meta = meta;
                }
                self.unlink(from)
            }
            None => Err(FsError::NotFound(from.to_owned())),
        }
    }

    /// Removes the entry at `path`: drops it from the upper layer and/or
    /// whiteouts the lower entry.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] when nothing is visible at `path`.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        self.invalidate_lookups();
        let valid = ArchivePath::new(path).map_err(|e| FsError::InvalidPath(e.to_string()))?;
        let path = valid.as_str();
        let in_upper = self.upper.contains(path);
        let in_lower = self.find_lower(path).is_some();
        if !in_upper && (!in_lower || self.lower_hidden(path)) {
            return Err(FsError::NotFound(path.to_owned()));
        }
        if in_upper {
            let _ = self.upper.remove(path);
        }
        if in_lower {
            self.whiteouts.insert(path.to_owned());
            self.stats.whiteouts_created += 1;
        }
        self.opaques.remove(path);
        Ok(())
    }

    /// Extracts the writable state as a layer diff: upper entries (parents
    /// first) plus whiteouts and opaque markers. Feeding the result to
    /// [`FsTree::apply_layer`] on the merged lower state reproduces this
    /// mount's merged view — this is exactly `docker commit`.
    pub fn diff(&self) -> Archive {
        let mut archive = Archive::new();
        for path in &self.whiteouts {
            if !self.upper.contains(path) {
                let p = ArchivePath::new(path).expect("stored paths are valid");
                archive.push(Entry::whiteout(p));
            }
        }
        for (path, node) in self.upper.walk() {
            let apath = ArchivePath::new(&path).expect("walk yields valid paths");
            match node {
                Node::Dir { meta, .. } => {
                    if self.opaques.contains(&path) {
                        archive.push(Entry::opaque_dir(apath, *meta));
                    } else {
                        archive.push(Entry::dir(apath, *meta));
                    }
                }
                Node::File(f) => {
                    let content = match &f.data {
                        FileData::Inline(b) => b.clone(),
                        FileData::Fingerprint { fingerprint, .. } => {
                            Bytes::from(fingerprint.to_string())
                        }
                        FileData::Chunked { chunks, .. } => Bytes::from(
                            chunks
                                .iter()
                                .map(|c| format!("{}\n", c.fingerprint))
                                .collect::<String>(),
                        ),
                    };
                    archive.push(Entry::file(apath, f.meta, content));
                }
                Node::Symlink(s) => {
                    archive.push(Entry::symlink(apath, s.meta, s.target.clone()))
                }
            }
        }
        archive
    }

    /// Flattens the merged view into a plain [`FsTree`] (fingerprint bodies
    /// preserved, not materialized).
    pub fn flatten(&self) -> FsTree {
        let mut out = FsTree::new();
        // Bottom-up: lowers then upper, honouring whiteouts/opaques.
        for tree in &self.lowers {
            for (path, node) in tree.walk() {
                // Skip paths masked by whiteouts/opaque ancestors.
                if self.lower_hidden(&path) {
                    continue;
                }
                let _ = out.insert(&path, node.clone());
            }
        }
        for path in &self.whiteouts {
            let _ = out.remove(path);
        }
        for (path, node) in self.upper.walk() {
            if node.is_dir() {
                if self.opaques.contains(&path) {
                    let _ = out.remove(&path);
                }
                let _ = out.mkdir_p(&path);
            } else {
                let _ = out.insert(&path, node.clone());
            }
        }
        out
    }

    // ---- internals -------------------------------------------------------

    /// Ensures every ancestor of `path` exists as a directory in the upper
    /// layer, copying metadata from the merged view where available (the
    /// overlayfs "copy-up" of the directory chain).
    fn copy_up_parents(&mut self, path: &ArchivePath) -> Result<(), FsError> {
        let Some(parent) = path.parent() else { return Ok(()) };
        let mut prefix = String::new();
        for comp in parent.components() {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(comp);
            if self.upper.contains(&prefix) {
                continue;
            }
            let meta = match self.find(&prefix) {
                Some(Node::Dir { meta, .. }) => *meta,
                Some(_) => return Err(FsError::NotADirectory(prefix)),
                None => Metadata::dir_default(),
            };
            self.upper.insert(&prefix, Node::empty_dir(meta))?;
            self.telemetry.count("fs.copy_up_dirs", 1);
        }
        Ok(())
    }

    /// Returns the interned copy of `path`, allocating only on first sight.
    fn intern(&mut self, path: &str) -> Arc<str> {
        if let Some(existing) = self.interner.get(path) {
            return Arc::clone(existing);
        }
        let interned: Arc<str> = Arc::from(path);
        self.interner.insert(Arc::clone(&interned));
        interned
    }

    fn touch(&mut self, path: &str) {
        let interned = self.intern(path);
        if self.touched.insert(interned) {
            // A genuinely new path outdates the sorted snapshot.
            *self.touched_snapshot.get_mut() = None;
        }
    }

    /// Drops the symlink-resolution cache. Called by every mutator: writes,
    /// directory creation, symlinks, and whiteouts can all change what any
    /// path resolves to. (The interner and touched set survive — they record
    /// identity and history, not the current merged view.)
    fn invalidate_lookups(&mut self) {
        self.resolve_follow.clear();
        self.resolve_nofollow.clear();
    }

    fn load(
        &mut self,
        path: &str,
        data: &FileData,
        mat: &dyn Materializer,
    ) -> Result<Bytes, FsError> {
        match data {
            FileData::Inline(b) => Ok(b.clone()),
            FileData::Fingerprint { fingerprint, size } => {
                self.materialize(path, *fingerprint, *size, mat)
            }
            FileData::Chunked { chunks, size } => {
                let mut out = Vec::with_capacity(*size as usize);
                for chunk in chunks.clone() {
                    let bytes = self.materialize(path, chunk.fingerprint, chunk.size, mat)?;
                    out.extend_from_slice(&bytes);
                }
                Ok(Bytes::from(out))
            }
        }
    }

    fn materialize(
        &mut self,
        path: &str,
        fingerprint: Fingerprint,
        size: u64,
        mat: &dyn Materializer,
    ) -> Result<Bytes, FsError> {
        if let Some(bytes) = self.resolved.get(&fingerprint) {
            return Ok(bytes.clone());
        }
        let bytes = mat
            .fetch(fingerprint, size)
            .map_err(|reason| FsError::Materialize { path: path.to_owned(), reason })?;
        self.stats.materializations += 1;
        self.stats.materialized_bytes += bytes.len() as u64;
        if self.telemetry.enabled() {
            self.telemetry.count("fs.materializations", 1);
            self.telemetry.count("fs.materialized_bytes", bytes.len() as u64);
            self.telemetry.instant("fs", "materialize");
        }
        self.resolved.insert(fingerprint, bytes.clone());
        Ok(bytes)
    }

    /// Whether lower content at `path` is hidden by a whiteout/opaque marker
    /// at the path itself or any ancestor, or by a non-directory in the upper
    /// at an ancestor.
    fn lower_hidden(&self, path: &str) -> bool {
        let mut prefix = String::new();
        let mut comps = path.split('/').peekable();
        while let Some(comp) = comps.next() {
            if !prefix.is_empty() {
                prefix.push('/');
            }
            prefix.push_str(comp);
            let is_final = comps.peek().is_none();
            if self.whiteouts.contains(&prefix) {
                return true;
            }
            if !is_final && self.opaques.contains(&prefix) {
                return true;
            }
            if !is_final {
                if let Some(node) = self.upper.get(&prefix) {
                    if !node.is_dir() {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Whether lower layers are masked for `readdir` at `path`.
    fn lower_masked(&self, path: &str, upper_non_dir: bool) -> bool {
        upper_non_dir
            || self.opaques.contains(path)
            || (!path.is_empty() && self.lower_hidden(path))
    }

    /// Lower trees in precedence order (topmost lower first).
    fn visible_lowers(&self, _path: &str) -> impl Iterator<Item = &Arc<FsTree>> {
        self.lowers.iter().rev()
    }

    /// Finds the node at `path` in the merged view, no symlink following.
    fn find(&self, path: &str) -> Option<&Node> {
        if let Some(node) = self.upper.get(path) {
            return Some(node);
        }
        if path.is_empty() {
            return self.lowers.last().map(|t| t.get("").expect("root exists"));
        }
        if self.lower_hidden(path) {
            return None;
        }
        self.find_lower(path)
    }

    /// Finds `path` in the lower stack with overlay masking between lowers.
    fn find_lower(&self, path: &str) -> Option<&Node> {
        // Current merged set of directory nodes at the walked prefix,
        // ordered topmost-lower first.
        let mut dirs: Vec<&Node> = self
            .visible_lowers(path)
            .map(|t| t.get("").expect("root exists"))
            .collect();
        let mut comps = path.split('/').peekable();
        while let Some(comp) = comps.next() {
            let is_final = comps.peek().is_none();
            let mut matched: Vec<&Node> = Vec::new();
            for dir in &dirs {
                if let Node::Dir { children, .. } = dir {
                    if let Some(child) = children.get(comp) {
                        if matched.is_empty() {
                            let non_dir = !child.is_dir();
                            matched.push(child);
                            if non_dir {
                                break; // masks deeper layers
                            }
                        } else if child.is_dir() {
                            matched.push(child); // merged dir
                        }
                        // deeper non-dir under a dir: hidden
                    }
                }
            }
            if matched.is_empty() {
                return None;
            }
            if is_final {
                return Some(matched[0]);
            }
            if !matched[0].is_dir() {
                return None; // cannot descend through a file/symlink
            }
            dirs = matched;
        }
        None
    }

    /// Resolves symlinks in `path`; returns the normalized final path.
    ///
    /// Successful resolutions are cached (keyed by the raw request path), so
    /// a repeated lookup between mutations is one hash probe plus an `Arc`
    /// clone — no component splitting, no per-component tree walks, no
    /// `String` allocation. Mutators clear the cache via
    /// [`UnionFs::invalidate_lookups`].
    fn resolve(&mut self, path: &str, follow_final: bool) -> Result<Arc<str>, FsError> {
        self.telemetry.count("fs.lookups", 1);
        let cache =
            if follow_final { &self.resolve_follow } else { &self.resolve_nofollow };
        if let Some(hit) = cache.get(path) {
            let hit = Arc::clone(hit);
            self.stats.resolve_cache_hits += 1;
            self.telemetry.count("fs.resolve_cache_hits", 1);
            return Ok(hit);
        }
        let resolved = self.resolve_uncached(path, follow_final)?;
        let key = self.intern(path);
        let value = self.intern(&resolved);
        let cache =
            if follow_final { &mut self.resolve_follow } else { &mut self.resolve_nofollow };
        cache.insert(key, Arc::clone(&value));
        Ok(value)
    }

    /// The uncached resolution walk behind [`UnionFs::resolve`].
    fn resolve_uncached(&mut self, path: &str, follow_final: bool) -> Result<String, FsError> {
        if path.is_empty() {
            return Ok(String::new());
        }
        ArchivePath::new(path).map_err(|e| FsError::InvalidPath(e.to_string()))?;
        let mut stack: Vec<String> = Vec::new();
        let mut pending: Vec<String> = path.split('/').rev().map(str::to_owned).collect();
        let mut hops = 0usize;
        while let Some(comp) = pending.pop() {
            match comp.as_str() {
                "" | "." => continue,
                ".." => {
                    stack.pop();
                    continue;
                }
                _ => {}
            }
            stack.push(comp);
            let current = stack.join("/");
            let is_final = pending.iter().all(|c| c == "." || c.is_empty());
            if is_final && !follow_final {
                continue;
            }
            if let Some(Node::Symlink(link)) = self.find(&current) {
                hops += 1;
                if hops > SYMLINK_MAX {
                    return Err(FsError::SymlinkLoop(path.to_owned()));
                }
                let target = link.target.clone();
                stack.pop(); // the link component itself
                if target.starts_with('/') {
                    stack.clear();
                }
                // Queue the target's components ahead of the remaining ones.
                for part in target.trim_start_matches('/').split('/').rev() {
                    pending.push(part.to_owned());
                }
            }
        }
        Ok(stack.join("/"))
    }
}

fn join(base: &str, name: &str) -> String {
    if base.is_empty() {
        name.to_owned()
    } else {
        format!("{base}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_with(paths: &[(&str, &[u8])]) -> Arc<FsTree> {
        let mut t = FsTree::new();
        for (p, content) in paths {
            t.create_file(p, Bytes::copy_from_slice(content)).unwrap();
        }
        Arc::new(t)
    }

    #[test]
    fn reads_fall_through_to_lower() {
        let lower = lower_with(&[("etc/conf", b"lower")]);
        let mut m = UnionFs::new(vec![lower]);
        assert_eq!(&m.read("etc/conf", &NoFetch).unwrap()[..], b"lower");
    }

    #[test]
    fn upper_shadows_lower() {
        let lower = lower_with(&[("f", b"old")]);
        let mut m = UnionFs::new(vec![lower]);
        m.write("f", Bytes::from_static(b"new")).unwrap();
        assert_eq!(&m.read("f", &NoFetch).unwrap()[..], b"new");
    }

    #[test]
    fn top_lower_shadows_bottom_lower() {
        let bottom = lower_with(&[("f", b"bottom"), ("only-bottom", b"b")]);
        let top = lower_with(&[("f", b"top")]);
        let mut m = UnionFs::new(vec![bottom, top]);
        assert_eq!(&m.read("f", &NoFetch).unwrap()[..], b"top");
        assert_eq!(&m.read("only-bottom", &NoFetch).unwrap()[..], b"b");
    }

    #[test]
    fn unlink_lower_creates_whiteout() {
        let lower = lower_with(&[("a", b"x"), ("b", b"y")]);
        let mut m = UnionFs::new(vec![lower]);
        m.unlink("a").unwrap();
        assert!(m.read("a", &NoFetch).is_err());
        assert!(m.read("b", &NoFetch).is_ok());
        assert_eq!(m.stats().whiteouts_created, 1);
        // Re-create uncovers.
        m.write("a", Bytes::from_static(b"again")).unwrap();
        assert_eq!(&m.read("a", &NoFetch).unwrap()[..], b"again");
    }

    #[test]
    fn unlink_missing_errors() {
        let mut m = UnionFs::new(vec![]);
        assert!(matches!(m.unlink("ghost"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn readdir_merges_layers() {
        let lower = lower_with(&[("d/from-lower", b"1")]);
        let mut m = UnionFs::new(vec![lower]);
        m.write("d/from-upper", Bytes::from_static(b"2")).unwrap();
        assert_eq!(m.readdir("d").unwrap(), vec!["from-lower", "from-upper"]);
        m.unlink("d/from-lower").unwrap();
        assert_eq!(m.readdir("d").unwrap(), vec!["from-upper"]);
    }

    #[test]
    fn deleted_then_recreated_dir_is_opaque() {
        let lower = lower_with(&[("d/old", b"1")]);
        let mut m = UnionFs::new(vec![lower]);
        m.unlink("d").unwrap();
        m.mkdir_p("d").unwrap();
        m.write("d/new", Bytes::from_static(b"2")).unwrap();
        assert_eq!(m.readdir("d").unwrap(), vec!["new"]);
        assert!(m.read("d/old", &NoFetch).is_err());
        // The diff records the opacity.
        let diff = m.diff();
        assert!(diff
            .iter()
            .any(|e| matches!(e.kind, gear_archive::EntryKind::OpaqueDir { .. })));
    }

    #[test]
    fn symlinks_followed_absolute_and_relative() {
        let mut t = FsTree::new();
        t.create_file("usr/lib/real.so", Bytes::from_static(b"ELF")).unwrap();
        t.insert("usr/lib/link.so", Node::symlink(Metadata::file_default(), "real.so")).unwrap();
        t.insert("alias", Node::symlink(Metadata::file_default(), "/usr/lib/link.so")).unwrap();
        t.insert("upref", Node::symlink(Metadata::file_default(), "usr/lib/../lib/real.so"))
            .unwrap();
        let mut m = UnionFs::new(vec![Arc::new(t)]);
        assert_eq!(&m.read("usr/lib/link.so", &NoFetch).unwrap()[..], b"ELF");
        assert_eq!(&m.read("alias", &NoFetch).unwrap()[..], b"ELF");
        assert_eq!(&m.read("upref", &NoFetch).unwrap()[..], b"ELF");
        assert_eq!(m.symlink_target("alias").unwrap(), "/usr/lib/link.so");
    }

    #[test]
    fn symlink_loop_detected() {
        let mut t = FsTree::new();
        t.insert("a", Node::symlink(Metadata::file_default(), "b")).unwrap();
        t.insert("b", Node::symlink(Metadata::file_default(), "a")).unwrap();
        let mut m = UnionFs::new(vec![Arc::new(t)]);
        assert!(matches!(m.read("a", &NoFetch), Err(FsError::SymlinkLoop(_))));
    }

    #[test]
    fn fingerprint_materialization_and_memoization() {
        use std::cell::Cell;
        struct Counting<'a>(&'a Cell<u32>);
        impl Materializer for Counting<'_> {
            fn fetch(&self, _fp: Fingerprint, _size: u64) -> Result<Bytes, String> {
                self.0.set(self.0.get() + 1);
                Ok(Bytes::from_static(b"gear file body"))
            }
        }
        let mut t = FsTree::new();
        let fp = Fingerprint::of(b"gear file body");
        t.insert("data", Node::fingerprint_file(Metadata::file_default(), fp, 14)).unwrap();
        let mut m = UnionFs::new(vec![Arc::new(t)]);
        let calls = Cell::new(0);
        let mat = Counting(&calls);
        assert_eq!(&m.read("data", &mat).unwrap()[..], b"gear file body");
        assert_eq!(&m.read("data", &mat).unwrap()[..], b"gear file body");
        assert_eq!(calls.get(), 1, "second read must hit the memoized hard link");
        assert_eq!(m.stats().materializations, 1);
    }

    #[test]
    fn materialize_failure_is_surfaced() {
        let mut t = FsTree::new();
        t.insert(
            "missing",
            Node::fingerprint_file(Metadata::file_default(), Fingerprint::of(b"?"), 1),
        )
        .unwrap();
        let mut m = UnionFs::new(vec![Arc::new(t)]);
        assert!(matches!(m.read("missing", &NoFetch), Err(FsError::Materialize { .. })));
    }

    #[test]
    fn read_range_fetches_only_needed_chunks() {
        use std::cell::RefCell;
        struct ChunkStore<'a>(&'a RefCell<Vec<Fingerprint>>, Vec<(Fingerprint, Bytes)>);
        impl Materializer for ChunkStore<'_> {
            fn fetch(&self, fp: Fingerprint, _size: u64) -> Result<Bytes, String> {
                self.0.borrow_mut().push(fp);
                self.1
                    .iter()
                    .find(|(f, _)| *f == fp)
                    .map(|(_, b)| b.clone())
                    .ok_or_else(|| "unknown chunk".to_owned())
            }
        }
        let c1 = Bytes::from(vec![1u8; 100]);
        let c2 = Bytes::from(vec![2u8; 100]);
        let c3 = Bytes::from(vec![3u8; 100]);
        let refs: Vec<crate::ChunkRef> = [&c1, &c2, &c3]
            .iter()
            .map(|b| crate::ChunkRef { fingerprint: Fingerprint::of(b), size: b.len() as u64 })
            .collect();
        let store = vec![
            (refs[0].fingerprint, c1),
            (refs[1].fingerprint, c2),
            (refs[2].fingerprint, c3),
        ];
        let mut t = FsTree::new();
        t.insert(
            "model.bin",
            Node::File(crate::FileNode {
                meta: Metadata::file_default(),
                data: FileData::Chunked { chunks: refs.clone(), size: 300 },
            }),
        )
        .unwrap();
        let mut m = UnionFs::new(vec![Arc::new(t)]);
        let fetched = RefCell::new(Vec::new());
        let mat = ChunkStore(&fetched, store);
        let got = m.read_range("model.bin", 150, 20, &mat).unwrap();
        assert_eq!(&got[..], &[2u8; 20][..]);
        assert_eq!(fetched.borrow().len(), 1, "only the middle chunk should be fetched");
        assert_eq!(fetched.borrow()[0], refs[1].fingerprint);
    }

    #[test]
    fn diff_apply_reproduces_merged_view() {
        let lower = lower_with(&[("keep", b"k"), ("gone", b"g"), ("d/sub", b"s")]);
        let mut m = UnionFs::new(vec![lower.clone()]);
        m.write("new", Bytes::from_static(b"n")).unwrap();
        m.write("d/added", Bytes::from_static(b"a")).unwrap();
        m.unlink("gone").unwrap();

        let mut replay = (*lower).clone();
        replay.apply_layer(&m.diff()).unwrap();
        let flat = m.flatten();
        assert_eq!(replay, flat);
    }

    #[test]
    fn inode_count_tracks_touched_paths() {
        let lower = lower_with(&[("a", b"1"), ("b", b"2"), ("c", b"3")]);
        let mut m = UnionFs::new(vec![lower]);
        m.read("a", &NoFetch).unwrap();
        m.read("a", &NoFetch).unwrap();
        m.read("b", &NoFetch).unwrap();
        assert_eq!(m.inode_count(), 2);
    }

    #[test]
    fn touched_snapshot_cached_until_new_touch() {
        let lower = lower_with(&[("a", b"1"), ("b", b"2")]);
        let mut m = UnionFs::new(vec![lower]);
        m.read("b", &NoFetch).unwrap();
        m.read("a", &NoFetch).unwrap();
        let first = m.touched_paths();
        assert_eq!(&*first, ["a".to_owned(), "b".to_owned()]);
        // No new touches: the same snapshot is handed back, not re-sorted.
        let second = m.touched_paths();
        assert!(Arc::ptr_eq(&first, &second));
        // Re-reading an already-touched path keeps the snapshot valid.
        m.read("a", &NoFetch).unwrap();
        assert!(Arc::ptr_eq(&first, &m.touched_paths()));
        // A genuinely new touch rebuilds it.
        m.write("c", Bytes::from_static(b"3")).unwrap();
        let third = m.touched_paths();
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(&*third, ["a".to_owned(), "b".to_owned(), "c".to_owned()]);
    }

    #[test]
    fn repeated_lookups_hit_resolve_cache() {
        let mut t = FsTree::new();
        t.create_file("usr/lib/real.so", Bytes::from_static(b"ELF")).unwrap();
        t.insert("ln", Node::symlink(Metadata::file_default(), "usr/lib/real.so")).unwrap();
        let mut m = UnionFs::new(vec![Arc::new(t)]);
        for _ in 0..5 {
            assert_eq!(&m.read("ln", &NoFetch).unwrap()[..], b"ELF");
        }
        // First read resolves the long way; the other four are cache hits.
        assert_eq!(m.stats().resolve_cache_hits, 4);
    }

    #[test]
    fn mutations_invalidate_resolve_cache() {
        let mut t = FsTree::new();
        t.create_file("old", Bytes::from_static(b"old body")).unwrap();
        t.insert("ln", Node::symlink(Metadata::file_default(), "old")).unwrap();
        let mut m = UnionFs::new(vec![Arc::new(t)]);
        assert_eq!(&m.read("ln", &NoFetch).unwrap()[..], b"old body");
        // Repoint the symlink: the cached ln -> old resolution must die.
        m.write("new", Bytes::from_static(b"new body")).unwrap();
        m.symlink("ln", "new").unwrap();
        assert_eq!(&m.read("ln", &NoFetch).unwrap()[..], b"new body");
        // Whiteouts invalidate too: unlink the target and the lookup fails
        // instead of serving a stale cached resolution.
        m.unlink("new").unwrap();
        assert!(m.read("ln", &NoFetch).is_err());
    }

    #[test]
    fn append_and_truncate() {
        let lower = lower_with(&[("log", b"line1\n")]);
        let mut m = UnionFs::new(vec![lower]);
        m.append("log", b"line2\n", &NoFetch).unwrap();
        assert_eq!(&m.read("log", &NoFetch).unwrap()[..], b"line1\nline2\n");
        // Append creates missing files.
        m.append("fresh", b"start", &NoFetch).unwrap();
        assert_eq!(&m.read("fresh", &NoFetch).unwrap()[..], b"start");
        // Truncate shrinks; extending truncate clamps.
        m.truncate("log", 5, &NoFetch).unwrap();
        assert_eq!(&m.read("log", &NoFetch).unwrap()[..], b"line1");
        m.truncate("log", 100, &NoFetch).unwrap();
        assert_eq!(&m.read("log", &NoFetch).unwrap()[..], b"line1");
        assert!(matches!(m.truncate("nope", 0, &NoFetch), Err(FsError::NotFound(_))));
    }

    #[test]
    fn rename_copy_up_semantics() {
        let mut t = FsTree::new();
        t.insert(
            "old/name",
            Node::File(crate::FileNode {
                meta: Metadata { mode: 0o640, uid: 3, gid: 4, mtime: 7 },
                data: FileData::Inline(Bytes::from_static(b"payload")),
            }),
        )
        .unwrap();
        t.insert("old/link", Node::symlink(Metadata::file_default(), "/old/name")).unwrap();
        let mut m = UnionFs::new(vec![Arc::new(t)]);

        m.rename("old/name", "new/name", &NoFetch).unwrap();
        assert!(m.read("old/name", &NoFetch).is_err(), "source whited out");
        assert_eq!(&m.read("new/name", &NoFetch).unwrap()[..], b"payload");
        assert_eq!(m.metadata("new/name").unwrap().mode, 0o640, "metadata preserved");

        m.rename("old/link", "new/link", &NoFetch).unwrap();
        assert_eq!(m.symlink_target("new/link").unwrap(), "/old/name");

        assert!(matches!(m.rename("ghost", "x", &NoFetch), Err(FsError::NotFound(_))));
        assert!(matches!(m.rename("new", "y", &NoFetch), Err(FsError::NotAFile(_))));
        // The commit invariant still holds after renames.
        let diff = m.diff();
        assert!(diff.iter().any(|e| matches!(e.kind, gear_archive::EntryKind::Whiteout)));
    }

    #[test]
    fn metadata_and_file_size() {
        let lower = lower_with(&[("f", b"12345")]);
        let mut m = UnionFs::new(vec![lower]);
        assert_eq!(m.file_size("f").unwrap(), 5);
        assert_eq!(m.metadata("f").unwrap().mode, 0o644);
        assert!(matches!(m.file_size("nope"), Err(FsError::NotFound(_))));
    }
}
