//! Tree nodes: directories, files (inline, fingerprint, or chunked), symlinks.

use std::collections::BTreeMap;

use bytes::Bytes;
use gear_archive::Metadata;
use gear_hash::Fingerprint;

/// Reference to one fixed-size chunk of a big file (Gear future-work §VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Fingerprint of the chunk's content.
    pub fingerprint: Fingerprint,
    /// Chunk length in bytes.
    pub size: u64,
}

/// The body of a regular file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileData {
    /// Content held inline.
    Inline(Bytes),
    /// A Gear-index placeholder: the content is identified by its MD5
    /// fingerprint and must be materialized through a
    /// [`Materializer`](crate::Materializer) before reading.
    Fingerprint {
        /// Content fingerprint.
        fingerprint: Fingerprint,
        /// Content length in bytes (recorded in the index so `stat` works
        /// without fetching).
        size: u64,
    },
    /// A big file split into fingerprinted chunks fetched individually.
    Chunked {
        /// Ordered chunk list.
        chunks: Vec<ChunkRef>,
        /// Total length in bytes.
        size: u64,
    },
}

impl FileData {
    /// Logical file size in bytes, available without materialization.
    pub fn size(&self) -> u64 {
        match self {
            FileData::Inline(b) => b.len() as u64,
            FileData::Fingerprint { size, .. } => *size,
            FileData::Chunked { size, .. } => *size,
        }
    }

    /// Whether the content is immediately readable without a fetch.
    pub fn is_resolved(&self) -> bool {
        matches!(self, FileData::Inline(_))
    }
}

/// A regular file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileNode {
    /// POSIX metadata.
    pub meta: Metadata,
    /// File body.
    pub data: FileData,
}

/// A symbolic link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymlinkNode {
    /// POSIX metadata.
    pub meta: Metadata,
    /// Link target; may be absolute (`/usr/bin/x`) or relative (`../x`).
    pub target: String,
}

/// A node in an [`FsTree`](crate::FsTree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Directory with named children.
    Dir {
        /// POSIX metadata.
        meta: Metadata,
        /// Children by name (sorted, so traversal is deterministic).
        children: BTreeMap<String, Node>,
    },
    /// Regular file.
    File(FileNode),
    /// Symbolic link.
    Symlink(SymlinkNode),
}

impl Node {
    /// Creates an empty directory node.
    pub fn empty_dir(meta: Metadata) -> Node {
        Node::Dir { meta, children: BTreeMap::new() }
    }

    /// Creates an inline file node.
    pub fn inline_file(meta: Metadata, content: Bytes) -> Node {
        Node::File(FileNode { meta, data: FileData::Inline(content) })
    }

    /// Creates a fingerprint-placeholder file node.
    pub fn fingerprint_file(meta: Metadata, fingerprint: Fingerprint, size: u64) -> Node {
        Node::File(FileNode { meta, data: FileData::Fingerprint { fingerprint, size } })
    }

    /// Creates a symlink node.
    pub fn symlink(meta: Metadata, target: impl Into<String>) -> Node {
        Node::Symlink(SymlinkNode { meta, target: target.into() })
    }

    /// The node's metadata.
    pub fn meta(&self) -> Metadata {
        match self {
            Node::Dir { meta, .. } => *meta,
            Node::File(f) => f.meta,
            Node::Symlink(s) => s.meta,
        }
    }

    /// Whether this node is a directory.
    pub fn is_dir(&self) -> bool {
        matches!(self, Node::Dir { .. })
    }

    /// Whether this node is a regular file.
    pub fn is_file(&self) -> bool {
        matches!(self, Node::File(_))
    }

    /// Whether this node is a symlink.
    pub fn is_symlink(&self) -> bool {
        matches!(self, Node::Symlink(_))
    }

    /// Logical content size: file size for files, 0 otherwise.
    pub fn size(&self) -> u64 {
        match self {
            Node::File(f) => f.data.size(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let f = Node::inline_file(Metadata::file_default(), Bytes::from_static(b"12345"));
        assert_eq!(f.size(), 5);
        let fp = Node::fingerprint_file(Metadata::file_default(), Fingerprint::of(b"x"), 42);
        assert_eq!(fp.size(), 42);
        assert!(!matches!(&fp, Node::File(n) if n.data.is_resolved()));
        let d = Node::empty_dir(Metadata::dir_default());
        assert_eq!(d.size(), 0);
    }

    #[test]
    fn kind_predicates() {
        let d = Node::empty_dir(Metadata::dir_default());
        assert!(d.is_dir() && !d.is_file() && !d.is_symlink());
        let s = Node::symlink(Metadata::file_default(), "/bin/sh");
        assert!(s.is_symlink());
    }

    #[test]
    fn chunked_size() {
        let chunks = vec![
            ChunkRef { fingerprint: Fingerprint::of(b"a"), size: 10 },
            ChunkRef { fingerprint: Fingerprint::of(b"b"), size: 5 },
        ];
        let data = FileData::Chunked { chunks, size: 15 };
        assert_eq!(data.size(), 15);
        assert!(!data.is_resolved());
    }
}
