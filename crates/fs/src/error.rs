//! File-system error type.

use std::error::Error;
use std::fmt;

/// Errors returned by [`FsTree`](crate::FsTree) and
/// [`UnionFs`](crate::UnionFs) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No entry at the given path.
    NotFound(String),
    /// A non-directory was found where a directory was required.
    NotADirectory(String),
    /// A directory (or symlink) was found where a regular file was required.
    NotAFile(String),
    /// Creation target already exists.
    AlreadyExists(String),
    /// Symlink resolution exceeded the loop limit.
    SymlinkLoop(String),
    /// A path failed validation.
    InvalidPath(String),
    /// A fingerprint placeholder could not be materialized (e.g. the Gear
    /// file is in neither the local cache nor the registry).
    Materialize {
        /// Path whose content was being resolved.
        path: String,
        /// Description of the failure from the materializer.
        reason: String,
    },
    /// Attempted to remove a non-empty directory.
    DirectoryNotEmpty(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::NotAFile(p) => write!(f, "not a regular file: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            FsError::SymlinkLoop(p) => write!(f, "too many levels of symbolic links: {p}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            FsError::Materialize { path, reason } => {
                write!(f, "cannot materialize {path}: {reason}")
            }
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
        }
    }
}

impl Error for FsError {}

impl From<gear_archive::PathError> for FsError {
    fn from(e: gear_archive::PathError) -> Self {
        FsError::InvalidPath(e.to_string())
    }
}
