//! The `gar` layer-archive format — a typed tar substitute for image layers.
//!
//! Docker stores each image layer as a tarball whose entries describe a diff
//! against the layers below: regular files, directories, symlinks, hardlinks,
//! and *whiteouts* (the `.wh.` convention) that delete lower entries. This
//! crate provides the same vocabulary as explicit types, plus a compact
//! binary wire format with a streaming writer/reader, so layers can be
//! hashed, compressed, shipped, and replayed without a system `tar`.
//!
//! # Examples
//!
//! ```
//! use gear_archive::{Archive, ArchivePath, Entry, EntryKind, Metadata};
//! use bytes::Bytes;
//!
//! let mut archive = Archive::new();
//! archive.push(Entry::dir(ArchivePath::new("etc")?, Metadata::dir_default()));
//! archive.push(Entry::file(
//!     ArchivePath::new("etc/hostname")?,
//!     Metadata::file_default(),
//!     Bytes::from_static(b"gear-host\n"),
//! ));
//! let wire = archive.to_bytes();
//! let back = Archive::from_bytes(&wire)?;
//! assert_eq!(back, archive);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entry;
mod path;
mod wire;

pub use entry::{Archive, Entry, EntryKind, Metadata};
pub use path::{ArchivePath, PathError};
pub use wire::{EntryStream, ReadError};

/// The `.wh.` filename prefix Docker/OCI uses to encode whiteouts in tars.
pub const WHITEOUT_PREFIX: &str = ".wh.";
/// The special whiteout that marks a directory opaque (masks all lower content).
pub const OPAQUE_WHITEOUT: &str = ".wh..wh..opq";
