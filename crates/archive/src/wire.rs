//! Binary wire format for [`Archive`].
//!
//! ```text
//! magic  [4] = b"GAR1"
//! count  [4] le
//! entry* :
//!   tag    [1]
//!   path   [2 le + bytes]
//!   Dir/OpaqueDir : meta [20]
//!   File          : meta [20] + len [8 le] + bytes
//!   Symlink       : meta [20] + target [2 le + bytes]
//!   Hardlink      : target path [2 le + bytes]
//!   Whiteout      : (nothing)
//! meta = mode [4 le] uid [4 le] gid [4 le] mtime [8 le]
//! ```

use std::error::Error;
use std::fmt;

use bytes::Bytes;

use crate::entry::{Archive, Entry, EntryKind, Metadata};
use crate::path::ArchivePath;

const MAGIC: [u8; 4] = *b"GAR1";

/// Error decoding an archive from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// Input ended before the declared structure was complete.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// An entry carried an unknown tag byte.
    UnknownTag(u8),
    /// A path or symlink target was not valid UTF-8.
    BadString,
    /// A decoded path failed [`ArchivePath`] validation.
    BadPath(String),
    /// Trailing bytes after the last declared entry.
    TrailingBytes(usize),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Truncated => write!(f, "archive is truncated"),
            ReadError::BadMagic => write!(f, "archive has invalid magic"),
            ReadError::UnknownTag(t) => write!(f, "archive entry has unknown tag {t}"),
            ReadError::BadString => write!(f, "archive string is not valid UTF-8"),
            ReadError::BadPath(p) => write!(f, "archive path {p:?} is invalid"),
            ReadError::TrailingBytes(n) => write!(f, "{n} trailing bytes after archive"),
        }
    }
}

impl Error for ReadError {}

#[derive(Debug)]
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ReadError> {
        if self.buf.len() - self.pos < n {
            return Err(ReadError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ReadError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ReadError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ReadError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ReadError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, ReadError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ReadError::BadString)
    }

    fn path(&mut self) -> Result<ArchivePath, ReadError> {
        let s = self.string()?;
        ArchivePath::new(&s).map_err(|_| ReadError::BadPath(s))
    }

    fn meta(&mut self) -> Result<Metadata, ReadError> {
        Ok(Metadata { mode: self.u32()?, uid: self.u32()?, gid: self.u32()?, mtime: self.u64()? })
    }
}

fn write_string(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string too long for wire format");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn write_meta(out: &mut Vec<u8>, m: &Metadata) {
    out.extend_from_slice(&m.mode.to_le_bytes());
    out.extend_from_slice(&m.uid.to_le_bytes());
    out.extend_from_slice(&m.gid.to_le_bytes());
    out.extend_from_slice(&m.mtime.to_le_bytes());
}

impl Archive {
    /// Serializes the archive to its binary wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.content_bytes() as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for entry in self.iter() {
            out.push(entry.kind.tag());
            write_string(&mut out, entry.path.as_str());
            match &entry.kind {
                EntryKind::Dir { meta } | EntryKind::OpaqueDir { meta } => {
                    write_meta(&mut out, meta);
                }
                EntryKind::File { meta, content } => {
                    write_meta(&mut out, meta);
                    out.extend_from_slice(&(content.len() as u64).to_le_bytes());
                    out.extend_from_slice(content);
                }
                EntryKind::Symlink { meta, target } => {
                    write_meta(&mut out, meta);
                    write_string(&mut out, target);
                }
                EntryKind::Hardlink { target } => {
                    write_string(&mut out, target.as_str());
                }
                EntryKind::Whiteout => {}
            }
        }
        out
    }

    /// Parses an archive from its binary wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] on truncation, bad magic, unknown entry tags,
    /// malformed strings/paths, or trailing garbage.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ReadError> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(ReadError::BadMagic);
        }
        let count = r.u32()? as usize;
        let mut archive = Archive::new();
        for _ in 0..count {
            let tag = r.u8()?;
            let path = r.path()?;
            let kind = match tag {
                0 => EntryKind::Dir { meta: r.meta()? },
                1 => {
                    let meta = r.meta()?;
                    let len = r.u64()? as usize;
                    let content = Bytes::copy_from_slice(r.take(len)?);
                    EntryKind::File { meta, content }
                }
                2 => {
                    let meta = r.meta()?;
                    let target = r.string()?;
                    EntryKind::Symlink { meta, target }
                }
                3 => EntryKind::Hardlink { target: r.path()? },
                4 => EntryKind::Whiteout,
                5 => EntryKind::OpaqueDir { meta: r.meta()? },
                t => return Err(ReadError::UnknownTag(t)),
            };
            archive.push(Entry { path, kind });
        }
        if r.pos != buf.len() {
            return Err(ReadError::TrailingBytes(buf.len() - r.pos));
        }
        Ok(archive)
    }
}

/// A streaming parser over a serialized archive: yields entries one at a
/// time without materializing the whole [`Archive`]. Useful for registries
/// that scan layer blobs (e.g. to index files) without keeping them
/// decoded.
///
/// ```
/// use gear_archive::{Archive, ArchivePath, Entry, EntryStream, Metadata};
/// let mut a = Archive::new();
/// a.push(Entry::dir(ArchivePath::new("etc")?, Metadata::dir_default()));
/// let bytes = a.to_bytes();
/// let mut stream = EntryStream::new(&bytes)?;
/// assert_eq!(stream.next().unwrap()?.path.as_str(), "etc");
/// assert!(stream.next().is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EntryStream<'a> {
    reader: Reader<'a>,
    remaining: usize,
    failed: bool,
}

impl<'a> EntryStream<'a> {
    /// Starts streaming from serialized archive bytes.
    ///
    /// # Errors
    ///
    /// [`ReadError::Truncated`] / [`ReadError::BadMagic`] if the header is
    /// unreadable.
    pub fn new(buf: &'a [u8]) -> Result<Self, ReadError> {
        let mut reader = Reader { buf, pos: 0 };
        if reader.take(4)? != MAGIC {
            return Err(ReadError::BadMagic);
        }
        let remaining = reader.u32()? as usize;
        Ok(EntryStream { reader, remaining, failed: false })
    }

    /// Entries not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    fn read_entry(&mut self) -> Result<Entry, ReadError> {
        let r = &mut self.reader;
        let tag = r.u8()?;
        let path = r.path()?;
        let kind = match tag {
            0 => EntryKind::Dir { meta: r.meta()? },
            1 => {
                let meta = r.meta()?;
                let len = r.u64()? as usize;
                let content = Bytes::copy_from_slice(r.take(len)?);
                EntryKind::File { meta, content }
            }
            2 => {
                let meta = r.meta()?;
                let target = r.string()?;
                EntryKind::Symlink { meta, target }
            }
            3 => EntryKind::Hardlink { target: r.path()? },
            4 => EntryKind::Whiteout,
            5 => EntryKind::OpaqueDir { meta: r.meta()? },
            t => return Err(ReadError::UnknownTag(t)),
        };
        Ok(Entry { path, kind })
    }
}

impl Iterator for EntryStream<'_> {
    type Item = Result<Entry, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.read_entry() {
            Ok(entry) => Some(Ok(entry)),
            Err(e) => {
                self.failed = true; // stop after the first error
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> ArchivePath {
        ArchivePath::new(s).unwrap()
    }

    fn sample() -> Archive {
        let mut a = Archive::new();
        a.push(Entry::dir(p("etc"), Metadata::dir_default()));
        a.push(Entry::file(
            p("etc/passwd"),
            Metadata { mode: 0o600, uid: 0, gid: 0, mtime: 1_600_000_000 },
            Bytes::from_static(b"root:x:0:0::/root:/bin/sh\n"),
        ));
        a.push(Entry::symlink(p("etc/mtab"), Metadata::file_default(), "/proc/mounts"));
        a.push(Entry::hardlink(p("etc/alias"), p("etc/passwd")));
        a.push(Entry::whiteout(p("etc/stale.conf")));
        a.push(Entry::opaque_dir(p("var"), Metadata::dir_default()));
        a
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let bytes = a.to_bytes();
        assert_eq!(Archive::from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn empty_roundtrip() {
        let a = Archive::new();
        assert_eq!(Archive::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn detects_truncation_anywhere() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Archive::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[1] ^= 0xff;
        assert_eq!(Archive::from_bytes(&bytes), Err(ReadError::BadMagic));
    }

    #[test]
    fn detects_trailing_bytes() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(Archive::from_bytes(&bytes), Err(ReadError::TrailingBytes(1)));
    }

    #[test]
    fn detects_unknown_tag() {
        let mut a = Archive::new();
        a.push(Entry::whiteout(p("x")));
        let mut bytes = a.to_bytes();
        bytes[8] = 200; // first entry tag
        assert_eq!(Archive::from_bytes(&bytes), Err(ReadError::UnknownTag(200)));
    }

    #[test]
    fn stream_matches_bulk_parse() {
        let archive = sample();
        let bytes = archive.to_bytes();
        let streamed: Vec<Entry> =
            EntryStream::new(&bytes).unwrap().collect::<Result<_, _>>().unwrap();
        assert_eq!(streamed, archive.entries().to_vec());
    }

    #[test]
    fn stream_reports_remaining_and_stops_after_error() {
        let archive = sample();
        let mut bytes = archive.to_bytes();
        let mut stream = EntryStream::new(&bytes).unwrap();
        assert_eq!(stream.remaining(), archive.len());
        stream.next();
        assert_eq!(stream.remaining(), archive.len() - 1);

        // Corrupt a tag mid-stream: the iterator yields one Err then ends.
        bytes[8] = 99;
        let results: Vec<_> = EntryStream::new(&bytes).unwrap().collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn stream_rejects_bad_header() {
        assert!(matches!(EntryStream::new(&[0, 1]), Err(ReadError::Truncated)));
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(EntryStream::new(&bytes), Err(ReadError::BadMagic)));
    }

    #[test]
    fn rejects_invalid_decoded_path() {
        let mut a = Archive::new();
        a.push(Entry::whiteout(p("ok")));
        let mut bytes = a.to_bytes();
        // Path "ok" starts right after magic(4)+count(4)+tag(1)+len(2) = offset 11.
        bytes[11] = b'.';
        bytes[12] = b'.';
        assert!(matches!(Archive::from_bytes(&bytes), Err(ReadError::BadPath(_))));
    }
}
