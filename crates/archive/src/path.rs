//! Normalized, rooted-relative archive paths.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A validated, normalized path inside an image root file system.
///
/// Invariants: relative (no leading `/`), non-empty, no `.` or `..`
/// components, no empty components, and no interior NUL bytes. Components are
/// joined by `/`.
///
/// ```
/// use gear_archive::ArchivePath;
/// let p = ArchivePath::new("usr/lib/libc.so")?;
/// assert_eq!(p.file_name(), "libc.so");
/// assert_eq!(p.parent().unwrap().as_str(), "usr/lib");
/// assert!(ArchivePath::new("../escape").is_err());
/// # Ok::<(), gear_archive::PathError>(())
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ArchivePath(String);

/// Error constructing an [`ArchivePath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path was empty.
    Empty,
    /// The path was absolute (leading `/`).
    Absolute,
    /// A component was empty, `.`, or `..`.
    BadComponent {
        /// The offending component.
        component: String,
    },
    /// The path contained a NUL byte.
    Nul,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "archive path is empty"),
            PathError::Absolute => write!(f, "archive path must be relative"),
            PathError::BadComponent { component } => {
                write!(f, "invalid path component {component:?}")
            }
            PathError::Nul => write!(f, "archive path contains a NUL byte"),
        }
    }
}

impl Error for PathError {}

impl ArchivePath {
    /// Validates and normalizes `path` (trailing slashes are stripped).
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] for empty, absolute, traversal (`..`), or
    /// NUL-containing input.
    pub fn new(path: impl AsRef<str>) -> Result<Self, PathError> {
        let raw = path.as_ref();
        if raw.contains('\0') {
            return Err(PathError::Nul);
        }
        if raw.starts_with('/') {
            return Err(PathError::Absolute);
        }
        let trimmed = raw.trim_end_matches('/');
        if trimmed.is_empty() {
            return Err(PathError::Empty);
        }
        for component in trimmed.split('/') {
            if component.is_empty() || component == "." || component == ".." {
                return Err(PathError::BadComponent { component: component.to_owned() });
            }
        }
        Ok(ArchivePath(trimmed.to_owned()))
    }

    /// The normalized path string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterates over `/`-separated components.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.0.split('/')
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        self.components().count()
    }

    /// Final component.
    pub fn file_name(&self) -> &str {
        self.0.rsplit('/').next().expect("non-empty path")
    }

    /// Everything before the final component, or `None` at the top level.
    pub fn parent(&self) -> Option<ArchivePath> {
        self.0.rfind('/').map(|i| ArchivePath(self.0[..i].to_owned()))
    }

    /// Appends a single component, validating it.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::BadComponent`] if `component` is empty, `.`,
    /// `..`, or contains `/` or NUL.
    pub fn join(&self, component: &str) -> Result<ArchivePath, PathError> {
        if component.is_empty()
            || component == "."
            || component == ".."
            || component.contains('/')
        {
            return Err(PathError::BadComponent { component: component.to_owned() });
        }
        if component.contains('\0') {
            return Err(PathError::Nul);
        }
        Ok(ArchivePath(format!("{}/{}", self.0, component)))
    }

    /// Whether `self` is `other` or lies underneath it.
    pub fn starts_with(&self, other: &ArchivePath) -> bool {
        self.0 == other.0
            || (self.0.len() > other.0.len()
                && self.0.starts_with(&other.0)
                && self.0.as_bytes()[other.0.len()] == b'/')
    }
}

impl fmt::Display for ArchivePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ArchivePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArchivePath({:?})", self.0)
    }
}

impl AsRef<str> for ArchivePath {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for ArchivePath {
    type Err = PathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ArchivePath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_normal_paths() {
        for p in ["a", "a/b", "usr/lib/x86_64/libc.so.6", "weird name/with space"] {
            assert!(ArchivePath::new(p).is_ok(), "{p}");
        }
    }

    #[test]
    fn strips_trailing_slash() {
        assert_eq!(ArchivePath::new("etc/").unwrap().as_str(), "etc");
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(ArchivePath::new(""), Err(PathError::Empty));
        assert_eq!(ArchivePath::new("/abs"), Err(PathError::Absolute));
        assert!(matches!(ArchivePath::new("a//b"), Err(PathError::BadComponent { .. })));
        assert!(matches!(ArchivePath::new("a/./b"), Err(PathError::BadComponent { .. })));
        assert!(matches!(ArchivePath::new("../up"), Err(PathError::BadComponent { .. })));
        assert_eq!(ArchivePath::new("a\0b"), Err(PathError::Nul));
    }

    #[test]
    fn parent_and_file_name() {
        let p = ArchivePath::new("a/b/c").unwrap();
        assert_eq!(p.file_name(), "c");
        assert_eq!(p.parent().unwrap().as_str(), "a/b");
        assert_eq!(ArchivePath::new("top").unwrap().parent(), None);
    }

    #[test]
    fn join_validates() {
        let p = ArchivePath::new("a").unwrap();
        assert_eq!(p.join("b").unwrap().as_str(), "a/b");
        assert!(p.join("..").is_err());
        assert!(p.join("x/y").is_err());
        assert!(p.join("").is_err());
    }

    #[test]
    fn starts_with_component_boundaries() {
        let root = ArchivePath::new("usr/lib").unwrap();
        assert!(ArchivePath::new("usr/lib").unwrap().starts_with(&root));
        assert!(ArchivePath::new("usr/lib/a").unwrap().starts_with(&root));
        assert!(!ArchivePath::new("usr/lib64").unwrap().starts_with(&root));
        assert!(!ArchivePath::new("usr").unwrap().starts_with(&root));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [
            ArchivePath::new("b").unwrap(),
            ArchivePath::new("a/z").unwrap(),
            ArchivePath::new("a").unwrap(),
        ];
        v.sort();
        let strs: Vec<_> = v.iter().map(|p| p.as_str()).collect();
        assert_eq!(strs, ["a", "a/z", "b"]);
    }
}
