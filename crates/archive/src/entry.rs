//! Archive entries and the in-memory [`Archive`] container.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::path::ArchivePath;

/// POSIX-style metadata carried by every non-whiteout entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Metadata {
    /// File mode bits (permissions + type-agnostic flags), e.g. `0o644`.
    pub mode: u32,
    /// Owner user id.
    pub uid: u32,
    /// Owner group id.
    pub gid: u32,
    /// Modification time, seconds since the epoch.
    pub mtime: u64,
}

impl Metadata {
    /// `0o644 root:root` — the common default for image files.
    pub fn file_default() -> Self {
        Metadata { mode: 0o644, uid: 0, gid: 0, mtime: 0 }
    }

    /// `0o755 root:root` — the common default for image directories.
    pub fn dir_default() -> Self {
        Metadata { mode: 0o755, uid: 0, gid: 0, mtime: 0 }
    }

    /// `0o755 root:root` — the common default for executables.
    pub fn exec_default() -> Self {
        Metadata { mode: 0o755, uid: 0, gid: 0, mtime: 0 }
    }
}

impl Default for Metadata {
    fn default() -> Self {
        Self::file_default()
    }
}

/// What an archive entry describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryKind {
    /// A directory.
    Dir {
        /// Directory metadata.
        meta: Metadata,
    },
    /// A regular file with inline content.
    File {
        /// File metadata.
        meta: Metadata,
        /// File content.
        content: Bytes,
    },
    /// A symbolic link.
    Symlink {
        /// Link metadata.
        meta: Metadata,
        /// Link target (not validated; may dangle, be absolute, or relative).
        target: String,
    },
    /// A hard link to another path *within the same image*.
    Hardlink {
        /// Path of the link target, relative to the image root.
        target: ArchivePath,
    },
    /// A whiteout: deletes the entry at this path in lower layers.
    Whiteout,
    /// An opaque directory: a directory that masks all lower-layer content
    /// beneath the same path.
    OpaqueDir {
        /// Directory metadata.
        meta: Metadata,
    },
}

impl EntryKind {
    /// Numeric tag used by the wire format.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            EntryKind::Dir { .. } => 0,
            EntryKind::File { .. } => 1,
            EntryKind::Symlink { .. } => 2,
            EntryKind::Hardlink { .. } => 3,
            EntryKind::Whiteout => 4,
            EntryKind::OpaqueDir { .. } => 5,
        }
    }
}

/// One record of an image-layer diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Where in the image root this entry applies.
    pub path: ArchivePath,
    /// What it describes.
    pub kind: EntryKind,
}

impl Entry {
    /// Creates a directory entry.
    pub fn dir(path: ArchivePath, meta: Metadata) -> Self {
        Entry { path, kind: EntryKind::Dir { meta } }
    }

    /// Creates a regular-file entry.
    pub fn file(path: ArchivePath, meta: Metadata, content: Bytes) -> Self {
        Entry { path, kind: EntryKind::File { meta, content } }
    }

    /// Creates a symlink entry.
    pub fn symlink(path: ArchivePath, meta: Metadata, target: impl Into<String>) -> Self {
        Entry { path, kind: EntryKind::Symlink { meta, target: target.into() } }
    }

    /// Creates a hardlink entry.
    pub fn hardlink(path: ArchivePath, target: ArchivePath) -> Self {
        Entry { path, kind: EntryKind::Hardlink { target } }
    }

    /// Creates a whiteout entry deleting `path` from lower layers.
    pub fn whiteout(path: ArchivePath) -> Self {
        Entry { path, kind: EntryKind::Whiteout }
    }

    /// Creates an opaque-directory entry.
    pub fn opaque_dir(path: ArchivePath, meta: Metadata) -> Self {
        Entry { path, kind: EntryKind::OpaqueDir { meta } }
    }

    /// Content size for files; 0 for everything else.
    pub fn content_len(&self) -> u64 {
        match &self.kind {
            EntryKind::File { content, .. } => content.len() as u64,
            _ => 0,
        }
    }
}

/// An ordered list of entries making up one layer diff.
///
/// Order matters: parent directories should precede children, and replay
/// applies entries first-to-last.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Archive {
    entries: Vec<Entry>,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Archive::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: Entry) {
        self.entries.push(entry);
    }

    /// Entries in replay order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Entry> {
        self.entries.iter()
    }

    /// Total bytes of regular-file content (the "unpacked size" of the layer,
    /// ignoring metadata overhead).
    pub fn content_bytes(&self) -> u64 {
        self.entries.iter().map(Entry::content_len).sum()
    }

    /// Number of regular-file entries.
    pub fn file_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::File { .. }))
            .count()
    }

    /// Sorts entries so parents precede children (stable, path-lexicographic).
    ///
    /// Useful after assembling entries out of order; replay requires parent
    /// directories to exist before their children are created.
    pub fn sort_by_path(&mut self) {
        self.entries.sort_by(|a, b| a.path.cmp(&b.path));
    }
}

impl FromIterator<Entry> for Archive {
    fn from_iter<T: IntoIterator<Item = Entry>>(iter: T) -> Self {
        Archive { entries: iter.into_iter().collect() }
    }
}

impl Extend<Entry> for Archive {
    fn extend<T: IntoIterator<Item = Entry>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

impl IntoIterator for Archive {
    type Item = Entry;
    type IntoIter = std::vec::IntoIter<Entry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Archive {
    type Item = &'a Entry;
    type IntoIter = std::slice::Iter<'a, Entry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> ArchivePath {
        ArchivePath::new(s).unwrap()
    }

    #[test]
    fn accounting() {
        let mut a = Archive::new();
        a.push(Entry::dir(p("bin"), Metadata::dir_default()));
        a.push(Entry::file(p("bin/sh"), Metadata::exec_default(), Bytes::from_static(b"#!x")));
        a.push(Entry::file(p("bin/ls"), Metadata::exec_default(), Bytes::from_static(b"#!xyz")));
        a.push(Entry::symlink(p("bin/link"), Metadata::file_default(), "/bin/sh"));
        a.push(Entry::whiteout(p("bin/old")));
        assert_eq!(a.len(), 5);
        assert_eq!(a.file_count(), 2);
        assert_eq!(a.content_bytes(), 8);
    }

    #[test]
    fn sort_orders_parents_first() {
        let mut a = Archive::new();
        a.push(Entry::file(p("d/a/f"), Metadata::file_default(), Bytes::new()));
        a.push(Entry::dir(p("d"), Metadata::dir_default()));
        a.push(Entry::dir(p("d/a"), Metadata::dir_default()));
        a.sort_by_path();
        let paths: Vec<_> = a.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, ["d", "d/a", "d/a/f"]);
    }

    #[test]
    fn collect_from_iterator() {
        let a: Archive = vec![Entry::dir(p("x"), Metadata::dir_default())].into_iter().collect();
        assert_eq!(a.len(), 1);
    }
}
