//! Property-based tests: the wire format roundtrips arbitrary archives.

use bytes::Bytes;
use gear_archive::{Archive, ArchivePath, Entry, EntryKind, Metadata};
use proptest::prelude::*;

fn any_component() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{1,12}".prop_filter("no dot components", |s| s != "." && s != "..")
}

fn any_path() -> impl Strategy<Value = ArchivePath> {
    proptest::collection::vec(any_component(), 1..5)
        .prop_map(|parts| ArchivePath::new(parts.join("/")).expect("valid components"))
}

fn any_meta() -> impl Strategy<Value = Metadata> {
    (0u32..0o7777, 0u32..70_000, 0u32..70_000, 0u64..u32::MAX as u64)
        .prop_map(|(mode, uid, gid, mtime)| Metadata { mode, uid, gid, mtime })
}

fn any_entry() -> impl Strategy<Value = Entry> {
    (any_path(), any_meta(), proptest::collection::vec(any::<u8>(), 0..256), any_path(), 0u8..6)
        .prop_map(|(path, meta, content, other, tag)| {
            let kind = match tag {
                0 => EntryKind::Dir { meta },
                1 => EntryKind::File { meta, content: Bytes::from(content) },
                2 => EntryKind::Symlink { meta, target: format!("/{other}") },
                3 => EntryKind::Hardlink { target: other },
                4 => EntryKind::Whiteout,
                _ => EntryKind::OpaqueDir { meta },
            };
            Entry { path, kind }
        })
}

fn any_archive() -> impl Strategy<Value = Archive> {
    proptest::collection::vec(any_entry(), 0..32).prop_map(Archive::from_iter)
}

proptest! {
    /// to_bytes/from_bytes is the identity on arbitrary archives.
    #[test]
    fn wire_roundtrip(archive in any_archive()) {
        let bytes = archive.to_bytes();
        prop_assert_eq!(Archive::from_bytes(&bytes).unwrap(), archive);
    }

    /// Any proper prefix of the encoding fails to parse (no silent truncation).
    #[test]
    fn prefix_never_parses(archive in any_archive(), cut in any::<prop::sample::Index>()) {
        let bytes = archive.to_bytes();
        prop_assume!(!bytes.is_empty());
        let at = cut.index(bytes.len()); // strictly less than len
        prop_assert!(Archive::from_bytes(&bytes[..at]).is_err());
    }

    /// Accounting helpers agree with a manual fold.
    #[test]
    fn accounting_consistent(archive in any_archive()) {
        let files = archive.iter().filter(|e| matches!(e.kind, EntryKind::File { .. })).count();
        let bytes: u64 = archive.iter().map(|e| e.content_len()).sum();
        prop_assert_eq!(archive.file_count(), files);
        prop_assert_eq!(archive.content_bytes(), bytes);
    }

    /// sort_by_path puts every parent before its children.
    #[test]
    fn sort_parents_first(mut archive in any_archive()) {
        archive.sort_by_path();
        let paths: Vec<_> = archive.iter().map(|e| e.path.clone()).collect();
        for (i, p) in paths.iter().enumerate() {
            if let Some(parent) = p.parent() {
                if let Some(j) = paths.iter().position(|q| *q == parent) {
                    prop_assert!(j < i || paths[j] == paths[i], "parent after child");
                }
            }
        }
    }
}
