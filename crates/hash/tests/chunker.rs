//! Property-based tests for the CDC chunker: shift-resistance (a small
//! early edit re-chunks only the O(1) chunks near the edit, never the tail)
//! and bit-identical determinism across gear-par worker counts.

use std::ops::Range;

use gear_hash::{chunk_spans, chunk_spans_all, ChunkerConfig};
use gear_par::Pool;
use proptest::prelude::*;

const CONFIG: ChunkerConfig = ChunkerConfig { min_size: 32, avg_size: 128, max_size: 512 };

/// Deterministic pseudo-random bytes from a seed (splitmix64 per position).
fn noise(seed: u64, len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| {
            let mut z = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

/// Cut positions measured from the END of the buffer, restricted to cuts
/// strictly inside the final `tail` bytes. Distance-from-end is the frame
/// in which an early insert/delete leaves the shared suffix untouched.
fn tail_cuts(spans: &[Range<usize>], total: usize, tail: usize) -> Vec<usize> {
    spans
        .iter()
        .map(|s| total - s.end)
        .filter(|&from_end| from_end > 0 && from_end < tail)
        .collect()
}

proptest! {
    /// Inserting a small span early in a long file must leave the tail
    /// chunking untouched: beyond a resync margin of a few max-size chunks
    /// past the edit, every cut (measured from the end of the buffer) is
    /// identical. A fixed-size chunker fails this instantly — every chunk
    /// after the insert shifts.
    #[test]
    fn early_insert_rechunks_only_nearby(
        seed in any::<u64>(),
        edit_at in 0usize..2_000,
        insert in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let original = noise(seed, 40_000);
        let mut edited = original.clone();
        let at = edit_at.min(edited.len());
        edited.splice(at..at, insert.iter().copied());

        let spans_a = chunk_spans(&original, &CONFIG);
        let spans_b = chunk_spans(&edited, &CONFIG);

        // Resync margin: the edit region plus a generous 8 max-size chunks
        // for the cut walks to coalesce on the shared suffix.
        let margin = at + insert.len() + 8 * CONFIG.max_size;
        let tail = original.len().saturating_sub(margin);
        prop_assert!(tail > 8 * CONFIG.max_size, "file long enough to have a tail");
        prop_assert_eq!(
            tail_cuts(&spans_a, original.len(), tail),
            tail_cuts(&spans_b, edited.len(), tail),
            "tail cuts must survive an early insert"
        );
    }

    /// Deleting a small span early must likewise leave the tail chunking
    /// untouched.
    #[test]
    fn early_delete_rechunks_only_nearby(
        seed in any::<u64>(),
        edit_at in 0usize..2_000,
        del in 1usize..64,
    ) {
        let original = noise(seed, 40_000);
        let mut edited = original.clone();
        let at = edit_at.min(edited.len() - del);
        edited.drain(at..at + del);

        let spans_a = chunk_spans(&original, &CONFIG);
        let spans_b = chunk_spans(&edited, &CONFIG);

        let margin = at + del + 8 * CONFIG.max_size;
        let tail = edited.len().saturating_sub(margin);
        prop_assert!(tail > 8 * CONFIG.max_size, "file long enough to have a tail");
        prop_assert_eq!(
            tail_cuts(&spans_a, original.len(), tail),
            tail_cuts(&spans_b, edited.len(), tail),
            "tail cuts must survive an early delete"
        );
    }

    /// Chunk spans tile the buffer exactly and respect the size bounds for
    /// arbitrary (not just noise) inputs.
    #[test]
    fn spans_tile_and_bound(data in proptest::collection::vec(any::<u8>(), 0..8_192)) {
        let spans = chunk_spans(&data, &CONFIG);
        let mut expect = 0;
        for (i, span) in spans.iter().enumerate() {
            prop_assert_eq!(span.start, expect);
            prop_assert!(span.len() <= CONFIG.max_size);
            if i + 1 < spans.len() {
                prop_assert!(span.len() >= CONFIG.min_size);
            }
            expect = span.end;
        }
        prop_assert_eq!(expect, data.len());
    }

    /// Chunking a batch of files is bit-identical across worker counts —
    /// the converter's parallel chunking must not depend on scheduling.
    #[test]
    fn worker_count_invariance(seed in any::<u64>(), count in 1usize..24) {
        let items: Vec<Vec<u8>> = (0..count as u64)
            .map(|i| noise(seed ^ i, 500 + (i as usize * 619) % 4_000))
            .collect();
        let serial = chunk_spans_all(&items, &CONFIG, &Pool::serial());
        for workers in [2, 4, 8] {
            prop_assert_eq!(
                &serial,
                &chunk_spans_all(&items, &CONFIG, &Pool::new(workers)),
                "workers={}", workers
            );
        }
    }
}
