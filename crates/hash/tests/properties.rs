//! Property-based tests for the hash substrate.

use gear_hash::{hex_decode, hex_encode, Digest, Fingerprint, Md5, Sha256};
use proptest::prelude::*;

proptest! {
    /// Hex encode/decode is a bijection on byte vectors.
    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let enc = hex_encode(&data);
        prop_assert_eq!(hex_decode(&enc).unwrap(), data);
    }

    /// Splitting the input at any point must not change the MD5 digest.
    #[test]
    fn md5_split_invariance(data in proptest::collection::vec(any::<u8>(), 0..2048), split in any::<prop::sample::Index>()) {
        let at = split.index(data.len() + 1);
        let mut a = Md5::new();
        a.update(&data);
        let mut b = Md5::new();
        b.update(&data[..at]);
        b.update(&data[at..]);
        prop_assert_eq!(a.finalize(), b.finalize());
    }

    /// Splitting the input at any point must not change the SHA-256 digest.
    #[test]
    fn sha256_split_invariance(data in proptest::collection::vec(any::<u8>(), 0..2048), split in any::<prop::sample::Index>()) {
        let at = split.index(data.len() + 1);
        let mut a = Sha256::new();
        a.update(&data);
        let mut b = Sha256::new();
        b.update(&data[..at]);
        b.update(&data[at..]);
        prop_assert_eq!(a.finalize(), b.finalize());
    }

    /// Fingerprints are deterministic and parse back from their display form.
    #[test]
    fn fingerprint_display_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let fp = Fingerprint::of(&data);
        prop_assert_eq!(fp, Fingerprint::of(&data));
        let parsed: Fingerprint = fp.to_string().parse().unwrap();
        prop_assert_eq!(parsed, fp);
    }

    /// Digests parse back from their display form.
    #[test]
    fn digest_display_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let d = Digest::of(&data);
        let parsed: Digest = d.to_string().parse().unwrap();
        prop_assert_eq!(parsed, d);
    }

    /// One-byte perturbations change the fingerprint (no trivial collisions).
    #[test]
    fn fingerprint_sensitive_to_flips(mut data in proptest::collection::vec(any::<u8>(), 1..256), idx in any::<prop::sample::Index>()) {
        let original = Fingerprint::of(&data);
        let i = idx.index(data.len());
        data[i] ^= 0x01;
        prop_assert_ne!(Fingerprint::of(&data), original);
    }
}
