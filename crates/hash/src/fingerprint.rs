//! Strongly typed content identifiers.
//!
//! [`Fingerprint`] (MD5, 128-bit) names Gear files; [`Digest`] (SHA-256,
//! 256-bit) names Docker layers, manifests, and Gear-index images. Keeping
//! them as distinct newtypes prevents a layer digest from ever being used to
//! look up a Gear file or vice versa.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::{hex, md5, sha256};

macro_rules! content_id {
    ($(#[$doc:meta])* $name:ident, $len:expr, $hash:path, $err:ident, $errmsg:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name([u8; $len]);

        impl $name {
            /// Number of raw bytes in this identifier.
            pub const LEN: usize = $len;

            /// Computes the identifier of `data`.
            pub fn of(data: &[u8]) -> Self {
                $name($hash(data))
            }

            /// Wraps pre-computed raw hash bytes.
            pub fn from_bytes(bytes: [u8; $len]) -> Self {
                $name(bytes)
            }

            /// Raw hash bytes.
            pub fn as_bytes(&self) -> &[u8; $len] {
                &self.0
            }

            /// Lowercase hex representation.
            pub fn to_hex(&self) -> String {
                hex::encode(&self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.to_hex())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.to_hex())
            }
        }

        #[doc = concat!("Error parsing a [`", stringify!($name), "`] from a hex string.")]
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $err;

        impl fmt::Display for $err {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str($errmsg)
            }
        }

        impl Error for $err {}

        impl FromStr for $name {
            type Err = $err;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let bytes = hex::decode(s).map_err(|_| $err)?;
                let arr: [u8; $len] = bytes.try_into().map_err(|_| $err)?;
                Ok($name(arr))
            }
        }

        impl Serialize for $name {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_str(&self.to_hex())
            }
        }

        impl<'de> Deserialize<'de> for $name {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let s = String::deserialize(d)?;
                s.parse().map_err(|_| D::Error::custom($errmsg))
            }
        }
    };
}

content_id!(
    /// A 128-bit MD5 content fingerprint identifying a Gear file.
    ///
    /// Identical file contents always produce identical fingerprints, which is
    /// what enables file-level deduplication in the registry and file-level
    /// sharing in the client cache (Gear paper §III-B).
    ///
    /// ```
    /// use gear_hash::Fingerprint;
    /// let a = Fingerprint::of(b"same bytes");
    /// let b = Fingerprint::of(b"same bytes");
    /// assert_eq!(a, b);
    /// let parsed: Fingerprint = a.to_string().parse()?;
    /// assert_eq!(parsed, a);
    /// # Ok::<(), gear_hash::ParseFingerprintError>(())
    /// ```
    Fingerprint,
    16,
    md5,
    ParseFingerprintError,
    "expected 32 hex characters (MD5 fingerprint)"
);

content_id!(
    /// A 256-bit SHA-256 digest identifying a Docker layer, manifest, or image.
    ///
    /// ```
    /// use gear_hash::Digest;
    /// let d = Digest::of(b"layer tarball");
    /// assert_eq!(d.to_string().len(), 64);
    /// ```
    Digest,
    32,
    sha256,
    ParseDigestError,
    "expected 64 hex characters (SHA-256 digest)"
);

impl Fingerprint {
    /// Upper bound on the probability that one or more collisions occur among
    /// `n` distinct files, by the birthday bound `n(n-1)/2 * 2^-128`
    /// (Gear paper Eq. 1).
    ///
    /// ```
    /// // ~5e10 deduplicated files in all of Docker Hub => ~5e-18.
    /// let p = gear_hash::Fingerprint::collision_probability_bound(5e10 as u64);
    /// assert!(p < 1e-17);
    /// ```
    pub fn collision_probability_bound(n: u64) -> f64 {
        let n = n as f64;
        (n * (n - 1.0) / 2.0) * (2.0_f64).powi(-128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_matches_known_md5() {
        // MD5("abc")
        assert_eq!(
            Fingerprint::of(b"abc").to_string(),
            "900150983cd24fb0d6963f7d28e17f72"
        );
    }

    #[test]
    fn digest_matches_known_sha256() {
        assert_eq!(
            Digest::of(b"abc").to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("zz".parse::<Fingerprint>().is_err());
        assert!("abcd".parse::<Fingerprint>().is_err()); // too short
        assert!(Fingerprint::of(b"x").to_string().parse::<Digest>().is_err()); // wrong width
    }

    #[test]
    fn serde_roundtrip() {
        let fp = Fingerprint::of(b"serde");
        let json = serde_json_like(&fp.to_hex());
        // Serialize manually through serde's data model using serde_json is
        // exercised in gear-image; here we check Display/FromStr symmetry.
        let back: Fingerprint = fp.to_string().parse().unwrap();
        assert_eq!(back, fp);
        assert_eq!(json, format!("\"{fp}\""));
    }

    fn serde_json_like(hex: &str) -> String {
        format!("\"{hex}\"")
    }

    #[test]
    fn collision_bound_is_tiny_at_hub_scale() {
        let p = Fingerprint::collision_probability_bound(50_000_000_000);
        assert!(p > 0.0 && p < 1e-17);
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = Fingerprint::from_bytes([0u8; 16]);
        let b = Fingerprint::from_bytes([1u8; 16]);
        assert!(a < b);
    }
}
