//! Content-defined chunking (CDC) with a Gear rolling hash.
//!
//! Files above a size threshold are split into variable-size chunks whose
//! boundaries depend only on the bytes *near* the boundary, never on the
//! byte offset. Inserting or deleting a span early in a file therefore
//! shifts only the O(1) chunks around the edit: the cut points downstream
//! re-synchronise on the same content and the tail chunks keep their
//! fingerprints — which is exactly what lets a registry deduplicate
//! consecutive versions of a large binary at sub-file granularity.
//!
//! The rolling hash is the Gear construction (fitting, given the paper's
//! name): one shift and one add per byte against a 256-entry random table,
//!
//! ```text
//! h = (h << 1) + GEAR_TABLE[byte]
//! ```
//!
//! A boundary is declared at the first position past `min_size` where
//! `h & mask == 0`, with `mask` sized so the *expected* chunk length is
//! `avg_size`; `max_size` force-cuts pathological runs. Because `h << 1`
//! discards one old byte's influence from the judged low bits per step, the
//! boundary decision depends only on the last `mask.count_ones()` bytes — a
//! small sliding window, entirely content-defined.
//!
//! The chunker is word-wise fast: bytes below `min_size` are skipped without
//! hashing (only a one-word warm-up window ahead of the first judged
//! position is rolled in), and the judged region is consumed in unrolled
//! 8-byte words.
//!
//! Everything is deterministic: boundaries are a pure function of
//! `(data, config)`, so chunking is bit-identical across
//! [`gear_par::Pool`] worker counts.

use std::ops::Range;

use crate::Fingerprint;

/// Bytes of rolling-hash warm-up ahead of the first judged position. One
/// 64-byte span saturates every bit of the 64-bit hash, so the judged
/// window behaves as if the whole prefix had been rolled in.
const WARMUP: usize = 64;

const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The Gear table: 256 fixed random words, one per byte value, generated
/// from a splitmix64 stream at compile time. Lives in a static (not on the
/// stack) — it is read-only shared state, like the CRC tables.
static GEAR_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut state = 0x6745_2301_EFCD_AB89u64; // arbitrary fixed seed
    let mut i = 0;
    while i < 256 {
        state = splitmix64(state);
        table[i] = state;
        i += 1;
    }
    table
};

/// Chunk-size bounds of the CDC chunker.
///
/// Boundaries are judged only in `[min_size, max_size]`; `avg_size` sets
/// the expected chunk length via the boundary mask (rounded to a power of
/// two). The default mirrors the paper's 128 KiB chunk unit; use
/// [`ChunkerConfig::scaled`] for a scaled-down corpus so chunk sizes keep
/// their full-scale proportion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// No chunk is shorter than this (except a file's final chunk).
    pub min_size: usize,
    /// Target expected chunk length.
    pub avg_size: usize,
    /// No chunk is longer than this (force cut).
    pub max_size: usize,
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        ChunkerConfig { min_size: 32 * 1024, avg_size: 128 * 1024, max_size: 512 * 1024 }
    }
}

impl ChunkerConfig {
    /// Bounds for a corpus scaled down by `scale_denom`: the default
    /// 32 KiB / 128 KiB / 512 KiB divided by the scale factor, floored so
    /// the ordering `min < avg < max` survives any scale.
    pub fn scaled(scale_denom: u64) -> Self {
        let s = scale_denom.max(1) as usize;
        ChunkerConfig {
            min_size: (32 * 1024 / s).max(8),
            avg_size: (128 * 1024 / s).max(16),
            max_size: (512 * 1024 / s).max(64),
        }
    }

    /// The boundary mask: `expected gap = mask + 1 ≈ avg_size - min_size`
    /// (rounded up to a power of two), so chunks average out near
    /// `avg_size` after the mandatory `min_size` skip.
    fn mask(&self) -> u64 {
        let gap = self.avg_size.saturating_sub(self.min_size).max(2);
        (gap.next_power_of_two() as u64) - 1
    }

    /// Bounds with the invariants enforced (`1 ≤ min ≤ avg ≤ max`).
    fn normalized(&self) -> ChunkerConfig {
        let min = self.min_size.max(1);
        let avg = self.avg_size.max(min);
        let max = self.max_size.max(avg);
        ChunkerConfig { min_size: min, avg_size: avg, max_size: max }
    }
}

/// One step of the Gear rolling hash.
#[inline(always)]
fn roll(h: u64, byte: u8) -> u64 {
    (h << 1).wrapping_add(GEAR_TABLE[byte as usize])
}

/// Length of the first chunk of `data` under `config` (already normalized).
fn next_cut(data: &[u8], config: &ChunkerConfig, mask: u64) -> usize {
    if data.len() <= config.min_size {
        return data.len();
    }
    let max = data.len().min(config.max_size);
    // Skip the unjudgeable prefix without hashing; warm the hash over the
    // last word before the judged region so every judged bit is populated.
    let mut h = 0u64;
    let warm = config.min_size.saturating_sub(WARMUP);
    for &byte in &data[warm..config.min_size] {
        h = roll(h, byte);
    }
    // Judged region, consumed in unrolled 8-byte words.
    let mut pos = config.min_size;
    let judged = &data[config.min_size..max];
    let mut words = judged.chunks_exact(8);
    for word in &mut words {
        for &byte in word {
            h = roll(h, byte);
            pos += 1;
            if h & mask == 0 {
                return pos;
            }
        }
    }
    for &byte in words.remainder() {
        h = roll(h, byte);
        pos += 1;
        if h & mask == 0 {
            return pos;
        }
    }
    max
}

/// Splits `data` into content-defined chunk spans.
///
/// Every span except possibly the last is `min_size ..= max_size` bytes;
/// spans tile `data` exactly, in order. Empty input yields no spans.
/// Deterministic: a pure function of `(data, config)`.
///
/// ```
/// use gear_hash::{chunk_spans, ChunkerConfig};
/// let data = vec![7u8; 100_000];
/// let config = ChunkerConfig { min_size: 2048, avg_size: 8192, max_size: 32768 };
/// let spans = chunk_spans(&data, &config);
/// assert_eq!(spans.iter().map(|s| s.len()).sum::<usize>(), data.len());
/// assert!(spans.iter().all(|s| s.len() <= 32768));
/// ```
pub fn chunk_spans(data: &[u8], config: &ChunkerConfig) -> Vec<Range<usize>> {
    let config = config.normalized();
    let mask = config.mask();
    let mut spans = Vec::new();
    let mut start = 0;
    while start < data.len() {
        let len = next_cut(&data[start..], &config, mask);
        spans.push(start..start + len);
        start += len;
    }
    spans
}

/// Chunks every item of `items` across `pool`'s workers, preserving input
/// order — the multi-file analogue of [`chunk_spans`], and bit-identical to
/// the serial loop for any worker count (chunking one buffer is a pure
/// function; only the schedule changes).
pub fn chunk_spans_all<T: AsRef<[u8]> + Sync>(
    items: &[T],
    config: &ChunkerConfig,
    pool: &gear_par::Pool,
) -> Vec<Vec<Range<usize>>> {
    pool.map(items, |item| chunk_spans(item.as_ref(), config))
}

/// Splits `data` and fingerprints each chunk: `(span, Fingerprint)` pairs in
/// file order — the unit the converter stores and the registry dedups on.
pub fn chunk_fingerprints(
    data: &[u8],
    config: &ChunkerConfig,
) -> Vec<(Range<usize>, Fingerprint)> {
    chunk_spans(data, config)
        .into_iter()
        .map(|span| {
            let fp = Fingerprint::of(&data[span.clone()]);
            (span, fp)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(seed: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| splitmix64(seed.wrapping_mul(0xA5A5).wrapping_add(i)) as u8).collect()
    }

    fn tiling_ok(spans: &[Range<usize>], len: usize) {
        let mut expect = 0;
        for span in spans {
            assert_eq!(span.start, expect, "spans must tile in order");
            assert!(span.end > span.start, "empty span");
            expect = span.end;
        }
        assert_eq!(expect, len, "spans must cover the buffer");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let config = ChunkerConfig { min_size: 64, avg_size: 256, max_size: 1024 };
        assert!(chunk_spans(&[], &config).is_empty());
        // At or below min: one chunk, the whole file.
        assert_eq!(chunk_spans(&[1, 2, 3], &config), vec![0..3]);
        assert_eq!(chunk_spans(&noise(1, 64), &config), vec![0..64]);
    }

    #[test]
    fn spans_tile_and_respect_bounds() {
        let config = ChunkerConfig { min_size: 64, avg_size: 256, max_size: 1024 };
        let data = noise(2, 100_000);
        let spans = chunk_spans(&data, &config);
        tiling_ok(&spans, data.len());
        assert!(spans.len() > 50, "expected many chunks, got {}", spans.len());
        for (i, span) in spans.iter().enumerate() {
            assert!(span.len() <= 1024, "chunk {i} over max: {}", span.len());
            if i + 1 < spans.len() {
                assert!(span.len() >= 64, "chunk {i} under min: {}", span.len());
            }
        }
    }

    #[test]
    fn average_chunk_size_is_near_target() {
        let config = ChunkerConfig { min_size: 64, avg_size: 256, max_size: 2048 };
        let data = noise(3, 1 << 20);
        let spans = chunk_spans(&data, &config);
        let mean = data.len() / spans.len();
        // Expected ≈ min + 2^ceil(log2(avg-min)) = 64 + 256 = 320; allow a
        // wide band — the point is "hundreds of bytes, not 64 or 2048".
        assert!((128..=640).contains(&mean), "mean chunk {mean}");
    }

    #[test]
    fn deterministic_and_content_defined() {
        let config = ChunkerConfig { min_size: 64, avg_size: 256, max_size: 1024 };
        let data = noise(4, 50_000);
        assert_eq!(chunk_spans(&data, &config), chunk_spans(&data, &config));
        // A different buffer chunks differently.
        let other = noise(5, 50_000);
        assert_ne!(chunk_spans(&data, &config), chunk_spans(&other, &config));
    }

    #[test]
    fn constant_data_hits_max_force_cuts() {
        let config = ChunkerConfig { min_size: 64, avg_size: 256, max_size: 512 };
        let data = vec![0u8; 10_000];
        let spans = chunk_spans(&data, &config);
        tiling_ok(&spans, data.len());
        // Constant input either never matches the mask or always cuts at the
        // same length; both give uniform chunks.
        let lens: Vec<usize> = spans.iter().map(|s| s.len()).collect();
        assert!(lens[..lens.len() - 1].iter().all(|&l| l == lens[0]));
    }

    #[test]
    fn degenerate_configs_are_normalized() {
        // min > max, avg 0 — must still terminate and tile.
        let config = ChunkerConfig { min_size: 100, avg_size: 0, max_size: 10 };
        let data = noise(6, 5_000);
        let spans = chunk_spans(&data, &config);
        tiling_ok(&spans, data.len());
    }

    #[test]
    fn scaled_keeps_ordering() {
        for denom in [1u64, 64, 1024, 8192, 1 << 20] {
            let c = ChunkerConfig::scaled(denom);
            assert!(c.min_size < c.avg_size, "{c:?}");
            assert!(c.avg_size < c.max_size, "{c:?}");
        }
        assert_eq!(ChunkerConfig::scaled(1).avg_size, 128 * 1024);
    }

    #[test]
    fn parallel_matches_serial() {
        let config = ChunkerConfig { min_size: 32, avg_size: 128, max_size: 512 };
        let items: Vec<Vec<u8>> = (0..40).map(|i| noise(i, 3_000 + i as usize * 97)).collect();
        let serial = chunk_spans_all(&items, &config, &gear_par::Pool::serial());
        let par = chunk_spans_all(&items, &config, &gear_par::Pool::new(4));
        assert_eq!(serial, par);
        assert_eq!(serial[7], chunk_spans(&items[7], &config));
    }

    #[test]
    fn fingerprints_name_chunk_content() {
        let config = ChunkerConfig { min_size: 64, avg_size: 256, max_size: 1024 };
        let data = noise(9, 20_000);
        let chunks = chunk_fingerprints(&data, &config);
        for (span, fp) in &chunks {
            assert_eq!(*fp, Fingerprint::of(&data[span.clone()]));
        }
        // Two files sharing a suffix share the tail chunks' fingerprints.
        let mut edited = data;
        edited[0] ^= 0xFF;
        let edited_chunks = chunk_fingerprints(&edited, &config);
        let shared = chunks
            .iter()
            .filter(|(_, fp)| edited_chunks.iter().any(|(_, efp)| efp == fp))
            .count();
        assert!(shared > chunks.len() / 2, "shared {shared}/{}", chunks.len());
    }
}
