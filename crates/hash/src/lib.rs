//! Cryptographic digests and content identifiers for the Gear image format.
//!
//! The Gear paper identifies regular files by their **MD5 fingerprint** and
//! Docker layers by their **SHA-256 digest**. This crate provides both hash
//! functions (implemented from RFC 1321 and FIPS 180-4 respectively — no
//! external crypto dependency), streaming hasher types, and strongly typed
//! identifiers:
//!
//! * [`Fingerprint`] — a 128-bit MD5 content fingerprint naming a Gear file.
//! * [`Digest`] — a 256-bit SHA-256 digest naming an image layer or manifest.
//!
//! # Examples
//!
//! ```
//! use gear_hash::{Fingerprint, Digest};
//!
//! let fp = Fingerprint::of(b"hello gear");
//! assert_eq!(fp.to_string().len(), 32);
//!
//! let digest = Digest::of(b"layer bytes");
//! assert_eq!(digest.to_string(), digest.to_string());
//! assert_ne!(Digest::of(b"a"), Digest::of(b"b"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunker;
mod fingerprint;
mod hex;
mod md5;
mod sha256;

pub use chunker::{chunk_fingerprints, chunk_spans, chunk_spans_all, ChunkerConfig};
pub use fingerprint::{Digest, Fingerprint, ParseDigestError, ParseFingerprintError};
pub use hex::{decode as hex_decode, encode as hex_encode, FromHexError};
pub use md5::Md5;
pub use sha256::Sha256;

/// Convenience one-shot MD5 over a byte slice.
///
/// ```
/// let d = gear_hash::md5(b"");
/// assert_eq!(gear_hash::hex_encode(&d), "d41d8cd98f00b204e9800998ecf8427e");
/// ```
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// Convenience one-shot SHA-256 over a byte slice.
///
/// ```
/// let d = gear_hash::sha256(b"");
/// assert_eq!(
///     gear_hash::hex_encode(&d),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Fingerprints every item of `items` across `pool`'s workers, preserving
/// input order. Bit-identical to the serial loop for any worker count —
/// MD5 of one buffer is a pure function, so only the schedule changes.
///
/// This is the corpus-wide fingerprinting primitive behind the converter's
/// Fig. 6 hot path: MD5 throughput scales with cores (the paper notes
/// conversion "can be shorter … using multiple threads", §V-B).
///
/// ```
/// use gear_par::Pool;
/// let bodies: Vec<Vec<u8>> = (0u8..100).map(|i| vec![i; 64]).collect();
/// let par = gear_hash::fingerprint_all(&bodies, &Pool::new(4));
/// let serial = gear_hash::fingerprint_all(&bodies, &Pool::serial());
/// assert_eq!(par, serial);
/// assert_eq!(par[3], gear_hash::Fingerprint::of(&bodies[3]));
/// ```
pub fn fingerprint_all<T: AsRef<[u8]> + Sync>(
    items: &[T],
    pool: &gear_par::Pool,
) -> Vec<Fingerprint> {
    pool.map(items, |item| Fingerprint::of(item.as_ref()))
}

/// SHA-256 of every item, parallel across `pool`, order-preserving (the
/// layer-digest analogue of [`fingerprint_all`]).
pub fn digest_all<T: AsRef<[u8]> + Sync>(items: &[T], pool: &gear_par::Pool) -> Vec<Digest> {
    pool.map(items, |item| Digest::of(item.as_ref()))
}
