//! Lowercase hexadecimal encoding and decoding.

use std::error::Error;
use std::fmt;

const ALPHABET: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as lowercase hex.
///
/// ```
/// assert_eq!(gear_hash::hex_encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(ALPHABET[(b >> 4) as usize] as char);
        out.push(ALPHABET[(b & 0xf) as usize] as char);
    }
    out
}

/// Error returned by [`decode`] for malformed hex input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FromHexError {
    /// Input length was odd.
    OddLength,
    /// A character outside `[0-9a-fA-F]` was found at the given byte offset.
    InvalidChar {
        /// Byte offset of the offending character.
        index: usize,
    },
}

impl fmt::Display for FromHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromHexError::OddLength => write!(f, "hex string has odd length"),
            FromHexError::InvalidChar { index } => {
                write!(f, "invalid hex character at index {index}")
            }
        }
    }
}

impl Error for FromHexError {}

/// Decodes a hex string (either case) into bytes.
///
/// # Errors
///
/// Returns [`FromHexError`] if the input has odd length or contains a
/// non-hex character.
///
/// ```
/// # fn main() -> Result<(), gear_hash::FromHexError> {
/// assert_eq!(gear_hash::hex_decode("DEad")?, vec![0xde, 0xad]);
/// # Ok(())
/// # }
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, FromHexError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(FromHexError::OddLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for (i, pair) in bytes.chunks_exact(2).enumerate() {
        let hi = nibble(pair[0]).ok_or(FromHexError::InvalidChar { index: i * 2 })?;
        let lo = nibble(pair[1]).ok_or(FromHexError::InvalidChar { index: i * 2 + 1 })?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_odd_length() {
        assert_eq!(decode("abc"), Err(FromHexError::OddLength));
    }

    #[test]
    fn rejects_invalid_char() {
        assert_eq!(decode("zz"), Err(FromHexError::InvalidChar { index: 0 }));
        assert_eq!(decode("a g "), Err(FromHexError::InvalidChar { index: 1 }));
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("ABCDEF").unwrap(), vec![0xab, 0xcd, 0xef]);
    }
}
