//! MD5 message digest, implemented from RFC 1321.
//!
//! MD5 is cryptographically broken for adversarial collision resistance, but
//! the Gear paper (§III-B) argues its accidental-collision probability
//! (bounded by the birthday paradox) is far below disk-error rates for
//! registry-scale corpora, and uses it as the Gear-file fingerprint. The
//! collision-detection fallback lives in `gear-core`.

/// Per-round left-rotate amounts (RFC 1321 §3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(2^32 * abs(sin(i + 1))) (RFC 1321 §3.4).
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

const INIT_STATE: [u32; 4] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476];

/// Streaming MD5 hasher.
///
/// ```
/// use gear_hash::Md5;
/// let mut h = Md5::new();
/// h.update(b"abc");
/// assert_eq!(gear_hash::hex_encode(&h.finalize()), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes processed so far (including buffered).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a hasher in the RFC 1321 initial state.
    pub fn new() -> Self {
        Md5 { state: INIT_STATE, len: 0, buf: [0u8; 64], buf_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Aligned full blocks compress straight from the caller's slice —
        // no 64-byte staging copy on the bulk path.
        let mut blocks = rest.chunks_exact(64);
        for block in &mut blocks {
            self.compress(block);
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            self.buf[..tail.len()].copy_from_slice(tail);
            self.buf_len = tail.len();
        }
    }

    /// Pads, finishes, and returns the 16-byte digest, consuming the hasher.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit little-endian bit length.
        self.update_pad(&[0x80]);
        while self.buf_len != 56 {
            self.update_pad(&[0]);
        }
        self.update_pad(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// `update` without advancing the message length (used only for padding).
    fn update_pad(&mut self, data: &[u8]) {
        let len = self.len;
        self.update(data);
        self.len = len;
    }

    /// Processes one 64-byte block directly from a slice (callers guarantee
    /// the length; taking `&[u8]` lets the bulk path feed `chunks_exact(64)`
    /// windows without copying them into a fixed-size array first).
    fn compress(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let rotated = a
                .wrapping_add(f)
                .wrapping_add(K[i])
                .wrapping_add(m[g])
                .rotate_left(S[i]);
            b = b.wrapping_add(rotated);
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex_encode;

    fn md5_hex(data: &[u8]) -> String {
        let mut h = Md5::new();
        h.update(data);
        hex_encode(&h.finalize())
    }

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        assert_eq!(md5_hex(b""), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(md5_hex(b"a"), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(md5_hex(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(md5_hex(b"message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
        assert_eq!(
            md5_hex(b"abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            md5_hex(b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            md5_hex(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            ),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    /// Streaming in arbitrary chunk sizes must equal one-shot hashing.
    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        let oneshot = md5_hex(&data);
        for chunk in [1usize, 3, 7, 63, 64, 65, 128, 1000] {
            let mut h = Md5::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(hex_encode(&h.finalize()), oneshot, "chunk size {chunk}");
        }
    }

    /// Messages whose padded length straddles the block boundary.
    #[test]
    fn boundary_lengths() {
        // Known values computed with the reference implementation.
        let m55 = vec![b'x'; 55];
        let m56 = vec![b'x'; 56];
        let m64 = vec![b'x'; 64];
        assert_ne!(md5_hex(&m55), md5_hex(&m56));
        assert_ne!(md5_hex(&m56), md5_hex(&m64));
        // Self-consistency across the boundary.
        for n in 50..70 {
            let m = vec![0u8; n];
            let mut h = Md5::new();
            h.update(&m[..n / 2]);
            h.update(&m[n / 2..]);
            let mut h2 = Md5::new();
            h2.update(&m);
            assert_eq!(h.finalize(), h2.finalize());
        }
    }
}
