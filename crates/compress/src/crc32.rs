//! CRC-32 (IEEE 802.3 polynomial), used to checksum compressed frames.
//!
//! Implemented slice-by-8: eight 256-entry tables let the inner loop fold
//! eight message bytes per iteration with no data-dependent branches,
//! roughly an order of magnitude faster than the classic one-table
//! byte-at-a-time loop on frame-sized inputs. The tables derive from the
//! same reflected polynomial, so the function is value-identical to the
//! byte-wise kernel for every input.

/// Reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB88320;

/// The eight slice-by-8 lookup tables. `TABLES[0]` is the classic
/// byte-at-a-time table; `TABLES[k][i]` advances `TABLES[k-1][i]` by one
/// more zero byte, so `TABLES[k][b]` is the CRC contribution of byte `b`
/// seen `k` positions before the end of an 8-byte group.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Box<[[u32; 256]; 8]>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 8]);
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of `data`.
///
/// ```
/// assert_eq!(gear_compress::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = tables();
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // Standard CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }

    /// The slice-by-8 kernel must be value-identical to the reference
    /// one-table loop at every length (covering all remainder sizes).
    #[test]
    fn matches_bytewise_reference_at_all_lengths() {
        let bytewise = |data: &[u8]| -> u32 {
            let t = tables();
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        };
        let mut x = 0xA5A5_5A5Au32;
        let data: Vec<u8> = (0..257)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
    }
}
