//! CRC-32 (IEEE 802.3 polynomial), used to checksum compressed frames.

/// Reflected polynomial for CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB88320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of `data`.
///
/// ```
/// assert_eq!(gear_compress::crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // Standard CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
