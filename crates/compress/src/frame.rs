//! Self-describing compressed frame formats.
//!
//! Two wire layouts share one decoder entry point (little-endian):
//!
//! **`GZc1` — single block** (the default, unchanged since the first
//! release; every fixed-seed golden in the workspace pins these bytes):
//!
//! ```text
//! magic   [4]  = b"GZc1"
//! method  [1]  = 0 stored | 1 lzss
//! rawlen  [8]  = uncompressed length
//! crc     [4]  = CRC-32 of the uncompressed bytes
//! payload [..] = stored bytes or LZSS token stream
//! ```
//!
//! **`GZc2` — multi-block** (emitted by [`compress_with`] for inputs larger
//! than [`BLOCK_SIZE`]): the input is cut into fixed-size blocks, each
//! compressed *independently* — the LZSS window resets at every block
//! boundary — so blocks can be compressed and decompressed in parallel and
//! the frame bytes are a pure function of `(data, level, block_size)`,
//! never of the worker count:
//!
//! ```text
//! magic      [4]  = b"GZc2"
//! rawlen     [8]  = total uncompressed length
//! block_size [4]  = uncompressed bytes per block (last block may be short)
//! count      [4]  = number of blocks = ceil(rawlen / block_size)
//! table      [count x 9] = { method [1], comp_len [4], crc [4] } per block
//! payloads   [..] = the blocks' payloads, concatenated in order
//! ```
//!
//! Per-block offsets are prefix sums of the table's `comp_len` column, and
//! the per-block CRC is over the block's *uncompressed* bytes, so any block
//! can be located, decoded, and verified without touching the others — the
//! stepping stone to ranged lazy pulls (seekable-OCI-style) as well as the
//! parallel decode path.
//!
//! A stored block is used whenever LZSS would not shrink that block, so a
//! `GZc1` frame is never more than [`FRAME_OVERHEAD`] bytes larger than its
//! input and a `GZc2` frame never more than its header plus table.

use std::error::Error;
use std::fmt;

use gear_par::Pool;

use crate::crc32::crc32;
use crate::lzss::{Level, Lzss};

const MAGIC: [u8; 4] = *b"GZc1";
const MAGIC2: [u8; 4] = *b"GZc2";
const METHOD_STORED: u8 = 0;
const METHOD_LZSS: u8 = 1;

/// Fixed per-frame header size of a `GZc1` frame, in bytes.
pub const FRAME_OVERHEAD: usize = 4 + 1 + 8 + 4;

/// Uncompressed bytes per `GZc2` block, and the threshold above which
/// [`compress_with`] switches from single-block `GZc1` to the multi-block
/// format. 256 KiB is large enough that the ~9-byte-per-block table is
/// noise (<0.004 %) and the per-block LZSS window reset costs almost no
/// ratio, yet small enough that a typical layer archive yields plenty of
/// blocks to spread across workers.
pub const BLOCK_SIZE: usize = 256 * 1024;

/// `GZc2` fixed header size (magic + rawlen + block_size + count).
const BLOCK_HEADER: usize = 4 + 8 + 4 + 4;
/// Per-block table entry size (method + comp_len + crc).
const BLOCK_ENTRY: usize = 1 + 4 + 4;

/// Error returned by [`decompress`] for malformed frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// Frame shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unknown compression method byte.
    UnknownMethod(u8),
    /// The payload failed to decode to the declared length.
    CorruptPayload,
    /// CRC-32 of the decoded bytes did not match the header.
    ChecksumMismatch,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed frame is truncated"),
            DecompressError::BadMagic => write!(f, "compressed frame has invalid magic"),
            DecompressError::UnknownMethod(m) => {
                write!(f, "compressed frame uses unknown method {m}")
            }
            DecompressError::CorruptPayload => write!(f, "compressed payload is corrupt"),
            DecompressError::ChecksumMismatch => {
                write!(f, "decompressed data failed checksum verification")
            }
        }
    }
}

impl Error for DecompressError {}

/// Compresses `data` into a single-block `GZc1` frame.
///
/// Falls back to a stored block when LZSS does not help, so the result is at
/// most `data.len() + FRAME_OVERHEAD` bytes. The stored fallback writes the
/// header first and then the input directly — the input is never cloned
/// into a temporary payload buffer.
///
/// ```
/// use gear_compress::{compress, Level, FRAME_OVERHEAD};
/// let framed = compress(b"xyz", Level::Fast);
/// assert!(framed.len() <= 3 + FRAME_OVERHEAD);
/// ```
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let tokens = Lzss::compress(data, level);
    let (method, payload_len) = if tokens.len() < data.len() {
        (METHOD_LZSS, tokens.len())
    } else {
        (METHOD_STORED, data.len())
    };
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload_len);
    out.extend_from_slice(&MAGIC);
    out.push(method);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(data).to_le_bytes());
    if method == METHOD_LZSS {
        out.extend_from_slice(&tokens);
    } else {
        out.extend_from_slice(data);
    }
    out
}

/// Compresses `data` with block parallelism when it pays: inputs of at most
/// [`BLOCK_SIZE`] bytes produce byte-for-byte the same single-block `GZc1`
/// frame as [`compress`] (so small-file goldens never move), larger inputs
/// a multi-block `GZc2` frame with [`BLOCK_SIZE`] blocks compressed across
/// `pool`.
///
/// The output is bit-identical for any worker count, including
/// [`Pool::serial`]: the split is fixed, blocks are independent, and
/// [`Pool::map_heavy`] preserves order.
pub fn compress_with(data: &[u8], level: Level, pool: &Pool) -> Vec<u8> {
    if data.len() <= BLOCK_SIZE {
        compress(data, level)
    } else {
        compress_blocks(data, level, BLOCK_SIZE, pool)
    }
}

/// Compresses `data` into a multi-block `GZc2` frame with `block_size`-byte
/// blocks (clamped to at least 1), fanning block compression out across
/// `pool`. Exposed for callers that tune the block size; most should use
/// [`compress_with`].
pub fn compress_blocks(data: &[u8], level: Level, block_size: usize, pool: &Pool) -> Vec<u8> {
    let block_size = block_size.max(1);
    let blocks: Vec<&[u8]> = data.chunks(block_size).collect();
    // Workers return the token stream only when it wins; stored blocks are
    // copied straight from the input during assembly, never cloned here.
    let encoded: Vec<(u8, Vec<u8>, u32)> = pool.map_heavy(&blocks, |block| {
        let tokens = Lzss::compress(block, level);
        let crc = crc32(block);
        if tokens.len() < block.len() {
            (METHOD_LZSS, tokens, crc)
        } else {
            (METHOD_STORED, Vec::new(), crc)
        }
    });

    let payload_total: usize = encoded
        .iter()
        .zip(&blocks)
        .map(|((method, tokens, _), block)| {
            if *method == METHOD_LZSS { tokens.len() } else { block.len() }
        })
        .sum();
    let mut out =
        Vec::with_capacity(BLOCK_HEADER + blocks.len() * BLOCK_ENTRY + payload_total);
    out.extend_from_slice(&MAGIC2);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&(block_size as u32).to_le_bytes());
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for ((method, tokens, crc), block) in encoded.iter().zip(&blocks) {
        let comp_len = if *method == METHOD_LZSS { tokens.len() } else { block.len() };
        out.push(*method);
        out.extend_from_slice(&(comp_len as u32).to_le_bytes());
        out.extend_from_slice(&crc.to_le_bytes());
    }
    for ((method, tokens, _), block) in encoded.iter().zip(&blocks) {
        if *method == METHOD_LZSS {
            out.extend_from_slice(tokens);
        } else {
            out.extend_from_slice(block);
        }
    }
    out
}

/// Returns only the framed `GZc1` size of compressing `data`, for
/// storage-accounting callers that never keep the compressed bytes.
///
/// Routed through the count-only LZSS encoder ([`Lzss::compressed_len`]):
/// the full hash-chain search runs, but no token stream is allocated — this
/// is called once per unique file by the registry dedup study, where the
/// discarded allocation used to dominate.
pub fn compressed_size(data: &[u8], level: Level) -> usize {
    FRAME_OVERHEAD + Lzss::compressed_len(data, level).min(data.len())
}

/// Returns `compress_with(data, level, pool).len()` without materializing
/// any frame: single-block sizes come from [`compressed_size`], multi-block
/// sizes from per-block count-only encodes fanned out across `pool`.
pub fn compressed_size_with(data: &[u8], level: Level, pool: &Pool) -> usize {
    if data.len() <= BLOCK_SIZE {
        compressed_size(data, level)
    } else {
        let blocks: Vec<&[u8]> = data.chunks(BLOCK_SIZE).collect();
        let payload: usize = pool
            .map_heavy(&blocks, |block| Lzss::compressed_len(block, level).min(block.len()))
            .into_iter()
            .sum();
        BLOCK_HEADER + blocks.len() * BLOCK_ENTRY + payload
    }
}

/// Decompresses a frame produced by [`compress`], [`compress_with`], or
/// [`compress_blocks`], decoding serially.
///
/// # Errors
///
/// Returns a [`DecompressError`] if the frame is truncated, has a bad magic,
/// an unknown method, a corrupt payload or block table, or a checksum
/// mismatch.
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>, DecompressError> {
    decompress_with(frame, &Pool::serial())
}

/// [`decompress`] with multi-block frames decoded across `pool`. Output is
/// identical for any worker count; `GZc1` frames decode serially either
/// way.
///
/// # Errors
///
/// Same conditions as [`decompress`].
pub fn decompress_with(frame: &[u8], pool: &Pool) -> Result<Vec<u8>, DecompressError> {
    if frame.len() >= 4 && frame[..4] == MAGIC2 {
        return decompress_blocks(frame, pool);
    }
    if frame.len() < FRAME_OVERHEAD {
        return Err(DecompressError::Truncated);
    }
    if frame[..4] != MAGIC {
        return Err(DecompressError::BadMagic);
    }
    let method = frame[4];
    let raw_len = u64::from_le_bytes(frame[5..13].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(frame[13..17].try_into().expect("4 bytes"));
    let payload = &frame[FRAME_OVERHEAD..];
    let data = match method {
        METHOD_STORED => {
            if payload.len() != raw_len {
                return Err(DecompressError::CorruptPayload);
            }
            payload.to_vec()
        }
        METHOD_LZSS => {
            Lzss::decompress(payload, raw_len).ok_or(DecompressError::CorruptPayload)?
        }
        m => return Err(DecompressError::UnknownMethod(m)),
    };
    if crc32(&data) != crc {
        return Err(DecompressError::ChecksumMismatch);
    }
    Ok(data)
}

/// One parsed `GZc2` table entry plus its payload slice bounds.
struct BlockPlan<'a> {
    method: u8,
    payload: &'a [u8],
    raw_len: usize,
    crc: u32,
}

/// Decodes a `GZc2` frame, verifying each block's CRC independently.
fn decompress_blocks(frame: &[u8], pool: &Pool) -> Result<Vec<u8>, DecompressError> {
    if frame.len() < BLOCK_HEADER {
        return Err(DecompressError::Truncated);
    }
    let raw_len = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
    let block_size = u32::from_le_bytes(frame[12..16].try_into().expect("4 bytes")) as u64;
    let count = u32::from_le_bytes(frame[16..20].try_into().expect("4 bytes")) as u64;
    // The block count is fully determined by (rawlen, block_size); a frame
    // that disagrees with its own header is corrupt, not merely unusual.
    let expected_count = if raw_len == 0 {
        0
    } else if block_size == 0 {
        return Err(DecompressError::CorruptPayload);
    } else {
        raw_len.div_ceil(block_size)
    };
    if count != expected_count {
        return Err(DecompressError::CorruptPayload);
    }
    let table_len = (count as usize)
        .checked_mul(BLOCK_ENTRY)
        .ok_or(DecompressError::Truncated)?;
    let payload_at = BLOCK_HEADER
        .checked_add(table_len)
        .filter(|&end| end <= frame.len())
        .ok_or(DecompressError::Truncated)?;

    let mut plans: Vec<BlockPlan<'_>> = Vec::with_capacity(count as usize);
    let mut offset = payload_at;
    for i in 0..count {
        let at = BLOCK_HEADER + i as usize * BLOCK_ENTRY;
        let method = frame[at];
        let comp_len =
            u32::from_le_bytes(frame[at + 1..at + 5].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(frame[at + 5..at + 9].try_into().expect("4 bytes"));
        let end = offset.checked_add(comp_len).ok_or(DecompressError::Truncated)?;
        if end > frame.len() {
            return Err(DecompressError::Truncated);
        }
        let block_raw = if i + 1 < count {
            block_size as usize
        } else {
            (raw_len - i * block_size) as usize
        };
        plans.push(BlockPlan { method, payload: &frame[offset..end], raw_len: block_raw, crc });
        offset = end;
    }
    if offset != frame.len() {
        // Trailing garbage after the last block payload.
        return Err(DecompressError::CorruptPayload);
    }

    let decoded: Vec<Result<Vec<u8>, DecompressError>> = pool.map_heavy(&plans, |plan| {
        let block = match plan.method {
            METHOD_STORED => {
                if plan.payload.len() != plan.raw_len {
                    return Err(DecompressError::CorruptPayload);
                }
                plan.payload.to_vec()
            }
            METHOD_LZSS => Lzss::decompress(plan.payload, plan.raw_len)
                .ok_or(DecompressError::CorruptPayload)?,
            m => return Err(DecompressError::UnknownMethod(m)),
        };
        if crc32(&block) != plan.crc {
            return Err(DecompressError::ChecksumMismatch);
        }
        Ok(block)
    });

    // Cap the pre-allocation: rawlen is untrusted, and every block is
    // bounded by what its payload could expand to, which the per-block
    // decode has already enforced.
    let mut out = Vec::with_capacity((raw_len as usize).min(frame.len().saturating_mul(260)));
    for block in decoded {
        out.extend_from_slice(&block?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_levels() {
        let data = b"gear gear gear gear gear files files files".repeat(30);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let framed = compress(&data, level);
            assert_eq!(decompress(&framed).unwrap(), data);
        }
    }

    #[test]
    fn empty_input() {
        let framed = compress(b"", Level::Default);
        assert_eq!(framed.len(), FRAME_OVERHEAD);
        assert_eq!(decompress(&framed).unwrap(), b"");
    }

    #[test]
    fn stored_fallback_bounds_size() {
        let mut x = 0xdeadbeefu32;
        let data: Vec<u8> = (0..300)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let framed = compress(&data, Level::Best);
        assert!(framed.len() <= data.len() + FRAME_OVERHEAD);
        assert_eq!(decompress(&framed).unwrap(), data);
    }

    #[test]
    fn compressed_size_matches_compress() {
        let data = b"aaaabbbbccccaaaabbbbcccc".repeat(64);
        assert_eq!(
            compressed_size(&data, Level::Default),
            compress(&data, Level::Default).len()
        );
    }

    #[test]
    fn detects_truncation() {
        assert_eq!(decompress(&[1, 2, 3]), Err(DecompressError::Truncated));
    }

    #[test]
    fn detects_bad_magic() {
        let mut framed = compress(b"hello", Level::Fast);
        framed[0] ^= 0xff;
        assert_eq!(decompress(&framed), Err(DecompressError::BadMagic));
    }

    #[test]
    fn detects_unknown_method() {
        let mut framed = compress(b"hello", Level::Fast);
        framed[4] = 42;
        assert_eq!(decompress(&framed), Err(DecompressError::UnknownMethod(42)));
    }

    #[test]
    fn detects_payload_corruption() {
        let data = b"abcabcabcabcabcabcabcabc".repeat(100);
        let mut framed = compress(&data, Level::Default);
        let last = framed.len() - 1;
        framed[last] ^= 0x55;
        let err = decompress(&framed).unwrap_err();
        assert!(
            matches!(err, DecompressError::CorruptPayload | DecompressError::ChecksumMismatch),
            "{err:?}"
        );
    }

    #[test]
    fn detects_stored_body_flip() {
        let mut x = 99u32;
        let data: Vec<u8> = (0..64)
            .map(|_| {
                x = x.wrapping_mul(48271);
                (x >> 16) as u8
            })
            .collect();
        let mut framed = compress(&data, Level::Fast);
        assert_eq!(framed[4], 0, "expected stored block");
        framed[FRAME_OVERHEAD] ^= 1;
        assert_eq!(decompress(&framed), Err(DecompressError::ChecksumMismatch));
    }

    /// A mixed corpus-like buffer big enough for several blocks.
    fn multi_block_data() -> Vec<u8> {
        let mut data = Vec::new();
        let mut x = 7u64;
        while data.len() < 3 * BLOCK_SIZE / 2 {
            // Alternate compressible text and pseudo-random stretches so
            // some blocks store and some compress.
            data.extend_from_slice(b"shared library segment ".repeat(40).as_slice());
            for _ in 0..512 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                data.push((x >> 33) as u8);
            }
        }
        data
    }

    #[test]
    fn compressed_size_with_matches_block_frame() {
        let data = multi_block_data();
        let pool = Pool::new(4);
        for level in [Level::Fast, Level::Default] {
            assert_eq!(
                compressed_size_with(&data, level, &pool),
                compress_with(&data, level, &pool).len()
            );
        }
        let small = b"small body".repeat(20);
        assert_eq!(
            compressed_size_with(&small, Level::Default, &pool),
            compress(&small, Level::Default).len()
        );
    }

    #[test]
    fn small_inputs_stay_gzc1_byte_identical() {
        let data = b"gear file body".repeat(100);
        assert!(data.len() <= BLOCK_SIZE);
        for level in [Level::Fast, Level::Default, Level::Best] {
            assert_eq!(compress_with(&data, level, &Pool::new(8)), compress(&data, level));
        }
    }

    #[test]
    fn multi_block_roundtrip_any_worker_count() {
        let data = multi_block_data();
        let serial = compress_with(&data, Level::Default, &Pool::serial());
        assert_eq!(&serial[..4], b"GZc2", "large input must use the block format");
        for workers in [2, 4, 8] {
            let framed = compress_with(&data, Level::Default, &Pool::new(workers));
            assert_eq!(framed, serial, "workers={workers} diverged");
        }
        assert_eq!(decompress(&serial).unwrap(), data);
        for workers in [2, 8] {
            assert_eq!(decompress_with(&serial, &Pool::new(workers)).unwrap(), data);
        }
    }

    #[test]
    fn explicit_block_size_roundtrips_with_short_tail() {
        let data = b"0123456789".repeat(100); // 1000 bytes, 128-byte blocks
        let framed = compress_blocks(&data, Level::Fast, 128, &Pool::new(3));
        assert_eq!(decompress(&framed).unwrap(), data);
        // Exact multiple too (no short tail).
        let exact = &data[..512];
        let framed = compress_blocks(exact, Level::Fast, 128, &Pool::serial());
        assert_eq!(decompress(&framed).unwrap(), exact);
    }

    #[test]
    fn block_frame_detects_payload_and_table_corruption() {
        let data = multi_block_data();
        let clean = compress_with(&data, Level::Fast, &Pool::serial());
        // Flip one payload byte.
        let mut bad = clean.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(decompress(&bad).is_err());
        // Corrupt a table CRC.
        let mut bad = clean.clone();
        bad[BLOCK_HEADER + 5] ^= 0xff;
        assert!(decompress(&bad).is_err());
        // Truncate mid-payload.
        let mut bad = clean.clone();
        bad.truncate(clean.len() - 10);
        assert!(decompress(&bad).is_err());
        // Inflate the declared block count.
        let mut bad = clean;
        bad[16] ^= 1;
        assert!(decompress(&bad).is_err());
    }

    #[test]
    fn block_table_overhead_is_negligible() {
        // The price of the multi-block format is the table plus the
        // per-block LZSS window reset; on corpus-like content it must stay
        // within 2% of the single-stream frame.
        let data = multi_block_data();
        let single = compress(&data, Level::Default).len() as f64;
        let blocked = compress_with(&data, Level::Default, &Pool::serial()).len() as f64;
        let overhead = blocked / single - 1.0;
        println!(
            "single-stream {} B, 256 KiB blocks {} B, overhead {:.3}%",
            single,
            blocked,
            overhead * 100.0
        );
        assert!(overhead < 0.02, "block format overhead {:.3}%", overhead * 100.0);
    }

    #[test]
    fn block_frame_rejects_zero_block_size() {
        let mut frame = Vec::new();
        frame.extend_from_slice(b"GZc2");
        frame.extend_from_slice(&10u64.to_le_bytes()); // rawlen 10
        frame.extend_from_slice(&0u32.to_le_bytes()); // block_size 0
        frame.extend_from_slice(&1u32.to_le_bytes()); // count 1
        assert!(decompress(&frame).is_err());
    }

    #[test]
    fn hostile_block_count_does_not_allocate_unbounded() {
        let mut frame = Vec::new();
        frame.extend_from_slice(b"GZc2");
        frame.extend_from_slice(&u64::MAX.to_le_bytes());
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decompress(&frame).is_err());
    }
}
