//! Self-describing compressed frame format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   [4]  = b"GZc1"
//! method  [1]  = 0 stored | 1 lzss
//! rawlen  [8]  = uncompressed length
//! crc     [4]  = CRC-32 of the uncompressed bytes
//! payload [..] = stored bytes or LZSS token stream
//! ```
//!
//! A stored block is used whenever LZSS would not shrink the input, so a
//! frame is never more than [`FRAME_OVERHEAD`] bytes larger than its input.

use std::error::Error;
use std::fmt;

use crate::crc32::crc32;
use crate::lzss::{Level, Lzss};

const MAGIC: [u8; 4] = *b"GZc1";
const METHOD_STORED: u8 = 0;
const METHOD_LZSS: u8 = 1;

/// Fixed per-frame header size in bytes.
pub const FRAME_OVERHEAD: usize = 4 + 1 + 8 + 4;

/// Error returned by [`decompress`] for malformed frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// Frame shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unknown compression method byte.
    UnknownMethod(u8),
    /// The payload failed to decode to the declared length.
    CorruptPayload,
    /// CRC-32 of the decoded bytes did not match the header.
    ChecksumMismatch,
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed frame is truncated"),
            DecompressError::BadMagic => write!(f, "compressed frame has invalid magic"),
            DecompressError::UnknownMethod(m) => {
                write!(f, "compressed frame uses unknown method {m}")
            }
            DecompressError::CorruptPayload => write!(f, "compressed payload is corrupt"),
            DecompressError::ChecksumMismatch => {
                write!(f, "decompressed data failed checksum verification")
            }
        }
    }
}

impl Error for DecompressError {}

/// Compresses `data` into a framed, checksummed blob.
///
/// Falls back to a stored block when LZSS does not help, so the result is at
/// most `data.len() + FRAME_OVERHEAD` bytes.
///
/// ```
/// use gear_compress::{compress, Level, FRAME_OVERHEAD};
/// let framed = compress(b"xyz", Level::Fast);
/// assert!(framed.len() <= 3 + FRAME_OVERHEAD);
/// ```
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let tokens = Lzss::compress(data, level);
    let (method, payload) = if tokens.len() < data.len() {
        (METHOD_LZSS, tokens)
    } else {
        (METHOD_STORED, data.to_vec())
    };
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(method);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Returns only the framed size of compressing `data`, avoiding an extra copy
/// for storage-accounting callers that never keep the compressed bytes.
pub fn compressed_size(data: &[u8], level: Level) -> usize {
    let tokens = Lzss::compress(data, level);
    FRAME_OVERHEAD + tokens.len().min(data.len())
}

/// Decompresses a frame produced by [`compress`].
///
/// # Errors
///
/// Returns a [`DecompressError`] if the frame is truncated, has a bad magic,
/// an unknown method, a corrupt payload, or a checksum mismatch.
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>, DecompressError> {
    if frame.len() < FRAME_OVERHEAD {
        return Err(DecompressError::Truncated);
    }
    if frame[..4] != MAGIC {
        return Err(DecompressError::BadMagic);
    }
    let method = frame[4];
    let raw_len = u64::from_le_bytes(frame[5..13].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(frame[13..17].try_into().expect("4 bytes"));
    let payload = &frame[FRAME_OVERHEAD..];
    let data = match method {
        METHOD_STORED => {
            if payload.len() != raw_len {
                return Err(DecompressError::CorruptPayload);
            }
            payload.to_vec()
        }
        METHOD_LZSS => {
            Lzss::decompress(payload, raw_len).ok_or(DecompressError::CorruptPayload)?
        }
        m => return Err(DecompressError::UnknownMethod(m)),
    };
    if crc32(&data) != crc {
        return Err(DecompressError::ChecksumMismatch);
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_levels() {
        let data = b"gear gear gear gear gear files files files".repeat(30);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let framed = compress(&data, level);
            assert_eq!(decompress(&framed).unwrap(), data);
        }
    }

    #[test]
    fn empty_input() {
        let framed = compress(b"", Level::Default);
        assert_eq!(framed.len(), FRAME_OVERHEAD);
        assert_eq!(decompress(&framed).unwrap(), b"");
    }

    #[test]
    fn stored_fallback_bounds_size() {
        let mut x = 0xdeadbeefu32;
        let data: Vec<u8> = (0..300)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                (x >> 24) as u8
            })
            .collect();
        let framed = compress(&data, Level::Best);
        assert!(framed.len() <= data.len() + FRAME_OVERHEAD);
        assert_eq!(decompress(&framed).unwrap(), data);
    }

    #[test]
    fn compressed_size_matches_compress() {
        let data = b"aaaabbbbccccaaaabbbbcccc".repeat(64);
        assert_eq!(
            compressed_size(&data, Level::Default),
            compress(&data, Level::Default).len()
        );
    }

    #[test]
    fn detects_truncation() {
        assert_eq!(decompress(&[1, 2, 3]), Err(DecompressError::Truncated));
    }

    #[test]
    fn detects_bad_magic() {
        let mut framed = compress(b"hello", Level::Fast);
        framed[0] ^= 0xff;
        assert_eq!(decompress(&framed), Err(DecompressError::BadMagic));
    }

    #[test]
    fn detects_unknown_method() {
        let mut framed = compress(b"hello", Level::Fast);
        framed[4] = 42;
        assert_eq!(decompress(&framed), Err(DecompressError::UnknownMethod(42)));
    }

    #[test]
    fn detects_payload_corruption() {
        let data = b"abcabcabcabcabcabcabcabc".repeat(100);
        let mut framed = compress(&data, Level::Default);
        let last = framed.len() - 1;
        framed[last] ^= 0x55;
        let err = decompress(&framed).unwrap_err();
        assert!(
            matches!(err, DecompressError::CorruptPayload | DecompressError::ChecksumMismatch),
            "{err:?}"
        );
    }

    #[test]
    fn detects_stored_body_flip() {
        let mut x = 99u32;
        let data: Vec<u8> = (0..64)
            .map(|_| {
                x = x.wrapping_mul(48271);
                (x >> 16) as u8
            })
            .collect();
        let mut framed = compress(&data, Level::Fast);
        assert_eq!(framed[4], 0, "expected stored block");
        framed[FRAME_OVERHEAD] ^= 1;
        assert_eq!(decompress(&framed), Err(DecompressError::ChecksumMismatch));
    }
}
