//! Compression for container layers and Gear files.
//!
//! Docker registries store layers as compressed tarballs; Gear stores (and may
//! compress) individual files in its content-addressed pool. The choice of
//! *compression granularity* interacts with deduplication: compressing a whole
//! layer makes near-identical layers diverge byte-wise (defeating dedup below
//! layer granularity), while compressing per file keeps identical files
//! identical. This crate provides an LZSS compressor (with a CRC-32-checked
//! frame format) that exhibits exactly that behaviour, so the storage
//! experiments of the Gear paper (§V-C, Table II) can be reproduced without an
//! external zlib.
//!
//! # Examples
//!
//! ```
//! use gear_compress::{compress, decompress, Level};
//!
//! let data = b"abcabcabcabcabcabc-abcabcabcabcabcabc".repeat(20);
//! let framed = compress(&data, Level::Default);
//! assert!(framed.len() < data.len());
//! assert_eq!(decompress(&framed)?, data);
//! # Ok::<(), gear_compress::DecompressError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
mod frame;
mod lzss;

pub use crc32::crc32;
pub use frame::{
    compress, compress_blocks, compress_with, compressed_size, compressed_size_with, decompress,
    decompress_with, DecompressError, BLOCK_SIZE, FRAME_OVERHEAD,
};
pub use lzss::{Level, Lzss};

/// Summary statistics for a batch of compression operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Total uncompressed input bytes.
    pub input_bytes: u64,
    /// Total framed output bytes.
    pub output_bytes: u64,
    /// Number of items compressed.
    pub items: u64,
}

impl CompressionStats {
    /// Records one compression operation.
    pub fn record(&mut self, input: usize, output: usize) {
        self.input_bytes += input as u64;
        self.output_bytes += output as u64;
        self.items += 1;
    }

    /// `output / input`; 1.0 when nothing has been recorded.
    pub fn ratio(&self) -> f64 {
        if self.input_bytes == 0 {
            1.0
        } else {
            self.output_bytes as f64 / self.input_bytes as f64
        }
    }

    /// Bytes saved relative to storing the inputs uncompressed (saturating).
    pub fn saved_bytes(&self) -> u64 {
        self.input_bytes.saturating_sub(self.output_bytes)
    }
}
