//! LZSS dictionary compression.
//!
//! The token stream packs eight tokens per flag byte; each token is either a
//! literal byte or an `(offset, length)` back-reference into a 32 KiB sliding
//! window. Matches are found with a hash-chain matcher whose search depth is
//! controlled by [`Level`].
//!
//! The match finder is shared between two emitters: the real byte-stream
//! encoder behind [`Lzss::compress`] and a count-only encoder behind
//! [`Lzss::compressed_len`] that performs the identical search but only
//! tallies output bytes — the storage-accounting hot path
//! (`gear_compress::compressed_size`, called per unique file by the registry
//! dedup study) never allocates a token stream it would immediately drop.

/// Sliding-window size. Offsets are encoded in 16 bits, so the window must
/// not exceed 64 KiB; 32 KiB matches zlib's window and keeps chains short.
const WINDOW: usize = 32 * 1024;
/// Shortest back-reference worth encoding (3 bytes would break even only
/// against the flag bit; 4 gives a guaranteed win).
const MIN_MATCH: usize = 4;
/// Longest encodable match: length is stored as `len - MIN_MATCH` in a byte.
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Number of hash buckets for 4-byte prefixes.
const HASH_SIZE: usize = 1 << 15;

/// Compression effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Shallow match search; fastest.
    Fast,
    /// Balanced search depth (the default).
    #[default]
    Default,
    /// Deep search; best ratio.
    Best,
}

impl Level {
    /// Maximum hash-chain positions examined per input position.
    fn chain_depth(self) -> usize {
        match self {
            Level::Fast => 8,
            Level::Default => 32,
            Level::Best => 128,
        }
    }
}

/// Where the shared match-finder sends its tokens.
///
/// Both implementations are zero-cost after monomorphization; the search
/// loop in [`scan`] is written once, so the byte stream and the count can
/// never disagree about which tokens are produced.
trait Emit {
    /// A literal byte token.
    fn literal(&mut self, byte: u8);
    /// A back-reference token (`offset` back, `len` bytes).
    fn back_ref(&mut self, offset: usize, len: usize);
}

/// The real encoder: flag bytes allocated lazily, payloads following them.
struct StreamEmit {
    out: Vec<u8>,
    flags_at: usize,
    flag_bit: u8,
}

impl StreamEmit {
    fn new(capacity: usize) -> Self {
        // flag_bit = 8 forces allocation of the first flag byte.
        StreamEmit { out: Vec::with_capacity(capacity), flags_at: 0, flag_bit: 8 }
    }

    /// A flag byte is allocated lazily, right before the first token of each
    /// group of eight, so token payloads always follow their flags.
    fn flag(&mut self, set: bool) {
        if self.flag_bit == 8 {
            self.flag_bit = 0;
            self.flags_at = self.out.len();
            self.out.push(0);
        }
        if set {
            self.out[self.flags_at] |= 1 << self.flag_bit;
        }
        self.flag_bit += 1;
    }
}

impl Emit for StreamEmit {
    fn literal(&mut self, byte: u8) {
        self.flag(false);
        self.out.push(byte);
    }

    fn back_ref(&mut self, offset: usize, len: usize) {
        self.flag(true);
        self.out.extend_from_slice(&(offset as u16).to_le_bytes());
        self.out.push((len - MIN_MATCH) as u8);
    }
}

/// The count-only encoder: one flag byte per eight tokens, one byte per
/// literal, three per back-reference — no allocation at all.
#[derive(Default)]
struct CountEmit {
    tokens: usize,
    payload: usize,
}

impl CountEmit {
    fn total(&self) -> usize {
        self.payload + self.tokens.div_ceil(8)
    }
}

impl Emit for CountEmit {
    fn literal(&mut self, _byte: u8) {
        self.tokens += 1;
        self.payload += 1;
    }

    fn back_ref(&mut self, _offset: usize, _len: usize) {
        self.tokens += 1;
        self.payload += 3;
    }
}

/// The shared hash-chain match finder. Every token decision lives here, so
/// the byte-stream and count-only encoders are bit-for-bit in agreement.
fn scan<E: Emit>(data: &[u8], level: Level, emit: &mut E) {
    if data.is_empty() {
        return;
    }
    let depth = level.chain_depth();
    // head[h] = most recent position with hash h; prev[pos % WINDOW] = the
    // previous position in the same chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut pos = 0usize;

    while pos < data.len() {
        let (mut best_len, mut best_off) = (0usize, 0usize);
        if pos + MIN_MATCH <= data.len() {
            let h = hash4(&data[pos..]);
            let mut candidate = head[h];
            let limit = pos.saturating_sub(WINDOW - 1);
            let mut steps = 0;
            while candidate != usize::MAX && candidate >= limit && steps < depth {
                let len = Lzss::match_len(data, candidate, pos);
                if len > best_len {
                    best_len = len;
                    best_off = pos - candidate;
                    if len >= MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[candidate % WINDOW];
                steps += 1;
            }
        }

        if best_len >= MIN_MATCH {
            emit.back_ref(best_off, best_len);
            // Insert every covered position into the chains so later
            // matches can start inside this one.
            let end = pos + best_len;
            while pos < end {
                if pos + MIN_MATCH <= data.len() {
                    let h = hash4(&data[pos..]);
                    prev[pos % WINDOW] = head[h];
                    head[h] = pos;
                }
                pos += 1;
            }
        } else {
            emit.literal(data[pos]);
            if pos + MIN_MATCH <= data.len() {
                let h = hash4(&data[pos..]);
                prev[pos % WINDOW] = head[h];
                head[h] = pos;
            }
            pos += 1;
        }
    }
}

/// The LZSS codec. A unit struct; all state lives on the stack per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lzss;

impl Lzss {
    /// Compresses `data` into a raw LZSS token stream (no frame header).
    ///
    /// Incompressible input expands by at most 1 bit per byte (one flag bit
    /// per literal); callers that must bound size use the frame layer, which
    /// falls back to stored blocks.
    pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
        let mut emit = StreamEmit::new(data.len() / 2 + 16);
        scan(data, level, &mut emit);
        emit.out
    }

    /// Returns exactly `Lzss::compress(data, level).len()` without building
    /// the token stream: the same hash-chain search runs, but tokens are
    /// only counted. Used by size-accounting callers that never keep the
    /// compressed bytes.
    pub fn compressed_len(data: &[u8], level: Level) -> usize {
        let mut emit = CountEmit::default();
        scan(data, level, &mut emit);
        emit.total()
    }

    /// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
    /// [`MAX_MATCH`] and the end of `data` (`a < b`).
    ///
    /// Compares 8 bytes at a time via `u64` XOR + `trailing_zeros`, falling
    /// back to byte-wise for the tail. Returns the index of the first
    /// differing byte — exactly what the byte-wise loop returns — so the
    /// token stream is bit-identical to the scalar kernel's. Public so the
    /// criterion kernel bench can pin its throughput.
    #[inline]
    pub fn match_len(data: &[u8], a: usize, b: usize) -> usize {
        let max = (data.len() - b).min(MAX_MATCH);
        let mut n = 0;
        // Word-wise: both slices end at or before data.len() because
        // a + n + 8 <= b + n + 8 <= data.len() whenever n + 8 <= max.
        while n + 8 <= max {
            let x = u64::from_le_bytes(data[a + n..a + n + 8].try_into().expect("8 bytes"));
            let y = u64::from_le_bytes(data[b + n..b + n + 8].try_into().expect("8 bytes"));
            let diff = x ^ y;
            if diff != 0 {
                return n + (diff.trailing_zeros() / 8) as usize;
            }
            n += 8;
        }
        while n < max && data[a + n] == data[b + n] {
            n += 1;
        }
        n
    }

    /// Decompresses a raw LZSS token stream produced by [`Lzss::compress`].
    ///
    /// `expected_len` is the exact decompressed size (recorded by the frame
    /// layer); decoding stops once it is reached. Back-references copy with
    /// `extend_from_within` — whole non-overlapping matches in one memmove,
    /// overlapping (RLE-style) matches in `offset`-sized steps.
    ///
    /// # Errors
    ///
    /// Returns `None` on a truncated stream or an out-of-range
    /// back-reference.
    pub fn decompress(stream: &[u8], expected_len: usize) -> Option<Vec<u8>> {
        // Cap the pre-allocation by what the stream could possibly expand
        // to: `expected_len` comes from an untrusted header, and a hostile
        // length must not reserve unbounded memory before the first decode
        // error surfaces.
        let cap = expected_len.min(stream.len().saturating_mul(MAX_MATCH));
        let mut out = Vec::with_capacity(cap);
        let mut i = 0usize;
        while out.len() < expected_len {
            let flags = *stream.get(i)?;
            i += 1;
            for bit in 0..8 {
                if out.len() == expected_len {
                    break;
                }
                if flags & (1 << bit) != 0 {
                    let lo = *stream.get(i)?;
                    let hi = *stream.get(i + 1)?;
                    let len = *stream.get(i + 2)? as usize + MIN_MATCH;
                    i += 3;
                    let off = u16::from_le_bytes([lo, hi]) as usize;
                    if off == 0 || off > out.len() {
                        return None;
                    }
                    let start = out.len() - off;
                    if off >= len {
                        // Non-overlapping: one bulk copy.
                        out.extend_from_within(start..start + len);
                    } else {
                        // Overlapping (RLE-style): each step doubles the
                        // bytes available to copy from, so this is
                        // O(len / off) memmoves instead of `len` pushes.
                        let mut remaining = len;
                        while remaining > 0 {
                            let take = remaining.min(out.len() - start);
                            out.extend_from_within(start..start + take);
                            remaining -= take;
                        }
                    }
                } else {
                    out.push(*stream.get(i)?);
                    i += 1;
                }
            }
        }
        Some(out)
    }
}

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - 15)) as usize & (HASH_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], level: Level) -> usize {
        let c = Lzss::compress(data, level);
        let d = Lzss::decompress(&c, data.len()).expect("valid stream");
        assert_eq!(d, data);
        assert_eq!(Lzss::compressed_len(data, level), c.len(), "count-only length diverged");
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(roundtrip(b"", Level::Default), 0);
        roundtrip(b"a", Level::Default);
        roundtrip(b"abc", Level::Default);
        roundtrip(b"abcd", Level::Default);
    }

    #[test]
    fn repetitive_input_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let size = roundtrip(&data, Level::Default);
        assert!(size < data.len() / 4, "{size} vs {}", data.len());
    }

    #[test]
    fn rle_overlapping_matches() {
        let data = vec![0x41u8; 10_000];
        let size = roundtrip(&data, Level::Fast);
        assert!(size < 200);
    }

    #[test]
    fn incompressible_bounded_expansion() {
        // Pseudo-random (xorshift) bytes: no 4-byte matches expected.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = Lzss::compress(&data, Level::Best);
        assert!(c.len() <= data.len() + data.len() / 8 + 2);
        assert_eq!(Lzss::decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn levels_order_ratio() {
        let data: Vec<u8> = (0..20_000u32)
            .flat_map(|i| format!("line {} of synthetic log\n", i % 700).into_bytes())
            .collect();
        let fast = Lzss::compress(&data, Level::Fast).len();
        let best = Lzss::compress(&data, Level::Best).len();
        assert!(best <= fast);
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut data = vec![7u8; 100];
        data.extend(std::iter::repeat_n(3u8, WINDOW - 200));
        data.extend_from_slice(&[7u8; 100]); // matches the prefix across ~32K
        roundtrip(&data, Level::Best);
    }

    #[test]
    fn match_len_agrees_with_bytewise_scan() {
        // Crafted so matches end at every offset within a word and straddle
        // the 8-byte boundary both ways.
        let mut data = Vec::new();
        for n in 0..40usize {
            data.extend_from_slice(&vec![b'x'; n]);
            data.push(b'!');
        }
        data.extend_from_slice(&data.clone()); // long self-match at distance len/2
        for a in 0..data.len() {
            for b in (a + 1)..(a + 20).min(data.len()) {
                let max = (data.len() - b).min(MAX_MATCH);
                let mut expect = 0;
                while expect < max && data[a + expect] == data[b + expect] {
                    expect += 1;
                }
                assert_eq!(Lzss::match_len(&data, a, b), expect, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn compressed_len_matches_stream_across_levels() {
        let samples: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abcabcabcabcabcabc".repeat(40),
            vec![9u8; 5000],
            (0..3000u32).flat_map(|i| i.to_le_bytes()).collect(),
        ];
        for data in &samples {
            for level in [Level::Fast, Level::Default, Level::Best] {
                assert_eq!(
                    Lzss::compressed_len(data, level),
                    Lzss::compress(data, level).len(),
                    "len {} level {level:?}",
                    data.len()
                );
            }
        }
    }

    #[test]
    fn rejects_corrupt_stream() {
        let data = b"abcabcabcabcabcabc".repeat(50);
        let mut c = Lzss::compress(&data, Level::Default);
        c.truncate(c.len() / 2);
        assert!(Lzss::decompress(&c, data.len()).is_none());
    }

    #[test]
    fn rejects_bad_offset() {
        // flag byte: first token is a match; offset 9 with empty history.
        let stream = [0b0000_0001u8, 9, 0, 0];
        assert!(Lzss::decompress(&stream, 8).is_none());
    }

    #[test]
    fn hostile_expected_len_does_not_reserve_unbounded_memory() {
        // A 4-byte stream claiming usize::MAX of output must fail fast
        // without a giant allocation.
        let stream = [0u8, b'q', 0, 0];
        assert!(Lzss::decompress(&stream, usize::MAX).is_none());
    }
}
