//! LZSS dictionary compression.
//!
//! The token stream packs eight tokens per flag byte; each token is either a
//! literal byte or an `(offset, length)` back-reference into a 32 KiB sliding
//! window. Matches are found with a hash-chain matcher whose search depth is
//! controlled by [`Level`].

/// Sliding-window size. Offsets are encoded in 16 bits, so the window must
/// not exceed 64 KiB; 32 KiB matches zlib's window and keeps chains short.
const WINDOW: usize = 32 * 1024;
/// Shortest back-reference worth encoding (3 bytes would break even only
/// against the flag bit; 4 gives a guaranteed win).
const MIN_MATCH: usize = 4;
/// Longest encodable match: length is stored as `len - MIN_MATCH` in a byte.
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Number of hash buckets for 4-byte prefixes.
const HASH_SIZE: usize = 1 << 15;

/// Compression effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Shallow match search; fastest.
    Fast,
    /// Balanced search depth (the default).
    #[default]
    Default,
    /// Deep search; best ratio.
    Best,
}

impl Level {
    /// Maximum hash-chain positions examined per input position.
    fn chain_depth(self) -> usize {
        match self {
            Level::Fast => 8,
            Level::Default => 32,
            Level::Best => 128,
        }
    }
}

/// The LZSS codec. A unit struct; all state lives on the stack per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lzss;

impl Lzss {
    /// Compresses `data` into a raw LZSS token stream (no frame header).
    ///
    /// Incompressible input expands by at most 1 bit per byte (one flag bit
    /// per literal); callers that must bound size use the frame layer, which
    /// falls back to stored blocks.
    pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        if data.is_empty() {
            return out;
        }
        let depth = level.chain_depth();
        // head[h] = most recent position with hash h; prev[pos % WINDOW] = the
        // previous position in the same chain.
        let mut head = vec![usize::MAX; HASH_SIZE];
        let mut prev = vec![usize::MAX; WINDOW];

        let mut flags_at = 0usize;
        let mut flag_bit = 8u8; // force allocation of the first flag byte
        let mut pos = 0usize;

        // A flag byte is allocated lazily, right before the first token of
        // each group of eight, so token payloads always follow their flags.
        macro_rules! emit_flag {
            ($set:expr) => {
                if flag_bit == 8 {
                    flag_bit = 0;
                    flags_at = out.len();
                    out.push(0);
                }
                if $set {
                    out[flags_at] |= 1 << flag_bit;
                }
                flag_bit += 1;
            };
        }

        while pos < data.len() {
            let (mut best_len, mut best_off) = (0usize, 0usize);
            if pos + MIN_MATCH <= data.len() {
                let h = hash4(&data[pos..]);
                let mut candidate = head[h];
                let limit = pos.saturating_sub(WINDOW - 1);
                let mut steps = 0;
                while candidate != usize::MAX && candidate >= limit && steps < depth {
                    let len = match_len(data, candidate, pos);
                    if len > best_len {
                        best_len = len;
                        best_off = pos - candidate;
                        if len >= MAX_MATCH {
                            break;
                        }
                    }
                    candidate = prev[candidate % WINDOW];
                    steps += 1;
                }
            }

            if best_len >= MIN_MATCH {
                emit_flag!(true);
                out.extend_from_slice(&(best_off as u16).to_le_bytes());
                out.push((best_len - MIN_MATCH) as u8);
                // Insert every covered position into the chains so later
                // matches can start inside this one.
                let end = pos + best_len;
                while pos < end {
                    if pos + MIN_MATCH <= data.len() {
                        let h = hash4(&data[pos..]);
                        prev[pos % WINDOW] = head[h];
                        head[h] = pos;
                    }
                    pos += 1;
                }
            } else {
                emit_flag!(false);
                out.push(data[pos]);
                if pos + MIN_MATCH <= data.len() {
                    let h = hash4(&data[pos..]);
                    prev[pos % WINDOW] = head[h];
                    head[h] = pos;
                }
                pos += 1;
            }
        }
        out
    }

    /// Decompresses a raw LZSS token stream produced by [`Lzss::compress`].
    ///
    /// `expected_len` is the exact decompressed size (recorded by the frame
    /// layer); decoding stops once it is reached.
    ///
    /// # Errors
    ///
    /// Returns `None` on a truncated stream or an out-of-range back-reference.
    pub fn decompress(stream: &[u8], expected_len: usize) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(expected_len);
        let mut i = 0usize;
        while out.len() < expected_len {
            let flags = *stream.get(i)?;
            i += 1;
            for bit in 0..8 {
                if out.len() == expected_len {
                    break;
                }
                if flags & (1 << bit) != 0 {
                    let lo = *stream.get(i)?;
                    let hi = *stream.get(i + 1)?;
                    let len = *stream.get(i + 2)? as usize + MIN_MATCH;
                    i += 3;
                    let off = u16::from_le_bytes([lo, hi]) as usize;
                    if off == 0 || off > out.len() {
                        return None;
                    }
                    let start = out.len() - off;
                    // Overlapping copies are valid (RLE-style) so copy bytewise.
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                } else {
                    out.push(*stream.get(i)?);
                    i += 1;
                }
            }
        }
        Some(out)
    }
}

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - 15)) as usize & (HASH_SIZE - 1)
}

#[inline]
fn match_len(data: &[u8], a: usize, b: usize) -> usize {
    let max = (data.len() - b).min(MAX_MATCH);
    let mut n = 0;
    while n < max && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], level: Level) -> usize {
        let c = Lzss::compress(data, level);
        let d = Lzss::decompress(&c, data.len()).expect("valid stream");
        assert_eq!(d, data);
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(roundtrip(b"", Level::Default), 0);
        roundtrip(b"a", Level::Default);
        roundtrip(b"abc", Level::Default);
        roundtrip(b"abcd", Level::Default);
    }

    #[test]
    fn repetitive_input_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        let size = roundtrip(&data, Level::Default);
        assert!(size < data.len() / 4, "{size} vs {}", data.len());
    }

    #[test]
    fn rle_overlapping_matches() {
        let data = vec![0x41u8; 10_000];
        let size = roundtrip(&data, Level::Fast);
        assert!(size < 200);
    }

    #[test]
    fn incompressible_bounded_expansion() {
        // Pseudo-random (xorshift) bytes: no 4-byte matches expected.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        let c = Lzss::compress(&data, Level::Best);
        assert!(c.len() <= data.len() + data.len() / 8 + 2);
        assert_eq!(Lzss::decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn levels_order_ratio() {
        let data: Vec<u8> = (0..20_000u32)
            .flat_map(|i| format!("line {} of synthetic log\n", i % 700).into_bytes())
            .collect();
        let fast = Lzss::compress(&data, Level::Fast).len();
        let best = Lzss::compress(&data, Level::Best).len();
        assert!(best <= fast);
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut data = vec![7u8; 100];
        data.extend(std::iter::repeat_n(3u8, WINDOW - 200));
        data.extend_from_slice(&[7u8; 100]); // matches the prefix across ~32K
        roundtrip(&data, Level::Best);
    }

    #[test]
    fn rejects_corrupt_stream() {
        let data = b"abcabcabcabcabcabc".repeat(50);
        let mut c = Lzss::compress(&data, Level::Default);
        c.truncate(c.len() / 2);
        assert!(Lzss::decompress(&c, data.len()).is_none());
    }

    #[test]
    fn rejects_bad_offset() {
        // flag byte: first token is a match; offset 9 with empty history.
        let stream = [0b0000_0001u8, 9, 0, 0];
        assert!(Lzss::decompress(&stream, 8).is_none());
    }
}
