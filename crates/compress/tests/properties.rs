//! Property-based tests: compression must be lossless for arbitrary inputs.

use gear_compress::{compress, compressed_size, decompress, Level, FRAME_OVERHEAD};
use proptest::prelude::*;

fn any_level() -> impl Strategy<Value = Level> {
    prop_oneof![Just(Level::Fast), Just(Level::Default), Just(Level::Best)]
}

proptest! {
    /// Arbitrary bytes survive a compress/decompress roundtrip at any level.
    #[test]
    fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096), level in any_level()) {
        let framed = compress(&data, level);
        prop_assert_eq!(decompress(&framed).unwrap(), data);
    }

    /// Highly repetitive input roundtrips and shrinks.
    #[test]
    fn roundtrip_repetitive(byte in any::<u8>(), reps in 64usize..4096, level in any_level()) {
        let data = vec![byte; reps];
        let framed = compress(&data, level);
        prop_assert!(framed.len() < data.len() + FRAME_OVERHEAD);
        prop_assert_eq!(decompress(&framed).unwrap(), data);
    }

    /// The frame never expands input by more than the fixed header.
    #[test]
    fn bounded_expansion(data in proptest::collection::vec(any::<u8>(), 0..2048), level in any_level()) {
        let framed = compress(&data, level);
        prop_assert!(framed.len() <= data.len() + FRAME_OVERHEAD);
    }

    /// `compressed_size` agrees exactly with `compress().len()`.
    #[test]
    fn size_estimate_exact(data in proptest::collection::vec(any::<u8>(), 0..2048), level in any_level()) {
        prop_assert_eq!(compressed_size(&data, level), compress(&data, level).len());
    }

    /// Corrupting any single payload byte is detected (never mis-decodes
    /// silently to the original).
    #[test]
    fn corruption_never_silently_accepted(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut framed = compress(&data, Level::Default);
        let i = FRAME_OVERHEAD + idx.index(framed.len() - FRAME_OVERHEAD);
        framed[i] ^= flip;
        match decompress(&framed) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, data, "corruption silently produced original"),
        }
    }
}
