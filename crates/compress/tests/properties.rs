//! Property-based tests: compression must be lossless for arbitrary inputs.

use gear_compress::{
    compress, compress_blocks, compress_with, compressed_size, decompress, decompress_with,
    Level, FRAME_OVERHEAD,
};
use gear_par::Pool;
use proptest::prelude::*;

fn any_level() -> impl Strategy<Value = Level> {
    prop_oneof![Just(Level::Fast), Just(Level::Default), Just(Level::Best)]
}

proptest! {
    /// Arbitrary bytes survive a compress/decompress roundtrip at any level.
    #[test]
    fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096), level in any_level()) {
        let framed = compress(&data, level);
        prop_assert_eq!(decompress(&framed).unwrap(), data);
    }

    /// Highly repetitive input roundtrips and shrinks.
    #[test]
    fn roundtrip_repetitive(byte in any::<u8>(), reps in 64usize..4096, level in any_level()) {
        let data = vec![byte; reps];
        let framed = compress(&data, level);
        prop_assert!(framed.len() < data.len() + FRAME_OVERHEAD);
        prop_assert_eq!(decompress(&framed).unwrap(), data);
    }

    /// The frame never expands input by more than the fixed header.
    #[test]
    fn bounded_expansion(data in proptest::collection::vec(any::<u8>(), 0..2048), level in any_level()) {
        let framed = compress(&data, level);
        prop_assert!(framed.len() <= data.len() + FRAME_OVERHEAD);
    }

    /// `compressed_size` agrees exactly with `compress().len()`.
    #[test]
    fn size_estimate_exact(data in proptest::collection::vec(any::<u8>(), 0..2048), level in any_level()) {
        prop_assert_eq!(compressed_size(&data, level), compress(&data, level).len());
    }

    /// Corrupting any single payload byte is detected (never mis-decodes
    /// silently to the original).
    #[test]
    fn corruption_never_silently_accepted(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut framed = compress(&data, Level::Default);
        let i = FRAME_OVERHEAD + idx.index(framed.len() - FRAME_OVERHEAD);
        framed[i] ^= flip;
        match decompress(&framed) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, data, "corruption silently produced original"),
        }
    }

    /// The decoder never panics on fully arbitrary bytes — truncated,
    /// garbage, or adversarial headers all come back as `Err`, and bytes
    /// that happen to start with a valid magic still decode safely.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        mut frame in proptest::collection::vec(any::<u8>(), 0..512),
        magic in 0u8..3,
    ) {
        // Bias a third of the cases toward each frame magic so header
        // parsing (not just magic rejection) is exercised.
        if frame.len() >= 4 {
            match magic {
                1 => frame[..4].copy_from_slice(b"GZc1"),
                2 => frame[..4].copy_from_slice(b"GZc2"),
                _ => {}
            }
        }
        let _ = decompress(&frame);
        let _ = decompress_with(&frame, &Pool::new(4));
    }

    /// Corrupting any single byte of a multi-block frame — header, table,
    /// or payload — never panics and never silently decodes to the input.
    #[test]
    fn block_frame_corruption_never_panics(
        data in proptest::collection::vec(any::<u8>(), 256..2048),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        // Small block size forces the multi-block format on modest input.
        let mut framed = compress_blocks(&data, Level::Fast, 128, &Pool::serial());
        let i = idx.index(framed.len());
        framed[i] ^= flip;
        match decompress(&framed) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, data, "corruption silently produced original"),
        }
    }

    /// 1, 2, and 8 workers produce byte-identical frames, and a frame
    /// compressed at any worker count decodes at any other.
    #[test]
    fn cross_worker_bit_identity(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        level in any_level(),
    ) {
        let serial = compress_with(&data, level, &Pool::serial());
        for workers in [2usize, 8] {
            let pool = Pool::new(workers);
            prop_assert_eq!(&compress_with(&data, level, &pool), &serial);
            prop_assert_eq!(decompress_with(&serial, &pool).unwrap(), data.clone());
        }
        prop_assert_eq!(decompress(&serial).unwrap(), data);
    }

    /// Same property through the explicit block entry point: a block size
    /// small enough to split these inputs, swept across worker counts.
    #[test]
    fn cross_worker_bit_identity_blocks(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        block_size in 64usize..512,
    ) {
        let serial = compress_blocks(&data, Level::Fast, block_size, &Pool::serial());
        for workers in [2usize, 8] {
            let pool = Pool::new(workers);
            prop_assert_eq!(&compress_blocks(&data, Level::Fast, block_size, &pool), &serial);
            prop_assert_eq!(decompress_with(&serial, &pool).unwrap(), data.clone());
        }
        prop_assert_eq!(decompress(&serial).unwrap(), data);
    }
}
