//! Converter throughput (the work behind paper Fig. 6).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gear_core::{Converter, ConverterOptions};
use gear_corpus::{Corpus, CorpusConfig};

fn bench_conversion(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig::quick());
    let image = corpus
        .series_by_name("tomcat")
        .expect("quick corpus has tomcat")
        .images
        .last()
        .expect("versions")
        .clone();
    let bytes = image.content_bytes();

    let mut group = c.benchmark_group("conversion");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("docker_to_gear", |b| {
        let converter = Converter::new();
        b.iter(|| converter.convert(std::hint::black_box(&image)).unwrap())
    });
    group.bench_function("docker_to_gear_chunked", |b| {
        let converter = Converter::with_options(ConverterOptions {
            big_file_threshold: Some(2048),
            chunk_size: 1024,
            ..Default::default()
        });
        b.iter(|| converter.convert(std::hint::black_box(&image)).unwrap())
    });
    group.bench_function("rootfs_reconstruction", |b| {
        b.iter(|| std::hint::black_box(&image).root_fs().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_conversion);
criterion_main!(benches);
