//! Cooperative-cluster ablation: registry egress and simulator cost as the
//! cluster grows, with and without the peer directory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gear_bench::experiments::{fig8, ExperimentContext};
use gear_p2p::{Cluster, ClusterConfig};

fn bench_cluster(c: &mut Criterion) {
    let ctx = ExperimentContext::quick();
    let published = fig8::publish_corpus(&ctx);
    let series = ctx.corpus.series_by_name("wordpress").expect("quick corpus has wordpress");
    let image = series.images.last().unwrap();
    let trace = series.traces.last().unwrap();

    let mut group = c.benchmark_group("cluster");
    group.sample_size(15);
    for nodes in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("deploy_all", nodes), &nodes, |b, &n| {
            b.iter(|| {
                let mut cluster =
                    Cluster::new(ClusterConfig::edge(n).with_client(ctx.client_config));
                for node in 0..n {
                    cluster
                        .deploy_on(
                            node,
                            image.reference(),
                            trace,
                            &published.gear_index,
                            &published.gear_files,
                        )
                        .unwrap();
                }
                std::hint::black_box(cluster.registry_egress())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
