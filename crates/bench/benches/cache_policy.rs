//! Shared-cache ablation: FIFO vs LRU vs unbounded under version cycling
//! (the design choice the paper's §III-D1 leaves to the user).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gear_bench::experiments::{fig8, ExperimentContext};
use gear_client::{ClientConfig, EvictionPolicy, GearClient};

fn bench_cache(c: &mut Criterion) {
    let ctx = ExperimentContext::quick();
    let published = fig8::publish_corpus(&ctx);
    let series = ctx.corpus.series_by_name("redis").expect("quick corpus has redis");
    // Capacity fitting roughly one image's necessary files.
    let capacity = series.images[0].content_bytes() / 2;

    let mut group = c.benchmark_group("cache_policy");
    group.sample_size(20);
    for (label, policy, cap) in [
        ("fifo_bounded", EvictionPolicy::Fifo, Some(capacity)),
        ("lru_bounded", EvictionPolicy::Lru, Some(capacity)),
        ("lru_unbounded", EvictionPolicy::Lru, None),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| {
                let config = ClientConfig {
                    cache_policy: policy,
                    cache_capacity: cap,
                    ..ctx.client_config
                };
                let mut client = GearClient::new(config);
                let mut pulled = 0u64;
                for _round in 0..2 {
                    for (image, trace) in series.images.iter().zip(&series.traces) {
                        let (id, report) = client
                            .deploy(
                                image.reference(),
                                trace,
                                &published.gear_index,
                                &published.gear_files,
                            )
                            .unwrap();
                        client.destroy(id);
                        client.remove_image(image.reference());
                        pulled += report.bytes_pulled;
                    }
                }
                std::hint::black_box(pulled)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
