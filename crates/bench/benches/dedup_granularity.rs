//! The Table II ablation as a bench: dedup analysis cost per granularity
//! configuration over the quick corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gear_corpus::{Corpus, CorpusConfig};
use gear_registry::dedup::{analyze, DedupConfig};

fn bench_dedup(c: &mut Criterion) {
    let corpus = Corpus::generate(&CorpusConfig::quick());
    let images: Vec<_> = corpus.all_images().cloned().collect();

    let mut group = c.benchmark_group("dedup_granularity");
    group.sample_size(10);
    for chunk in [64usize, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("analyze_chunk", chunk),
            &images,
            |b, imgs| {
                let config = DedupConfig { chunk_size: chunk, ..DedupConfig::default() };
                b.iter(|| analyze(std::hint::black_box(imgs), config))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
