//! Telemetry hot-path micro-benchmarks.
//!
//! The record path runs inside every priced operation, so it must stay
//! cheap: the no-op recorder should be branch-predictable nothingness, and
//! counter/sketch updates should touch only a striped atomic map — never
//! the span mutex.

use std::time::Duration;

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use gear_telemetry::{Collector, QuantileSketch, Telemetry};

fn bench_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry");

    let noop = Telemetry::noop();
    group.bench_function("noop_count", |b| {
        b.iter(|| noop.count(std::hint::black_box("client.bytes_pulled"), 1))
    });
    group.bench_function("noop_span", |b| {
        b.iter(|| {
            let span = noop.span_start("bench", std::hint::black_box("op"));
            noop.span_end(span);
        })
    });

    // Flight-recorder bounded, like a fleet node: span storage stays at
    // 1024 entries no matter how many iterations criterion runs.
    let live = Telemetry::new(Arc::new(Collector::with_span_capacity(1024)));
    group.bench_function("counter_hot_key", |b| {
        b.iter(|| live.count(std::hint::black_box("client.bytes_pulled"), 1))
    });
    group.bench_function("gauge_max", |b| {
        b.iter(|| live.gauge_max(std::hint::black_box("cache.bytes"), 4096))
    });
    group.bench_function("sketch_observe", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(977);
            live.sketch("client.fetch_nanos", std::hint::black_box(i % 1_000_000));
        })
    });
    group.bench_function("span_at", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            live.span_at(
                "bench",
                "op",
                Duration::from_nanos(i),
                Duration::from_nanos(std::hint::black_box(50)),
            )
        })
    });

    group.bench_function("sketch_merge_64_buckets", |b| {
        let mut shard = QuantileSketch::new();
        for v in 0..4096u64 {
            shard.observe(v * v % 1_048_576);
        }
        b.iter(|| {
            let mut cloud = QuantileSketch::new();
            cloud.merge(std::hint::black_box(&shard)).unwrap();
            cloud
        })
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
