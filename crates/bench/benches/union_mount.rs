//! Union-mount hot-path micro-benchmarks: lookup, read, readdir, copy-up.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use gear_fs::{FsTree, NoFetch, UnionFs};

fn deep_tree(files: usize) -> FsTree {
    let mut tree = FsTree::new();
    for i in 0..files {
        tree.create_file(
            &format!("usr/lib/d{}/sub{}/file{:04}", i % 8, i % 32, i),
            Bytes::from(vec![(i % 251) as u8; 256]),
        )
        .unwrap();
    }
    tree
}

fn bench_union(c: &mut Criterion) {
    let lower = Arc::new(deep_tree(2048));
    let mut group = c.benchmark_group("union_mount");

    group.bench_function("read_through_lower", |b| {
        let mut mount = UnionFs::new(vec![Arc::clone(&lower)]);
        let mut i = 0usize;
        b.iter(|| {
            let path = format!("usr/lib/d{}/sub{}/file{:04}", i % 8, i % 32, i % 2048);
            i += 1;
            mount.read(std::hint::black_box(&path), &NoFetch).unwrap()
        })
    });

    group.bench_function("readdir_merged", |b| {
        let mut mount = UnionFs::new(vec![Arc::clone(&lower)]);
        mount.write("usr/lib/d0/from-upper", Bytes::from_static(b"x")).unwrap();
        b.iter(|| mount.readdir(std::hint::black_box("usr/lib/d0")).unwrap())
    });

    group.bench_function("write_copy_up", |b| {
        let mut i = 0usize;
        b.iter_batched(
            || UnionFs::new(vec![Arc::clone(&lower)]),
            |mut mount| {
                i += 1;
                mount
                    .write(&format!("usr/lib/d1/new{i}"), Bytes::from_static(b"payload"))
                    .unwrap();
                std::hint::black_box(mount)
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("flatten_2048_files", |b| {
        let mount = UnionFs::new(vec![Arc::clone(&lower)]);
        b.iter(|| std::hint::black_box(&mount).flatten())
    });

    group.finish();
}

criterion_group!(benches, bench_union);
criterion_main!(benches);
