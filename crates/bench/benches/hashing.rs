//! Fingerprinting micro-benchmarks and the MD5-vs-SHA-256 ablation.
//!
//! The paper picks MD5 for Gear-file fingerprints; this bench quantifies the
//! hashing-cost side of that choice at typical image-file sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gear_hash::{Digest, Fingerprint};

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

fn bench_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");
    for size in [512usize, 16 * 1024, 1024 * 1024] {
        let data = content(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("md5_fingerprint", size), &data, |b, d| {
            b.iter(|| Fingerprint::of(std::hint::black_box(d)))
        });
        group.bench_with_input(BenchmarkId::new("sha256_digest", size), &data, |b, d| {
            b.iter(|| Digest::of(std::hint::black_box(d)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
