//! Compression micro-benchmarks and the granularity ablation (per-layer vs
//! per-file compression ratios on corpus content).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gear_compress::{compress, compressed_size, decompress, Level};
use gear_corpus::{make_content, new_file_seeds};

fn corpus_like(len: usize, seed: u64) -> Vec<u8> {
    make_content(&new_file_seeds(seed, len as u64), len as u64).to_vec()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("lzss");
    let data = corpus_like(256 * 1024, 42);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for level in [Level::Fast, Level::Default, Level::Best] {
        group.bench_with_input(
            BenchmarkId::new("compress", format!("{level:?}")),
            &data,
            |b, d| b.iter(|| compress(std::hint::black_box(d), level)),
        );
    }
    let framed = compress(&data, Level::Default);
    group.bench_function("decompress", |b| {
        b.iter(|| decompress(std::hint::black_box(&framed)).unwrap())
    });
    group.finish();
}

fn bench_granularity(c: &mut Criterion) {
    // Ablation: compressing 64 files individually vs as one concatenated
    // "layer" stream — the trade-off behind registry storage formats.
    let files: Vec<Vec<u8>> = (0..64).map(|i| corpus_like(4096, 1000 + i)).collect();
    let layer: Vec<u8> = files.iter().flatten().copied().collect();
    let mut group = c.benchmark_group("compression_granularity");
    group.bench_function("per_file_64x4k", |b| {
        b.iter(|| {
            files
                .iter()
                .map(|f| compressed_size(std::hint::black_box(f), Level::Fast))
                .sum::<usize>()
        })
    });
    group.bench_function("per_layer_256k", |b| {
        b.iter(|| compressed_size(std::hint::black_box(&layer), Level::Fast))
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_granularity);
criterion_main!(benches);
