//! Compression micro-benchmarks: codec throughput, the granularity ablation
//! (per-layer vs per-file compression ratios on corpus content), the
//! block-parallel engine across worker counts, and the word-wise kernels
//! (match_len, crc32, md5/sha256 block processing) so a kernel regression
//! is visible outside the modeled suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gear_compress::{compress, compress_with, compressed_size, crc32, decompress, Level, Lzss};
use gear_corpus::{make_content, new_file_seeds};
use gear_hash::{Md5, Sha256};
use gear_par::Pool;

fn corpus_like(len: usize, seed: u64) -> Vec<u8> {
    make_content(&new_file_seeds(seed, len as u64), len as u64).to_vec()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("lzss");
    let data = corpus_like(256 * 1024, 42);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for level in [Level::Fast, Level::Default, Level::Best] {
        group.bench_with_input(
            BenchmarkId::new("compress", format!("{level:?}")),
            &data,
            |b, d| b.iter(|| compress(std::hint::black_box(d), level)),
        );
    }
    let framed = compress(&data, Level::Default);
    group.bench_function("decompress", |b| {
        b.iter(|| decompress(std::hint::black_box(&framed)).unwrap())
    });
    group.finish();
}

fn bench_granularity(c: &mut Criterion) {
    // Ablation: compressing 64 files individually vs as one concatenated
    // "layer" stream — the trade-off behind registry storage formats.
    let files: Vec<Vec<u8>> = (0..64).map(|i| corpus_like(4096, 1000 + i)).collect();
    let layer: Vec<u8> = files.iter().flatten().copied().collect();
    let mut group = c.benchmark_group("compression_granularity");
    group.bench_function("per_file_64x4k", |b| {
        b.iter(|| {
            files
                .iter()
                .map(|f| compressed_size(std::hint::black_box(f), Level::Fast))
                .sum::<usize>()
        })
    });
    group.bench_function("per_layer_256k", |b| {
        b.iter(|| compressed_size(std::hint::black_box(&layer), Level::Fast))
    });
    group.finish();
}

fn bench_block_parallel(c: &mut Criterion) {
    // The block-parallel engine on a multi-block input. On a single-core
    // runner every worker count measures the same serial work; on real
    // hardware the 8-worker row shows the wall-clock win at bit-identical
    // output.
    let data = corpus_like(2 * 1024 * 1024, 7);
    let mut group = c.benchmark_group("block_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(data.len() as u64));
    for workers in [1usize, 2, 8] {
        let pool = Pool::new(workers);
        group.bench_with_input(
            BenchmarkId::new("compress_default", workers),
            &data,
            |b, d| b.iter(|| compress_with(std::hint::black_box(d), Level::Default, &pool)),
        );
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let data = corpus_like(1024 * 1024, 99);

    let mut group = c.benchmark_group("kernels");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("crc32_slice8", |b| {
        b.iter(|| crc32(std::hint::black_box(&data)))
    });
    group.bench_function("md5_block", |b| {
        b.iter(|| {
            let mut h = Md5::new();
            h.update(std::hint::black_box(&data));
            h.finalize()
        })
    });
    group.bench_function("sha256_block", |b| {
        b.iter(|| {
            let mut h = Sha256::new();
            h.update(std::hint::black_box(&data));
            h.finalize()
        })
    });
    group.finish();

    // match_len on self-similar data: every probe runs long matches, so the
    // measured rate is the word-wise scanner's fast path.
    let half = data.len() / 2;
    let doubled: Vec<u8> = [&data[..half], &data[..half]].concat();
    let mut matched = 0u64;
    let mut i = 0;
    while i + half + 8 < doubled.len() {
        matched += Lzss::match_len(&doubled, i, i + half) as u64;
        i += 64;
    }
    let mut group = c.benchmark_group("kernels_match_len");
    group.throughput(Throughput::Bytes(matched));
    group.bench_function("u64_scan", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut i = 0;
            while i + half + 8 < doubled.len() {
                total += Lzss::match_len(std::hint::black_box(&doubled), i, i + half);
                i += 64;
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_granularity, bench_block_parallel, bench_kernels);
criterion_main!(benches);
