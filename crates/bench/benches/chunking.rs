//! CDC chunker micro-benchmarks: GB/s at several (min, avg, max) bound
//! configurations, plus the parallel multi-file path across worker counts.
//! The chunker sits on the publish hot path (every big file is scanned
//! once), so its throughput needs the same visibility as the hash and
//! compression kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gear_corpus::{make_content, new_file_seeds};
use gear_hash::{chunk_spans, chunk_spans_all, ChunkerConfig};
use gear_par::Pool;

fn corpus_like(len: usize, seed: u64) -> Vec<u8> {
    make_content(&new_file_seeds(seed, len as u64), len as u64).to_vec()
}

/// Bound configs from fine to coarse; labels name the average chunk size.
fn configs() -> [(&'static str, ChunkerConfig); 3] {
    [
        ("avg4k", ChunkerConfig { min_size: 1024, avg_size: 4 * 1024, max_size: 16 * 1024 }),
        ("avg32k", ChunkerConfig { min_size: 8 * 1024, avg_size: 32 * 1024, max_size: 128 * 1024 }),
        ("avg128k", ChunkerConfig::default()), // 32k / 128k / 512k
    ]
}

fn bench_chunker(c: &mut Criterion) {
    let data = corpus_like(4 * 1024 * 1024, 42);
    let mut group = c.benchmark_group("cdc_chunker");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (label, config) in configs() {
        group.bench_with_input(BenchmarkId::new("chunk_spans", label), &data, |b, d| {
            b.iter(|| chunk_spans(std::hint::black_box(d), &config))
        });
    }
    group.finish();
}

fn bench_parallel_files(c: &mut Criterion) {
    // Many mid-size files, the converter's actual workload shape.
    let files: Vec<Vec<u8>> = (0..64).map(|i| corpus_like(256 * 1024, 100 + i)).collect();
    let total: u64 = files.iter().map(|f| f.len() as u64).sum();
    let config = ChunkerConfig { min_size: 8 * 1024, avg_size: 32 * 1024, max_size: 128 * 1024 };
    let mut group = c.benchmark_group("cdc_chunker_files");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(total));
    for workers in [1usize, 2, 8] {
        let pool = Pool::new(workers);
        group.bench_with_input(BenchmarkId::new("chunk_all", workers), &files, |b, fs| {
            b.iter(|| chunk_spans_all(std::hint::black_box(fs), &config, &pool))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunker, bench_parallel_files);
criterion_main!(benches);
