//! Deployment-engine execution cost: how fast the simulator itself runs one
//! Gear / Docker / Slacker deployment (not the simulated time it reports).

use criterion::{criterion_group, criterion_main, Criterion};
use gear_bench::experiments::{fig8, ExperimentContext};
use gear_client::{ClientConfig, DockerClient, GearClient, SlackerClient};

fn bench_deploy(c: &mut Criterion) {
    let ctx = ExperimentContext::quick();
    let published = fig8::publish_corpus(&ctx);
    let series = ctx.corpus.series_by_name("tomcat").expect("quick corpus has tomcat");
    let image = series.images.last().unwrap();
    let trace = series.traces.last().unwrap();
    let config: ClientConfig = ctx.client_config;

    let mut group = c.benchmark_group("deployment");
    group.sample_size(20);
    group.bench_function("gear_cold", |b| {
        b.iter(|| {
            let mut client = GearClient::new(config);
            let (id, report) = client
                .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
                .unwrap();
            client.destroy(id);
            std::hint::black_box(report)
        })
    });
    group.bench_function("docker_cold", |b| {
        b.iter(|| {
            let mut client = DockerClient::new(config);
            let (id, report) =
                client.deploy(image.reference(), trace, &published.docker).unwrap();
            client.destroy(id);
            std::hint::black_box(report)
        })
    });
    group.bench_function("slacker_cold", |b| {
        b.iter(|| {
            let mut client = SlackerClient::new(config);
            let (id, report) =
                client.deploy(image.reference(), trace, &published.docker).unwrap();
            client.destroy(id);
            std::hint::black_box(report)
        })
    });
    // Warm Gear deployment: index installed, cache hot.
    group.bench_function("gear_warm", |b| {
        let mut client = GearClient::new(config);
        let (id, _) = client
            .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
            .unwrap();
        client.destroy(id);
        b.iter(|| {
            let (id, report) = client
                .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
                .unwrap();
            client.destroy(id);
            std::hint::black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_deploy);
criterion_main!(benches);
