//! `repro hotpath`: wall-clock microbenchmarks for the three hot paths
//! touched by the performance overhaul.
//!
//! Three suites, one per hot path:
//!
//! * **convert** — Docker→Gear conversion of the first image of every
//!   series, swept over worker counts. Reports the modeled duration (the
//!   deterministic cost model, where hashing and per-file recompression
//!   scale with workers), the measured wall-clock of the actual in-memory
//!   conversion, paper-scale throughput, and a bit-identical check of the
//!   parallel output against the serial run. The NVMe disk model is used so
//!   the CPU-bound phases dominate, as they do on the machines where
//!   parallel conversion matters.
//! * **cache** — [`SharedCache`] insert/get churn at full capacity across a
//!   16× range of cache sizes. Every insert evicts, so this measures the
//!   eviction path directly; with the ordered index the per-op cost is
//!   O(log n) and ops/s stays flat as the cache grows (the scan-based
//!   eviction it replaced degrades linearly).
//! * **union** — [`UnionFs`] path resolution, cold (first lookup walks the
//!   layers) versus warm (repeated lookups served by the interned resolve
//!   cache).
//! * **compress** — block-parallel `GZc2` compression of a corpus-derived
//!   buffer, swept over `level x workers`. Reports real MB/s, the cost
//!   model's MB/s (per-file recompression rate credited across workers with
//!   static block chunking), the modeled speedup, and whether every worker
//!   count produced a byte-identical frame. Real wall-clock depends on the
//!   host's core count, so only the deterministic columns are gated.
//! * **kernels** — word-wise kernel throughput: slice-by-8 CRC-32,
//!   direct-from-slice MD5/SHA-256 blocks, and the `u64` XOR +
//!   `trailing_zeros` LZSS match scanner, all in GB/s.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use gear_client::{EvictionPolicy, SharedCache};
use gear_compress::{compress_with, crc32, Level, Lzss, BLOCK_SIZE};
use gear_core::{Converter, ConverterOptions};
use gear_fs::{FsTree, UnionFs};
use gear_hash::{Fingerprint, Md5, Sha256};
use gear_par::Pool;
use gear_simnet::DiskModel;

use super::{secs, ExperimentContext};

/// Worker counts the convert sweep covers.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Cache body size for the churn benchmark (bytes per entry).
const CACHE_ENTRY_BYTES: u64 = 1024;

/// One worker count's conversion measurements.
#[derive(Debug, Clone)]
pub struct ConvertPoint {
    /// Worker count.
    pub threads: usize,
    /// Summed modeled conversion time across the sampled images.
    pub modeled: Duration,
    /// Modeled speedup over the serial run.
    pub modeled_speedup: f64,
    /// Measured wall-clock of the conversions themselves.
    pub wall: Duration,
    /// Paper-scale scanned bytes over modeled seconds, in MB/s.
    pub throughput_mb_s: f64,
    /// Whether every index and file pool matched the serial run exactly.
    pub bit_identical: bool,
}

/// One cache size's churn measurements.
#[derive(Debug, Clone)]
pub struct CachePoint {
    /// Resident capacity in entries.
    pub entries: usize,
    /// Operations performed (alternating evicting inserts and gets).
    pub ops: u64,
    /// Wall-clock for the whole churn loop.
    pub wall: Duration,
    /// Operations per second.
    pub ops_per_sec: f64,
}

/// Union-mount lookup measurements.
#[derive(Debug, Clone)]
pub struct UnionBench {
    /// Distinct paths resolved (files plus symlink aliases).
    pub paths: usize,
    /// First-lookup rate: every resolution walks the layers.
    pub cold_lookups_per_sec: f64,
    /// Repeated-lookup rate: resolutions served by the cache.
    pub warm_lookups_per_sec: f64,
    /// Warm over cold rate ratio.
    pub warm_over_cold: f64,
    /// Resolve-cache hits recorded by the mount during the warm passes.
    pub resolve_cache_hits: u64,
}

/// One `level x workers` block-compression measurement.
#[derive(Debug, Clone)]
pub struct CompressPoint {
    /// Compression level label (`"fast"` / `"default"`).
    pub level: &'static str,
    /// Worker count.
    pub workers: usize,
    /// Input bytes over measured wall-clock, in MB/s (machine-dependent).
    pub real_mb_s: f64,
    /// Cost-model throughput: the converter's per-file recompression rate
    /// credited across workers under static block chunking.
    pub modeled_mb_s: f64,
    /// Modeled speedup over the serial row (deterministic: depends only on
    /// the block count and worker count).
    pub modeled_speedup: f64,
    /// Compressed over uncompressed size.
    pub ratio: f64,
    /// Whether the frame matched the serial frame byte for byte.
    pub bit_identical: bool,
}

/// Word-wise kernel throughputs, in GB/s (machine-dependent).
#[derive(Debug, Clone)]
pub struct KernelBench {
    /// Buffer size the kernels ran over.
    pub bytes: usize,
    /// Slice-by-8 CRC-32.
    pub crc32_gb_s: f64,
    /// MD5 with direct-from-slice block compression.
    pub md5_gb_s: f64,
    /// SHA-256 with direct-from-slice block compression.
    pub sha256_gb_s: f64,
    /// The 8-bytes-at-a-time LZSS match scanner (matched bytes per second).
    pub match_len_gb_s: f64,
}

/// The full hot-path benchmark result.
#[derive(Debug, Clone)]
pub struct Hotpath {
    /// Convert sweep, one row per worker count (serial first).
    pub convert: Vec<ConvertPoint>,
    /// Cache churn, one row per cache size (ascending).
    pub cache: Vec<CachePoint>,
    /// Union lookup rates.
    pub union: UnionBench,
    /// Block-compression sweep, grouped by level then worker count.
    pub compress: Vec<CompressPoint>,
    /// Word-wise kernel throughputs.
    pub kernels: KernelBench,
}

impl Hotpath {
    /// Modeled convert speedup at a worker count, if that count was swept.
    pub fn convert_speedup(&self, threads: usize) -> Option<f64> {
        self.convert.iter().find(|p| p.threads == threads).map(|p| p.modeled_speedup)
    }

    /// Ops/s at the largest cache size over ops/s at the smallest: ~1.0 for
    /// O(log n) eviction, ~`smallest/largest` for a linear scan.
    pub fn cache_flatness(&self) -> f64 {
        match (self.cache.first(), self.cache.last()) {
            (Some(small), Some(large)) if small.ops_per_sec > 0.0 => {
                large.ops_per_sec / small.ops_per_sec
            }
            _ => 0.0,
        }
    }

    /// The compression row for a level label and worker count, if swept.
    pub fn compress_point(&self, level: &str, workers: usize) -> Option<&CompressPoint> {
        self.compress.iter().find(|p| p.level == level && p.workers == workers)
    }

    /// Whether every swept `level x workers` combination produced a frame
    /// byte-identical to its serial run.
    pub fn compress_bit_identical(&self) -> bool {
        self.compress.iter().all(|p| p.bit_identical)
    }
}

/// Runs all five suites. `quick` shrinks the op counts for CI smoke runs
/// and tests.
pub fn run(ctx: &ExperimentContext, quick: bool) -> Hotpath {
    let corpus_buffer = corpus_buffer(ctx, quick);
    Hotpath {
        convert: run_convert(ctx),
        cache: run_cache(quick),
        union: run_union(quick),
        compress: run_compress(&corpus_buffer),
        kernels: run_kernels(&corpus_buffer),
    }
}

/// Builds a compression workload from real corpus content: serialized layer
/// archives of the first image of each series, concatenated and tiled to a
/// fixed multiple of [`BLOCK_SIZE`] so the block count — and with it the
/// modeled speedups — is the same at every corpus scale.
fn corpus_buffer(ctx: &ExperimentContext, quick: bool) -> Vec<u8> {
    let blocks = if quick { 8 } else { 16 };
    let target = blocks * BLOCK_SIZE;
    let mut buffer = Vec::with_capacity(target + BLOCK_SIZE);
    'fill: loop {
        for series in &ctx.corpus.series {
            let Some(image) = series.images.first() else { continue };
            for layer in image.layers() {
                buffer.extend_from_slice(&layer.archive().to_bytes());
                if buffer.len() >= target {
                    break 'fill;
                }
            }
        }
        if buffer.is_empty() {
            // Degenerate corpus: fall back to a synthetic page so the suite
            // still runs.
            buffer.extend_from_slice(&[0xA5; 4096]);
        }
    }
    buffer.truncate(target);
    buffer
}

fn run_compress(buffer: &[u8]) -> Vec<CompressPoint> {
    let blocks = buffer.len().div_ceil(BLOCK_SIZE);
    let model_rate = ConverterOptions::default().compress_bytes_per_sec;
    let mut points = Vec::new();
    for (label, level) in [("fast", Level::Fast), ("default", Level::Default)] {
        let mut serial_frame: Vec<u8> = Vec::new();
        for workers in THREAD_SWEEP {
            let pool = Pool::new(workers);
            let start = Instant::now();
            let frame = compress_with(buffer, level, &pool);
            let wall = start.elapsed().as_secs_f64().max(1e-9);
            if workers == 1 {
                serial_frame = frame.clone();
            }
            // Static chunking: the slowest worker carries ceil(blocks/w)
            // blocks, so modeled time scales by that over the serial count.
            let modeled_speedup = blocks as f64 / blocks.div_ceil(workers) as f64;
            points.push(CompressPoint {
                level: label,
                workers,
                real_mb_s: buffer.len() as f64 / 1.0e6 / wall,
                modeled_mb_s: model_rate * modeled_speedup / 1.0e6,
                modeled_speedup,
                ratio: frame.len() as f64 / buffer.len() as f64,
                bit_identical: frame == serial_frame,
            });
        }
    }
    points
}

fn run_kernels(buffer: &[u8]) -> KernelBench {
    let gb = |bytes: usize, secs: f64| bytes as f64 / 1.0e9 / secs.max(1e-9);

    let start = Instant::now();
    let mut crc_acc = 0u32;
    for _ in 0..4 {
        crc_acc ^= crc32(buffer);
    }
    let crc_secs = start.elapsed().as_secs_f64();
    std::hint::black_box(crc_acc);

    let start = Instant::now();
    let mut md5 = Md5::new();
    md5.update(buffer);
    std::hint::black_box(md5.finalize());
    let md5_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut sha = Sha256::new();
    sha.update(buffer);
    std::hint::black_box(sha.finalize());
    let sha_secs = start.elapsed().as_secs_f64();

    // Match scanning: double the buffer's first half so position `i` and
    // `i + half` hold identical content — every probe then runs the
    // long-match fast path the word-wise kernel accelerates.
    let half = buffer.len() / 2;
    let doubled: Vec<u8> = [&buffer[..half], &buffer[..half]].concat();
    let start = Instant::now();
    let mut matched = 0usize;
    let mut i = 0;
    while i + half + 8 < doubled.len() {
        matched += Lzss::match_len(&doubled, i, i + half);
        i += 64;
    }
    let match_secs = start.elapsed().as_secs_f64();
    std::hint::black_box(matched);

    KernelBench {
        bytes: buffer.len(),
        crc32_gb_s: gb(buffer.len() * 4, crc_secs),
        md5_gb_s: gb(buffer.len(), md5_secs),
        sha256_gb_s: gb(buffer.len(), sha_secs),
        match_len_gb_s: gb(matched, match_secs),
    }
}

fn run_convert(ctx: &ExperimentContext) -> Vec<ConvertPoint> {
    let scale = ctx.corpus.config.scale_denom;
    // First image of each series: no cross-version redundancy, so the
    // recompression phase (the parallel term that matters) is exercised on
    // close-to-unique content.
    let images: Vec<_> = ctx.corpus.series.iter().filter_map(|s| s.images.first()).collect();

    let mut serial_outputs: Vec<(Vec<u8>, Vec<Fingerprint>)> = Vec::new();
    let mut points = Vec::new();
    for threads in THREAD_SWEEP {
        let mut modeled = Duration::ZERO;
        let mut scanned_paper_bytes = 0u64;
        let mut identical = true;
        let start = Instant::now();
        for (i, image) in images.iter().enumerate() {
            let converter = Converter::with_options(ConverterOptions {
                disk: DiskModel::nvme(),
                byte_scale: scale,
                count_scale: 1.0,
                threads,
                ..Default::default()
            });
            let conv = converter.convert(image).expect("corpus images convert");
            modeled += conv.report.duration;
            scanned_paper_bytes += conv.report.scanned_bytes * scale;
            let index_json = conv.gear_image.index().to_json();
            let pool: Vec<Fingerprint> = conv.files.iter().map(|f| f.fingerprint).collect();
            if threads == 1 {
                serial_outputs.push((index_json, pool));
            } else {
                let (ref serial_json, ref serial_pool) = serial_outputs[i];
                identical &= index_json == *serial_json && pool == *serial_pool;
            }
        }
        let wall = start.elapsed();
        let serial_modeled =
            points.first().map_or(modeled, |p: &ConvertPoint| p.modeled);
        points.push(ConvertPoint {
            threads,
            modeled,
            modeled_speedup: serial_modeled.as_secs_f64() / modeled.as_secs_f64().max(1e-12),
            wall,
            throughput_mb_s: scanned_paper_bytes as f64 / 1.0e6
                / modeled.as_secs_f64().max(1e-12),
            bit_identical: identical,
        });
    }
    points
}

fn run_cache(quick: bool) -> Vec<CachePoint> {
    let sizes: [usize; 3] = [256, 1024, 4096];
    let ops: u64 = if quick { 30_000 } else { 200_000 };
    let body = Bytes::from(vec![0u8; CACHE_ENTRY_BYTES as usize]);

    // Pre-compute fingerprints so the loop times the cache, not MD5.
    let max_keys = sizes[sizes.len() - 1] as u64 + ops;
    let keys: Vec<Fingerprint> =
        (0..max_keys).map(|i| Fingerprint::of(&i.to_le_bytes())).collect();

    let mut points = Vec::new();
    for entries in sizes {
        let capacity = entries as u64 * CACHE_ENTRY_BYTES;
        let mut cache = SharedCache::with_policy(EvictionPolicy::Lru, Some(capacity));
        for key in &keys[..entries] {
            cache.insert(*key, body.clone());
        }
        debug_assert_eq!(cache.len(), entries);

        let start = Instant::now();
        let mut next = entries as u64;
        let mut performed = 0u64;
        while performed < ops {
            // One evicting insert...
            cache.insert(keys[next as usize], body.clone());
            next += 1;
            performed += 1;
            // ...and one get of a resident key, to mix recency traffic in.
            let resident = next - 1 - (performed * 7 % entries as u64);
            cache.get(keys[resident as usize]);
            performed += 1;
        }
        let wall = start.elapsed();
        points.push(CachePoint {
            entries,
            ops: performed,
            wall,
            ops_per_sec: performed as f64 / wall.as_secs_f64().max(1e-9),
        });
    }
    points
}

fn run_union(quick: bool) -> UnionBench {
    let files: usize = if quick { 512 } else { 4096 };
    let warm_passes: usize = if quick { 8 } else { 16 };

    let mut lower = FsTree::new();
    let mut paths = Vec::with_capacity(files + files / 8);
    for i in 0..files {
        let path = format!("d{}/s{}/f{i}", i % 16, (i / 16) % 16);
        lower.create_file(&path, Bytes::from(vec![i as u8; 16])).expect("distinct paths");
        paths.push(path);
    }
    let mut union = UnionFs::new(vec![Arc::new(lower)]);
    // Symlink aliases exercise the multi-hop resolution the cache
    // short-circuits.
    for i in (0..files).step_by(8) {
        let alias = format!("alias{i}");
        union.symlink(&alias, paths[i].clone()).expect("fresh alias");
        paths.push(alias);
    }

    let before = union.stats();
    let start = Instant::now();
    for path in &paths {
        union.metadata(path).expect("path exists");
    }
    let cold_wall = start.elapsed();

    let start = Instant::now();
    for _ in 0..warm_passes {
        for path in &paths {
            union.metadata(path).expect("path exists");
        }
    }
    let warm_wall = start.elapsed();
    let hits = union.stats().resolve_cache_hits - before.resolve_cache_hits;

    let cold_rate = paths.len() as f64 / cold_wall.as_secs_f64().max(1e-9);
    let warm_rate =
        (paths.len() * warm_passes) as f64 / warm_wall.as_secs_f64().max(1e-9);
    UnionBench {
        paths: paths.len(),
        cold_lookups_per_sec: cold_rate,
        warm_lookups_per_sec: warm_rate,
        warm_over_cold: warm_rate / cold_rate.max(1e-9),
        resolve_cache_hits: hits,
    }
}

/// Formats a rate with a thousands-friendly unit.
fn rate(per_sec: f64) -> String {
    if per_sec >= 1.0e6 {
        format!("{:.1}M/s", per_sec / 1.0e6)
    } else if per_sec >= 1.0e3 {
        format!("{:.1}k/s", per_sec / 1.0e3)
    } else {
        format!("{per_sec:.0}/s")
    }
}

impl fmt::Display for Hotpath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Hot-path microbenchmarks")?;
        writeln!(f, "convert: first image of each series, NVMe disk model")?;
        writeln!(
            f,
            "{:<9}{:>11}{:>10}{:>11}{:>12}{:>11}",
            "threads", "modeled", "speedup", "wall", "MB/s", "identical"
        )?;
        for p in &self.convert {
            writeln!(
                f,
                "{:<9}{:>11}{:>9.2}x{:>11}{:>12.1}{:>11}",
                p.threads,
                secs(p.modeled),
                p.modeled_speedup,
                format!("{:.3}s", p.wall.as_secs_f64()),
                p.throughput_mb_s,
                if p.bit_identical { "yes" } else { "NO" }
            )?;
        }
        writeln!(f)?;
        writeln!(f, "cache: LRU churn at capacity, {CACHE_ENTRY_BYTES} B entries")?;
        writeln!(f, "{:<9}{:>9}{:>11}{:>12}", "entries", "ops", "wall", "ops/s")?;
        for p in &self.cache {
            writeln!(
                f,
                "{:<9}{:>9}{:>11}{:>12}",
                p.entries,
                p.ops,
                format!("{:.3}s", p.wall.as_secs_f64()),
                rate(p.ops_per_sec)
            )?;
        }
        writeln!(
            f,
            "flatness (ops/s at {} / at {}): {:.2}",
            self.cache.last().map_or(0, |p| p.entries),
            self.cache.first().map_or(0, |p| p.entries),
            self.cache_flatness()
        )?;
        writeln!(f)?;
        writeln!(f, "union: {} paths (files + symlink aliases)", self.union.paths)?;
        writeln!(f, "cold lookups: {}", rate(self.union.cold_lookups_per_sec))?;
        writeln!(
            f,
            "warm lookups: {} ({:.1}x cold, {} resolve-cache hits)",
            rate(self.union.warm_lookups_per_sec),
            self.union.warm_over_cold,
            self.union.resolve_cache_hits
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "compress: {} blocks of {} KiB, corpus-derived content",
            self.kernels.bytes.div_ceil(BLOCK_SIZE),
            BLOCK_SIZE / 1024
        )?;
        writeln!(
            f,
            "{:<9}{:>9}{:>11}{:>13}{:>10}{:>8}{:>11}",
            "level", "workers", "real MB/s", "model MB/s", "speedup", "ratio", "identical"
        )?;
        for p in &self.compress {
            writeln!(
                f,
                "{:<9}{:>9}{:>11.1}{:>13.1}{:>9.2}x{:>8.3}{:>11}",
                p.level,
                p.workers,
                p.real_mb_s,
                p.modeled_mb_s,
                p.modeled_speedup,
                p.ratio,
                if p.bit_identical { "yes" } else { "NO" }
            )?;
        }
        writeln!(f)?;
        writeln!(f, "kernels: word-wise throughput over {} MiB", self.kernels.bytes / (1 << 20))?;
        writeln!(f, "crc32 (slice-by-8):   {:>7.2} GB/s", self.kernels.crc32_gb_s)?;
        writeln!(f, "md5 (direct blocks):  {:>7.2} GB/s", self.kernels.md5_gb_s)?;
        writeln!(f, "sha256 (direct blocks):{:>6.2} GB/s", self.kernels.sha256_gb_s)?;
        write!(f, "match_len (u64 scan): {:>7.2} GB/s", self.kernels.match_len_gb_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convert_sweep_hits_the_speedup_target_and_stays_identical() {
        let ctx = ExperimentContext::quick();
        let hp = run(&ctx, true);
        assert_eq!(hp.convert.len(), THREAD_SWEEP.len());
        for p in &hp.convert {
            assert!(p.bit_identical, "threads={} diverged from serial", p.threads);
            assert!(p.modeled > Duration::ZERO);
        }
        let speedup = hp.convert_speedup(8).expect("8-thread row");
        assert!(speedup >= 4.0, "modeled speedup at 8 workers: {speedup:.2}");
        // Speedups grow monotonically with workers.
        for w in hp.convert.windows(2) {
            assert!(w[1].modeled_speedup > w[0].modeled_speedup);
        }
    }

    /// A Hotpath with only the cache/union suites populated (for tests that
    /// don't need the corpus-driven sweeps).
    fn cache_union_only() -> Hotpath {
        Hotpath {
            convert: Vec::new(),
            cache: run_cache(true),
            union: run_union(true),
            compress: Vec::new(),
            kernels: KernelBench {
                bytes: 0,
                crc32_gb_s: 0.0,
                md5_gb_s: 0.0,
                sha256_gb_s: 0.0,
                match_len_gb_s: 0.0,
            },
        }
    }

    #[test]
    fn cache_churn_stays_flat_across_sizes() {
        let hp = cache_union_only();
        assert_eq!(hp.cache.len(), 3);
        for p in &hp.cache {
            assert!(p.ops_per_sec > 0.0);
            assert!(p.ops >= 30_000);
        }
        // 16x more entries must not cost anywhere near 16x per op. A linear
        // eviction scan lands around 1/16 ≈ 0.06; the ordered index stays
        // well above the 0.2 CI floor even on noisy machines.
        assert!(hp.cache_flatness() > 0.2, "flatness {:.3}", hp.cache_flatness());
    }

    #[test]
    fn compress_sweep_is_bit_identical_and_modeled_speedup_scales() {
        let ctx = ExperimentContext::quick();
        let buffer = corpus_buffer(&ctx, true);
        assert_eq!(buffer.len(), 8 * BLOCK_SIZE, "quick buffer is 8 blocks");
        let compress = run_compress(&buffer);
        assert_eq!(compress.len(), 2 * THREAD_SWEEP.len(), "2 levels x 4 worker counts");
        for p in &compress {
            assert!(p.bit_identical, "{}/workers{} diverged from serial", p.level, p.workers);
            assert!(p.real_mb_s > 0.0);
            assert!(p.ratio > 0.0 && p.ratio <= 1.01, "ratio {:.3}", p.ratio);
        }
        // 8 blocks under static chunking: 2 workers -> 2x, 8 workers -> 8x.
        let eight = compress.iter().find(|p| p.level == "default" && p.workers == 8).unwrap();
        assert!(eight.modeled_speedup >= 4.0, "modeled {:.2}", eight.modeled_speedup);
        let two = compress.iter().find(|p| p.level == "default" && p.workers == 2).unwrap();
        assert!((two.modeled_speedup - 2.0).abs() < 1e-9);
    }

    #[test]
    fn kernel_throughputs_are_positive() {
        let ctx = ExperimentContext::quick();
        let buffer = corpus_buffer(&ctx, true);
        let kernels = run_kernels(&buffer);
        assert_eq!(kernels.bytes, buffer.len());
        assert!(kernels.crc32_gb_s > 0.0);
        assert!(kernels.md5_gb_s > 0.0);
        assert!(kernels.sha256_gb_s > 0.0);
        assert!(kernels.match_len_gb_s > 0.0, "match scan measured no matched bytes");
    }

    #[test]
    fn union_warm_lookups_beat_cold() {
        let union = run_union(true);
        assert!(union.paths > 512);
        // Every warm lookup resolves from the cache: passes x paths hits.
        assert_eq!(union.resolve_cache_hits as usize, union.paths * 8);
        assert!(
            union.warm_over_cold > 1.5,
            "warm/cold {:.2}",
            union.warm_over_cold
        );
    }
}
