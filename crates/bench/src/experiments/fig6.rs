//! Fig. 6: average image conversion time per series.

use std::fmt;
use std::time::Duration;

use gear_core::{Converter, ConverterOptions};
use gear_simnet::DiskModel;

use super::{secs, ExperimentContext};

/// Paper observations: ~46 s average conversion time; the `node` series
/// drops 65.7 % (105 s → 36 s) when converting on SSD instead of HDD.
/// Paper: average conversion time in seconds.
pub const PAPER_AVG_SECS: f64 = 46.0;
/// Paper: SSD conversion-time reduction for the node series.
pub const PAPER_NODE_SSD_REDUCTION: f64 = 0.657;

/// Conversion-time summary of one series.
#[derive(Debug, Clone)]
pub struct SeriesConversion {
    /// Series name.
    pub name: String,
    /// Average full-scale unpacked image size (paper-scale bytes).
    pub avg_image_bytes: u64,
    /// Mean estimated conversion time on the HDD model.
    pub avg_hdd: Duration,
    /// Mean estimated conversion time on the SSD model.
    pub avg_ssd: Duration,
    /// Mean files scanned per image (corpus scale).
    pub avg_files: u64,
}

/// The full Fig. 6 result, sorted by ascending average image size (as the
/// paper plots it).
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Per-series conversion summaries.
    pub series: Vec<SeriesConversion>,
}

/// Ratio between realistic per-image file counts and the corpus's reduced
/// counts, used for the time model only.
const COUNT_SCALE: f64 = 22.0;

/// Converts every image in the corpus under both disk models.
pub fn run(ctx: &ExperimentContext) -> Fig6 {
    let scale = ctx.corpus.config.scale_denom;
    let hdd = Converter::with_options(ConverterOptions {
        disk: DiskModel::hdd(),
        byte_scale: scale,
        count_scale: COUNT_SCALE,
        ..Default::default()
    });
    let ssd = Converter::with_options(ConverterOptions {
        disk: DiskModel::ssd(),
        byte_scale: scale,
        count_scale: COUNT_SCALE,
        ..Default::default()
    });

    let mut rows = Vec::new();
    for series in &ctx.corpus.series {
        let mut sum_hdd = Duration::ZERO;
        let mut sum_ssd = Duration::ZERO;
        let mut sum_bytes = 0u64;
        let mut sum_files = 0u64;
        for image in &series.images {
            let conv = hdd.convert(image).expect("corpus images convert");
            sum_hdd += conv.report.duration;
            sum_files += conv.report.scanned_files;
            sum_bytes += conv.report.scanned_bytes * scale;
            // SSD timing: reuse the same report through the SSD estimator by
            // reconverting (cheap relative to clarity).
            sum_ssd += ssd.convert(image).expect("corpus images convert").report.duration;
        }
        let n = series.images.len() as u32;
        rows.push(SeriesConversion {
            name: series.spec.name.to_owned(),
            avg_image_bytes: sum_bytes / n as u64,
            avg_hdd: sum_hdd / n,
            avg_ssd: sum_ssd / n,
            avg_files: sum_files / n as u64,
        });
    }
    rows.sort_by_key(|r| r.avg_image_bytes);
    Fig6 { series: rows }
}

impl Fig6 {
    /// Mean conversion time across all series (HDD).
    pub fn average_hdd(&self) -> Duration {
        if self.series.is_empty() {
            return Duration::ZERO;
        }
        self.series.iter().map(|s| s.avg_hdd).sum::<Duration>() / self.series.len() as u32
    }

    /// SSD time reduction for a series, as a fraction.
    pub fn ssd_reduction(&self, name: &str) -> Option<f64> {
        let row = self.series.iter().find(|s| s.name == name)?;
        Some(1.0 - row.avg_ssd.as_secs_f64() / row.avg_hdd.as_secs_f64())
    }

    /// Pearson-style monotonicity check: conversion time should grow with
    /// image size. Returns the fraction of adjacent (size-sorted) pairs where
    /// time is non-decreasing.
    pub fn monotonicity(&self) -> f64 {
        if self.series.len() < 2 {
            return 1.0;
        }
        let pairs = self.series.windows(2).count();
        let ok = self
            .series
            .windows(2)
            .filter(|w| w[1].avg_hdd >= w[0].avg_hdd)
            .count();
        ok as f64 / pairs as f64
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 6 — average conversion time per series (ascending size)")?;
        writeln!(f, "{:<20}{:>12}{:>10}{:>10}", "series", "avg size", "HDD", "SSD")?;
        for row in &self.series {
            writeln!(
                f,
                "{:<20}{:>12}{:>10}{:>10}",
                row.name,
                super::human_bytes(row.avg_image_bytes),
                secs(row.avg_hdd),
                secs(row.avg_ssd)
            )?;
        }
        writeln!(
            f,
            "average (HDD): {}   (paper: ~{PAPER_AVG_SECS:.0}s)",
            secs(self.average_hdd())
        )?;
        if let Some(reduction) = self.ssd_reduction("node") {
            writeln!(
                f,
                "node on SSD: {:.1}% faster   (paper: {:.1}%)",
                reduction * 100.0,
                PAPER_NODE_SSD_REDUCTION * 100.0
            )?;
        }
        write!(f, "time-vs-size monotonicity: {:.0}%", self.monotonicity() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_times_scale_with_size() {
        let ctx = ExperimentContext::quick();
        let fig = run(&ctx);
        assert!(!fig.series.is_empty());
        assert!(fig.average_hdd() > Duration::ZERO);
        // SSD is always faster than HDD.
        for s in &fig.series {
            assert!(s.avg_ssd < s.avg_hdd, "{}", s.name);
        }
        // Time should broadly track size.
        assert!(fig.monotonicity() >= 0.6, "monotonicity {}", fig.monotonicity());
    }
}
