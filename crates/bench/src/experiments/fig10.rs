//! Fig. 10: deploying 20 Tomcat versions one by one under Docker, Slacker,
//! and Gear, at 1000 and 100 Mbps.

use std::fmt;
use std::time::Duration;

use gear_client::{DockerClient, GearClient, SlackerClient};
use gear_simnet::Link;

use super::fig8::PublishedCorpus;
use super::{secs, ExperimentContext};

/// Paper averages at 1000 Mbps: Docker 6.08 s, Slacker 3.03 s, Gear 3.04 s.
pub const PAPER_1000: (f64, f64, f64) = (6.08, 3.03, 3.04);
/// Paper degradation when dropping to 100 Mbps: Docker ×2.7, Slacker ×2.6,
/// Gear only ×1.2.
/// See above.
pub const PAPER_DEGRADATION: (f64, f64, f64) = (2.7, 2.6, 1.2);

/// One bandwidth's sequential-deployment timeline.
#[derive(Debug, Clone)]
pub struct VersionTimeline {
    /// Bandwidth label.
    pub label: &'static str,
    /// Per-version total deployment times, in deployment order:
    /// `(docker, slacker, gear)`.
    pub times: Vec<(Duration, Duration, Duration)>,
}

impl VersionTimeline {
    /// Mean deployment times `(docker, slacker, gear)`.
    pub fn averages(&self) -> (Duration, Duration, Duration) {
        let n = self.times.len().max(1) as u32;
        let sum = self.times.iter().fold(
            (Duration::ZERO, Duration::ZERO, Duration::ZERO),
            |acc, (d, s, g)| (acc.0 + *d, acc.1 + *s, acc.2 + *g),
        );
        (sum.0 / n, sum.1 / n, sum.2 / n)
    }
}

/// The Fig. 10 result (two bandwidths).
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Timelines at 1000 Mbps and 100 Mbps.
    pub runs: Vec<VersionTimeline>,
    /// Which series was deployed.
    pub series: String,
}

/// Deploys every version of `series_name` sequentially with persistent
/// clients under all three systems.
pub fn run(ctx: &ExperimentContext, published: &PublishedCorpus, series_name: &str) -> Fig10 {
    let runs = [("1000Mbps", Link::mbps(1000.0)), ("100Mbps", Link::mbps(100.0))]
        .into_iter()
        .map(|(label, link)| {
            let config = ctx.client_config.with_link(link);
            let mut docker = DockerClient::new(config);
            let mut slacker = SlackerClient::new(config);
            let mut gear = GearClient::new(config);
            let series = ctx
                .corpus
                .series_by_name(series_name)
                .expect("series present in corpus");
            let mut times = Vec::new();
            for (image, trace) in series.images.iter().zip(&series.traces) {
                let (_, d) =
                    docker.deploy(image.reference(), trace, &published.docker).expect("docker");
                let (sid, s) =
                    slacker.deploy(image.reference(), trace, &published.docker).expect("slacker");
                slacker.destroy(sid);
                let (gid, g) = gear
                    .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
                    .expect("gear");
                gear.destroy(gid);
                times.push((d.total(), s.total(), g.total()));
            }
            VersionTimeline { label, times }
        })
        .collect();
    Fig10 { runs, series: series_name.to_owned() }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 10 — sequential deployment of {} versions", self.series)?;
        for run in &self.runs {
            writeln!(f, "[{}]", run.label)?;
            writeln!(f, "{:<6}{:>10}{:>10}{:>10}", "ver", "docker", "slacker", "gear")?;
            for (i, (d, s, g)) in run.times.iter().enumerate() {
                writeln!(f, "{:<6}{:>10}{:>10}{:>10}", i + 1, secs(*d), secs(*s), secs(*g))?;
            }
            let (ad, as_, ag) = run.averages();
            writeln!(f, "avg   {:>10}{:>10}{:>10}", secs(ad), secs(as_), secs(ag))?;
            if run.label == "1000Mbps" {
                writeln!(
                    f,
                    "paper avg: docker {:.2}s, slacker {:.2}s, gear {:.2}s",
                    PAPER_1000.0, PAPER_1000.1, PAPER_1000.2
                )?;
            }
        }
        if self.runs.len() == 2 {
            let (d0, s0, g0) = self.runs[0].averages();
            let (d1, s1, g1) = self.runs[1].averages();
            writeln!(
                f,
                "degradation 1000→100 Mbps: docker {:.1}x slacker {:.1}x gear {:.1}x (paper {:.1}/{:.1}/{:.1})",
                d1.as_secs_f64() / d0.as_secs_f64(),
                s1.as_secs_f64() / s0.as_secs_f64(),
                g1.as_secs_f64() / g0.as_secs_f64(),
                PAPER_DEGRADATION.0,
                PAPER_DEGRADATION.1,
                PAPER_DEGRADATION.2
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig8::publish_corpus;

    #[test]
    fn gear_improves_with_version_count_and_degrades_least() {
        let ctx = ExperimentContext::quick();
        let published = publish_corpus(&ctx);
        // quick corpus has tomcat? quick() uses tomcat — yes.
        let fig = run(&ctx, &published, "tomcat");
        assert_eq!(fig.runs.len(), 2);

        let fast = &fig.runs[0];
        // Gear's later deployments are cheaper than its first (file sharing).
        let first_gear = fast.times.first().unwrap().2;
        let last_gear = fast.times.last().unwrap().2;
        assert!(last_gear < first_gear, "{last_gear:?} !< {first_gear:?}");
        // Slacker shows no such improvement (no sharing).
        let first_slacker = fast.times.first().unwrap().1;
        let last_slacker = fast.times.last().unwrap().1;
        let slacker_change =
            (last_slacker.as_secs_f64() - first_slacker.as_secs_f64()).abs()
                / first_slacker.as_secs_f64();
        assert!(slacker_change < 0.35, "slacker drift {slacker_change}");

        // Gear degrades least when bandwidth drops.
        let (d0, s0, g0) = fig.runs[0].averages();
        let (d1, s1, g1) = fig.runs[1].averages();
        let dd = d1.as_secs_f64() / d0.as_secs_f64();
        let ds = s1.as_secs_f64() / s0.as_secs_f64();
        let dg = g1.as_secs_f64() / g0.as_secs_f64();
        assert!(dg < dd, "gear {dg} !< docker {dd}");
        assert!(dg < ds, "gear {dg} !< slacker {ds}");
    }
}
