//! Fig. 11: service performance after deployment.
//!
//! (a) long-running workloads: memtier-style SET/GET against Memcached and
//! Redis, ab-style HTTP load against Nginx and Httpd — Gear's throughput
//! normalized to Docker's should be ≈1.0 once the working set is local.
//!
//! (b) short-running Httpd: launch → one request → destroy, repeated 100
//! times; Gear tears down faster because only the touched files' inodes were
//! instantiated.

use std::fmt;
use std::time::Duration;

use gear_client::{DockerClient, GearClient};

use super::fig8::PublishedCorpus;
use super::ExperimentContext;

/// The services the paper benchmarks in Fig. 11a.
pub const SERVICES: [&str; 4] = ["redis", "memcached", "nginx", "httpd"];
/// Repetitions of the short-running loop (paper: 100).
/// Repetition count for the launch/request/destroy loop.
pub const SHORT_RUNS: u32 = 100;

/// Long-running result for one service.
#[derive(Debug, Clone)]
pub struct ServiceThroughput {
    /// Service (series) name.
    pub name: String,
    /// Operations per simulated second under Docker.
    pub docker_ops_per_sec: f64,
    /// Operations per simulated second under Gear.
    pub gear_ops_per_sec: f64,
}

impl ServiceThroughput {
    /// Gear throughput normalized to Docker (paper plots this; ≈1.0).
    pub fn normalized(&self) -> f64 {
        self.gear_ops_per_sec / self.docker_ops_per_sec
    }
}

/// Short-running phase averages.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortRunning {
    /// Mean launch time.
    pub launch: Duration,
    /// Mean request time.
    pub request: Duration,
    /// Mean destroy time.
    pub destroy: Duration,
}

/// The Fig. 11 result.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// 11a: per-service throughputs.
    pub services: Vec<ServiceThroughput>,
    /// 11b: Docker's launch/request/destroy averages.
    pub docker_short: ShortRunning,
    /// 11b: Gear's launch/request/destroy averages.
    pub gear_short: ShortRunning,
}

/// Ops per long-running measurement.
const LONG_OPS: u64 = 2_000;
/// Per-op compute (SET/GET or HTTP handling).
const OP_COMPUTE: Duration = Duration::from_micros(60);

/// Runs both halves of Fig. 11. Services absent from the corpus are skipped.
pub fn run(ctx: &ExperimentContext, published: &PublishedCorpus) -> Fig11 {
    let mut services = Vec::new();
    for name in SERVICES {
        let Some(series) = ctx.corpus.series_by_name(name) else { continue };
        let image = series.images.last().expect("series has versions");
        let trace = series.traces.last().expect("series has traces");
        // The service's per-op working set: a few hot files.
        let op_reads: Vec<String> = trace.reads.iter().take(3).cloned().collect();

        let mut docker = DockerClient::new(ctx.client_config);
        let (did, _) = docker.deploy(image.reference(), trace, &published.docker).expect("docker");
        let docker_time = docker.serve(did, LONG_OPS, OP_COMPUTE, &op_reads).expect("serve");

        let mut gear = GearClient::new(ctx.client_config);
        let (gid, _) = gear
            .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
            .expect("gear");
        let gear_time =
            gear.serve(gid, LONG_OPS, OP_COMPUTE, &op_reads, &published.gear_files).expect("serve");

        services.push(ServiceThroughput {
            name: name.to_owned(),
            docker_ops_per_sec: LONG_OPS as f64 / docker_time.as_secs_f64(),
            gear_ops_per_sec: LONG_OPS as f64 / gear_time.as_secs_f64(),
        });
    }

    // 11b: short-running httpd (fall back to the first available series).
    let series = ctx
        .corpus
        .series_by_name("httpd")
        .or_else(|| ctx.corpus.series.first())
        .expect("non-empty corpus");
    let image = series.images.last().expect("versions");
    let trace = series.traces.last().expect("traces");
    let op_reads: Vec<String> = trace.reads.iter().take(2).cloned().collect();

    let mut docker = DockerClient::new(ctx.client_config);
    let mut gear = GearClient::new(ctx.client_config);
    // Warm both clients (image local, cache hot) — the loop measures
    // launch/request/destroy, not pulling.
    let (wid, _) = docker.deploy(image.reference(), trace, &published.docker).expect("docker");
    docker.destroy(wid);
    let (wid, _) = gear
        .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
        .expect("gear");
    gear.destroy(wid);

    let mut docker_short = ShortRunning::default();
    let mut gear_short = ShortRunning::default();
    for _ in 0..SHORT_RUNS {
        let (id, report) = docker.deploy(image.reference(), trace, &published.docker).expect("docker");
        docker_short.launch += report.run;
        docker_short.request += docker.serve(id, 1, OP_COMPUTE, &op_reads).expect("serve");
        docker_short.destroy += docker.destroy(id);

        let (id, report) = gear
            .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
            .expect("gear");
        gear_short.launch += report.run;
        gear_short.request +=
            gear.serve(id, 1, OP_COMPUTE, &op_reads, &published.gear_files).expect("serve");
        gear_short.destroy += gear.destroy(id);
    }
    for short in [&mut docker_short, &mut gear_short] {
        short.launch /= SHORT_RUNS;
        short.request /= SHORT_RUNS;
        short.destroy /= SHORT_RUNS;
    }

    Fig11 { services, docker_short, gear_short }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 11a — long-running throughput (normalized to Docker)")?;
        writeln!(f, "{:<14}{:>16}{:>16}{:>12}", "service", "docker ops/s", "gear ops/s", "normalized")?;
        for s in &self.services {
            writeln!(
                f,
                "{:<14}{:>16.0}{:>16.0}{:>12.3}",
                s.name, s.docker_ops_per_sec, s.gear_ops_per_sec, s.normalized()
            )?;
        }
        writeln!(f, "(paper: all ≈1.0)")?;
        writeln!(f)?;
        writeln!(f, "Fig. 11b — short-running httpd, {SHORT_RUNS} iterations")?;
        writeln!(f, "{:<10}{:>12}{:>12}{:>12}", "system", "launch", "request", "destroy")?;
        for (name, s) in [("docker", &self.docker_short), ("gear", &self.gear_short)] {
            writeln!(
                f,
                "{:<10}{:>11.1}ms{:>11.3}ms{:>11.3}ms",
                name,
                s.launch.as_secs_f64() * 1e3,
                s.request.as_secs_f64() * 1e3,
                s.destroy.as_secs_f64() * 1e3
            )?;
        }
        write!(f, "(paper: Gear slightly faster destroy — fewer inode caches to drop)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig8::publish_corpus;

    #[test]
    fn throughput_parity_and_faster_destroy() {
        let ctx = ExperimentContext::quick();
        let published = publish_corpus(&ctx);
        let fig = run(&ctx, &published);
        // quick corpus carries redis; throughput must be ≈ equal.
        assert!(!fig.services.is_empty());
        for s in &fig.services {
            let norm = s.normalized();
            assert!((0.9..1.1).contains(&norm), "{}: normalized {norm}", s.name);
        }
        // Gear destroys at least as fast as Docker.
        assert!(fig.gear_short.destroy <= fig.docker_short.destroy);
        // Launches are warm: well under a deployment with pulling.
        assert!(fig.gear_short.launch < Duration::from_secs(30));
    }
}
