//! Fig. 9: deployment time (pull + run) under different network bandwidths.

use std::fmt;
use std::time::Duration;

use gear_client::{DockerClient, GearClient};
use gear_corpus::Category;
use gear_simnet::Link;

use super::fig8::PublishedCorpus;
use super::{secs, ExperimentContext};

/// Paper speedups of Gear over Docker, `(bandwidth, warm-cache, no-cache)`.
pub const PAPER_SPEEDUPS: [(&str, f64, f64); 4] = [
    ("904Mbps", 1.64, 1.40),
    ("100Mbps", 2.61, 1.92),
    ("20Mbps", 3.45, 2.23),
    ("5Mbps", 5.01, 2.95),
];

/// Average pull/run split of one system at one bandwidth for one category.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseAverage {
    /// Mean pull-phase time.
    pub pull: Duration,
    /// Mean run-phase time.
    pub run: Duration,
    /// Deployments averaged.
    pub count: u32,
}

impl PhaseAverage {
    /// Mean total deployment time.
    pub fn total(&self) -> Duration {
        self.pull + self.run
    }

    /// Folds one deployment's phase split into the running mean.
    pub fn add(&mut self, pull: Duration, run: Duration) {
        // Running mean over count.
        let n = self.count as f64;
        self.pull = Duration::from_secs_f64((self.pull.as_secs_f64() * n + pull.as_secs_f64()) / (n + 1.0));
        self.run = Duration::from_secs_f64((self.run.as_secs_f64() * n + run.as_secs_f64()) / (n + 1.0));
        self.count += 1;
    }
}

/// Results for one bandwidth preset.
#[derive(Debug, Clone)]
pub struct BandwidthRun {
    /// Preset label, e.g. `"904Mbps"`.
    pub label: &'static str,
    /// Per-category `(docker, gear-no-cache, gear-cache)` averages.
    pub categories: Vec<(Category, PhaseAverage, PhaseAverage, PhaseAverage)>,
}

impl BandwidthRun {
    /// Over-all-deployments averages `(docker, cold, warm)`.
    pub fn overall(&self) -> (Duration, Duration, Duration) {
        let mut sums = (0.0f64, 0.0f64, 0.0f64);
        let mut n = 0u32;
        for (_, d, c, w) in &self.categories {
            sums.0 += d.total().as_secs_f64() * d.count as f64;
            sums.1 += c.total().as_secs_f64() * c.count as f64;
            sums.2 += w.total().as_secs_f64() * w.count as f64;
            n += d.count;
        }
        let n = n.max(1) as f64;
        (
            Duration::from_secs_f64(sums.0 / n),
            Duration::from_secs_f64(sums.1 / n),
            Duration::from_secs_f64(sums.2 / n),
        )
    }

    /// `(warm_speedup, cold_speedup)` of Gear over Docker.
    pub fn speedups(&self) -> (f64, f64) {
        let (d, c, w) = self.overall();
        (d.as_secs_f64() / w.as_secs_f64(), d.as_secs_f64() / c.as_secs_f64())
    }
}

/// The full Fig. 9 result (one entry per bandwidth preset).
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Runs at 904/100/20/5 Mbps.
    pub runs: Vec<BandwidthRun>,
}

/// Deploys every image under Docker / Gear-cold / Gear-warm at each preset.
/// The four bandwidth sweeps are independent and run on separate threads.
pub fn run(ctx: &ExperimentContext, published: &PublishedCorpus) -> Fig9 {
    let runs = std::thread::scope(|scope| {
        // The intermediate Vec is the spawn barrier: collecting the
        // handles starts every worker before the first join. Inlining
        // (as `needless_collect` would suggest) serializes the sweep.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = Link::figure9_presets()
            .into_iter()
            .map(|(label, link)| scope.spawn(move || run_at(ctx, published, label, link)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("fig9 worker")).collect()
    });
    Fig9 { runs }
}

/// Runs the deployment sweep at a single link setting.
pub fn run_at(
    ctx: &ExperimentContext,
    published: &PublishedCorpus,
    label: &'static str,
    link: Link,
) -> BandwidthRun {
    let config = ctx.client_config.with_link(link);
    let mut categories: std::collections::HashMap<
        Category,
        (PhaseAverage, PhaseAverage, PhaseAverage),
    > = std::collections::HashMap::new();

    for series in &ctx.corpus.series {
        let entry = categories.entry(series.spec.category).or_default();
        let mut warm = GearClient::new(config);
        let mut cold = GearClient::new(config);
        for (image, trace) in series.images.iter().zip(&series.traces) {
            let mut docker = DockerClient::new(config);
            let (_, d) =
                docker.deploy(image.reference(), trace, &published.docker).expect("docker");
            entry.0.add(d.pull, d.run);

            cold.clear_cache();
            let (cid, c) = cold
                .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
                .expect("gear cold");
            cold.destroy(cid);
            entry.1.add(c.pull, c.run);

            let (wid, w) = warm
                .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
                .expect("gear warm");
            warm.destroy(wid);
            entry.2.add(w.pull, w.run);
        }
    }

    let categories = Category::ALL
        .iter()
        .filter_map(|c| categories.remove(c).map(|(d, cold, warm)| (*c, d, cold, warm)))
        .collect();
    BandwidthRun { label, categories }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9 — deployment time (pull+run) vs bandwidth")?;
        for run in &self.runs {
            let (d, c, w) = run.overall();
            let (warm_speedup, cold_speedup) = run.speedups();
            let paper = PAPER_SPEEDUPS.iter().find(|(l, _, _)| *l == run.label);
            writeln!(f, "[{}]", run.label)?;
            writeln!(
                f,
                "{:<22}{:>16}{:>16}{:>16}",
                "category", "docker", "gear no-cache", "gear cache"
            )?;
            for (cat, dd, cc, ww) in &run.categories {
                writeln!(
                    f,
                    "{:<22}{:>7}+{:>7}{:>8}+{:>7}{:>8}+{:>7}",
                    cat.name(),
                    secs(dd.pull),
                    secs(dd.run),
                    secs(cc.pull),
                    secs(cc.run),
                    secs(ww.pull),
                    secs(ww.run),
                )?;
            }
            writeln!(
                f,
                "avg docker {} | gear no-cache {} ({:.2}x) | gear cache {} ({:.2}x)",
                secs(d),
                secs(c),
                cold_speedup,
                secs(w),
                warm_speedup
            )?;
            if let Some((_, p_warm, p_cold)) = paper {
                writeln!(f, "paper speedups: cache {p_warm:.2}x, no-cache {p_cold:.2}x")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig8::publish_corpus;

    #[test]
    fn gear_wins_and_gains_grow_at_low_bandwidth() {
        let ctx = ExperimentContext::quick();
        let published = publish_corpus(&ctx);
        let fast = run_at(&ctx, &published, "904Mbps", Link::paper_testbed());
        let slow = run_at(&ctx, &published, "5Mbps", Link::mbps(5.0));

        let (fast_warm, fast_cold) = fast.speedups();
        let (slow_warm, slow_cold) = slow.speedups();
        assert!(fast_warm > 1.0, "warm speedup at 904Mbps: {fast_warm}");
        assert!(fast_cold > 1.0, "cold speedup at 904Mbps: {fast_cold}");
        assert!(slow_warm > fast_warm, "speedup must grow as bandwidth falls");
        assert!(slow_cold > fast_cold);
        assert!(slow_warm > slow_cold, "cache must help");
    }

    #[test]
    fn gear_pull_shorter_run_longer() {
        let ctx = ExperimentContext::quick();
        let published = publish_corpus(&ctx);
        let run = run_at(&ctx, &published, "904Mbps", Link::paper_testbed());
        for (cat, docker, cold, _) in &run.categories {
            assert!(
                cold.pull < docker.pull,
                "{}: gear pull {:?} !< docker pull {:?}",
                cat.name(),
                cold.pull,
                docker.pull
            );
            assert!(
                cold.run > docker.run,
                "{}: gear run {:?} !> docker run {:?} (on-demand fetches)",
                cat.name(),
                cold.run,
                docker.run
            );
        }
    }
}
