//! `repro tiering`: deployment time under a two-tier shared cache.
//!
//! The sweep crosses four L2 disk models (ram / nvme / ssd / hdd) with four
//! L1 memory budgets (⅛, ¼, ½ of the working set, and unbounded). Each
//! point deploys the whole corpus through one persistent Gear client whose
//! shared cache is a [`gear_store::TieredStore`]; an untiered client runs
//! the same schedule as the zero-cost reference. Versions are interleaved
//! round-robin across series (the access pattern of a node hosting many
//! services); the first round counts as *cold*, later rounds as *warm* —
//! warm deployments are where tier placement shows up, because that is
//! when the cache serves.

use std::fmt;
use std::time::Duration;

use gear_client::{GearClient, TierConfig};
use gear_simnet::DiskModel;

use super::fig8::PublishedCorpus;
use super::{human_bytes, secs, ExperimentContext};

/// The disk models priced as the L2 tier, fastest first.
pub fn disk_models() -> [(&'static str, DiskModel); 4] {
    [
        ("ram", DiskModel::ram()),
        ("nvme", DiskModel::nvme()),
        ("ssd", DiskModel::ssd()),
        ("hdd", DiskModel::hdd()),
    ]
}

/// L1 budgets as `(label, working-set divisor)`; `None` = unbounded.
pub const L1_BUDGETS: [(&str, Option<u64>); 4] =
    [("eighth", Some(8)), ("quarter", Some(4)), ("half", Some(2)), ("unbounded", None)];

/// One `(disk, L1 budget)` point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct TieringPoint {
    /// Disk-model label (`ram` / `nvme` / `ssd` / `hdd`).
    pub disk: &'static str,
    /// L1-budget label (`eighth` / `quarter` / `half` / `unbounded`).
    pub l1: &'static str,
    /// Mean first-version deployment time.
    pub cold: Duration,
    /// Mean repeat-version deployment time.
    pub warm: Duration,
    /// Bytes resident in L1 after the full schedule.
    pub l1_resident: u64,
    /// Bytes resident in L2 after the full schedule.
    pub l2_resident: u64,
}

impl TieringPoint {
    /// Fraction of the cached bytes that ended up L1-resident.
    pub fn l1_fill(&self) -> f64 {
        self.l1_resident as f64 / self.l2_resident.max(1) as f64
    }
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct Tiering {
    /// Unique Gear-file bytes in the published pool (corpus scale) — the
    /// working set the L1 budgets are fractions of.
    pub working_set: u64,
    /// Untiered reference: mean first-version deployment time.
    pub flat_cold: Duration,
    /// Untiered reference: mean repeat-version deployment time.
    pub flat_warm: Duration,
    /// One point per disk × L1 budget, disks in [`disk_models`] order.
    pub points: Vec<TieringPoint>,
}

/// Mean cold/warm deployment times for one client over the whole corpus.
///
/// Versions are deployed round-robin *across* series — version 0 of every
/// series, then version 1, and so on — the access pattern of a node hosting
/// many services at once. Consecutive deployments of one series are
/// separated by every other series, so a bounded L1 must hold the aggregate
/// hot set or pay L2 reads; a strictly per-series schedule would let even a
/// tiny LRU L1 keep each series resident and hide the tiers entirely.
fn run_schedule(
    ctx: &ExperimentContext,
    published: &PublishedCorpus,
    client: &mut GearClient,
) -> (Duration, Duration) {
    let (mut cold, mut warm) = (Duration::ZERO, Duration::ZERO);
    let (mut cold_n, mut warm_n) = (0u32, 0u32);
    let rounds = ctx.corpus.series.iter().map(|s| s.images.len()).max().unwrap_or(0);
    for version in 0..rounds {
        for series in &ctx.corpus.series {
            let (Some(image), Some(trace)) =
                (series.images.get(version), series.traces.get(version))
            else {
                continue;
            };
            let (id, report) = client
                .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
                .expect("gear deploy");
            client.destroy(id);
            if version == 0 {
                cold += report.total();
                cold_n += 1;
            } else {
                warm += report.total();
                warm_n += 1;
            }
        }
    }
    (cold / cold_n.max(1), warm / warm_n.max(1))
}

/// Runs the sweep. The four disk models are independent and run on
/// separate threads; results are joined in model order, so output is
/// deterministic.
pub fn run(ctx: &ExperimentContext, published: &PublishedCorpus) -> Tiering {
    let working_set = published.gear_files.stats().logical_bytes;

    let mut flat = GearClient::new(ctx.client_config);
    let (flat_cold, flat_warm) = run_schedule(ctx, published, &mut flat);

    let points = std::thread::scope(|scope| {
        // The intermediate Vec is the spawn barrier: collecting the
        // handles starts every worker before the first join. Inlining
        // (as `needless_collect` would suggest) serializes the sweep.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = disk_models()
            .into_iter()
            .map(|(disk_label, disk)| {
                scope.spawn(move || {
                    L1_BUDGETS
                        .into_iter()
                        .map(|(l1_label, divisor)| {
                            let tier = TierConfig {
                                l1_capacity: divisor.map(|d| working_set / d),
                                disk,
                                promote_on_hit: true,
                            };
                            let mut client =
                                GearClient::new(ctx.client_config.with_tier(tier));
                            let (cold, warm) = run_schedule(ctx, published, &mut client);
                            let (l1_resident, l2_resident) = client.cache_tier_bytes();
                            TieringPoint {
                                disk: disk_label,
                                l1: l1_label,
                                cold,
                                warm,
                                l1_resident,
                                l2_resident,
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("tiering worker")).collect()
    });

    Tiering { working_set, flat_cold, flat_warm, points }
}

impl Tiering {
    /// The point for `(disk, l1)`, if the sweep produced it.
    pub fn point(&self, disk: &str, l1: &str) -> Option<&TieringPoint> {
        self.points.iter().find(|p| p.disk == disk && p.l1 == l1)
    }
}

impl fmt::Display for Tiering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tiering — deployment time vs L1 budget × L2 disk (working set {})",
            human_bytes(self.working_set)
        )?;
        writeln!(f, "{:<8}{:<12}{:>10}{:>10}{:>10}", "disk", "l1", "cold", "warm", "l1 fill")?;
        writeln!(
            f,
            "{:<8}{:<12}{:>10}{:>10}{:>10}",
            "flat",
            "(untiered)",
            secs(self.flat_cold),
            secs(self.flat_warm),
            "-"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:<8}{:<12}{:>10}{:>10}{:>9.0}%",
                p.disk,
                p.l1,
                secs(p.cold),
                secs(p.warm),
                p.l1_fill() * 100.0
            )?;
        }
        write!(
            f,
            "untiered warm is the floor; the gap to it is staged L2 traffic \
             (write-through + misses below the L1 budget)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tiering_metrics;
    use crate::experiments::fig8::publish_corpus;

    #[test]
    fn slower_disks_and_smaller_l1_cost_more() {
        let ctx = ExperimentContext::quick();
        let published = publish_corpus(&ctx);
        let sweep = run(&ctx, &published);
        assert_eq!(sweep.points.len(), 16);
        assert!(sweep.flat_warm < sweep.flat_cold, "cache must help even untiered");

        // Tiering never beats the untiered cache — it only adds priced I/O.
        for p in &sweep.points {
            assert!(p.warm >= sweep.flat_warm, "{}/{}: {:?}", p.disk, p.l1, p.warm);
        }

        // At the tightest L1, a slower L2 disk means slower warm deploys.
        let ram = sweep.point("ram", "eighth").unwrap().warm;
        let hdd = sweep.point("hdd", "eighth").unwrap().warm;
        assert!(hdd > ram, "hdd {hdd:?} !> ram {ram:?}");

        // On the slow disk, growing the L1 budget recovers warm time.
        let unbounded = sweep.point("hdd", "unbounded").unwrap().warm;
        assert!(hdd > unbounded, "eighth {hdd:?} !> unbounded {unbounded:?}");

        // An unbounded L1 holds everything L2 holds.
        let p = sweep.point("ssd", "unbounded").unwrap();
        assert_eq!(p.l1_resident, p.l2_resident);
        // A bounded L1 holds strictly less.
        let p = sweep.point("ssd", "eighth").unwrap();
        assert!(p.l1_resident < p.l2_resident);
    }

    #[test]
    fn fixed_seed_output_is_byte_identical() {
        let ctx = ExperimentContext::quick();
        let published = publish_corpus(&ctx);
        let first = run(&ctx, &published);
        let second = run(&ctx, &published);
        assert_eq!(first.to_string(), second.to_string(), "rendered table must not drift");
        assert_eq!(
            serde_json::to_string(&tiering_metrics(&first)).unwrap(),
            serde_json::to_string(&tiering_metrics(&second)).unwrap(),
            "metrics must be byte-identical for a fixed seed"
        );
    }
}
