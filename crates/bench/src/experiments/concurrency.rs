//! `repro concurrency`: deployment time vs. fetch-stream count.
//!
//! Sweeps the concurrent fetch engine (`streams` × the Fig. 9 bandwidth
//! presets, cold vs warm cache). The `streams = 1` row is computed by the
//! Fig. 9 code itself, so it reproduces the paper baseline bit-for-bit;
//! the other rows show what pipelining per-request fixed costs buys on
//! each link.

use std::fmt;
use std::time::Duration;

use gear_client::GearClient;
use gear_simnet::Link;

use super::fig8::PublishedCorpus;
use super::fig9::{self, PhaseAverage};
use super::{secs, ExperimentContext};

/// Stream counts swept per bandwidth preset (1 = the Fig. 9 baseline).
pub const STREAM_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Mean Gear deployment times at one `(bandwidth, streams)` point.
#[derive(Debug, Clone, Copy)]
pub struct StreamPoint {
    /// Concurrent fetch streams.
    pub streams: usize,
    /// Mean cold-cache deployment time.
    pub cold: Duration,
    /// Mean warm-cache deployment time.
    pub warm: Duration,
}

/// The sweep at one bandwidth preset.
#[derive(Debug, Clone)]
pub struct BandwidthSweep {
    /// Preset label, e.g. `"20Mbps"`.
    pub label: &'static str,
    /// One point per entry of [`STREAM_SWEEP`], in order.
    pub points: Vec<StreamPoint>,
}

impl BandwidthSweep {
    /// The `streams = 1` baseline point.
    pub fn baseline(&self) -> StreamPoint {
        self.points[0]
    }
}

/// The full concurrency sweep (one entry per bandwidth preset).
#[derive(Debug, Clone)]
pub struct Concurrency {
    /// Sweeps at 904/100/20/5 Mbps.
    pub sweeps: Vec<BandwidthSweep>,
}

/// Runs the sweep; the four bandwidth presets run on separate threads.
pub fn run(ctx: &ExperimentContext, published: &PublishedCorpus) -> Concurrency {
    let sweeps = std::thread::scope(|scope| {
        // The intermediate Vec is the spawn barrier: collecting the
        // handles starts every worker before the first join. Inlining
        // (as `needless_collect` would suggest) serializes the sweep.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = Link::figure9_presets()
            .into_iter()
            .map(|(label, link)| scope.spawn(move || run_at(ctx, published, label, link)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("concurrency worker")).collect()
    });
    Concurrency { sweeps }
}

/// Runs the stream sweep at a single link setting.
pub fn run_at(
    ctx: &ExperimentContext,
    published: &PublishedCorpus,
    label: &'static str,
    link: Link,
) -> BandwidthSweep {
    let mut points = Vec::with_capacity(STREAM_SWEEP.len());
    for streams in STREAM_SWEEP {
        let (cold, warm) = if streams == 1 {
            // The serial baseline IS Fig. 9 — same code, same numbers.
            let (_, cold, warm) = fig9::run_at(ctx, published, label, link).overall();
            (cold, warm)
        } else {
            gear_means(ctx, published, link, streams)
        };
        points.push(StreamPoint { streams, cold, warm });
    }
    BandwidthSweep { label, points }
}

/// Mean Gear cold/warm deployment times over the whole corpus with the
/// fetch engine at `streams`, averaged exactly like Fig. 9.
fn gear_means(
    ctx: &ExperimentContext,
    published: &PublishedCorpus,
    link: Link,
    streams: usize,
) -> (Duration, Duration) {
    let config = ctx.client_config.with_link(link).with_streams(streams);
    let mut cold_avg = PhaseAverage::default();
    let mut warm_avg = PhaseAverage::default();
    for series in &ctx.corpus.series {
        let mut warm = GearClient::new(config);
        let mut cold = GearClient::new(config);
        for (image, trace) in series.images.iter().zip(&series.traces) {
            cold.clear_cache();
            let (cid, c) = cold
                .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
                .expect("gear cold");
            cold.destroy(cid);
            cold_avg.add(c.pull, c.run);

            let (wid, w) = warm
                .deploy(image.reference(), trace, &published.gear_index, &published.gear_files)
                .expect("gear warm");
            warm.destroy(wid);
            warm_avg.add(w.pull, w.run);
        }
    }
    (cold_avg.total(), warm_avg.total())
}

impl fmt::Display for Concurrency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Concurrency — Gear deployment time vs fetch streams")?;
        writeln!(f, "(streams = 1 is the Fig. 9 serial baseline)")?;
        for sweep in &self.sweeps {
            let base = sweep.baseline();
            writeln!(f, "[{}]", sweep.label)?;
            writeln!(
                f,
                "{:<10}{:>14}{:>14}{:>12}{:>12}",
                "streams", "gear no-cache", "gear cache", "cold gain", "warm gain"
            )?;
            for point in &sweep.points {
                writeln!(
                    f,
                    "{:<10}{:>14}{:>14}{:>11.2}x{:>11.2}x",
                    point.streams,
                    secs(point.cold),
                    secs(point.warm),
                    base.cold.as_secs_f64() / point.cold.as_secs_f64().max(f64::MIN_POSITIVE),
                    base.warm.as_secs_f64() / point.warm.as_secs_f64().max(f64::MIN_POSITIVE),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig8::publish_corpus;

    #[test]
    fn streams_one_matches_fig9_and_more_streams_help_on_thin_links() {
        let ctx = ExperimentContext::quick();
        let published = publish_corpus(&ctx);

        let sweep = run_at(&ctx, &published, "20Mbps", Link::mbps(20.0));
        let fig9_run = fig9::run_at(&ctx, &published, "20Mbps", Link::mbps(20.0));
        let (_, fig9_cold, fig9_warm) = fig9_run.overall();
        let base = sweep.baseline();
        assert_eq!(base.cold, fig9_cold, "streams=1 must BE the Fig. 9 cold number");
        assert_eq!(base.warm, fig9_warm, "streams=1 must BE the Fig. 9 warm number");

        // Monotone cold-cache improvement as streams grow.
        for pair in sweep.points.windows(2) {
            assert!(
                pair[1].cold <= pair[0].cold,
                "{} streams slower than {}: {:?} > {:?}",
                pair[1].streams,
                pair[0].streams,
                pair[1].cold,
                pair[0].cold
            );
        }
        let wide = sweep.points.last().unwrap();
        assert!(
            wide.cold < base.cold,
            "8 streams must strictly beat serial on 20 Mbps cold: {:?} !< {:?}",
            wide.cold,
            base.cold
        );
    }
}
