//! Fig. 2: redundancy among the necessary data within an image series.

use std::collections::HashMap;
use std::fmt;

use gear_corpus::Category;
use gear_hash::Fingerprint;

use super::ExperimentContext;

/// Paper values (redundancy ratio per category; the text quotes Database
/// 56.0 %, Application Platform 57.4 %, and a 39.9 % average).
/// Paper: Database-series redundancy.
pub const PAPER_DATABASE: f64 = 0.560;
/// Paper: Application-Platform redundancy.
pub const PAPER_PLATFORM: f64 = 0.574;
/// Paper: average redundancy across categories.
pub const PAPER_AVERAGE: f64 = 0.399;

/// Redundancy of one series: 1 − unique necessary bytes / total necessary
/// bytes across all its versions.
#[derive(Debug, Clone)]
pub struct SeriesRedundancy {
    /// Series name.
    pub name: String,
    /// Category.
    pub category: Category,
    /// Redundancy ratio in `[0, 1)`.
    pub redundancy: f64,
    /// Total necessary bytes across versions (corpus scale).
    pub total_bytes: u64,
}

/// The full Fig. 2 result.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Per-series redundancies.
    pub series: Vec<SeriesRedundancy>,
}

/// Computes necessary-data redundancy for every series.
pub fn run(ctx: &ExperimentContext) -> Fig2 {
    let mut out = Vec::new();
    for series in &ctx.corpus.series {
        let mut unique: HashMap<Fingerprint, u64> = HashMap::new();
        let mut total = 0u64;
        for (image, trace) in series.images.iter().zip(&series.traces) {
            let rootfs = image.root_fs().expect("corpus images replay");
            for path in &trace.reads {
                if let Some(gear_fs::Node::File(file)) = rootfs.get(path) {
                    if let gear_fs::FileData::Inline(content) = &file.data {
                        let fp = Fingerprint::of(content);
                        total += content.len() as u64;
                        unique.entry(fp).or_insert(content.len() as u64);
                    }
                }
            }
        }
        let unique_bytes: u64 = unique.values().sum();
        let redundancy = if total == 0 {
            0.0
        } else {
            1.0 - unique_bytes as f64 / total as f64
        };
        out.push(SeriesRedundancy {
            name: series.spec.name.to_owned(),
            category: series.spec.category,
            redundancy,
            total_bytes: total,
        });
    }
    Fig2 { series: out }
}

impl Fig2 {
    /// Byte-weighted redundancy of one category.
    pub fn category_redundancy(&self, category: Category) -> f64 {
        let rows: Vec<_> = self.series.iter().filter(|s| s.category == category).collect();
        let total: u64 = rows.iter().map(|s| s.total_bytes).sum();
        if total == 0 {
            return 0.0;
        }
        rows.iter().map(|s| s.redundancy * s.total_bytes as f64).sum::<f64>() / total as f64
    }

    /// Unweighted mean across categories present in the corpus (the paper's
    /// "on average, the redundancy ratio is 39.9 %").
    pub fn average(&self) -> f64 {
        let cats: Vec<f64> = Category::ALL
            .iter()
            .filter(|c| self.series.iter().any(|s| s.category == **c))
            .map(|c| self.category_redundancy(*c))
            .collect();
        if cats.is_empty() {
            0.0
        } else {
            cats.iter().sum::<f64>() / cats.len() as f64
        }
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 2 — necessary-data redundancy within image series")?;
        writeln!(f, "{:<22}{:>12}{:>12}", "category", "measured", "paper")?;
        for cat in Category::ALL {
            if !self.series.iter().any(|s| s.category == cat) {
                continue;
            }
            let paper = match cat {
                Category::Database => format!("{:.1}%", PAPER_DATABASE * 100.0),
                Category::ApplicationPlatform => format!("{:.1}%", PAPER_PLATFORM * 100.0),
                _ => "—".to_owned(),
            };
            writeln!(
                f,
                "{:<22}{:>11.1}%{:>12}",
                cat.name(),
                self.category_redundancy(cat) * 100.0,
                paper
            )?;
        }
        write!(
            f,
            "{:<22}{:>11.1}%{:>11.1}%",
            "average",
            self.average() * 100.0,
            PAPER_AVERAGE * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_in_range_and_databases_high() {
        let ctx = ExperimentContext::quick();
        let fig = run(&ctx);
        for s in &fig.series {
            assert!(s.redundancy >= 0.0 && s.redundancy < 1.0, "{}: {}", s.name, s.redundancy);
            assert!(s.total_bytes > 0, "{} has no necessary bytes", s.name);
        }
        // Database hot sets are more stable than Linux distro hot sets.
        let db = fig.category_redundancy(Category::Database);
        let distro = fig.category_redundancy(Category::LinuxDistro);
        assert!(db > distro, "db {db} vs distro {distro}");
    }
}
