//! Extension experiment: Gear + cooperative P2P distribution (paper §VI-B).
//!
//! Deploys one image across clusters of growing size on an edge uplink and
//! measures how cooperative fetching amortizes registry egress — the
//! combination the paper's related-work section argues is complementary to
//! the Gear format.

use std::fmt;
use std::time::Duration;

use gear_p2p::{Cluster, ClusterConfig};

use super::fig8::PublishedCorpus;
use super::{human_bytes, secs, ExperimentContext};

/// Result for one cluster size.
#[derive(Debug, Clone, Copy)]
pub struct ClusterRow {
    /// Number of nodes deployed on.
    pub nodes: usize,
    /// First (cold) node's deployment time.
    pub cold: Duration,
    /// Mean deployment time across all nodes.
    pub mean: Duration,
    /// Registry uplink egress for the whole cluster (paper scale).
    pub registry_egress: u64,
    /// Node-to-node traffic (paper scale).
    pub peer_traffic: u64,
}

/// The extension experiment's result.
#[derive(Debug, Clone)]
pub struct ExtCluster {
    /// Which series' newest image was deployed.
    pub series: String,
    /// One row per cluster size.
    pub rows: Vec<ClusterRow>,
}

/// Runs the sweep over cluster sizes 1, 2, 4, 8, 16.
pub fn run(ctx: &ExperimentContext, published: &PublishedCorpus, series_name: &str) -> ExtCluster {
    let series = ctx.corpus.series_by_name(series_name).expect("series in corpus");
    let image = series.images.last().expect("versions");
    let trace = series.traces.last().expect("traces");

    let rows = [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|nodes| {
            let mut cluster =
                Cluster::new(ClusterConfig::edge(nodes).with_client(ctx.client_config));
            let mut cold = Duration::ZERO;
            let mut sum = Duration::ZERO;
            for node in 0..nodes {
                let report = cluster
                    .deploy_on(node, image.reference(), trace, &published.gear_index, &published.gear_files)
                    .expect("cluster deploy");
                if node == 0 {
                    cold = report.total;
                }
                sum += report.total;
            }
            ClusterRow {
                nodes,
                cold,
                mean: sum / nodes as u32,
                registry_egress: cluster.registry_egress(),
                peer_traffic: cluster.peer_traffic(),
            }
        })
        .collect();
    ExtCluster { series: series_name.to_owned(), rows }
}

impl fmt::Display for ExtCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension — cooperative P2P cluster deployment of {} (20 Mbps uplink, 1 Gbps LAN)",
            self.series
        )?;
        writeln!(
            f,
            "{:<8}{:>10}{:>12}{:>16}{:>14}",
            "nodes", "cold", "mean/node", "uplink egress", "peer bytes"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<8}{:>10}{:>12}{:>16}{:>14}",
                row.nodes,
                secs(row.cold),
                secs(row.mean),
                human_bytes(row.registry_egress),
                human_bytes(row.peer_traffic)
            )?;
        }
        write!(
            f,
            "uplink egress stays ~flat with cluster size: each unique Gear file leaves the \
             registry once (paper §VI-B: P2P is complementary to Gear)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig8::publish_corpus;

    #[test]
    fn egress_is_amortized_across_nodes() {
        let ctx = ExperimentContext::quick();
        let published = publish_corpus(&ctx);
        let result = run(&ctx, &published, "redis");
        let one = result.rows.first().unwrap();
        let sixteen = result.rows.last().unwrap();
        // Index pulls grow with node count, but file bytes dominate: egress
        // must grow far slower than linearly.
        assert!(
            (sixteen.registry_egress as f64) < one.registry_egress as f64 * 3.0,
            "egress {} vs single-node {}",
            sixteen.registry_egress,
            one.registry_egress
        );
        // Warm nodes are faster than the cold one.
        assert!(sixteen.mean < sixteen.cold);
    }
}
