//! One submodule per paper artifact, sharing an [`ExperimentContext`].

pub mod chunking;
pub mod concurrency;
pub mod crash;
pub mod ext_cluster;
pub mod faults;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod hotpath;
pub mod profile;
pub mod table2;
pub mod tails;
pub mod tiering;

use gear_client::ClientConfig;
use gear_corpus::{Corpus, CorpusConfig};

/// Shared setup for all experiments: the corpus plus the client cost model
/// calibrated to the paper's testbed.
#[derive(Debug)]
pub struct ExperimentContext {
    /// The generated corpus.
    pub corpus: Corpus,
    /// Client configuration (link swapped per experiment as needed).
    pub client_config: ClientConfig,
}

impl ExperimentContext {
    /// Builds a context from a corpus config.
    pub fn new(config: &CorpusConfig) -> Self {
        let corpus = Corpus::generate(config);
        let client_config = ClientConfig::paper_testbed(config.scale_denom);
        ExperimentContext { corpus, client_config }
    }

    /// A small, fast context for tests.
    pub fn quick() -> Self {
        Self::new(&CorpusConfig::quick())
    }

    /// The paper-shaped context (all 50 series, 971 images).
    pub fn paper() -> Self {
        Self::new(&CorpusConfig::paper())
    }
}

/// Formats a byte count at paper scale as a human-readable string.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1000.0 && unit < UNITS.len() - 1 {
        value /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Formats a duration as seconds with two decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1_500), "1.5 KB");
        assert_eq!(human_bytes(2_000_000), "2.0 MB");
        assert_eq!(human_bytes(3_540_000_000), "3.5 GB");
    }

    #[test]
    fn quick_context_builds() {
        let ctx = ExperimentContext::quick();
        assert!(ctx.corpus.image_count() > 0);
        assert!(ctx.client_config.byte_scale > 1);
    }
}
